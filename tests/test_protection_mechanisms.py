"""End-to-end tests of the four protection mechanisms (paper Section 4).

Each mechanism is exercised with directed faults: the protected machine
must mask (or recover from) corruption that fails on the baseline.
"""

import pytest

from repro.inject.golden import record_golden, workload_page_sets
from repro.inject.outcome import FailureMode, TrialOutcome
from repro.inject.trial import run_trial
from repro.protect import protection_overhead_report
from repro.uarch.config import PipelineConfig, ProtectionConfig
from repro.uarch.core import Pipeline
from repro.uarch.statelib import StateCategory, StorageKind
from repro.workloads import get_workload

KINDS = frozenset({StorageKind.LATCH, StorageKind.RAM})
HORIZON = 600


def make_rig(protection):
    workload = get_workload("gzip", scale="tiny")
    insn_pages, data_pages = workload_page_sets(workload.program)
    pipeline = Pipeline(workload.program, PipelineConfig.paper(protection))
    pipeline.run(700)
    checkpoint = pipeline.checkpoint()
    golden = record_golden(pipeline, checkpoint, HORIZON, 250,
                           insn_pages, data_pages)
    return pipeline, checkpoint, golden


def directed_trial(pipeline, checkpoint, golden, element_name, bit):
    index = next(meta.index for meta in pipeline.space.elements
                 if meta.name == element_name)

    class _Rng:
        def randrange(self, total):
            indices, cumulative, _t = pipeline.space._table_for(KINDS)
            position = indices.index(index)
            prior = cumulative[position - 1] if position else 0
            return prior + bit

    return run_trial(pipeline, checkpoint, golden, _Rng(), KINDS,
                     "gzip", 0, horizon=HORIZON)


# -- Register file ECC ---------------------------------------------------------


def test_regfile_ecc_masks_committed_state_hit():
    """The baseline fails on a mapped-register flip; ECC corrects it."""
    base = make_rig(ProtectionConfig.none())
    base[0].restore(base[1])
    preg = base[0].arch_rat.read(9)
    unprotected = directed_trial(*base, "regfile.data[%d]" % preg, 7)
    assert unprotected.outcome == TrialOutcome.SDC

    prot = make_rig(ProtectionConfig(regfile_ecc=True))
    prot[0].restore(prot[1])
    preg = prot[0].arch_rat.read(9)
    protected = directed_trial(*prot, "regfile.data[%d]" % preg, 7)
    assert protected.outcome.is_benign


def test_regfile_ecc_bits_are_themselves_safe():
    """A flip in the ECC check bits must not corrupt execution."""
    rig = make_rig(ProtectionConfig(regfile_ecc=True))
    rig[0].restore(rig[1])
    preg = rig[0].arch_rat.read(9)
    result = directed_trial(*rig, "regfile.ecc[%d]" % preg, 3)
    assert result.outcome.is_benign


# -- Register pointer ECC --------------------------------------------------------


def test_regptr_ecc_masks_archrat_hit():
    base = make_rig(ProtectionConfig.none())
    unprotected = directed_trial(*base, "archrat[9]", 2)
    assert unprotected.outcome.is_failure

    prot = make_rig(ProtectionConfig(regptr_ecc=True))
    protected = directed_trial(*prot, "archrat[9]", 2)
    assert protected.outcome.is_benign


def test_regptr_ecc_masks_freelist_hit():
    prot = make_rig(ProtectionConfig(regptr_ecc=True))
    pipeline = prot[0]
    pipeline.restore(prot[1])
    slot = pipeline.spec_freelist.head.get()
    result = directed_trial(*prot, "specfreelist[%d]" % slot, 3)
    assert result.outcome.is_benign


# -- Timeout counter ---------------------------------------------------------------


def test_timeout_clears_rob_count_deadlock():
    """The locked failure from an inflated ROB count becomes benign-ish:
    the timeout flush restarts the pipeline (Gray Area in the paper)."""
    base = make_rig(ProtectionConfig.none())
    unprotected = directed_trial(*base, "rob.count", 6)
    assert unprotected.failure_mode == FailureMode.LOCKED

    prot = make_rig(ProtectionConfig(timeout=True))
    protected = directed_trial(*prot, "rob.count", 6)
    assert protected.outcome in (TrialOutcome.GRAY, TrialOutcome.MICRO_MATCH)


def test_timeout_counter_bits_are_injectable():
    rig = make_rig(ProtectionConfig(timeout=True))
    result = directed_trial(*rig, "retire.timeout", 3)
    # A corrupted timeout counter at worst causes a premature flush.
    assert result.outcome.is_benign


# -- Instruction word parity ----------------------------------------------------------


def test_insn_parity_recovers_fetchq_corruption():
    """A corrupted fetch-queue instruction word is caught by parity and
    refetched instead of executing a wrong instruction."""
    prot = make_rig(ProtectionConfig(insn_parity=True))
    pipeline = prot[0]
    pipeline.restore(prot[1])
    # Find an occupied fetch-queue slot.
    head = pipeline.frontend.fq_head.get()
    count = pipeline.frontend.fq_count.get()
    assert count > 0
    slot = head % len(pipeline.frontend.fetchq)
    result = directed_trial(*prot, "fetchq[%d].insn" % slot, 5)
    assert not result.outcome.is_failure or \
        result.failure_mode != FailureMode.CTRL


def test_parity_bits_are_naturally_redundant():
    """Flipping a parity bit itself forces at most a spurious flush."""
    prot = make_rig(ProtectionConfig(insn_parity=True))
    pipeline = prot[0]
    pipeline.restore(prot[1])
    head = pipeline.frontend.fq_head.get()
    slot = head % len(pipeline.frontend.fetchq)
    result = directed_trial(*prot, "fetchq[%d].parity" % slot, 0)
    assert result.outcome.is_benign


# -- Overheads (paper Section 4.3) ------------------------------------------------------


def test_overhead_report_magnitude():
    workload = get_workload("gzip", scale="tiny")
    pipeline = Pipeline(workload.program,
                        PipelineConfig.paper(ProtectionConfig.full()))
    report = protection_overhead_report(pipeline)
    # Paper: 3061 extra bits on ~45K; our machine: same order.
    assert 1500 <= report["added_total_bits"] <= 4000
    assert 0.03 <= report["fault_rate_surcharge"] <= 0.10
    assert report["ram_fraction_of_added"] > 0.5  # mostly RAM, as in paper
    assert report["timeout_counter_bits"] == 7


def test_no_protection_no_overhead():
    workload = get_workload("gzip", scale="tiny")
    pipeline = Pipeline(workload.program, PipelineConfig.paper())
    report = protection_overhead_report(pipeline)
    assert report["added_total_bits"] == 0


def test_protected_categories_present():
    workload = get_workload("gzip", scale="tiny")
    pipeline = Pipeline(workload.program,
                        PipelineConfig.paper(ProtectionConfig.full()))
    inventory = pipeline.space.inventory()
    assert StateCategory.ECC in inventory
    assert StateCategory.PARITY in inventory
