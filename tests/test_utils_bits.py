"""Unit and property tests for repro.utils.bits."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.utils.bits import (
    MASK32,
    MASK64,
    bit_count,
    extract,
    mask,
    parity,
    sext,
    to_signed,
    to_unsigned,
)


def test_masks():
    assert MASK32 == 0xFFFFFFFF
    assert MASK64 == 0xFFFFFFFFFFFFFFFF
    assert mask(1) == 1
    assert mask(7) == 127
    assert mask(64) == MASK64


def test_extract():
    assert extract(0b101100, 2, 3) == 0b011
    assert extract(0xDEADBEEF, 16, 16) == 0xDEAD
    assert extract(0xFF, 8, 8) == 0


def test_sext_positive():
    assert sext(0x7F, 8) == 127
    assert sext(5, 16) == 5


def test_sext_negative():
    assert sext(0x80, 8) == -128
    assert sext(0xFFFF, 16) == -1
    assert sext(0xFFFFFFFF, 32) == -1


def test_sext_masks_input():
    # High bits beyond the field are ignored.
    assert sext(0x1FF, 8) == -1


def test_to_signed_roundtrip():
    assert to_signed(MASK64) == -1
    assert to_unsigned(-1) == MASK64
    assert to_signed(to_unsigned(-12345)) == -12345


def test_bit_count():
    assert bit_count(0) == 0
    assert bit_count(0b1011) == 3
    assert bit_count(MASK64) == 64


def test_parity():
    assert parity(0) == 0
    assert parity(1) == 1
    assert parity(0b11) == 0
    assert parity(0b111) == 1


@given(st.integers(min_value=0, max_value=MASK64))
def test_parity_flip_property(value):
    """Flipping any one bit flips the parity."""
    bit = value % 64
    assert parity(value) != parity(value ^ (1 << bit))


@given(st.integers(min_value=-(2 ** 63), max_value=2 ** 63 - 1))
def test_signed_unsigned_roundtrip(value):
    assert to_signed(to_unsigned(value)) == value


@given(st.integers(min_value=0, max_value=MASK64),
       st.integers(min_value=1, max_value=63))
def test_sext_idempotent(value, width):
    once = sext(value, width)
    assert sext(once & mask(width), width) == once
