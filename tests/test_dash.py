"""Dashboard tests: views, server routes, live tailing, fabric mode.

Acceptance per the dashboard's brief: it serves a live view against a
smoke campaign directory AND against a fabric coordinator, with zero
third-party dependencies -- the client below is stdlib ``urllib``
driven through ``run_in_executor`` so the server under test keeps its
event loop.
"""

import asyncio
import json
import urllib.error
import urllib.request

import pytest

from repro.dash import DashServer
from repro.dash.views import build_view, discover_campaign_dirs
from repro.fabric import Coordinator, FabricWorker, call
from repro.inject.campaign import CampaignConfig
from repro.inject.store import config_to_dict
from repro.runner import run_campaign
from repro.runner.journal import journal_path
from repro.store import ResultsStore

TRIALS = 12  # CampaignConfig.test()


@pytest.fixture(scope="module")
def campaign_dir(tmp_path_factory):
    directory = tmp_path_factory.mktemp("dash") / "smoke"
    run_campaign(CampaignConfig.test(provenance=True), workers=0,
                 directory=str(directory))
    return str(directory)


async def _fetch(port, path):
    """GET via stdlib urllib in an executor; (status, body bytes)."""

    def blocking():
        request = urllib.request.Request(
            "http://127.0.0.1:%d%s" % (port, path))
        try:
            with urllib.request.urlopen(request, timeout=10) as reply:
                return reply.status, reply.read()
        except urllib.error.HTTPError as error:
            return error.code, error.read()

    return await asyncio.get_running_loop().run_in_executor(None, blocking)


def test_discover_campaign_dirs(tmp_path, campaign_dir):
    # A campaign dir is found as itself; a base dir contributes each
    # child holding a journal (the fabric layout); junk is ignored.
    base = tmp_path / "base"
    (base / "child").mkdir(parents=True)
    (base / "noise").mkdir()
    with open(journal_path(str(base / "child")), "w") as handle:
        handle.write("")
    found = discover_campaign_dirs([campaign_dir, str(base),
                                    str(tmp_path / "missing")])
    assert found == [campaign_dir, str(base / "child")]


def test_build_view_shape(campaign_dir):
    with ResultsStore() as store:
        store.ingest(campaign_dir)
        view = build_view(store, [campaign_dir])
    assert view["totals"]["done"] == TRIALS
    assert sum(view["totals"]["outcome_counts"].values()) == TRIALS
    campaign, = view["campaigns"]
    assert campaign["label"] == "smoke"
    assert campaign["total"] == TRIALS
    assert view["heatmap"]["rows"]
    assert view["heatmap"]["columns"] == ["gzip"]
    assert view["masking"]  # provenance campaign -> masking causes
    assert view["fabric"] is None
    json.dumps(view)  # the whole view must be JSON-serializable


def test_build_view_surfaces_batched_metrics(tmp_path):
    """A --batch campaign's lane metrics reach the summary totals."""
    directory = str(tmp_path / "batched")
    run_campaign(CampaignConfig.test(), workers=0, directory=directory,
                 batch_lanes=8)
    with ResultsStore() as store:
        store.ingest(directory)
        view = build_view(store, [directory])
    totals = view["totals"]
    assert totals["batched_resolved"] + totals["batched_laneout"] \
        == TRIALS
    assert totals["trials_per_sec_batched"] > 0
    assert 0.0 <= totals["lane_out_rate"] <= 1.0
    json.dumps(view)


def test_dash_serves_smoke_campaign(campaign_dir):
    """Acceptance: a live view over a campaign directory."""

    async def scenario():
        server = DashServer(directories=[campaign_dir], port=0,
                            interval=60)
        await server.start()
        try:
            await server.refresh()
            status, page = await _fetch(server.port, "/")
            assert status == 200
            html = page.decode("utf-8")
            assert "repro-faults dashboard" in html
            assert "/api/summary" in html
            status, body = await _fetch(server.port, "/api/summary")
            assert status == 200
            view = json.loads(body)
            assert view["totals"]["done"] == TRIALS
            assert view["campaigns"][0]["label"] == "smoke"
            status, body = await _fetch(server.port, "/metrics")
            assert status == 200
            text = body.decode("utf-8")
            assert text.endswith("# EOF\n")
            assert "repro_trials_done %d" % TRIALS in text
            status, _body = await _fetch(server.port, "/nope")
            assert status == 404
            status, _body = await _fetch(server.port, "/favicon.ico")
            assert status == 404
        finally:
            await server.stop()

    asyncio.run(scenario())


def test_dash_tails_appended_journal_lines(tmp_path, campaign_dir):
    """New journal lines appear in the view on the next refresh."""
    with open(journal_path(campaign_dir), "rb") as handle:
        lines = handle.read().splitlines(keepends=True)
    live = tmp_path / "live"
    live.mkdir()
    with open(journal_path(str(live)), "wb") as handle:
        handle.writelines(lines[:5])

    async def scenario():
        server = DashServer(directories=[str(live)], port=0, interval=60)
        await server.start()
        try:
            view = await server.refresh()
            assert view["totals"]["done"] == 4
            with open(journal_path(str(live)), "ab") as handle:
                handle.writelines(lines[5:])
            view = await server.refresh()
            assert view["totals"]["done"] == TRIALS
        finally:
            await server.stop()

    asyncio.run(scenario())


def test_dash_against_fabric_coordinator(tmp_path):
    """Acceptance: a live view against a fabric coordinator."""
    config = CampaignConfig.test()

    async def scenario():
        coordinator = Coordinator(str(tmp_path), ttl=5.0, shard_size=3)
        port = await coordinator.start()
        try:
            await call("127.0.0.1", port, "/submit",
                       {"tenant": "default",
                        "config": config_to_dict(config)})
            worker = FabricWorker("127.0.0.1", port, name="w0",
                                  exit_when_idle=True, poll_interval=0.05)
            await worker.run()
            server = DashServer(directories=[str(tmp_path)],
                                connect=("127.0.0.1", port), port=0,
                                interval=60)
            await server.start()
            try:
                await server.refresh()
                status, body = await _fetch(server.port, "/api/summary")
                assert status == 200
                view = json.loads(body)
                assert view["fabric"] is not None
                assert view["fabric"]["campaigns_done"] == 1
                assert view["totals"]["done"] == config.total_trials
                assert view["errors"] == []
                status, body = await _fetch(server.port, "/metrics")
                assert b"repro_fabric_leases_granted_total" in body
            finally:
                await server.stop()
        finally:
            await coordinator.stop()

    asyncio.run(scenario())


def test_dash_reports_unreachable_coordinator(campaign_dir):
    async def scenario():
        server = DashServer(directories=[campaign_dir],
                            connect=("127.0.0.1", 1), port=0, interval=60)
        await server.start()
        try:
            view = await server.refresh()
            assert view["totals"]["done"] == TRIALS  # dirs still work
            assert any("coordinator" in error for error in view["errors"])
        finally:
            await server.stop()

    asyncio.run(scenario())
