"""Tests for ASCII table rendering."""

from repro.utils.tables import format_percent, format_table


def test_basic_table():
    text = format_table(["name", "n"], [["alpha", 3], ["b", 10]])
    lines = text.splitlines()
    assert len(lines) == 4
    assert "name" in lines[0] and "n" in lines[0]
    assert "alpha" in lines[2]


def test_title_line():
    text = format_table(["x"], [[1]], title="My Table")
    assert text.splitlines()[0] == "My Table"


def test_numeric_right_alignment():
    text = format_table(["k", "value"], [["a", 5], ["b", 12345]])
    rows = text.splitlines()[2:]
    # Numeric column right-aligned: shorter number is padded on the left.
    assert rows[0].endswith("    5")


def test_float_formatting():
    text = format_table(["v"], [[3.14159]])
    assert "3.14" in text


def test_format_percent():
    assert format_percent(1, 4) == "25.0%"
    assert format_percent(0, 0) == "n/a"
