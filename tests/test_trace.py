"""Pipeline tracing/introspection tests."""

from repro.isa.assembler import assemble
from repro.uarch.core import Pipeline
from repro.uarch.trace import (
    PipelineTracer,
    retirement_log,
    rob_window,
    structure_snapshot,
)
from repro.workloads import get_workload


def test_structure_snapshot_format():
    pipeline = Pipeline(get_workload("gzip", scale="tiny").program)
    pipeline.run(300)
    snapshot = structure_snapshot(pipeline)
    for token in ("cyc=", "rob=", "sched=", "lq=", "sq="):
        assert token in snapshot


def test_rob_window_shows_oldest():
    pipeline = Pipeline(get_workload("gzip", scale="tiny").program)
    pipeline.run(300)
    window = rob_window(pipeline, limit=4)
    assert "rob[" in window
    assert "pc=0x" in window


def test_rob_window_empty():
    pipeline = Pipeline(assemble("    halt"))
    assert rob_window(pipeline) == "(rob empty)"


def test_tracer_records_and_detaches():
    pipeline = Pipeline(get_workload("gzip", scale="tiny").program)
    tracer = PipelineTracer(sample_every=2).attach(pipeline)
    pipeline.run(200)
    tracer.detach()
    assert tracer.occupancy
    assert tracer.retirements
    assert 0.0 <= tracer.ipc() <= 8.0
    timeline = tracer.occupancy_timeline("rob")
    assert "rob occupancy" in timeline
    # After detach, cycling no longer records.
    samples = len(tracer.occupancy)
    pipeline.run(50)
    assert len(tracer.occupancy) == samples


def test_tracer_empty_timeline():
    tracer = PipelineTracer()
    assert tracer.occupancy_timeline() == "(no samples)"
    assert tracer.ipc() == 0.0


def test_retirement_log():
    pipeline = Pipeline(assemble("""
    li   a0, 3
    addq a0, #4, a0
    putq
    halt
"""))
    log = retirement_log(pipeline, 500, limit=10)
    assert "lda" in log or "ldah" in log
    assert "addq" in log
    assert "r16=7" in log


def test_retirement_log_honours_limit():
    pipeline = Pipeline(get_workload("gzip", scale="tiny").program)
    log = retirement_log(pipeline, 400, limit=5)
    assert len(log.splitlines()) == 5
    # Every line carries a cycle stamp and a hex PC.
    for line in log.splitlines():
        assert line.startswith("c0")
        assert "0x" in line


def test_structure_snapshot_on_fresh_pipeline():
    pipeline = Pipeline(assemble("    halt"))
    snapshot = structure_snapshot(pipeline)
    assert "cyc=0" in snapshot
    assert "ret=0" in snapshot
    assert "mhr=0" in snapshot


def test_rob_window_respects_limit():
    pipeline = Pipeline(get_workload("gzip", scale="tiny").program)
    pipeline.run(300)
    window = rob_window(pipeline, limit=3)
    assert len(window.splitlines()) <= 3


def test_occupancy_sampling_interval():
    pipeline = Pipeline(get_workload("gzip", scale="tiny").program)
    tracer = PipelineTracer(sample_every=5).attach(pipeline)
    pipeline.run(100)
    tracer.detach()
    cycles = [sample["cycle"] for sample in tracer.occupancy]
    assert cycles and all(cycle % 5 == 0 for cycle in cycles)
    assert all(sample["rob"] >= 0 for sample in tracer.occupancy)


def test_tracer_composes_with_observer():
    """PipelineTracer wraps cycle(); repro.obs hooks live inside it.

    Both attached at once must see the same machine: the tracer's
    retirement records and the observer's retire events agree.
    """
    from repro.obs import EventTracer, Observer

    pipeline = Pipeline(get_workload("gzip", scale="tiny").program)
    pipeline.obs = Observer(tracer=EventTracer(capacity=100_000))
    tracer = PipelineTracer().attach(pipeline)
    pipeline.run(200)
    tracer.detach()
    # Observer events stamp the in-progress cycle (pre-increment); the
    # wrapper samples after cycle_count advanced, hence the +1.
    observed = [(e.cycle + 1,) + tuple(
        e.data[k] for k in ("seq", "pc", "op_id", "dest", "value"))
        for e in pipeline.obs.tracer.events("retire")]
    assert observed == tracer.retirements
