"""Pipeline tracing/introspection tests."""

from repro.isa.assembler import assemble
from repro.uarch.core import Pipeline
from repro.uarch.trace import (
    PipelineTracer,
    retirement_log,
    rob_window,
    structure_snapshot,
)
from repro.workloads import get_workload


def test_structure_snapshot_format():
    pipeline = Pipeline(get_workload("gzip", scale="tiny").program)
    pipeline.run(300)
    snapshot = structure_snapshot(pipeline)
    for token in ("cyc=", "rob=", "sched=", "lq=", "sq="):
        assert token in snapshot


def test_rob_window_shows_oldest():
    pipeline = Pipeline(get_workload("gzip", scale="tiny").program)
    pipeline.run(300)
    window = rob_window(pipeline, limit=4)
    assert "rob[" in window
    assert "pc=0x" in window


def test_rob_window_empty():
    pipeline = Pipeline(assemble("    halt"))
    assert rob_window(pipeline) == "(rob empty)"


def test_tracer_records_and_detaches():
    pipeline = Pipeline(get_workload("gzip", scale="tiny").program)
    tracer = PipelineTracer(sample_every=2).attach(pipeline)
    pipeline.run(200)
    tracer.detach()
    assert tracer.occupancy
    assert tracer.retirements
    assert 0.0 <= tracer.ipc() <= 8.0
    timeline = tracer.occupancy_timeline("rob")
    assert "rob occupancy" in timeline
    # After detach, cycling no longer records.
    samples = len(tracer.occupancy)
    pipeline.run(50)
    assert len(tracer.occupancy) == samples


def test_tracer_empty_timeline():
    tracer = PipelineTracer()
    assert tracer.occupancy_timeline() == "(no samples)"
    assert tracer.ipc() == 0.0


def test_retirement_log():
    pipeline = Pipeline(assemble("""
    li   a0, 3
    addq a0, #4, a0
    putq
    halt
"""))
    log = retirement_log(pipeline, 500, limit=10)
    assert "lda" in log or "ldah" in log
    assert "addq" in log
    assert "r16=7" in log
