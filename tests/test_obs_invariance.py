"""The repro.obs contract: observation never changes the simulation.

Enabling tracing, provenance, or profiling must leave every trial
byte-identical to an unobserved run (modulo the two provenance-*derived*
record fields, ``first_read_cycle`` and ``masking_cause``, which only
exist when the observer runs and are stripped before comparison).
"""

import json

import pytest

from repro.inject.campaign import Campaign, CampaignConfig
from repro.inject.store import (
    campaign_fingerprint,
    trial_from_dict,
    trial_to_dict,
)
from repro.obs import EventTracer, MASKING_CAUSES, Observer
from repro.uarch.core import Pipeline
from repro.workloads import get_workload

# The only fields an observer may add to a trial record.
_OBS_ONLY = ("first_read_cycle", "masking_cause")

_SWEEP = dict(trials_per_start_point=8, start_points_per_workload=2)


def _stripped(trial):
    record = trial_to_dict(trial)
    for key in _OBS_ONLY:
        record.pop(key, None)
    return json.dumps(record, sort_keys=True)


@pytest.fixture(scope="module")
def plain_result():
    return Campaign(CampaignConfig.test(**_SWEEP)).run()


@pytest.fixture(scope="module")
def observed_result():
    config = CampaignConfig.test(provenance=True, profile=True, **_SWEEP)
    return Campaign(config).run()


def test_observed_campaign_is_byte_identical(plain_result, observed_result):
    plain = [_stripped(t) for t in plain_result.trials]
    observed = [_stripped(t) for t in observed_result.trials]
    assert plain == observed


def test_observer_fills_provenance_fields(observed_result):
    benign = [t for t in observed_result.trials if t.outcome.is_benign]
    assert benign
    causes = {t.masking_cause for t in benign if t.masking_cause}
    assert causes  # at least one trial resolved a masking cause
    assert causes <= set(MASKING_CAUSES)
    # Plain runs never carry the fields.
    for trial in observed_result.trials:
        if trial.first_read_cycle is not None:
            assert trial.first_read_cycle >= 0


def test_plain_campaign_has_no_provenance(plain_result):
    for trial in plain_result.trials:
        assert trial.first_read_cycle is None
        assert trial.masking_cause is None


def test_fingerprint_ignores_observation_flags():
    base = CampaignConfig.test(**_SWEEP)
    observed = CampaignConfig.test(provenance=True, profile=True, **_SWEEP)
    assert campaign_fingerprint(base) == campaign_fingerprint(observed)


def test_replay_matches_campaign_trial(plain_result):
    from repro.obs.replay import replay_trial

    config = plain_result.config
    target = next(t for t in plain_result.trials
                  if t.start_point == 1 and t.trial_index == 3)
    replayed = replay_trial(
        "gzip", 1, trial_index=3, seed=config.seed, scale=config.scale,
        kinds=config.kinds, horizon=config.horizon,
        warmup_cycles=config.warmup_cycles,
        spacing_cycles=config.spacing_cycles, margin=config.margin)
    assert _stripped(replayed.trial) == _stripped(target)
    # The replay traced the injection and the trial's end.
    assert replayed.tracer.counts.get("inject") == 1
    assert replayed.tracer.counts.get("trial-end") == 1


def test_event_tracing_does_not_perturb_the_pipeline():
    program = get_workload("gzip", scale="tiny").program
    plain = Pipeline(program)
    plain.run(300)
    traced = Pipeline(program)
    traced.obs = Observer(tracer=EventTracer())
    traced.run(300)
    assert traced.cycle_count == plain.cycle_count
    assert traced.space.signature() == plain.space.signature()
    assert traced.total_retired == plain.total_retired
    assert traced.obs.tracer.counts.get("retire")


# -- TrialResult.bit (recorded, round-tripped, legacy-tolerant) ---------------


def test_trial_bit_is_recorded(plain_result):
    bits = [t.bit for t in plain_result.trials]
    assert any(bit > 0 for bit in bits), \
        "every trial reported bit 0 -- the injected bit is not recorded"
    trial = plain_result.trials[0]
    assert trial_from_dict(trial_to_dict(trial)).bit == trial.bit


def test_legacy_trial_records_load(plain_result):
    raw = trial_to_dict(plain_result.trials[0])
    for key in ("bit",) + tuple(_OBS_ONLY) \
            + ("arch_corrupt_cycle", "detect_latency"):
        raw.pop(key, None)
    loaded = trial_from_dict(raw)
    assert loaded.bit == 0
    assert loaded.first_read_cycle is None
    assert loaded.masking_cause is None
    assert loaded.detect_latency is None
