"""ASCII figure rendering tests."""

from repro.analysis.figures import (
    outcome_bars,
    scatter_plot,
    stacked_bar_chart,
)
from repro.inject.outcome import TrialOutcome, TrialResult


def test_stacked_bar_basic():
    table = {"gzip": {"sdc": 1, "uarch_match": 3},
             "mcf": {"uarch_match": 4}}
    text = stacked_bar_chart(table, ["sdc", "uarch_match"], width=20)
    assert "gzip" in text and "mcf" in text
    assert "n=4" in text
    assert "legend" in text
    gzip_line = [l for l in text.splitlines() if l.startswith("gzip")][0]
    assert gzip_line.count("#") == 5  # 1/4 of 20 cells


def test_stacked_bar_skips_empty_rows():
    table = {"empty": {}, "full": {"sdc": 2}}
    text = stacked_bar_chart(table, ["sdc"], width=10)
    assert "empty" not in text


def test_scatter_plot_renders_points():
    points = [(0, 0), (10, 10), (5, 5)]
    text = scatter_plot(points, width=20, height=8, title="t",
                        x_label="occ", y_label="benign")
    assert "t" in text
    assert text.count("o") >= 3
    assert "occ" in text


def test_scatter_plot_empty():
    assert "(no data)" in scatter_plot([])


def test_scatter_plot_degenerate_axis():
    text = scatter_plot([(1, 5), (1, 5)], width=10, height=4)
    assert "o" in text or "*" in text


def test_outcome_bars():
    def trial(workload, outcome):
        return TrialResult(
            outcome=outcome, failure_mode=None, workload=workload,
            element_name="e", category="ctrl", kind="ram", bit=0,
            start_point=0, inject_cycle=0, cycles_run=1,
            valid_inflight=0, total_inflight=0)

    trials = [trial("a", TrialOutcome.MICRO_MATCH),
              trial("a", TrialOutcome.SDC),
              trial("b", TrialOutcome.GRAY)]
    text = outcome_bars(trials, key=lambda t: t.workload, title="by wl")
    assert "by wl" in text
    assert "a" in text and "b" in text
