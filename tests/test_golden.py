"""Golden-trace recording tests."""

import pytest

from repro.errors import CampaignError
from repro.inject.golden import (
    record_golden,
    workload_page_sets,
)
from repro.uarch.core import Pipeline
from repro.workloads import get_workload


@pytest.fixture(scope="module")
def rig():
    workload = get_workload("gcc", scale="tiny")
    pages = workload_page_sets(workload.program)
    pipeline = Pipeline(workload.program)
    pipeline.run(600)
    checkpoint = pipeline.checkpoint()
    return workload, pages, pipeline, checkpoint


def test_page_sets_cover_program(rig):
    workload, (insn_pages, data_pages), _pipeline, _cp = rig
    assert workload.program.entry >> 12 in insn_pages
    assert 0x4000 >> 12 in data_pages  # the token stream buffer


def test_trace_lengths(rig):
    _wl, pages, pipeline, checkpoint = rig
    golden = record_golden(pipeline, checkpoint, 300, 100, *pages)
    assert len(golden.sigs) == 400
    assert golden.retired
    assert golden.retired_seqs == {r[0] for r in golden.retired}
    assert 0 in golden.view_by_k


def test_trace_is_deterministic(rig):
    _wl, pages, pipeline, checkpoint = rig
    first = record_golden(pipeline, checkpoint, 200, 50, *pages)
    second = record_golden(pipeline, checkpoint, 200, 50, *pages)
    assert first.sigs == second.sigs
    assert first.retired == second.retired
    assert first.drains == second.drains
    assert first.view_by_k == second.view_by_k


def test_view_hashes_monotone_keys(rig):
    _wl, pages, pipeline, checkpoint = rig
    golden = record_golden(pipeline, checkpoint, 200, 50, *pages)
    keys = sorted(golden.view_by_k)
    assert keys[0] == 0
    assert keys[-1] == len(golden.retired)


def test_golden_rejects_halting_window():
    workload = get_workload("gzip", scale="tiny")
    pages = workload_page_sets(workload.program)
    pipeline = Pipeline(workload.program)
    pipeline.run(10_000_000)  # run to completion
    # Rewind is impossible; a fresh pipeline about to halt:
    pipeline = Pipeline(workload.program)
    pipeline.run(200)
    checkpoint = pipeline.checkpoint()
    with pytest.raises(CampaignError):
        record_golden(pipeline, checkpoint, 100_000, 10_000, *pages)


def test_golden_leaves_tlb_disabled(rig):
    _wl, pages, pipeline, checkpoint = rig
    record_golden(pipeline, checkpoint, 100, 50, *pages)
    assert pipeline.tlb_insn_pages is None
    assert pipeline.tlb_data_pages is None
