"""Directed memory-unit behaviours: forwarding, violations, drain order."""

from repro.isa.assembler import assemble
from repro.uarch.config import PipelineConfig
from repro.uarch.core import Pipeline


def run(source, max_cycles=60_000):
    pipeline = Pipeline(assemble(source), PipelineConfig.paper())
    pipeline.run(max_cycles)
    assert pipeline.halted
    assert pipeline.failure_event is None
    return pipeline


def test_forwarding_exact_match():
    pipe = run("""
    li   s1, 0x4000
    li   t0, 1234
    stq  t0, 0(s1)
    ldq  a0, 0(s1)
    putq
    halt
""")
    assert pipe.output_text() == "1234\n"


def test_forwarding_youngest_older_store_wins():
    pipe = run("""
    li   s1, 0x4000
    li   t0, 1
    stq  t0, 0(s1)
    li   t0, 2
    stq  t0, 0(s1)
    ldq  a0, 0(s1)
    putq
    halt
""")
    assert pipe.output_text() == "2\n"


def test_size_mismatch_waits_for_drain():
    """A 4-byte load over an 8-byte store cannot forward; it must wait."""
    pipe = run("""
    li   s1, 0x4000
    li   t0, -1
    stq  t0, 0(s1)
    ldl  a0, 0(s1)
    putq
    halt
""")
    assert pipe.output_text() == "-1\n"


def test_partial_overlap_same_quad():
    pipe = run("""
    li   s1, 0x4000
    li   t0, 7
    stl  t0, 0(s1)
    li   t1, 9
    stl  t1, 4(s1)
    ldq  a0, 0(s1)
    putq
    halt
""")
    assert pipe.output_text() == "%d\n" % ((9 << 32) | 7)


def test_store_drain_order():
    """Stores reach memory in program order after retirement."""
    pipe = run("""
    li   s1, 0x4000
    li   t0, 10
    stq  t0, 0(s1)
    li   t0, 20
    stq  t0, 8(s1)
    li   t0, 30
    stq  t0, 0(s1)
    ldq  t1, 0(s1)
    ldq  t2, 8(s1)
    addq t1, t2, a0
    putq
    halt
""")
    assert pipe.output_text() == "50\n"
    assert pipe.memory.load_quad(0x4000) == 30


def test_loads_bypass_unrelated_stores():
    """A load independent of preceding stores can complete early and
    still be correct (no false dependences)."""
    pipe = run("""
    li   s1, 0x4000
    li   s4, 0x6000
    li   t5, 42
    stq  t5, 0(s4)
    li   s0, 10
loop:
    stq  s0, 0(s1)      ; address computed from loop state
    ldq  t0, 0(s4)      ; unrelated constant location
    addq t1, t0, t1
    subq s0, #1, s0
    bgt  s0, loop
    mov  t1, a0
    putq
    halt
""")
    assert pipe.output_text() == "420\n"


def test_violation_recovery_trains_store_sets():
    """Repeated store->load conflicts must converge via the predictor
    instead of replaying forever."""
    pipe = run("""
    li   s1, 0x4000
    li   s0, 60
    clr  t1
loop:
    addq s0, #100, t0
    stq  t0, 0(s1)
    ldq  t2, 0(s1)      ; always conflicts with the store above
    addq t1, t2, t1
    subq s0, #1, s0
    bgt  s0, loop
    mov  t1, a0
    putq
    halt
""")
    expected = sum(s + 100 for s in range(1, 61))
    assert pipe.output_text() == "%d\n" % expected
    # The predictor should have learned the conflicting pair.
    assert pipe.storesets.ssit, "store sets never trained"


def test_mhr_fills_unblock_dependents():
    """Misses spread over many lines: every dependent must eventually
    receive its fill (no lost wakeups)."""
    pipe = run("""
    li   s1, 0x20000
    li   s0, 48
init:
    sll  s0, #9, t0     ; 512B stride: distinct lines
    addq s1, t0, t0
    stq  s0, 0(t0)
    subq s0, #1, s0
    bgt  s0, init
    li   s0, 48
    clr  t2
sum:
    sll  s0, #9, t0
    addq s1, t0, t0
    ldq  t1, 0(t0)
    addq t2, t1, t2
    subq s0, #1, s0
    bgt  s0, sum
    mov  t2, a0
    putq
    halt
""")
    assert pipe.output_text() == "%d\n" % sum(range(1, 49))
