"""Co-simulation: the pipeline must agree with the functional simulator.

This is the load-bearing integration test of the whole model: every
workload kernel and a population of random programs must produce
identical outputs and halt cleanly on both simulators, for both the
paper configuration and the small test configuration, with and without
protection mechanisms.
"""

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.arch.functional import FunctionalSimulator
from repro.uarch.config import PipelineConfig, ProtectionConfig
from repro.uarch.core import Pipeline
from repro.workloads import WORKLOAD_NAMES, get_workload
from repro.workloads.generator import random_program


def cosim(program, config=None, max_cycles=500_000):
    reference = FunctionalSimulator(program)
    reference.run(5_000_000)
    assert reference.halted

    pipeline = Pipeline(program, config or PipelineConfig.paper())
    pipeline.run(max_cycles)
    assert pipeline.halted, "pipeline did not finish"
    assert pipeline.failure_event is None
    assert pipeline.output_text() == reference.output_text()
    assert pipeline.total_retired == reference.instret
    return pipeline


@pytest.mark.parametrize("name", WORKLOAD_NAMES)
def test_workload_cosim(name):
    cosim(get_workload(name, scale="tiny").program)


@pytest.mark.parametrize("name", ("gzip", "mcf", "perlbmk"))
def test_workload_cosim_small_config(name):
    cosim(get_workload(name, scale="tiny").program,
          config=PipelineConfig.small(), max_cycles=800_000)


@pytest.mark.parametrize("name", ("gzip", "vortex", "gcc"))
def test_workload_cosim_protected(name):
    cosim(get_workload(name, scale="tiny").program,
          config=PipelineConfig.paper(ProtectionConfig.full()))


@pytest.mark.parametrize("seed", range(12))
def test_random_program_cosim(seed):
    cosim(random_program(seed, body_blocks=12, loop_iters=5))


@pytest.mark.parametrize("seed", range(4))
def test_random_program_cosim_small_config(seed):
    cosim(random_program(100 + seed, body_blocks=10, loop_iters=4),
          config=PipelineConfig.small())


@settings(max_examples=15, deadline=None,
          suppress_health_check=[HealthCheck.too_slow])
@given(st.integers(min_value=1000, max_value=100_000))
def test_random_program_cosim_property(seed):
    cosim(random_program(seed, body_blocks=8, loop_iters=3))


def test_retired_stream_matches_functional_trace():
    """Beyond output equality: the committed PC stream must match."""
    program = get_workload("gcc", scale="tiny").program

    reference = FunctionalSimulator(program)
    reference_pcs = []
    while not reference.halted and reference.instret < 4000:
        reference_pcs.append(reference.state.pc)
        reference.step()

    pipeline = Pipeline(program)
    pipeline_pcs = []
    while not pipeline.halted and len(pipeline_pcs) < 4000:
        pipeline.cycle()
        for record in pipeline.retired_this_cycle:
            pipeline_pcs.append(record[1])
    length = min(len(reference_pcs), len(pipeline_pcs))
    assert length > 1000
    assert pipeline_pcs[:length] == reference_pcs[:length]
