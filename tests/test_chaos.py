"""Chaos smoke tests: fault the harness, demand byte-identity anyway.

The acceptance property of ``repro.chaos``: a campaign disturbed by
worker kills, transient I/O errors, a torn journal tail, golden-cache
corruption and a mid-campaign SIGTERM must converge -- across the
crash-resume loop -- to a merged journal whose canonical trial bytes
equal an undisturbed run's, with the incidents visible in telemetry.
"""

import os
import signal

import pytest

from repro.chaos import ChaosEvent, ChaosSchedule, run_chaos_campaign
from repro.errors import CampaignDrained, CampaignError
from repro.inject.campaign import Campaign, CampaignConfig
from repro.inject.outcome import TrialOutcome
from repro.perf.goldencache import QUARANTINE_DIR
from repro.runner import CampaignRunner, run_campaign
from repro.runner.journal import canonical_trial_bytes, journal_path, read_journal


@pytest.fixture(scope="module")
def config():
    return CampaignConfig.test()


@pytest.fixture(scope="module")
def serial(config):
    return Campaign(config).run()


@pytest.fixture(scope="module")
def undisturbed_bytes(tmp_path_factory, config):
    """Canonical journal bytes of a chaos-free reference campaign."""
    directory = str(tmp_path_factory.mktemp("reference") / "campaign")
    run_campaign(config, workers=2, directory=directory)
    return canonical_trial_bytes(journal_path(directory))


class _Incidents:
    """Progress hook accumulating telemetry across chaos restarts."""

    def __init__(self):
        self.retried = 0
        self.io_retries = 0
        self.quarantined = 0

    def __call__(self, snapshot):
        self.retried = max(self.retried, snapshot.retried)
        self.io_retries = max(self.io_retries, snapshot.io_retries)
        self.quarantined = max(self.quarantined, snapshot.quarantined)


def test_chaos_torn_campaign_converges_byte_identical(
        tmp_path, config, serial, undisturbed_bytes):
    directory = str(tmp_path / "campaign")
    chaos = ChaosSchedule([
        ChaosEvent("kill", 2),     # SIGKILL a busy worker
        ChaosEvent("io", 3),       # transient EIO on the next appends
        ChaosEvent("tear", 5),     # crash mid-append, torn tail on disk
        ChaosEvent("cache", 6),    # flip a bit of a golden-cache entry
        ChaosEvent("sigterm", 9),  # graceful drain mid-campaign
    ])
    incidents = _Incidents()
    result, restarts = run_chaos_campaign(
        config, directory, chaos, workers=2, batch_size=2,
        progress=incidents)

    assert result.trials == serial.trials
    assert canonical_trial_bytes(journal_path(directory)) \
        == undisturbed_bytes
    assert chaos.pending == [], \
        "unfired chaos events:\n%s" % chaos.render()
    assert restarts >= 1  # the torn append crashed at least once
    assert incidents.io_retries >= 1  # the EIO appends were retried
    # No `retried` assertion here: when the killed worker's batch
    # results were already queued before the SIGKILL landed, nothing is
    # left to requeue -- the kill still fired (pending == []) and the
    # requeue path is pinned by the worker-death and stall tests.


def test_chaos_stall_is_detected_and_absorbed(tmp_path, config, serial):
    directory = str(tmp_path / "campaign")
    chaos = ChaosSchedule([ChaosEvent("stall", 2)])  # SIGSTOP a worker
    incidents = _Incidents()
    result, _restarts = run_chaos_campaign(
        config, directory, chaos, workers=2, batch_size=2,
        trial_timeout=1.0, progress=incidents)
    assert result.trials == serial.trials
    assert chaos.pending == []
    assert incidents.retried >= 1  # the stalled worker's units requeued


def test_chaos_schedule_replays_from_the_seed(config):
    spec = "kill:2,tear,io@4,cache"
    first = ChaosSchedule.from_spec(spec, config)
    second = ChaosSchedule.from_spec(spec, config)
    assert [(e.kind, e.at_done) for e in first.events] \
        == [(e.kind, e.at_done) for e in second.events]
    for event in first.events:
        assert 1 <= event.at_done <= config.total_trials
    other_seed = ChaosSchedule.from_spec(
        spec, CampaignConfig.test(seed=config.seed + 1))
    assert [(e.kind, e.at_done) for e in first.events] \
        != [(e.kind, e.at_done) for e in other_seed.events]


def test_chaos_requires_a_campaign_directory(config):
    with pytest.raises(CampaignError, match="campaign directory"):
        run_chaos_campaign(config, None, ChaosSchedule([]))


def test_sigterm_drains_to_a_resumable_journal(tmp_path, config, serial):
    directory = str(tmp_path / "campaign")

    def send_sigterm_at_three(snapshot):
        if snapshot.done == 3:
            os.kill(os.getpid(), signal.SIGTERM)

    with pytest.raises(CampaignDrained) as excinfo:
        run_campaign(config, workers=1, directory=directory,
                     progress=send_sigterm_at_three)
    assert excinfo.value.signal_name == "SIGTERM"
    assert directory in str(excinfo.value)

    contents = read_journal(journal_path(directory))
    assert len(contents.trials) == 3  # drained cleanly after the third
    assert not contents.truncated

    resumed = run_campaign(config, workers=1, directory=directory)
    assert resumed.trials == serial.trials


def test_poison_unit_is_contained_as_harness_error(tmp_path, config):
    directory = str(tmp_path / "campaign")
    killed = []
    runner = CampaignRunner(config, workers=2, batch_size=3,
                            directory=directory, max_retries=0)

    def kill_one_busy_worker(snapshot):
        if snapshot.fresh >= 1 and not killed and runner.pool is not None:
            busy = [w for w in runner.pool.workers
                    if w.busy and w.alive()]
            if busy:
                os.kill(busy[0].process.pid, signal.SIGKILL)
                killed.append(busy[0].worker_id)

    runner.progress = kill_one_busy_worker
    result = runner.run()  # must NOT raise: containment, not abort
    assert killed, "test never observed a busy worker to kill"
    assert len(result.trials) == config.total_trials
    contained = [t for t in result.trials
                 if t.outcome is TrialOutcome.HARNESS_ERROR]
    assert contained, "the killed batch was not contained"
    for trial in contained:
        assert trial.element_name == "harness"
        assert not trial.outcome.is_failure
        assert not trial.outcome.is_benign
        assert "contained" in trial.detail
    assert runner.telemetry.harness_errors == len(contained)

    # The containment records are journaled and resume cleanly.
    again = run_campaign(config, workers=1, directory=directory)
    assert again.trials == result.trials


def test_poison_unit_aborts_without_containment(tmp_path, config):
    runner = CampaignRunner(config, workers=2, batch_size=3,
                            max_retries=0, contain_poison=False)
    killed = []

    def kill_one_busy_worker(snapshot):
        if snapshot.fresh >= 1 and not killed and runner.pool is not None:
            busy = [w for w in runner.pool.workers
                    if w.busy and w.alive()]
            if busy:
                os.kill(busy[0].process.pid, signal.SIGKILL)
                killed.append(busy[0].worker_id)

    runner.progress = kill_one_busy_worker
    with pytest.raises(CampaignError, match="aborting"):
        runner.run()


def test_cache_corruption_quarantined_and_regenerated(
        tmp_path, config, serial, undisturbed_bytes):
    """Satellite: flip a byte in a golden-cache entry; the rerun must
    quarantine it, regenerate, and journal identically to a cold run."""
    directory = tmp_path / "campaign"
    run_campaign(config, workers=1, directory=str(directory))

    golden = directory / "golden"
    entries = sorted(p for p in golden.iterdir() if p.suffix == ".pkl")
    assert entries, "campaign wrote no golden-cache entries"
    victim = entries[0]
    blob = bytearray(victim.read_bytes())
    blob[len(blob) // 2] ^= 0x01
    victim.write_bytes(bytes(blob))

    # Warm rerun from scratch: only the (corrupt) cache carries over.
    (directory / "journal.jsonl").unlink()
    rerun = run_campaign(config, workers=1, directory=str(directory))
    assert rerun.trials == serial.trials
    assert canonical_trial_bytes(journal_path(str(directory))) \
        == undisturbed_bytes

    quarantine = golden / QUARANTINE_DIR
    assert quarantine.is_dir()
    assert [p.name for p in quarantine.iterdir()] == [victim.name]
    assert victim.exists(), "the corrupt entry was not regenerated"

    import json
    metrics = json.loads((directory / "metrics.json").read_text())
    assert metrics["quarantined"] == 1
    prom = (directory / "metrics.prom").read_text()
    assert "repro_cache_quarantined 1" in prom
