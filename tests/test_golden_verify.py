"""Golden-run replay verification (the runtime determinism cross-check)."""

import pytest

from repro.errors import SimulationError
from repro.inject.campaign import CampaignConfig
from repro.inject.golden import (
    record_golden,
    verify_golden_replay,
    workload_page_sets,
)
from repro.uarch.core import Pipeline
from repro.workloads import get_workload


@pytest.fixture(scope="module")
def rig():
    workload = get_workload("gcc", scale="tiny")
    pages = workload_page_sets(workload.program)
    pipeline = Pipeline(workload.program)
    pipeline.run(600)
    checkpoint = pipeline.checkpoint()
    return pages, pipeline, checkpoint


def test_record_with_verify_passes(rig):
    pages, pipeline, checkpoint = rig
    trace = record_golden(pipeline, checkpoint, 200, 50, *pages,
                          verify_replay=True)
    assert len(trace.final_snapshot) == len(pipeline.space.values)


def test_standalone_verify_passes(rig):
    pages, pipeline, checkpoint = rig
    trace = record_golden(pipeline, checkpoint, 200, 50, *pages)
    verify_golden_replay(pipeline, checkpoint, trace)


def test_tampered_signature_raises(rig):
    pages, pipeline, checkpoint = rig
    trace = record_golden(pipeline, checkpoint, 200, 50, *pages)
    trace.sigs[5] += 1
    with pytest.raises(SimulationError, match="not deterministic"):
        verify_golden_replay(pipeline, checkpoint, trace)


def test_tampered_snapshot_names_element(rig):
    pages, pipeline, checkpoint = rig
    trace = record_golden(pipeline, checkpoint, 200, 50, *pages)
    index = 7
    trace.final_snapshot[index] += 1
    name = pipeline.space.elements[index].name
    with pytest.raises(SimulationError, match=name.replace("[", "\\[")):
        verify_golden_replay(pipeline, checkpoint, trace)


def test_verify_leaves_trace_reusable(rig):
    pages, pipeline, checkpoint = rig
    trace = record_golden(pipeline, checkpoint, 150, 50, *pages,
                          verify_replay=True)
    again = record_golden(pipeline, checkpoint, 150, 50, *pages)
    assert trace.sigs == again.sigs
    assert trace.final_snapshot == again.final_snapshot


def test_campaign_config_defaults_to_verifying():
    assert CampaignConfig().verify_golden is True
    assert CampaignConfig.test(verify_golden=False).verify_golden is False
