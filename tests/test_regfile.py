"""Physical register file tests, including the ECC generation window."""

from repro.uarch.config import PipelineConfig, ProtectionConfig
from repro.uarch.regfile import PhysRegFile
from repro.uarch.statelib import StateSpace


def make_regfile(ecc=False):
    config = PipelineConfig.small(
        ProtectionConfig(regfile_ecc=True) if ecc else None)
    space = StateSpace()
    regfile = PhysRegFile(space, config)
    space.freeze()
    regfile.reset()
    return space, regfile


def test_write_read_roundtrip():
    _space, regfile = make_regfile()
    regfile.write(5, 0xDEADBEEF)
    assert regfile.read(5) == 0xDEADBEEF


def test_write_marks_ready():
    _space, regfile = make_regfile()
    regfile.mark_not_ready(7)
    assert not regfile.is_ready(7)
    regfile.write(7, 1)
    assert regfile.is_ready(7)


def test_mark_all_ready():
    _space, regfile = make_regfile()
    for preg in range(8):
        regfile.mark_not_ready(preg)
    regfile.mark_all_ready()
    assert all(regfile.is_ready(p) for p in range(8))


def test_annex_bit_not_visible_in_reads():
    _space, regfile = make_regfile()
    regfile.write(3, 42)
    regfile.data[3].flip(64)  # the spare 65th bit
    assert regfile.read(3) == 42


def test_ecc_corrects_after_generation():
    _space, regfile = make_regfile(ecc=True)
    regfile.write(9, 0x1234)
    regfile.ecc_generate_step()  # check bits generated one cycle later
    regfile.data[9].flip(5)
    assert regfile.read(9) == 0x1234  # corrected
    assert regfile.data[9].get() & ((1 << 64) - 1) == 0x1234  # repaired


def test_ecc_window_is_vulnerable():
    """A flip between the write and the generation step is miscorrected
    or accepted -- the paper's deliberate one-cycle window."""
    _space, regfile = make_regfile(ecc=True)
    regfile.write(9, 0x1234)
    regfile.data[9].flip(5)  # corrupt *before* ECC generation
    regfile.ecc_generate_step()  # generates check bits over corrupt data
    assert regfile.read(9) == 0x1234 ^ (1 << 5)


def test_ecc_generation_queue_drains():
    _space, regfile = make_regfile(ecc=True)
    for preg in range(4):
        regfile.write(preg, preg * 111)
    regfile.ecc_generate_step()
    for valid, _reg in regfile._pending:
        assert valid.get() == 0


def test_preg_index_wraps():
    _space, regfile = make_regfile()
    regfile.write(regfile.num_regs + 1, 7)  # corrupted pointer wraps
    assert regfile.read(1) == 7
