"""Exact Python mirrors of kernel outputs.

Each mirror re-implements a kernel's semantics in plain Python and
requires the assembled program to produce byte-identical output -- the
strongest possible check that the assembly does what its docstring
claims (and a regression net for assembler/semantics changes).
"""

from repro.arch.functional import FunctionalSimulator
from repro.workloads import get_workload

MASK64 = (1 << 64) - 1
LCG_A = 6364136223846793005
LCG_C = 1442695040888963407
SEED = 88172645463325252


def lcg_fill(count, state=SEED):
    values = []
    x = state
    for _ in range(count):
        x = (x * LCG_A + LCG_C) & MASK64
        values.append(x)
    return values, x


def signed(value):
    return value - (1 << 64) if value >> 63 else value


def run_kernel(name, iters=4):
    workload = get_workload(name, scale="tiny")
    sim = FunctionalSimulator(workload.program)
    sim.run(5_000_000)
    assert sim.halted and sim.exception == 0
    return sim.output_text()


def test_bzip2_mirror():
    iters = 4
    block, _ = lcg_fill(128)
    outputs = []
    total = 0
    for p in range(iters):
        buckets = [0] * 256
        for word in block:
            buckets[word & 255] += 1
        heavy = sum(1 for count in buckets if count >= 2)
        total += heavy
        if (iters - p) % 4 == 0:
            outputs.append("%d\n" % heavy)
    outputs.append("%d\n" % total)
    assert run_kernel("bzip2") == "".join(outputs)


def test_mcf_mirror():
    iters = 4
    nodes, stride, hops = 4096, 1539, 384
    payload, _ = lcg_fill(nodes)
    outputs = []
    total = 0
    for p in range(iters):
        index = 0
        cost32 = 0
        for _ in range(hops):
            # addl: 32-bit sign-extended accumulate; only low 32 persist.
            cost32 = (cost32 + payload[index]) & 0xFFFFFFFF
            index = (index + stride) % nodes
        low16 = cost32 & 0xFFFF
        total += low16
        if (iters - p) % 4 == 0:
            outputs.append("%d\n" % low16)
    outputs.append("%d\n" % total)
    assert run_kernel("mcf") == "".join(outputs)


def test_crafty_mirror():
    iters = 4
    boards = 48
    outputs = []
    total = 0
    state = SEED
    for p in range(iters):
        best = 0
        for _ in range(boards):
            state = (state * LCG_A + LCG_C) & MASK64
            board = state
            rays = ((board << 8) & MASK64) | (board >> 8)
            rays |= ((board << 1) & MASK64) | (board >> 1)
            attacks = rays & ~board & MASK64
            score = bin(attacks).count("1")
            score += bin(board & 255).count("1")  # mobility scan
            if score > best:
                best = score
        total += best
        if (iters - p) % 4 == 0:
            outputs.append("%d\n" % best)
    outputs.append("%d\n" % total)
    assert run_kernel("crafty") == "".join(outputs)


def test_parser_mirror():
    iters = 4
    quads, _ = lcg_fill(96)
    text = []
    for quad in quads:
        for byte_index in range(8):
            text.append((quad >> (8 * byte_index)) & 255)
    outputs = []
    total = 0
    for p in range(iters):
        tokens = 0
        token_hash = 0
        fold = 0
        for char in text:
            if char >= 64:
                token_hash = ((token_hash << 4) ^ char) & MASK64
                token_hash = token_hash - (1 << 64) \
                    if token_hash >> 63 else token_hash
                # addl truncation to 32 bits, sign-extended
                token_hash &= MASK64
                low32 = token_hash & 0xFFFFFFFF
                token_hash = low32 - (1 << 32) if low32 >> 31 else low32
                token_hash &= MASK64
                if char & 1:
                    token_hash = (token_hash + 3) & MASK64
            else:
                if token_hash != 0:
                    tokens += 1
                    fold ^= token_hash & 255
                    token_hash = 0
        total = (total + tokens + fold) & MASK64
        if (iters - p) % 4 == 0:
            outputs.append("%d\n" % tokens)
    outputs.append("%d\n" % signed(total))
    assert run_kernel("parser") == "".join(outputs)
