"""Software-level (Section 5) injection tests."""

import pytest

from repro.arch.functional import SoftwareFaultKind
from repro.inject.software import (
    ALL_FAULT_MODELS,
    SoftwareCampaign,
    SoftwareCampaignConfig,
    SoftwareOutcome,
    record_software_golden,
    run_software_trial,
)
from repro.isa.assembler import assemble
from repro.utils.rng import SplitRng
from repro.workloads import get_workload


@pytest.fixture(scope="module")
def gzip_golden():
    workload = get_workload("gzip", scale="tiny")
    return workload.program, record_software_golden(workload.program)


def test_golden_records_structure(gzip_golden):
    program, golden = gzip_golden
    assert golden.instret == len(golden.pcs)
    assert golden.output
    assert golden.syscall_sigs
    assert golden.reg_write_indices
    assert golden.branch_indices
    assert max(golden.reg_write_indices) < golden.instret


def test_trial_outcomes_are_classified(gzip_golden):
    program, golden = gzip_golden
    rng = SplitRng(1)
    for model in ALL_FAULT_MODELS:
        result = run_software_trial(program, golden, model, rng, "gzip")
        assert isinstance(result.outcome, SoftwareOutcome)
        assert result.model == model
        assert 0 <= result.inject_index < golden.instret


def test_trial_determinism(gzip_golden):
    program, golden = gzip_golden
    first = run_software_trial(program, golden,
                               SoftwareFaultKind.RESULT_BIT64,
                               SplitRng(9), "gzip")
    second = run_software_trial(program, golden,
                                SoftwareFaultKind.RESULT_BIT64,
                                SplitRng(9), "gzip")
    assert (first.outcome, first.inject_index) == \
        (second.outcome, second.inject_index)


def test_dead_value_fault_is_state_ok():
    """Corrupting a value that is overwritten before use must converge."""
    source = """
    li   s0, 20
loop:
    li   t0, 1111       ; dead: always overwritten below (index known)
    li   t0, 7
    addq t0, t0, t1
    mov  t1, a0
    putq
    subq s0, #1, s0
    bgt  s0, loop
    halt
"""
    program = assemble(source)
    golden = record_software_golden(program)

    class _PickDead:
        """Force injection on a dynamic instance of the dead li."""

        def __init__(self):
            self.calls = 0

        def choice(self, pool):
            # Indices of 'li t0, 1111' second word (the lda of the pair)
            for index in pool:
                if 10 < index < golden.instret - 10 and \
                        golden.pcs[index] == program.labels["loop"] + 4:
                    return index
            return pool[len(pool) // 2]

        def randrange(self, n):
            return 5

        def getrandbits(self, _):
            return 0xFFFF

    result = run_software_trial(
        program, golden, SoftwareFaultKind.RESULT_RANDOM, _PickDead(),
        "dead")
    assert result.outcome == SoftwareOutcome.STATE_OK


def test_live_output_fault_is_output_bad():
    """Corrupting the value feeding putq must show in the output."""
    source = """
    li   s0, 10
loop:
    li   a0, 7
    putq
    subq s0, #1, s0
    bgt  s0, loop
    halt
"""
    program = assemble(source)
    golden = record_software_golden(program)

    class _PickOutputFeed:
        def choice(self, pool):
            for index in pool:
                if 5 < index and \
                        golden.pcs[index] == program.labels["loop"] + 4:
                    return index
            return pool[0]

        def randrange(self, n):
            return 2  # flip bit 2: 7 -> 3

        def getrandbits(self, _):
            return 0

    result = run_software_trial(
        program, golden, SoftwareFaultKind.RESULT_BIT32, _PickOutputFeed(),
        "live")
    assert result.outcome == SoftwareOutcome.OUTPUT_BAD


def test_campaign_runs_all_models():
    config = SoftwareCampaignConfig.test(trials_per_model_per_workload=3)
    result = SoftwareCampaign(config).run()
    assert len(result.trials) == config.total_trials
    models = {t.model for t in result.trials}
    assert models == set(ALL_FAULT_MODELS)


def test_campaign_outcome_counts_partition():
    config = SoftwareCampaignConfig.test(trials_per_model_per_workload=3)
    result = SoftwareCampaign(config).run()
    counts = result.outcome_counts()
    assert sum(counts.values()) == len(result.trials)
    per_model_total = sum(
        sum(result.outcome_counts(model).values())
        for model in ALL_FAULT_MODELS)
    assert per_model_total == len(result.trials)


def test_campaign_determinism():
    config = SoftwareCampaignConfig.test(trials_per_model_per_workload=2,
                                         seed=77)
    first = SoftwareCampaign(config).run()
    second = SoftwareCampaign(config).run()
    assert [t.outcome for t in first.trials] == \
        [t.outcome for t in second.trials]


def test_branch_flip_targets_branches(gzip_golden):
    program, golden = gzip_golden
    rng = SplitRng(3)
    for _ in range(5):
        result = run_software_trial(
            program, golden, SoftwareFaultKind.FLIP_BRANCH, rng, "gzip")
        assert result.inject_index in set(golden.branch_indices)


def test_divergence_rate_helper():
    config = SoftwareCampaignConfig.test(trials_per_model_per_workload=4)
    result = SoftwareCampaign(config).run()
    rate = result.state_ok_divergence_rate()
    assert 0.0 <= rate <= 1.0
