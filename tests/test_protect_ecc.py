"""ECC codec tests: Hamming SEC and SECDED properties."""

from hypothesis import given
from hypothesis import strategies as st

from repro.protect.ecc import (
    REGFILE_CODE,
    REGPTR_CODE,
    CodeStatus,
    HammingCode,
)

U64 = st.integers(min_value=0, max_value=(1 << 64) - 1)
U7 = st.integers(min_value=0, max_value=127)


def test_check_bit_counts_match_paper():
    assert REGFILE_CODE.check_bits == 8  # paper: 8 bits per regfile entry
    assert REGPTR_CODE.check_bits == 4  # paper: 4 bits per 7-bit pointer


def test_clean_data_reports_clean():
    data = 0xDEADBEEF
    check = REGFILE_CODE.encode(data)
    corrected, status = REGFILE_CODE.correct(data, check)
    assert corrected == data
    assert status == CodeStatus.CLEAN


@given(U7, st.integers(min_value=0, max_value=6))
def test_regptr_corrects_any_single_data_bit(data, bit):
    check = REGPTR_CODE.encode(data)
    corrupted = data ^ (1 << bit)
    corrected, status = REGPTR_CODE.correct(corrupted, check)
    assert corrected == data
    assert status == CodeStatus.CORRECTED


@given(U64, st.integers(min_value=0, max_value=63))
def test_regfile_corrects_any_single_data_bit(data, bit):
    check = REGFILE_CODE.encode(data)
    corrupted = data ^ (1 << bit)
    corrected, status = REGFILE_CODE.correct(corrupted, check)
    assert corrected == data
    assert status == CodeStatus.CORRECTED


@given(U64, st.integers(min_value=0, max_value=7))
def test_regfile_check_bit_error_leaves_data_intact(data, bit):
    check = REGFILE_CODE.encode(data) ^ (1 << bit)
    corrected, status = REGFILE_CODE.correct(data, check)
    assert corrected == data
    assert status == CodeStatus.CORRECTED


@given(U64,
       st.integers(min_value=0, max_value=63),
       st.integers(min_value=0, max_value=63))
def test_regfile_detects_double_errors(data, bit_a, bit_b):
    if bit_a == bit_b:
        return
    check = REGFILE_CODE.encode(data)
    corrupted = data ^ (1 << bit_a) ^ (1 << bit_b)
    _corrected, status = REGFILE_CODE.correct(corrupted, check)
    assert status == CodeStatus.DETECTED


@given(U7, st.integers(min_value=0, max_value=15))
def test_correct_is_total_for_any_check_word(data, check):
    corrected, status = REGPTR_CODE.correct(data, check)
    assert 0 <= corrected <= 127
    assert status in (CodeStatus.CLEAN, CodeStatus.CORRECTED,
                      CodeStatus.DETECTED)


def test_custom_code_sizes():
    code = HammingCode(16)
    assert code.check_bits == 5  # 2^5 >= 16 + 5 + 1
    code = HammingCode(16, extra_parity=True)
    assert code.check_bits == 6


@given(st.integers(min_value=0, max_value=(1 << 16) - 1))
def test_custom_code_roundtrip(data):
    code = HammingCode(16)
    check = code.encode(data)
    assert code.correct(data, check) == (data, CodeStatus.CLEAN)
