"""Tests for the functional predictor and cache models."""

from repro.uarch.caches import BankedDCache, SetAssocCache
from repro.uarch.config import PipelineConfig
from repro.uarch.predictors import (
    BranchTargetBuffer,
    HybridPredictor,
    ReturnAddressStack,
)


# -- Caches -------------------------------------------------------------------


def test_cache_miss_then_hit():
    cache = SetAssocCache(1024, 2, 32)
    assert not cache.lookup(0x1000)
    cache.fill(0x1000)
    assert cache.lookup(0x1000)
    assert cache.lookup(0x101C)  # same 32-byte line
    assert not cache.lookup(0x1020)  # next line


def test_cache_lru_eviction():
    cache = SetAssocCache(64, 2, 32)  # 1 set, 2 ways
    cache.fill(0x0)
    cache.fill(0x1000)
    cache.lookup(0x0)  # touch: 0x0 becomes MRU
    cache.fill(0x2000)  # evicts 0x1000
    assert cache.lookup(0x0)
    assert not cache.lookup(0x1000)
    assert cache.lookup(0x2000)


def test_cache_save_load_side():
    cache = SetAssocCache(1024, 2, 32)
    cache.fill(0x40)
    saved = cache.save_side()
    cache.fill(0x4000)
    cache.load_side(saved)
    assert cache.lookup(0x40)


def test_dcache_banking():
    dcache = BankedDCache(32 * 1024, 2, 64, 8)
    assert dcache.bank_of(0x0) == 0
    assert dcache.bank_of(0x8) == 1
    assert dcache.bank_of(0x38) == 7
    assert dcache.bank_of(0x40) == 0


def test_line_address():
    cache = SetAssocCache(1024, 2, 64)
    assert cache.line_address(0x12345) == 0x12340


# -- Direction predictor --------------------------------------------------------


def make_predictor():
    return HybridPredictor(PipelineConfig.small())


def test_predictor_learns_always_taken():
    predictor = make_predictor()
    pc = 0x1000
    for _ in range(8):
        predictor.update(pc, True)
    assert predictor.predict(pc) is True


def test_predictor_learns_never_taken():
    predictor = make_predictor()
    pc = 0x1000
    for _ in range(8):
        predictor.update(pc, False)
    assert predictor.predict(pc) is False


def test_predictor_save_load():
    predictor = make_predictor()
    for _ in range(8):
        predictor.update(0x1000, True)
    saved = predictor.save_side()
    for _ in range(16):
        predictor.update(0x1000, False)
    predictor.load_side(saved)
    assert predictor.predict(0x1000) is True


def test_speculate_shifts_history():
    predictor = make_predictor()
    predictor.speculate(True)
    assert predictor.global_hist & 1 == 1
    predictor.speculate(False)
    assert predictor.global_hist & 1 == 0


# -- BTB ------------------------------------------------------------------------


def test_btb_miss_then_hit():
    btb = BranchTargetBuffer(64, 4)
    assert btb.lookup(0x1000) is None
    btb.update(0x1000, 0x2000)
    assert btb.lookup(0x1000) == 0x2000


def test_btb_replacement_within_set():
    btb = BranchTargetBuffer(4, 2)  # 2 sets x 2 ways
    set_stride = 4 * btb.num_sets
    pcs = [0x1000 + i * set_stride for i in range(3)]  # all same set
    for i, pc in enumerate(pcs):
        btb.update(pc, 0x100 * i)
    assert btb.lookup(pcs[0]) is None  # LRU evicted
    assert btb.lookup(pcs[2]) == 0x200


def test_btb_save_load():
    btb = BranchTargetBuffer(64, 4)
    btb.update(0x1000, 0x2000)
    saved = btb.save_side()
    btb.update(0x1000, 0x3000)
    btb.load_side(saved)
    assert btb.lookup(0x1000) == 0x2000


# -- RAS -------------------------------------------------------------------------


def test_ras_push_pop():
    ras = ReturnAddressStack(8)
    ras.push(0x100)
    ras.push(0x200)
    assert ras.pop() == 0x200
    assert ras.pop() == 0x100


def test_ras_wraps():
    ras = ReturnAddressStack(4)
    for i in range(6):
        ras.push(0x100 * i)
    assert ras.pop() == 0x500
    assert ras.pop() == 0x400


def test_ras_pointer_recovery():
    ras = ReturnAddressStack(8)
    ras.push(0x100)
    snapshot = ras.snapshot()
    ras.push(0x200)  # wrong-path push
    ras.recover(snapshot)
    assert ras.pop() == 0x100
