"""Execute-unit behaviours: bypass, replay, complex-ALU buffering."""

from repro.isa.assembler import assemble
from repro.uarch.config import PipelineConfig
from repro.uarch.core import Pipeline


def run(source, max_cycles=50_000, config=None):
    pipeline = Pipeline(assemble(source), config or PipelineConfig.paper())
    pipeline.run(max_cycles)
    assert pipeline.halted
    assert pipeline.failure_event is None
    return pipeline


def test_back_to_back_dependent_alu_throughput():
    """A fully serial ALU chain should sustain roughly one op per two
    cycles or better (speculative wakeup + bypass working)."""
    chain = "\n".join("    addq t0, #1, t0" for _ in range(120))
    pipe = run("    clr t0\n%s\n    mov t0, a0\n    putq\n    halt" % chain)
    assert pipe.output_text() == "120\n"
    assert pipe.cycle_count < 3 * 120 + 60, (
        "dependent chain too slow: %d cycles" % pipe.cycle_count)


def test_independent_ops_superscalar():
    """Independent dependency chains in a warm loop must exceed IPC 1
    (multiple ALUs active)."""
    body = "\n".join("    addq t%d, #1, t%d" % (i % 4, i % 4)
                     for i in range(12))
    source = ("    clr t0\n    clr t1\n    clr t2\n    clr t3\n"
              "    li  s0, 60\nloop:\n" + body +
              "\n    subq s0, #1, s0\n    bgt  s0, loop\n"
              "    addq t0, t1, a0\n    addq a0, t2, a0\n"
              "    addq a0, t3, a0\n    putq\n    halt")
    pipe = run(source)
    assert pipe.output_text() == "%d\n" % (60 * 12)
    assert pipe.total_retired / pipe.cycle_count > 1.0


def test_load_use_replay_on_miss():
    """A consumer issued under a load-hit assumption must replay on a
    miss and still produce the right value."""
    pipe = run("""
    li   s1, 0x30000     ; cold line: guaranteed miss
    li   t0, 7
    stq  t0, 0(s1)
    li   s0, 40          ; spin so the store drains and dcache cools
spin:
    subq s0, #1, s0
    bgt  s0, spin
    ldq  t1, 0(s1)       ; may miss
    addq t1, #1, t2      ; dependent: issued speculatively
    mov  t2, a0
    putq
    halt
""")
    assert pipe.output_text() == "8\n"


def test_complex_alu_is_pipelined():
    """Independent multiplies should overlap in the complex pipeline."""
    muls = "\n".join("    mulq s%d, #3, s%d" % (i % 4, i % 4)
                     for i in range(24))
    source = ("    li s0, 1\n    li s1, 1\n    li s2, 1\n    li s3, 1\n"
              + muls + "\n    addq s0, s1, a0\n    putq\n    halt")
    pipe = run(source)
    # 24 x 3-cycle multiplies fully serialised on entry would take far
    # longer; pipelining keeps this tight.
    assert pipe.cycle_count < 24 * 6 + 80


def test_complex_result_buffering_under_port_pressure():
    """Complex results must survive WB-port contention (the paper's
    port-conflict buffer)."""
    source = ["    li  s0, 30", "    li  t5, 3", "loop:"]
    # Saturate: multiplies + loads + ALU all completing together.
    source += [
        "    mulq t5, t5, t6",
        "    addq t0, #1, t0",
        "    addq t1, #1, t1",
        "    addq t2, #1, t2",
        "    xor  t6, t0, t7",
        "    subq s0, #1, s0",
        "    bgt  s0, loop",
        "    mov  t0, a0",
        "    putq",
        "    halt",
    ]
    pipe = run("\n".join(source))
    assert pipe.output_text() == "30\n"


def test_bypass_values_expire():
    pipe = Pipeline(assemble("    halt"))
    execute = pipe.execute
    execute._bypass_insert(5, 0xABCD)
    assert execute.bypass_lookup(5) == 0xABCD
    for _ in range(execute.BYPASS_LIFETIME + 1):
        execute._bypass_age_step()
    assert execute.bypass_lookup(5) is None


def test_promises_from_bypass():
    pipe = Pipeline(assemble("    halt"))
    execute = pipe.execute
    assert not execute.promises(9)
    execute._bypass_insert(9, 1)
    assert execute.promises(9)


def test_wb_ports_cover_worst_case():
    """WB latch capacity covers every producer completing in one cycle
    (the invariant that prevents silent result drops)."""
    config = PipelineConfig.paper()
    worst = config.issue_width + 2 + 3 + 2  # EX + m2 + complex + MHR
    pipe = Pipeline(assemble("    halt"), config)
    assert len(pipe.execute.wb_latch) >= worst
