"""Functional-simulator tests: semantics, control flow, faults, events."""

import pytest

from repro.arch.functional import (
    FunctionalSimulator,
    SoftwareFault,
    SoftwareFaultKind,
)
from repro.isa.assembler import assemble
from repro.isa.semantics import Exc


def run(source, max_instructions=100_000):
    sim = FunctionalSimulator(assemble(source))
    sim.run(max_instructions)
    return sim


def test_arithmetic_and_output():
    sim = run("""
    li   a0, 40
    addq a0, #2, a0
    putq
    halt
""")
    assert sim.output_text() == "42\n"
    assert sim.halted and sim.exception == Exc.NONE


def test_putc():
    sim = run("""
    li   a0, 72
    putc
    li   a0, 105
    putc
    halt
""")
    assert sim.output_text() == "Hi"


def test_r31_reads_zero_and_discards_writes():
    sim = run("""
    li    r1, 7
    addq  r1, #1, r31
    mov   r31, a0
    putq
    halt
""")
    assert sim.output_text() == "0\n"


def test_loop_sum(sum_program=None):
    sim = run("""
    li    a0, 10
    clr   t0
    clr   t1
loop:
    addq  t0, t1, t0
    addq  t1, #1, t1
    cmplt t1, a0, t2
    bne   t2, loop
    mov   t0, a0
    putq
    halt
""")
    assert sim.output_text() == "45\n"


def test_memory_roundtrip():
    sim = run("""
    li   s1, 0x4000
    li   t0, 999
    stq  t0, 0(s1)
    ldq  a0, 0(s1)
    putq
    stl  t0, 8(s1)
    ldl  a0, 8(s1)
    putq
    halt
""")
    assert sim.output_text() == "999\n999\n"


def test_call_return():
    sim = run("""
    bsr  ra, double
    putq
    halt
double:
    li   a0, 21
    addq a0, a0, a0
    ret  (ra)
""")
    assert sim.output_text() == "42\n"


def test_jump_table():
    sim = run("""
    li   t0, table
    ldq  t1, 8(t0)
    jmp  zero, (t1)
    halt
second:
    li   a0, 2
    putq
    halt
first:
    li   a0, 1
    putq
    halt
.align 8
table:
    .quad first
    .quad second
""")
    assert sim.output_text() == "2\n"


def test_unaligned_access_raises():
    sim = run("""
    li   s1, 0x4001
    ldq  t0, 0(s1)
    halt
""")
    assert sim.exception == Exc.UNALIGNED
    assert sim.halted


def test_divide_by_zero_raises():
    sim = run("""
    clr  t0
    divq t0, t0, t1
    halt
""")
    assert sim.exception == Exc.DIV_ZERO


def test_invalid_instruction_raises():
    # Opcode 0x04 is unassigned; place it directly at the entry point.
    from repro.isa.assembler import Program
    program = Program(entry=0x1000, image={0x1000: 0x10000000})
    sim = FunctionalSimulator(program)
    sim.run(10)
    assert sim.exception == Exc.INVALID_INSN


def test_run_limit():
    sim = FunctionalSimulator(assemble("spin:\n    br spin"))
    executed = sim.run(500)
    assert executed == 500
    assert not sim.halted


def test_step_after_halt_is_noop():
    sim = run("    halt")
    before = sim.instret
    sim.step()
    assert sim.instret == before


def test_page_tracking():
    sim = FunctionalSimulator(assemble("""
    li  s1, 0x4000
    ldq t0, 0(s1)
    halt
.org 0x4000
d: .quad 5
"""), track_pages=True)
    sim.run(100)
    assert 0x1000 >> 12 in sim.insn_pages
    assert 0x4000 >> 12 in sim.memory.touched_pages


# -- Software fault hooks -----------------------------------------------------


def _fault_program():
    return assemble("""
    li   t0, 4
    addq t0, #1, t1     ; the faulted instruction (index 2)
    mov  t1, a0
    putq
    halt
""")


def _run_with_fault(fault, index=2):
    sim = FunctionalSimulator(_fault_program())
    while not sim.halted:
        sim.step(fault if sim.instret == index else None)
    return sim


def test_fault_result_bit32():
    fault = SoftwareFault(SoftwareFaultKind.RESULT_BIT32, bit=1)
    sim = _run_with_fault(fault)
    assert sim.output_text() == "7\n"  # 5 ^ 2


def test_fault_result_bit64():
    fault = SoftwareFault(SoftwareFaultKind.RESULT_BIT64, bit=63)
    sim = _run_with_fault(fault)
    assert int(sim.output_text()) == 5 - (1 << 63)


def test_fault_result_random():
    fault = SoftwareFault(SoftwareFaultKind.RESULT_RANDOM, random_value=1234)
    sim = _run_with_fault(fault)
    assert sim.output_text() == "1234\n"


def test_fault_to_nop():
    fault = SoftwareFault(SoftwareFaultKind.TO_NOP)
    sim = _run_with_fault(fault)
    assert sim.output_text() == "0\n"  # t1 never written


def test_fault_insn_bit():
    # Flip the literal field's low bit: addq t0, #1 -> addq t0, #0 or #3
    fault = SoftwareFault(SoftwareFaultKind.INSN_BIT, bit=13)
    sim = _run_with_fault(fault)
    assert sim.output_text() in ("4\n", "7\n")


def test_fault_flip_branch():
    source = """
    clr  t0
    beq  t0, yes         ; taken normally (index 1)
    li   a0, 111
    putq
    halt
yes:
    li   a0, 222
    putq
    halt
"""
    sim = FunctionalSimulator(assemble(source))
    fault = SoftwareFault(SoftwareFaultKind.FLIP_BRANCH)
    while not sim.halted:
        sim.step(fault if sim.instret == 1 else None)
    assert sim.output_text() == "111\n"


def test_fault_only_applies_once():
    """The fault directive corrupts exactly one dynamic instruction."""
    source = """
    li    s0, 3
    clr   t0
loop:
    addq  t0, #1, t0
    subq  s0, #1, s0
    bgt   s0, loop
    mov   t0, a0
    putq
    halt
"""
    sim = FunctionalSimulator(assemble(source))
    fault = SoftwareFault(SoftwareFaultKind.RESULT_BIT64, bit=4)
    while not sim.halted:
        sim.step(fault if sim.instret == 2 else None)
    # One iteration's increment was corrupted (+16), later ones were not.
    assert sim.output_text() == "19\n"
