"""OpenMetrics text-format conformance of the exporter.

A small strict parser of the exposition format (the subset the
exporter emits), then conformance assertions over real snapshots:
every sample belongs to a family with exactly one HELP and one TYPE,
family names are unique, counters are named ``*_total``, label values
are escaped, and the exposition ends with ``# EOF``.
"""

import re

import pytest

from repro.obs import render_openmetrics

_NAME = r"[a-zA-Z_:][a-zA-Z0-9_:]*"
_SAMPLE_RE = re.compile(
    r"^(%s)(?:\{(.*)\})? (-?(?:[0-9.]+(?:e[+-]?[0-9]+)?|inf)|NaN)$"
    % _NAME)
_LABEL_RE = re.compile(
    r'^([a-zA-Z_][a-zA-Z0-9_]*)="((?:\\\\|\\"|\\n|[^"\\])*)"$')


def _split_labels(text):
    """Split ``a="x",b="y"`` on commas outside quoted values."""
    parts = []
    depth_quote = False
    escaped = False
    current = []
    for char in text:
        if escaped:
            escaped = False
        elif char == "\\":
            escaped = True
        elif char == '"':
            depth_quote = not depth_quote
        elif char == "," and not depth_quote:
            parts.append("".join(current))
            current = []
            continue
        current.append(char)
    if current:
        parts.append("".join(current))
    return parts


def _unescape(value):
    return re.sub(r"\\(.)", lambda m: {"n": "\n"}.get(
        m.group(1), m.group(1)), value)


def parse_exposition(text):
    """Parse + validate; returns ``{family: {help, type, samples}}``.

    ``samples`` is a list of ``(labels_dict, value_text)`` with label
    values unescaped.  Raises AssertionError on any conformance
    violation.
    """
    assert text.endswith("# EOF\n"), "missing # EOF terminator"
    lines = text.splitlines()
    assert lines[-1] == "# EOF"
    families = {}
    current = None
    for line in lines[:-1]:
        assert line.strip(), "blank line inside the exposition"
        if line.startswith("# HELP "):
            name, _, help_text = line[len("# HELP "):].partition(" ")
            assert name not in families, "duplicate family %r" % name
            assert help_text, "empty HELP text for %r" % name
            families[name] = {"help": help_text, "type": None,
                              "samples": []}
            current = name
        elif line.startswith("# TYPE "):
            name, _, kind = line[len("# TYPE "):].partition(" ")
            assert name == current, \
                "TYPE for %r without a preceding HELP" % name
            assert families[name]["type"] is None, \
                "duplicate TYPE for %r" % name
            assert kind in ("gauge", "counter"), \
                "unexpected metric type %r" % kind
            families[name]["type"] = kind
        else:
            match = _SAMPLE_RE.match(line)
            assert match, "unparseable sample line %r" % line
            name, labels_text, value = match.groups()
            assert name == current, \
                "sample %r outside its family block" % name
            assert families[name]["type"] is not None, \
                "sample %r before its TYPE line" % name
            labels = {}
            for part in _split_labels(labels_text or ""):
                label = _LABEL_RE.match(part)
                assert label, "malformed/unescaped label %r" % part
                key = label.group(1)
                assert key not in labels, "duplicate label %r" % key
                labels[key] = _unescape(label.group(2))
            families[name]["samples"].append((labels, value))
    for name, family in families.items():
        assert family["type"] is not None, "family %r has no TYPE" % name
        if family["type"] == "counter":
            assert name.endswith("_total"), \
                "counter %r is not named *_total" % name
    return families


def _runner_snapshot():
    from types import SimpleNamespace

    from repro.inject.outcome import TrialOutcome
    from repro.runner.telemetry import Telemetry
    ticks = iter(float(i) for i in range(64))
    telemetry = Telemetry(total=6, clock=lambda: next(ticks))
    for outcome in (TrialOutcome.SDC, TrialOutcome.GRAY):
        telemetry.record_trial(SimpleNamespace(outcome=outcome),
                               worker_id=1)
    telemetry.set_workers(1, 2)
    return telemetry.snapshot().to_dict()


def test_runner_snapshot_conforms():
    families = parse_exposition(render_openmetrics(_runner_snapshot()))
    # Every family carries at least its HELP/TYPE pair; the constant
    # info-style sample is present with all its labels.
    info = families["repro_build_info"]
    assert info["type"] == "gauge"
    (labels, value), = info["samples"]
    assert value == "1"
    assert set(labels) == {"journal_schema", "result_schema", "revision"}


def test_fabric_snapshot_conforms():
    snapshot = _runner_snapshot()
    snapshot["fabric"] = {
        "workers_active": 2, "leases_outstanding": 1,
        "leases_granted": 9, "steals": 3, "duplicate_completions": 1,
        "campaigns_active": 1, "campaigns_done": 0,
        "queue_depth": {'ten"ant\\one,two': 4},
    }
    families = parse_exposition(render_openmetrics(snapshot))
    assert families["repro_fabric_steals_total"]["type"] == "counter"
    # The hostile tenant name survives the escape/unescape round-trip.
    (labels, value), = families["repro_fabric_queue_depth"]["samples"]
    assert labels["tenant"] == 'ten"ant\\one,two'
    assert value == "4"


def test_deprecated_aliases_parse_as_distinct_families():
    families = parse_exposition(render_openmetrics(_runner_snapshot()))
    assert families["repro_io_retries_total"]["type"] == "counter"
    assert families["repro_io_retries"]["type"] == "gauge"
    assert "DEPRECATED" in families["repro_io_retries"]["help"]


def test_parser_rejects_violations():
    with pytest.raises(AssertionError, match="EOF"):
        parse_exposition("# HELP a b\n# TYPE a gauge\na 1\n")
    with pytest.raises(AssertionError, match="duplicate family"):
        parse_exposition("# HELP a b\n# TYPE a gauge\na 1\n"
                         "# HELP a b\n# TYPE a gauge\na 2\n# EOF\n")
    with pytest.raises(AssertionError, match="no TYPE"):
        parse_exposition("# HELP a b\n# EOF\n")
    with pytest.raises(AssertionError, match="not named"):
        parse_exposition("# HELP a b\n# TYPE a counter\na 1\n# EOF\n")
    with pytest.raises(AssertionError, match="label"):
        parse_exposition('# HELP a b\n# TYPE a gauge\n'
                         'a{x="un"quoted"} 1\n# EOF\n')
