"""Bit-plane batched engine equivalence properties.

The whole contract of :mod:`repro.perf.batch` is *byte identity*: for
any lane width, every fault-category population and workload must
produce exactly the trials -- and exactly the journal bytes -- the
scalar path produces.  These tests pin that contract across the
``_KINDS`` populations, multiple workloads, the explicit-plans API,
journaled campaigns at several widths, and a chaos kill landing in the
middle of a batch group.
"""

import json

import pytest

from repro.chaos import ChaosEvent, ChaosSchedule, run_chaos_campaign
from repro.inject.campaign import _KINDS, CampaignConfig
from repro.inject.store import campaign_fingerprint, config_to_dict
from repro.inject.trial import run_trial
from repro.perf.batch import plan_lanes, run_batch_group
from repro.runner.engine import run_campaign
from repro.runner.journal import canonical_trial_bytes, journal_path
from repro.runner.pool import WorkerContext
from repro.runner.units import batch_units, enumerate_units


def _config(kinds="latch+ram", workload="gzip", trials=8):
    return CampaignConfig(
        workloads=(workload,), scale="tiny", kinds=kinds,
        trials_per_start_point=trials, start_points_per_workload=1,
        warmup_cycles=400, spacing_cycles=150, horizon=300, margin=150)


@pytest.mark.parametrize("kinds", sorted(_KINDS))
@pytest.mark.parametrize("workload", ("gzip", "gcc"))
def test_batched_lanes_match_scalar_trials(tmp_path, kinds, workload):
    """Identical TrialResult tuples for every category kind x workload."""
    config = _config(kinds=kinds, workload=workload)
    golden_dir = str(tmp_path / "golden")
    units = enumerate_units(config)

    scalar_context = WorkerContext(config, golden_dir=golden_dir)
    scalar = [scalar_context.run_unit(unit) for unit in units]

    batched_context = WorkerContext(config, golden_dir=golden_dir,
                                    batch_lanes=8)
    batched = []
    for batch in batch_units(units, 8):
        batched.extend(trial for _unit, trial
                       in batched_context.run_batch(batch))

    assert batched == scalar
    stats = batched_context.take_batch_stats()
    assert stats is not None
    assert sum(stats) == len(units)  # every lane accounted for


class _FixedOffset:
    """An ``rng`` whose one ``randrange`` call returns a fixed offset.

    ``choose_bit`` draws exactly one ``randrange(total)`` and maps the
    offset through the cumulative-width table; feeding the inverse
    offset makes the scalar path inject a chosen ``(element, bit)``.
    """

    def __init__(self, offset):
        self.offset = offset

    def randrange(self, total):
        assert self.offset < total
        return self.offset


def _offset_for(space, kinds, element_index, bit):
    """Invert ``choose_bit``: the global offset of ``(element, bit)``."""
    indices, cumulative, _total = space._table_for(frozenset(kinds))
    position = indices.index(element_index)
    prior = cumulative[position - 1] if position else 0
    return prior + bit


@pytest.mark.parametrize("kinds", sorted(_KINDS))
def test_explicit_plans_match_scalar_injections(tmp_path, kinds):
    """``plans=`` override lanes equal scalar trials of the same bits."""
    config = _config(kinds=kinds)
    context = WorkerContext(config,
                            golden_dir=str(tmp_path / "golden"))
    state = context._prepare("gzip", 0)
    trial_indices = tuple(range(8))
    plans = plan_lanes(state.pipeline.space, state.sp_rng,
                       context.kinds, trial_indices)

    outcome = run_batch_group(
        state.pipeline, state.checkpoint, state.golden, state.sp_rng,
        context.kinds, "gzip", 0, trial_indices,
        horizon=config.horizon, plans=plans)

    for (trial_index, element_index, bit, _mask, _fault), batched \
            in zip(plans, outcome.trials):
        offset = _offset_for(state.pipeline.space, context.kinds,
                             element_index, bit)
        scalar = run_trial(
            state.pipeline, state.checkpoint, state.golden,
            _FixedOffset(offset), context.kinds, "gzip", 0,
            horizon=config.horizon, trial_index=trial_index)
        assert batched == scalar


def _journal_fingerprint(directory):
    with open(journal_path(directory), "r", encoding="utf-8") as handle:
        header = json.loads(handle.readline())
    return header["fingerprint"]


def test_batched_journals_byte_identical(tmp_path):
    """Serial, ``--batch 1`` and ``--batch 8`` journals match bytewise."""
    config = CampaignConfig.test()
    canonical = {}
    for label, lanes in (("serial", None), ("batch1", 1), ("batch8", 8)):
        directory = str(tmp_path / label)
        run_campaign(config, workers=1, directory=directory,
                     batch_lanes=lanes)
        canonical[label] = canonical_trial_bytes(journal_path(directory))
        assert _journal_fingerprint(directory) \
            == campaign_fingerprint(config)
    assert canonical["batch1"] == canonical["serial"]
    assert canonical["batch8"] == canonical["serial"]


def test_chaos_kill_mid_batch_requeues_and_converges(tmp_path):
    """A worker SIGKILLed mid-batch requeues and converges bytewise."""
    config = CampaignConfig.test()
    serial_dir = str(tmp_path / "serial")
    serial = run_campaign(config, workers=1, directory=serial_dir)

    chaos_dir = str(tmp_path / "chaos")
    chaos = ChaosSchedule([ChaosEvent("kill", 2)])
    result, _restarts = run_chaos_campaign(
        config, chaos_dir, chaos, workers=2, batch_size=6,
        batch_lanes=6)
    assert result.trials == serial.trials
    assert canonical_trial_bytes(journal_path(chaos_dir)) \
        == canonical_trial_bytes(journal_path(serial_dir))
    assert chaos.pending == []


def test_batch_lanes_excluded_from_fingerprint():
    """Lane width is an execution knob, never campaign identity."""
    config = CampaignConfig.test()
    flat = config_to_dict(config)
    assert not any("batch" in key for key in flat), flat.keys()
    assert campaign_fingerprint(config) \
        == campaign_fingerprint(CampaignConfig.test())
