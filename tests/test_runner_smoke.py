"""Fast end-to-end smoke test: a tiny resumable campaign on the engine.

Kept deliberately small (three trials, two workers) so the full
journal -> resume -> verify cycle runs in seconds under ``pytest -x -q``
and gates every commit.
"""

import json

from repro.inject.campaign import Campaign, CampaignConfig
from repro.runner import run_campaign
from repro.runner.journal import journal_path, metrics_path


def test_tiny_resumable_campaign_end_to_end(tmp_path):
    config = CampaignConfig.test(trials_per_start_point=3,
                                 start_points_per_workload=1)
    directory = str(tmp_path / "campaign")

    first = run_campaign(config, workers=2, directory=directory)
    assert len(first.trials) == 3

    serial = Campaign(config).run()
    assert first.trials == serial.trials
    assert first.eligible_bits == serial.eligible_bits
    assert first.inventory == serial.inventory

    with open(journal_path(directory)) as handle:
        records = [json.loads(line) for line in handle]
    assert records[0]["type"] == "header"
    assert [r["type"] for r in records[1:]] == ["trial"] * 3

    # Resuming a finished campaign recomputes nothing and reproduces
    # the same serial-order result.
    second = run_campaign(config, workers=2, directory=directory)
    assert second.trials == serial.trials
    metrics = json.loads(open(metrics_path(directory)).read())
    assert metrics["resumed"] == 3
    assert metrics["fresh"] == 0
    assert metrics["done"] == metrics["total"] == 3
