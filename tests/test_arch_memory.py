"""Memory model tests, including property-based load/store roundtrips."""

from hypothesis import given
from hypothesis import strategies as st

from repro.arch.memory import Memory, page_of
from repro.utils.bits import MASK64

ADDR = st.integers(min_value=0, max_value=(1 << 20)).map(lambda a: a & ~7)
U64 = st.integers(min_value=0, max_value=MASK64)


def test_initial_reads_zero():
    memory = Memory()
    assert memory.load_quad(0x1000) == 0
    assert memory.load_long(0x1004) == 0


def test_store_load_quad():
    memory = Memory()
    memory.store_quad(0x2000, 0xDEADBEEF12345678)
    assert memory.load_quad(0x2000) == 0xDEADBEEF12345678


def test_unaligned_quad_access_aligns_down():
    memory = Memory()
    memory.store_quad(0x2003, 7)
    assert memory.load_quad(0x2000) == 7


def test_long_halves_are_independent():
    memory = Memory()
    memory.store_long(0x3000, 0x11111111)
    memory.store_long(0x3004, 0x22222222)
    assert memory.load_quad(0x3000) == 0x2222222211111111


def test_long_sign_extension():
    memory = Memory()
    memory.store_long(0x3000, 0x80000000)
    assert memory.load_long(0x3000) == 0xFFFFFFFF80000000


def test_fetch_word():
    memory = Memory()
    memory.store_quad(0x1000, (0xBBBBBBBB << 32) | 0xAAAAAAAA)
    assert memory.fetch_word(0x1000) == 0xAAAAAAAA
    assert memory.fetch_word(0x1004) == 0xBBBBBBBB


def test_page_tracking():
    memory = Memory(track_pages=True)
    memory.load_quad(0x1000)
    memory.store_quad(0x5000, 1)
    assert page_of(0x1000) in memory.touched_pages
    assert page_of(0x5000) in memory.touched_pages


def test_copy_is_independent():
    memory = Memory()
    memory.store_quad(0x100, 42)
    clone = memory.copy()
    clone.store_quad(0x100, 43)
    assert memory.load_quad(0x100) == 42


def test_content_signature_changes_on_write():
    memory = Memory()
    before = memory.content_signature()
    memory.store_quad(0x800, 9)
    assert memory.content_signature() != before


def test_content_signature_ignores_zero_writes():
    memory = Memory()
    before = memory.content_signature()
    memory.store_quad(0x800, 0)
    assert memory.content_signature() == before


def test_differs_from():
    a = Memory()
    b = Memory()
    assert not a.differs_from(b)
    a.store_quad(0x10, 5)
    assert a.differs_from(b)
    assert b.differs_from(a)
    b.store_quad(0x10, 5)
    assert not a.differs_from(b)


@given(ADDR, U64)
def test_quad_roundtrip(address, value):
    memory = Memory()
    memory.store_quad(address, value)
    assert memory.load_quad(address) == value


@given(ADDR, st.integers(min_value=0, max_value=0xFFFFFFFF))
def test_long_roundtrip_low(address, value):
    from repro.utils.bits import sext
    memory = Memory()
    memory.store_long(address, value)
    assert memory.load_long(address) == sext(value, 32) & MASK64


@given(ADDR, U64, st.integers(min_value=0, max_value=0xFFFFFFFF))
def test_long_store_preserves_other_half(address, quad, value):
    memory = Memory()
    memory.store_quad(address, quad)
    memory.store_long(address + 4, value)
    assert memory.load_quad(address) & 0xFFFFFFFF == quad & 0xFFFFFFFF
