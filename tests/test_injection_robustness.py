"""Defensive-simulation tests: injected faults must never crash Python.

The ground rule of the model (DESIGN.md): a flipped bit may corrupt
architectural results, deadlock the machine, or be masked -- but the
simulator itself must keep stepping.  These tests hammer the pipeline
with random and adversarial flips.
"""

import pytest

from repro.uarch.config import PipelineConfig, ProtectionConfig
from repro.uarch.core import Pipeline
from repro.uarch.statelib import StorageKind
from repro.utils.rng import SplitRng
from repro.workloads import get_workload


def make_ready_pipeline(protection=None):
    config = PipelineConfig.paper(protection)
    pipeline = Pipeline(get_workload("gzip", scale="tiny").program, config)
    pipeline.run(600)
    return pipeline


def test_random_flips_never_crash():
    pipeline = make_ready_pipeline()
    checkpoint = pipeline.checkpoint()
    rng = SplitRng(11)
    for _ in range(120):
        pipeline.restore(checkpoint)
        pipeline.inject_random_fault(
            rng, frozenset({StorageKind.LATCH, StorageKind.RAM}))
        pipeline.run(100, stop_on_halt=True)


def test_random_flips_never_crash_protected():
    pipeline = make_ready_pipeline(ProtectionConfig.full())
    checkpoint = pipeline.checkpoint()
    rng = SplitRng(13)
    for _ in range(120):
        pipeline.restore(checkpoint)
        pipeline.inject_random_fault(
            rng, frozenset({StorageKind.LATCH, StorageKind.RAM}))
        pipeline.run(100, stop_on_halt=True)


def test_multi_flip_storm():
    """Even many simultaneous flips (beyond the paper's fault model)
    must only produce wrong behaviour, not simulator errors."""
    pipeline = make_ready_pipeline()
    checkpoint = pipeline.checkpoint()
    rng = SplitRng(17)
    for _trial in range(20):
        pipeline.restore(checkpoint)
        for _ in range(10):
            pipeline.inject_random_fault(
                rng, frozenset({StorageKind.LATCH, StorageKind.RAM}))
        pipeline.run(150, stop_on_halt=True)


@pytest.mark.parametrize("pattern", ["ones", "zeros"])
def test_adversarial_whole_field_corruption(pattern):
    """Saturating whole control fields (queue pointers, counts) is the
    worst case for defensive indexing."""
    pipeline = make_ready_pipeline()
    checkpoint = pipeline.checkpoint()
    targets = [
        meta for meta in pipeline.space.elements
        if meta.injectable and meta.width <= 8
    ][:160]
    for meta in targets:
        pipeline.restore(checkpoint)
        value = (1 << meta.width) - 1 if pattern == "ones" else 0
        pipeline.space.values[meta.index] = value
        pipeline.run(40, stop_on_halt=True)


def test_every_category_injectable():
    pipeline = make_ready_pipeline()
    rng = SplitRng(23)
    seen = set()
    for _ in range(3000):
        index, _bit = pipeline.space.choose_bit(
            rng, frozenset({StorageKind.LATCH, StorageKind.RAM}))
        seen.add(pipeline.space.elements[index].category)
    from repro.uarch.statelib import TABLE1_CATEGORIES
    for category in TABLE1_CATEGORIES:
        assert category in seen, category


def test_latch_only_filter():
    pipeline = make_ready_pipeline()
    rng = SplitRng(29)
    for _ in range(400):
        index, _bit = pipeline.space.choose_bit(
            rng, frozenset({StorageKind.LATCH}))
        assert pipeline.space.elements[index].kind == StorageKind.LATCH


def test_ghost_bits_not_injectable():
    pipeline = make_ready_pipeline()
    rng = SplitRng(31)
    from repro.uarch.statelib import StateCategory
    for _ in range(2000):
        index, _bit = pipeline.space.choose_bit(
            rng, frozenset({StorageKind.LATCH, StorageKind.RAM}))
        assert pipeline.space.elements[index].category != StateCategory.GHOST
