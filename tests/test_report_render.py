"""Report-rendering output checks (paper-style tables)."""

from repro.analysis.report import render_inventory, render_outcomes
from repro.inject.outcome import TrialOutcome
from repro.uarch.statelib import StateCategory, StorageKind


def test_render_inventory_totals():
    inventory = {
        StateCategory.REGFILE: {StorageKind.LATCH: 80,
                                StorageKind.RAM: 5200},
        StateCategory.QCTRL: {StorageKind.LATCH: 176, StorageKind.RAM: 0},
    }
    text = render_inventory(inventory, "T")
    lines = text.splitlines()
    assert lines[0] == "T"
    assert any("regfile" in line and "5200" in line for line in lines)
    total = [line for line in lines if line.startswith("TOTAL")][0]
    assert "256" in total and "5200" in total


def test_render_outcomes_percentages():
    table = {
        "x": {TrialOutcome.MICRO_MATCH: 3, TrialOutcome.SDC: 1},
    }
    text = render_outcomes(table, "title", "key")
    assert "75.00" in text
    assert "25.00" in text
    assert "AGGREGATE" in text


def test_render_outcomes_empty_rowset():
    text = render_outcomes({}, "t", "k")
    assert "k" in text
