"""Unit tests for the lease state machine (repro.fabric.leases)."""

from repro.fabric.leases import LeaseTable

FP = "f" * 64  # a stand-in campaign fingerprint


def table(total=12, shard=4, done=()):
    return LeaseTable(FP, total, shard, done_indices=done)


def test_ranges_cover_the_campaign_without_overlap():
    t = table(total=10, shard=4)
    granted = []
    while True:
        lease = t.grant("w", 0.0, 1.0)
        if lease is None:
            break
        granted.append((lease.lo, lease.hi))
    assert granted == [(0, 4), (4, 8), (8, 10)]
    assert t.range_count == 3


def test_grant_is_fifo_and_heartbeat_extends():
    t = table()
    lease = t.grant("w1", 0.0, 1.0)
    assert (lease.lo, lease.hi, lease.generation) == (0, 4, 1)
    assert t.heartbeat(lease.lease_id, 0.9, 1.0)
    assert t.expire(1.5) == []  # deadline moved to 1.9
    assert t.expire(2.0) == [lease]


def test_expiry_steals_to_front_with_generation_bump():
    t = table()
    first = t.grant("w1", 0.0, 1.0)
    t.grant("w1", 0.0, 1.0)  # second range, also expires
    t.expire(5.0)
    assert t.steals == 2
    stolen = t.grant("w2", 5.0, 1.0)
    # The expired ranges come back first (front of the queue), oldest
    # expiry last-in-first-out is fine -- but always before fresh work.
    assert (stolen.lo, stolen.hi) in ((0, 4), (4, 8))
    assert stolen.generation == 2
    assert not t.heartbeat(first.lease_id, 5.0, 1.0)  # superseded


def test_first_completion_wins_then_duplicates():
    t = table()
    lease = t.grant("w1", 0.0, 1.0)
    assert t.complete(lease.lease_id) == "ok"
    assert t.complete(lease.lease_id) == "duplicate"
    assert t.duplicates == 1
    assert not t.heartbeat(lease.lease_id, 0.1, 1.0)


def test_late_completion_still_wins_and_cancels_the_steal():
    t = table(total=4, shard=4)
    old = t.grant("w1", 0.0, 1.0)
    t.expire(2.0)
    new = t.grant("w2", 2.0, 1.0)
    # The straggler lands first: its (deterministic) result is kept.
    assert t.complete(old.lease_id) == "late"
    # The thief's copy is now redundant.
    assert t.complete(new.lease_id) == "duplicate"
    assert t.done


def test_stolen_range_pending_copy_never_regranted_after_completion():
    t = table(total=4, shard=4)
    old = t.grant("w1", 0.0, 1.0)
    t.expire(2.0)  # re-queued at the front
    assert t.complete(old.lease_id) == "late"
    assert t.grant("w2", 2.0, 1.0) is None  # nothing left to lease
    assert t.done


def test_unknown_lease_is_reported():
    t = table()
    assert t.complete("nonsense") == "unknown"
    assert not t.heartbeat("nonsense", 0.0, 1.0)


def test_resume_precompletes_fully_covered_ranges_only():
    # Units 0-3 fully journaled -> range (0,4) starts completed; units
    # 4-5 of range (4,8) are partial -> the whole range re-executes.
    t = table(total=12, shard=4, done=(0, 1, 2, 3, 4, 5))
    assert t.completed_ranges == 1
    assert t.pending == 2
    lease = t.grant("w", 0.0, 1.0)
    assert (lease.lo, lease.hi) == (4, 8)


def test_counters_track_grants():
    t = table()
    t.grant("w", 0.0, 1.0)
    t.grant("w", 0.0, 1.0)
    assert t.grants == 2
    assert t.outstanding == 2
    assert t.pending == 1
    assert not t.done
