"""Frontend unit behaviours: BIQ, fetch redirects, icache stalls, parity."""

from repro.isa.assembler import assemble
from repro.uarch.config import PipelineConfig, ProtectionConfig
from repro.uarch.core import Pipeline
from repro.uarch.frontend import BranchInfoQueue
from repro.uarch.statelib import StateSpace


def make_biq():
    space = StateSpace()
    biq = BranchInfoQueue(space, PipelineConfig.small())
    space.freeze()
    return biq


def test_biq_alloc_and_lookup():
    biq = make_biq()
    index = biq.alloc(0x2000, ras_snapshot=3, ghr_snapshot=0b1010)
    assert biq.predicted_next(index) == 0x2000
    assert biq.snapshot_of(index) == (3, 0b1010)


def test_biq_fifo_free():
    biq = make_biq()
    first = biq.alloc(0x100, 0, 0)
    biq.alloc(0x200, 0, 0)
    assert biq.count.get() == 2
    biq.free_head()
    assert biq.count.get() == 1
    assert biq.head.get() % biq.capacity == (first + 1) % biq.capacity


def test_biq_rewind_to_keeps_branch():
    biq = make_biq()
    a = biq.alloc(0x100, 0, 0)
    biq.alloc(0x200, 0, 0)
    biq.alloc(0x300, 0, 0)
    biq.rewind_to(a)
    assert biq.count.get() == 1
    # The next allocation reuses the slot after `a`.
    b = biq.alloc(0x400, 0, 0)
    assert b == (a + 1) % biq.capacity


def test_biq_rewind_before_drops_branch():
    biq = make_biq()
    a = biq.alloc(0x100, 0, 0)
    biq.alloc(0x200, 0, 0)
    biq.rewind_before(a)
    assert biq.count.get() == 0


def test_biq_full():
    biq = make_biq()
    for i in range(biq.capacity):
        biq.alloc(0x100 + 4 * i, 0, 0)
    assert biq.full()


def test_biq_full_stalls_fetch_not_crash():
    """A branch-per-instruction program exceeds BIQ capacity; fetch must
    throttle and the program still completes."""
    lines = ["    li   s0, 200", "    clr  t0"]
    lines.append("loop:")
    for i in range(6):
        lines.append("    beq  zero, l%d" % i)  # always taken
        lines.append("l%d:" % i)
    lines += [
        "    addq t0, #1, t0",
        "    subq s0, #1, s0",
        "    bgt  s0, loop",
        "    mov  t0, a0",
        "    putq",
        "    halt",
    ]
    pipeline = Pipeline(assemble("\n".join(lines)))
    pipeline.run(100_000)
    assert pipeline.halted
    assert pipeline.output_text() == "200\n"


def test_icache_cold_start_stalls():
    """The very first fetch misses the icache and pays the miss latency."""
    pipeline = Pipeline(assemble("    li a0, 1\n    putq\n    halt"))
    config = pipeline.config
    for _ in range(config.miss_latency - 1):
        pipeline.cycle()
        assert pipeline.total_retired == 0
    pipeline.run(2000)
    assert pipeline.output_text() == "1\n"


def test_fetch_spans_icache_lines():
    """Straight-line code crossing line boundaries fetches correctly."""
    body = "\n".join("    addq t0, #1, t0" for _ in range(40))
    pipeline = Pipeline(assemble("    clr t0\n%s\n    mov t0, a0\n"
                                 "    putq\n    halt" % body))
    pipeline.run(10_000)
    assert pipeline.output_text() == "40\n"


def test_decode_width_respected():
    pipeline = Pipeline(assemble("    halt"))
    assert len(pipeline.frontend.decode_slots) == \
        pipeline.config.decode_width


def test_parity_fields_track_insn_words():
    config = PipelineConfig.paper(ProtectionConfig(insn_parity=True))
    pipeline = Pipeline(assemble("    li a0, 5\n    putq\n    halt"), config)
    pipeline.run(2000)
    assert pipeline.output_text() == "5\n"
    from repro.utils.bits import parity
    for entry in pipeline.frontend.fetchq:
        if entry.valid.get():
            assert entry.parity.get() == parity(entry.insn.get())
