"""Unit tests for the fabric wire protocol (repro.fabric.protocol)."""

import asyncio

import pytest

from repro.errors import FabricError
from repro.fabric.chaos import NetChaosSchedule
from repro.fabric.protocol import (
    MAX_BODY_BYTES,
    call,
    read_request,
    segment_checksum,
    write_response,
)


def run(coroutine):
    return asyncio.run(coroutine)


async def _serve_one(handler):
    """Start a one-shot server; returns (port, server)."""

    async def handle(reader, writer):
        request = await read_request(reader)
        status, payload = await handler(request)
        await write_response(writer, status, payload)
        writer.close()

    server = await asyncio.start_server(handle, "127.0.0.1", 0)
    return server.sockets[0].getsockname()[1], server


def test_request_response_round_trip():
    async def scenario():
        async def handler(request):
            assert request.method == "POST"
            assert request.path == "/echo"
            return 200, {"echo": request.payload}

        port, server = await _serve_one(handler)
        reply = await call("127.0.0.1", port, "/echo",
                           {"value": [1, 2, {"three": "3"}]})
        server.close()
        await server.wait_closed()
        return reply

    assert run(scenario()) == {"echo": {"value": [1, 2, {"three": "3"}]}}


def test_non_200_reply_raises_fabric_error_with_server_text():
    async def scenario():
        async def handler(_request):
            return 400, {"error": "no such campaign"}

        port, server = await _serve_one(handler)
        try:
            with pytest.raises(FabricError, match="no such campaign"):
                await call("127.0.0.1", port, "/lease", {})
        finally:
            server.close()
            await server.wait_closed()

    run(scenario())


def test_dead_peer_raises_oserror_not_fabric_error():
    async def scenario():
        server = await asyncio.start_server(
            lambda r, w: None, "127.0.0.1", 0)
        port = server.sockets[0].getsockname()[1]
        server.close()
        await server.wait_closed()
        with pytest.raises(OSError):
            await call("127.0.0.1", port, "/lease", {})

    run(scenario())


def test_malformed_request_line_is_a_fabric_error():
    async def scenario():
        reader = asyncio.StreamReader()
        reader.feed_data(b"not-http\r\n\r\n")
        reader.feed_eof()
        with pytest.raises(FabricError, match="malformed request line"):
            await read_request(reader)

    run(scenario())


def test_oversized_body_is_rejected_before_reading_it():
    async def scenario():
        reader = asyncio.StreamReader()
        reader.feed_data(
            b"POST /x HTTP/1.1\r\ncontent-length: %d\r\n\r\n"
            % (MAX_BODY_BYTES + 1))
        reader.feed_eof()
        with pytest.raises(FabricError, match="exceeds"):
            await read_request(reader)

    run(scenario())


def test_non_object_payload_is_rejected():
    async def scenario():
        body = b"[1, 2]"
        reader = asyncio.StreamReader()
        reader.feed_data(
            b"POST /x HTTP/1.1\r\ncontent-length: %d\r\n\r\n%s"
            % (len(body), body))
        reader.feed_eof()
        with pytest.raises(FabricError, match="JSON object"):
            await read_request(reader)

    run(scenario())


def test_eof_before_request_returns_none():
    async def scenario():
        reader = asyncio.StreamReader()
        reader.feed_eof()
        return await read_request(reader)

    assert run(scenario()) is None


# -- segment checksum ---------------------------------------------------------


def test_segment_checksum_is_stable_and_content_sensitive():
    entries = [[["gzip", 0, 0], {"outcome": "masked"}]]
    first = segment_checksum(entries)
    assert first == segment_checksum(
        [[["gzip", 0, 0], {"outcome": "masked"}]])
    assert first != segment_checksum(
        [[["gzip", 0, 0], {"outcome": "SDC"}]])
    assert len(first) == 8
    int(first, 16)  # 8 hex digits


# -- seeded network chaos -----------------------------------------------------


def test_net_chaos_spec_is_seed_replayable():
    first = NetChaosSchedule.from_spec("drop,dup:2@3,partition", 77)
    second = NetChaosSchedule.from_spec("drop,dup:2@3,partition", 77)
    other_seed = NetChaosSchedule.from_spec("drop,dup:2@3,partition", 78)
    points = [(e.kind, e.at_lease) for e in first.events]
    assert points == [(e.kind, e.at_lease) for e in second.events]
    assert [e.at_lease for e in first.events if e.kind == "dup"] == [3, 3]
    assert points != [(e.kind, e.at_lease) for e in other_seed.events]


def test_net_chaos_fire_consumes_one_event_per_kind():
    schedule = NetChaosSchedule.from_spec("drop@2", 1)
    assert not schedule.fire("drop", 1)  # not due yet
    assert schedule.fire("drop", 2)
    assert not schedule.fire("drop", 3)  # already consumed
    assert schedule.pending == []
    assert "fired at lease 2" in schedule.render()


def test_net_chaos_rejects_unknown_kinds():
    from repro.errors import ConfigError
    with pytest.raises(ConfigError, match="unknown fabric chaos fault"):
        NetChaosSchedule.from_spec("flood", 1)
    with pytest.raises(ConfigError, match="not a lease number"):
        NetChaosSchedule.from_spec("drop@soon", 1)
