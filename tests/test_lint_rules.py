"""Unit tests for the repro.lint rules on synthetic sources."""

import textwrap

from repro.lint import LintConfig, load_config, run_lint
from repro.lint.runner import PARSE_RULE


def lint_source(tmp_path, source, name="mod.py", config=None):
    path = tmp_path / name
    path.write_text(textwrap.dedent(source))
    return run_lint([str(path)], config or LintConfig())


def rules_of(result):
    return [finding.rule for finding in result.findings]


# -- REP001: shadow state ---------------------------------------------------

STAGE_HEADER = """
    from repro.uarch.statelib import StateCategory, StorageKind
"""


def test_rep001_flags_shadow_state(tmp_path):
    result = lint_source(tmp_path, STAGE_HEADER + """
    class Stage:
        def __init__(self, space):
            self.pc = space.field(
                "pc", 64, StateCategory.PC, StorageKind.LATCH)
            self.shadow = []

        def cycle(self):
            self.count = 1
            self.shadow.append(2)
            self.pc = None
    """)
    assert rules_of(result) == ["REP001"] * 4
    messages = " ".join(f.message for f in result.findings)
    assert "Stage.shadow" in messages
    assert "Stage.count" in messages
    assert "element handles must stay stable" in messages
    assert result.exit_code == 1


def test_rep001_derived_whitelist(tmp_path):
    result = lint_source(tmp_path, STAGE_HEADER + """
    class Stage:
        _DERIVED = ("shadow", "count")

        def __init__(self, space):
            self.pc = space.field(
                "pc", 64, StateCategory.PC, StorageKind.LATCH)
            self.shadow = []

        def cycle(self):
            self.count = 1
            self.shadow.append(2)
            self.pc.set(self.pc.get() + 1)
    """)
    assert result.findings == []


def test_rep001_rebinding_space_attr_not_whitelistable(tmp_path):
    result = lint_source(tmp_path, STAGE_HEADER + """
    class Stage:
        _DERIVED = ("pc",)

        def __init__(self, space):
            self.pc = space.field(
                "pc", 64, StateCategory.PC, StorageKind.LATCH)

        def cycle(self):
            self.pc = None
    """)
    assert rules_of(result) == ["REP001"]


def test_rep001_exempts_functional_classes(tmp_path):
    result = lint_source(tmp_path, """
    class Cache:
        def __init__(self):
            self.lines = {}

        def touch(self, key):
            self.lines[key] = True
            self.hits = 0
    """)
    assert result.findings == []


def test_rep001_subscript_store_and_array(tmp_path):
    result = lint_source(tmp_path, STAGE_HEADER + """
    class Stage:
        def __init__(self, space):
            self.regs = space.array(
                "regs", 4, 64, StateCategory.REGFILE, StorageKind.RAM)

        def cycle(self):
            self.regs[0] = None
            self.regs.append(None)
    """)
    assert rules_of(result) == ["REP001"] * 2


# -- REP002: determinism ----------------------------------------------------

def test_rep002_global_random(tmp_path):
    result = lint_source(tmp_path, """
    import random

    def roll():
        return random.random()
    """)
    assert rules_of(result) == ["REP002"]


def test_rep002_seeded_random_ok(tmp_path):
    result = lint_source(tmp_path, """
    import random

    def make(seed):
        return random.Random(seed)
    """)
    assert result.findings == []


def test_rep002_unseeded_random_constructor(tmp_path):
    result = lint_source(tmp_path, """
    import random

    def make():
        return random.Random()
    """)
    assert rules_of(result) == ["REP002"]


def test_rep002_from_import_and_urandom_and_time(tmp_path):
    result = lint_source(tmp_path, """
    import os
    import time
    from random import shuffle

    def stamp():
        return time.time(), os.urandom(8)
    """)
    assert rules_of(result) == ["REP002"] * 3


def test_rep002_id_call(tmp_path):
    result = lint_source(tmp_path, """
    def key(obj):
        return id(obj)
    """)
    assert rules_of(result) == ["REP002"]


def test_rep002_bare_set_iteration(tmp_path):
    result = lint_source(tmp_path, """
    def walk(items):
        seen = {1, 2}
        for item in seen:
            pass
        return [x for x in set(items)]
    """)
    assert rules_of(result) == ["REP002"] * 2


def test_rep002_sorted_set_iteration_ok(tmp_path):
    result = lint_source(tmp_path, """
    def walk(items):
        seen = set(items)
        for item in sorted(seen):
            pass
        seen = list(seen)
        for item in seen:
            pass
    """)
    assert result.findings == []


# -- pragma suppression -----------------------------------------------------

def test_pragma_inline(tmp_path):
    result = lint_source(tmp_path, """
    import time

    def stamp():
        return time.time()  # repro-lint: allow=REP002 (metadata only)
    """)
    assert result.findings == []


def test_pragma_on_comment_line_above(tmp_path):
    result = lint_source(tmp_path, """
    import time

    def stamp():
        # repro-lint: allow=REP002 (wall-clock is reporting
        # metadata only and never feeds simulation)
        return time.time()
    """)
    assert result.findings == []


def test_pragma_on_def_line_covers_body(tmp_path):
    result = lint_source(tmp_path, """
    import time

    # repro-lint: allow=REP002 (profiling helper, not a trial path)
    def stamp():
        first = time.time()
        return time.time() - first
    """)
    assert result.findings == []


def test_pragma_wrong_rule_does_not_suppress(tmp_path):
    result = lint_source(tmp_path, """
    import time

    def stamp():
        return time.time()  # repro-lint: allow=REP001 (wrong rule)
    """)
    assert rules_of(result) == ["REP002"]


# -- REP003: ghost isolation ------------------------------------------------

GHOST_MODULE = STAGE_HEADER + """
    class Entry:
        def __init__(self, space):
            self.seq = space.field(
                "seq", 16, StateCategory.GHOST, StorageKind.LATCH)
            self.val = space.field(
                "val", 8, StateCategory.DATA, StorageKind.LATCH)
"""


def test_rep003_flags_behavioral_ghost_read(tmp_path):
    result = lint_source(tmp_path, GHOST_MODULE + """
    class Stage:
        def cycle(self, entry):
            if entry.seq.get() > 3:
                return entry.val.get()
    """)
    assert rules_of(result) == ["REP003"]
    assert "ghost element 'seq'" in result.findings[0].message


def test_rep003_allows_propagation(tmp_path):
    result = lint_source(tmp_path, GHOST_MODULE + """
    class Stage:
        def cycle(self, src, dst, post):
            dst.seq.set(src.seq.get())
            post(value=src.val.get(), seq=src.seq.get())
            return dst.val.get()
    """)
    assert result.findings == []


def test_rep003_pragma_for_analysis_surface(tmp_path):
    result = lint_source(tmp_path, GHOST_MODULE + """
    class Stage:
        # repro-lint: allow=REP003 (observation surface for the harness)
        def inflight(self, entries):
            return [entry.seq.get() for entry in entries]
    """)
    assert result.findings == []


def test_rep003_skips_modules_without_stage_classes(tmp_path):
    result = lint_source(tmp_path, """
    class Harness:
        def collect(self, entry):
            return entry.seq.get()
    """)
    assert result.findings == []


# -- REP004: category inventory ---------------------------------------------

def test_rep004_unknown_category(tmp_path):
    result = lint_source(tmp_path, STAGE_HEADER + """
    class Stage:
        def __init__(self, space):
            self.x = space.field(
                "x", 8, StateCategory.BOGUS, StorageKind.LATCH)
    """)
    assert "REP004" in rules_of(result)
    assert "does not exist" in [
        f.message for f in result.findings if f.rule == "REP004"][0]


def test_rep004_unreported_member_flagged_at_definition(tmp_path):
    (tmp_path / "statelib.py").write_text(textwrap.dedent("""
    class StateCategory:
        PC = "pc"
        WEIRD = "weird"

    TABLE1_CATEGORIES = (StateCategory.PC,)
    PROTECTION_CATEGORIES = ()
    """))
    (tmp_path / "user.py").write_text(textwrap.dedent("""
    def alloc(space, StateCategory, kind):
        return space.field("w", 8, StateCategory.WEIRD, kind)
    """))
    result = run_lint([str(tmp_path)], LintConfig())
    rep004 = [f for f in result.findings if f.rule == "REP004"]
    assert len(rep004) == 2
    by_file = {f.path.rsplit("/", 1)[-1]: f.message for f in rep004}
    assert "not aggregated" in by_file["statelib.py"]
    assert "not aggregated" in by_file["user.py"]


# -- runner / configuration -------------------------------------------------

def test_syntax_error_becomes_parse_finding(tmp_path):
    result = lint_source(tmp_path, "def broken(:\n")
    assert rules_of(result) == [PARSE_RULE]
    assert result.exit_code == 1


def test_disable_rule(tmp_path):
    result = lint_source(tmp_path, """
    import time

    def stamp():
        return time.time()
    """, config=LintConfig(disable=("REP002",)))
    assert result.findings == []
    assert "REP002" not in result.rules


def test_enable_subset(tmp_path):
    result = lint_source(tmp_path, """
    import time

    def stamp():
        return time.time()
    """, config=LintConfig(enable=("REP001",)))
    assert result.findings == []
    assert result.rules == ("REP001",)


def test_per_path_ignores(tmp_path):
    config = LintConfig(per_path_ignores={"mod.py": ("REP002",)})
    result = lint_source(tmp_path, """
    import time

    def stamp():
        return time.time()
    """, config=config)
    assert result.findings == []


def test_load_config_from_pyproject(tmp_path):
    pyproject = tmp_path / "pyproject.toml"
    pyproject.write_text(textwrap.dedent("""
    [tool.repro.lint]
    paths = ["src/repro"]
    disable = ["REP004"]
    exclude = ["*/generated/*"]

    [tool.repro.lint.per-path-ignores]
    "uarch/trace.py" = ["REP003"]
    """))
    config = load_config(pyproject_path=str(pyproject))
    assert config.paths == ("src/repro",)
    assert config.disable == ("REP004",)
    assert config.excludes_file("pkg/generated/x.py")
    assert config.ignored_rules_for("src/repro/uarch/trace.py") == {"REP003"}
    assert config.ignored_rules_for("src/repro/uarch/rob.py") == set()


def test_finding_shape(tmp_path):
    result = lint_source(tmp_path, """
    def key(obj):
        return id(obj)
    """)
    finding = result.findings[0]
    payload = finding.to_dict()
    assert payload["rule"] == "REP002"
    assert payload["path"].endswith("mod.py")
    assert payload["line"] == 3
    assert payload["severity"] == "error"
    assert finding.render().startswith(finding.path)


# -- REP005: signature bypass -----------------------------------------------

_REP005 = LintConfig(enable=("REP005",))


def test_rep005_flags_raw_value_mutation(tmp_path):
    result = lint_source(tmp_path, """
    def corrupt(space, snap):
        space.values[3] = 0
        space.values[3] ^= 0x10
        space.values[:] = snap
        del space.values[0]
        space.values = list(snap)
        space.values.append(7)
    """, config=_REP005)
    assert rules_of(result) == ["REP005"] * 6
    messages = " ".join(f.message for f in result.findings)
    assert "bypasses the incremental state signature" in messages
    assert "rebinding .values" in messages
    assert ".values.append" in messages


def test_rep005_flags_cached_alias_writes(tmp_path):
    result = lint_source(tmp_path, """
    class Observer:
        def poke(self, index):
            self._values[index] = 1
    """, config=_REP005)
    assert rules_of(result) == ["REP005"]


def test_rep005_reads_and_dict_views_ok(tmp_path):
    result = lint_source(tmp_path, """
    def observe(space, table):
        current = space.values[3]
        copied = list(space.values)
        for entry in sorted(table.values()):
            current += entry
        return current, copied
    """, config=_REP005)
    assert rules_of(result) == []


def test_rep005_statelib_itself_is_exempt(tmp_path):
    package = tmp_path / "uarch"
    package.mkdir()
    path = package / "statelib.py"
    path.write_text(textwrap.dedent("""
    def restore(space, snap):
        space.values[:] = snap
    """))
    result = run_lint([str(path)], _REP005)
    assert rules_of(result) == []


def test_rep005_pragma_suppresses(tmp_path):
    result = lint_source(tmp_path, """
    class Watcher:
        def attach(self, space):
            # repro-lint: allow=REP005 (read-only alias)
            self._values = space.values
    """, config=_REP005)
    assert rules_of(result) == []


# -- REP006: exception hygiene ------------------------------------------------

_REP006 = LintConfig(enable=("REP006",))


def lint_harness_source(tmp_path, source, subdir="runner"):
    """Lint ``source`` placed under a harness directory segment."""
    package = tmp_path / subdir
    package.mkdir(exist_ok=True)
    path = package / "mod.py"
    path.write_text(textwrap.dedent(source))
    return run_lint([str(path)], _REP006)


def test_rep006_flags_bare_except_in_harness(tmp_path):
    result = lint_harness_source(tmp_path, """
    def cleanup(path):
        try:
            path.unlink()
        except:
            pass
    """)
    assert rules_of(result) == ["REP006"]
    assert "bare 'except:'" in result.findings[0].message


def test_rep006_flags_base_exception_without_reraise(tmp_path):
    result = lint_harness_source(tmp_path, """
    def swallow(fn):
        try:
            fn()
        except BaseException:
            return None
    """, subdir="perf")
    assert rules_of(result) == ["REP006"]
    assert "'except BaseException'" in result.findings[0].message


def test_rep006_reraise_and_narrow_handlers_ok(tmp_path):
    result = lint_harness_source(tmp_path, """
    def cleanup(fn, undo):
        try:
            fn()
        except BaseException:
            undo()
            raise
        try:
            fn()
        except OSError:
            pass
    """, subdir="inject")
    assert rules_of(result) == []


def test_rep006_only_applies_to_harness_dirs(tmp_path):
    result = lint_harness_source(tmp_path, """
    def swallow(fn):
        try:
            fn()
        except:
            pass
    """, subdir="analysis")
    assert rules_of(result) == []


def test_rep006_pragma_suppresses(tmp_path):
    result = lint_harness_source(tmp_path, """
    def swallow(fn):
        try:
            fn()
        except BaseException:  # repro-lint: allow=REP006 (test shim)
            pass
    """, subdir="chaos")
    assert rules_of(result) == []


def test_rep006_applies_to_fabric_dir(tmp_path):
    result = lint_harness_source(tmp_path, """
    def swallow(fn):
        try:
            fn()
        except:
            pass
    """, subdir="fabric")
    assert rules_of(result) == ["REP006"]


# -- REP007: async blocking I/O ----------------------------------------------

_REP007 = LintConfig(enable=("REP007",))


def lint_fabric_source(tmp_path, source, subdir="fabric"):
    """Lint ``source`` placed under a fabric directory segment."""
    package = tmp_path / subdir
    package.mkdir(exist_ok=True)
    path = package / "mod.py"
    path.write_text(textwrap.dedent(source))
    return run_lint([str(path)], _REP007)


def test_rep007_flags_open_in_coroutine(tmp_path):
    result = lint_fabric_source(tmp_path, """
    async def handler(path):
        with open(path) as handle:
            return handle.read()
    """)
    assert rules_of(result) == ["REP007", "REP007"]
    assert "open() inside 'async def handler'" \
        in result.findings[0].message
    assert "blocking file handle" in result.findings[1].message


def test_rep007_flags_time_sleep_and_sync_socket(tmp_path):
    result = lint_fabric_source(tmp_path, """
    import socket
    import time

    async def poll(host):
        time.sleep(1.0)
        return socket.create_connection((host, 80))
    """)
    assert rules_of(result) == ["REP007", "REP007"]
    assert "await asyncio.sleep" in result.findings[0].message
    assert "socket.create_connection()" in result.findings[1].message


def test_rep007_executor_helper_and_sync_code_ok(tmp_path):
    result = lint_fabric_source(tmp_path, """
    import asyncio
    import time

    def read_file(path):
        with open(path) as handle:
            return handle.read()

    async def handler(path):
        def helper():
            time.sleep(0.01)
            return read_file(path)
        loop = asyncio.get_running_loop()
        await asyncio.sleep(0.1)
        return await loop.run_in_executor(None, helper)
    """)
    assert rules_of(result) == []


def test_rep007_only_applies_to_fabric_dir(tmp_path):
    result = lint_fabric_source(tmp_path, """
    async def handler(path):
        return open(path)
    """, subdir="runner")
    assert rules_of(result) == []


def test_rep007_pragma_suppresses(tmp_path):
    result = lint_fabric_source(tmp_path, """
    async def handler(path):
        return open(path)  # repro-lint: allow=REP007 (startup-only)
    """)
    assert rules_of(result) == []


# -- REP008: batch-kernel hygiene ---------------------------------------------

_REP008 = LintConfig(enable=("REP008",))


def lint_batch_source(tmp_path, source, name="batch.py"):
    """Lint ``source`` placed as ``perf/batch.py`` (the policed path)."""
    package = tmp_path / "perf"
    package.mkdir(exist_ok=True)
    path = package / name
    path.write_text(textwrap.dedent(source))
    return run_lint([str(path)], _REP008)


def test_rep008_flags_per_lane_loop_in_hot_kernel(tmp_path):
    result = lint_batch_source(tmp_path, """
    _HOT_KERNELS = ("_walk_planes",)

    def _walk_planes(plans, alive):
        for lane, plan in enumerate(plans):
            alive |= 1 << lane
        for entry in plans:
            alive ^= entry
        return alive
    """)
    assert rules_of(result) == ["REP008", "REP008"]
    assert "big-int bitwise algebra" in result.findings[0].message
    assert "non-range iterable" in result.findings[1].message


def test_rep008_flags_full_signature_anywhere(tmp_path):
    result = lint_batch_source(tmp_path, """
    def record(space):
        return space.signature(full=True)
    """)
    assert rules_of(result) == ["REP008"]
    assert "full=True" in result.findings[0].message


def test_rep008_range_loops_and_incremental_reads_ok(tmp_path):
    result = lint_batch_source(tmp_path, """
    _HOT_KERNELS = ("_walk_planes",)

    def _walk_planes(reads, horizon, lanes_by_element):
        alive = 0
        for cycle in range(horizon):
            plane = reads[cycle]
            while plane:
                low = plane & -plane
                plane ^= low
                alive |= lanes_by_element[low.bit_length() - 1]
        return alive

    def helper(space, plans):
        for plan in plans:  # not a hot kernel: scalar setup is fine
            space.note(plan)
        return space.signature()
    """)
    assert rules_of(result) == []


def test_rep008_only_applies_to_batch_module(tmp_path):
    result = lint_batch_source(tmp_path, """
    _HOT_KERNELS = ("kernel",)

    def kernel(space, plans):
        for plan in plans:
            space.note(plan)
        return space.signature(full=True)
    """, name="other.py")
    assert rules_of(result) == []


def test_rep008_pragma_suppresses(tmp_path):
    result = lint_batch_source(tmp_path, """
    def verify(space):
        # repro-lint: allow=REP008 (debug cross-check, not trial path)
        return space.signature(full=True)
    """)
    assert rules_of(result) == []
