"""Data-cache banking and port-arbitration behaviours."""

from repro.isa.assembler import assemble
from repro.uarch.core import Pipeline


def run(source, max_cycles=60_000):
    pipeline = Pipeline(assemble(source))
    pipeline.run(max_cycles)
    assert pipeline.halted
    assert pipeline.failure_event is None
    return pipeline


def test_same_bank_loads_serialise_but_complete():
    """Two loads to the same bank each cycle: conflicts retry, results
    stay correct."""
    pipe = run("""
    li   s1, 0x4000
    li   t0, 11
    stq  t0, 0(s1)
    li   t0, 22
    stq  t0, 64(s1)       ; same bank (multiple of 64 -> bank 0)
    li   s0, 30
loop:
    ldq  t1, 0(s1)
    ldq  t2, 64(s1)
    addq t1, t2, t3
    addq t4, t3, t4
    subq s0, #1, s0
    bgt  s0, loop
    mov  t4, a0
    putq
    halt
""")
    assert pipe.output_text() == "%d\n" % (30 * 33)


def test_different_bank_loads_pair():
    """Loads to different banks can issue together; throughput check."""
    pipe = run("""
    li   s1, 0x4000
    li   t0, 1
    stq  t0, 0(s1)
    stq  t0, 8(s1)        ; adjacent quads -> different banks
    li   s0, 60
loop:
    ldq  t1, 0(s1)
    ldq  t2, 8(s1)
    addq t3, t1, t3
    addq t3, t2, t3
    subq s0, #1, s0
    bgt  s0, loop
    mov  t3, a0
    putq
    halt
""")
    assert pipe.output_text() == "120\n"
    # Warm loop: 5 instructions with 2 loads per iteration should beat
    # one instruction per cycle.
    assert pipe.total_retired / pipe.cycle_count > 0.9


def test_bank_of_covers_all_banks():
    pipe = Pipeline(assemble("    halt"))
    banks = {pipe.dcache.bank_of(8 * i) for i in range(16)}
    assert banks == set(range(pipe.config.dcache_banks))
