"""Tests for the deterministic split RNG."""

from repro.utils.rng import SplitRng


def test_same_seed_same_stream():
    a = SplitRng(7)
    b = SplitRng(7)
    assert [a.randrange(1000) for _ in range(20)] == \
        [b.randrange(1000) for _ in range(20)]


def test_split_streams_are_independent_of_order():
    parent1 = SplitRng(42)
    first = parent1.split("alpha")
    second = parent1.split("beta")

    parent2 = SplitRng(42)
    second_again = parent2.split("beta")
    first_again = parent2.split("alpha")

    assert [first.randrange(10 ** 9) for _ in range(5)] == \
        [first_again.randrange(10 ** 9) for _ in range(5)]
    assert [second.randrange(10 ** 9) for _ in range(5)] == \
        [second_again.randrange(10 ** 9) for _ in range(5)]


def test_split_names_give_distinct_streams():
    parent = SplitRng(1)
    a = parent.split("x")
    b = parent.split("y")
    assert [a.randrange(1 << 30) for _ in range(8)] != \
        [b.randrange(1 << 30) for _ in range(8)]


def test_nested_split():
    a = SplitRng(5).split("w").split("t")
    b = SplitRng(5).split("w").split("t")
    assert a.getrandbits(64) == b.getrandbits(64)


def test_api_surface():
    rng = SplitRng(3)
    assert 0 <= rng.random() < 1
    assert rng.randint(1, 1) == 1
    assert rng.choice([9]) == 9
    assert sorted(rng.sample(range(10), 3))[0] >= 0
    seq = [1, 2, 3]
    rng.shuffle(seq)
    assert sorted(seq) == [1, 2, 3]
