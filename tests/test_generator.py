"""Random-program generator tests."""

import pytest

from repro.arch.functional import FunctionalSimulator
from repro.isa.semantics import Exc
from repro.workloads.generator import random_program


@pytest.mark.parametrize("seed", range(8))
def test_generated_programs_are_exception_free(seed):
    sim = FunctionalSimulator(random_program(seed))
    sim.run(300_000)
    assert sim.halted
    assert sim.exception == Exc.NONE


def test_generator_is_deterministic():
    a = random_program(123)
    b = random_program(123)
    assert a.image == b.image


def test_different_seeds_differ():
    assert random_program(1).image != random_program(2).image


def test_programs_produce_output():
    sim = FunctionalSimulator(random_program(5))
    sim.run(300_000)
    assert sim.output_text().endswith("\n")


def test_body_blocks_scale_program_size():
    small = random_program(9, body_blocks=4)
    large = random_program(9, body_blocks=30)
    assert len(large.image) > len(small.image)
