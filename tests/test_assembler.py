"""Assembler unit tests."""

import pytest

from repro.errors import AssemblerError
from repro.isa.assembler import Program, assemble
from repro.isa.encoding import decode
from repro.isa.opcodes import Op


def test_simple_program_entry():
    program = assemble("    addq r1, r2, r3\n    halt")
    assert program.entry == 0x1000
    insn = decode(program.word_at(program.entry))
    assert insn.op == Op.ADDQ


def test_org_directive():
    program = assemble(".org 0x2000\n    halt")
    assert program.entry == 0x2000


def test_labels_and_branches():
    program = assemble("""
start:
    nop
loop:
    br loop
    halt
""")
    assert program.labels["start"] == 0x1000
    assert program.labels["loop"] == 0x1004
    insn = decode(program.word_at(0x1004))
    assert insn.op == Op.BR
    assert insn.branch_target(0x1004) == 0x1004


def test_register_aliases():
    program = assemble("    mov sp, ra\n    halt")
    insn = decode(program.word_at(program.entry))
    assert insn.ra == 30  # sp
    assert insn.rc == 26  # ra


def test_literal_operand():
    program = assemble("    addq r1, #255, r2\n    halt")
    insn = decode(program.word_at(program.entry))
    assert insn.is_literal
    assert insn.literal == 255


def test_literal_out_of_range():
    with pytest.raises(AssemblerError):
        assemble("    addq r1, #256, r2")


def test_memory_operand_forms():
    program = assemble("""
    ldq r1, 8(r2)
    ldq r3, (r4)
    stq r5, -16(sp)
    halt
""")
    first = decode(program.word_at(0x1000))
    assert (first.rb, first.disp) == (2, 8)
    second = decode(program.word_at(0x1004))
    assert (second.rb, second.disp) == (4, 0)
    third = decode(program.word_at(0x1008))
    assert (third.rb, third.disp) == (30, -16)


def test_data_directives():
    program = assemble("""
    halt
.org 0x4000
value: .quad 0x123456789abcdef0
pair:  .long 17
       .long 18
""")
    assert program.image[0x4000] == 0x123456789ABCDEF0
    assert program.image[0x4008] == (18 << 32) | 17


def test_space_directive():
    program = assemble("""
    halt
.org 0x4000
buf: .space 32
after: .quad 1
""")
    assert program.labels["after"] == 0x4020


def test_align_directive():
    program = assemble("""
    halt
.org 0x4001
.align 8
here: .quad 5
""")
    assert program.labels["here"] == 0x4008


def test_li_pseudo_positive():
    program = assemble("    li r1, 123456\n    mov r1, a0\n    putq\n    halt")
    from repro.arch.functional import FunctionalSimulator
    sim = FunctionalSimulator(program)
    sim.run(100)
    assert sim.output_text() == "123456\n"


def test_li_pseudo_negative():
    program = assemble("    li r1, -98765\n    mov r1, a0\n    putq\n    halt")
    from repro.arch.functional import FunctionalSimulator
    sim = FunctionalSimulator(program)
    sim.run(100)
    assert sim.output_text() == "-98765\n"


@pytest.mark.parametrize("value", [0, 1, -1, 32767, -32768, 65536,
                                   0x7FFF7FFF, -0x80000000])
def test_li_pseudo_range(value):
    from repro.arch.functional import FunctionalSimulator
    program = assemble("    li a0, %d\n    putq\n    halt" % value)
    sim = FunctionalSimulator(program)
    sim.run(100)
    assert sim.output_text() == "%d\n" % value


def test_ret_default_register():
    program = assemble("    ret\n    halt")
    insn = decode(program.word_at(0x1000))
    assert insn.op == Op.RET
    assert insn.rb == 26


def test_duplicate_label_rejected():
    with pytest.raises(AssemblerError):
        assemble("x:\n    nop\nx:\n    halt")


def test_unknown_mnemonic_rejected():
    with pytest.raises(AssemblerError) as err:
        assemble("    frobnicate r1, r2, r3")
    assert "frobnicate" in str(err.value)


def test_unresolved_symbol_rejected():
    with pytest.raises(AssemblerError):
        assemble("    br nowhere")


def test_bad_register_rejected():
    with pytest.raises(AssemblerError):
        assemble("    addq r1, r42, r3")


def test_error_carries_line_number():
    with pytest.raises(AssemblerError) as err:
        assemble("    nop\n    nop\n    bogus r1")
    assert err.value.line == 3


def test_comments_stripped():
    program = assemble("    nop ; trailing comment\n    halt")
    assert decode(program.word_at(0x1000)).op == Op.BIS


def test_word_at_unmapped_is_zero():
    program = assemble("    halt")
    assert program.word_at(0x9000) == 0


def test_multiple_labels_same_line():
    program = assemble("a: b:    halt")
    assert program.labels["a"] == program.labels["b"] == 0x1000


def test_li_unrepresentable_rejected():
    with pytest.raises(AssemblerError) as err:
        assemble("    li r1, 0x7fffffff")
    assert "ldah+lda" in str(err.value)
