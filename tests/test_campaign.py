"""Campaign orchestration tests."""

import pytest

from repro.errors import CampaignError
from repro.inject.campaign import Campaign, CampaignConfig
from repro.inject.outcome import TrialOutcome


@pytest.fixture(scope="module")
def small_result():
    config = CampaignConfig.test(trials_per_start_point=10,
                                 start_points_per_workload=2)
    return Campaign(config).run()


def test_trial_count(small_result):
    assert len(small_result.trials) == small_result.config.total_trials == 20


def test_all_outcomes_classified(small_result):
    for trial in small_result.trials:
        assert isinstance(trial.outcome, TrialOutcome)
        if trial.outcome.is_failure:
            assert trial.failure_mode is not None
        else:
            assert trial.failure_mode is None


def test_eligible_bits_and_inventory(small_result):
    assert small_result.eligible_bits > 30_000
    assert small_result.inventory


def test_rate_helpers(small_result):
    counts = small_result.outcome_counts()
    assert sum(counts.values()) == 20
    assert 0.0 <= small_result.failure_rate() <= 1.0
    assert 0.0 <= small_result.masked_rate() <= 1.0


def test_campaign_determinism():
    config = CampaignConfig.test(trials_per_start_point=6,
                                 start_points_per_workload=1)
    first = Campaign(config).run()
    second = Campaign(config).run()
    outcomes_first = [(t.element_name, t.outcome) for t in first.trials]
    outcomes_second = [(t.element_name, t.outcome) for t in second.trials]
    assert outcomes_first == outcomes_second


def test_different_seeds_differ():
    base = dict(trials_per_start_point=8, start_points_per_workload=1)
    first = Campaign(CampaignConfig.test(seed=1, **base)).run()
    second = Campaign(CampaignConfig.test(seed=2, **base)).run()
    assert [t.element_name for t in first.trials] != \
        [t.element_name for t in second.trials]


def test_latch_only_campaign():
    config = CampaignConfig.test(kinds="latch", trials_per_start_point=8,
                                 start_points_per_workload=1)
    result = Campaign(config).run()
    assert all(t.kind == "latch" for t in result.trials)
    assert result.eligible_bits < 25_000  # latches are the minority


def test_bad_kinds_rejected():
    with pytest.raises(CampaignError):
        CampaignConfig.test(kinds="flipflops")


def test_workload_too_short_rejected():
    config = CampaignConfig.test(
        workloads=("vortex",), warmup_cycles=1500, spacing_cycles=1500,
        start_points_per_workload=4)
    with pytest.raises(CampaignError):
        Campaign(config).run()


def test_progress_callback():
    calls = []
    config = CampaignConfig.test(trials_per_start_point=3,
                                 start_points_per_workload=1)
    Campaign(config).run(progress=lambda done, total: calls.append((done,
                                                                    total)))
    assert calls[-1] == (3, 3)


def test_paper_scale_config_shape():
    config = CampaignConfig.paper()
    assert config.horizon == 10_000
    assert config.total_trials >= 25_000
