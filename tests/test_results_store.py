"""Results-store ingestion + cross-campaign query tests.

Two real campaigns -- protection off (with provenance) and protection
on -- are run once per module and ingested into :class:`ResultsStore`
instances; the tests cover incremental tailing of a live journal,
legacy schema-1 ingestion, the aggregate tables, and the acceptance
path: ``repro-faults query`` reproducing a paper-style cross-campaign
comparison from two ingested campaigns in one command.
"""

import json
import os

import pytest

from repro.cli import main
from repro.errors import SimulationError
from repro.inject.campaign import CampaignConfig
from repro.runner.engine import run_campaign
from repro.runner.journal import journal_path
from repro.store import ResultsStore
from repro.uarch.config import ProtectionConfig

TRIALS = 12  # CampaignConfig.test(): gzip, tiny, 6 start points x 2


@pytest.fixture(scope="module")
def campaign_dirs(tmp_path_factory):
    base = tmp_path_factory.mktemp("store-campaigns")
    baseline = base / "baseline"
    protected = base / "protected"
    run_campaign(CampaignConfig.test(provenance=True), workers=0,
                 directory=str(baseline))
    run_campaign(CampaignConfig.test(protection=ProtectionConfig.full()),
                 workers=0, directory=str(protected))
    return str(baseline), str(protected)


@pytest.fixture
def store(campaign_dirs):
    with ResultsStore() as store:
        for directory in campaign_dirs:
            store.ingest(directory)
        yield store


def test_ingest_two_campaigns(store):
    campaigns = store.campaigns()
    assert [campaign["label"] for campaign in campaigns] \
        == ["baseline", "protected"]
    assert [campaign["trials"] for campaign in campaigns] \
        == [TRIALS, TRIALS]
    assert [campaign["protection"] for campaign in campaigns] \
        == ["none", "full"]
    assert len({campaign["fingerprint"] for campaign in campaigns}) == 2


def test_reingest_is_incremental(campaign_dirs):
    with ResultsStore() as store:
        first = store.ingest(campaign_dirs[0])
        assert first.new_trials == TRIALS
        assert first.snapshot  # metrics.json was picked up too
        again = store.ingest(campaign_dirs[0])
        assert again.new_trials == 0
        assert again.total_trials == TRIALS
        assert store.snapshot(first.fingerprint)["done"] == TRIALS


def test_tailing_a_live_journal(tmp_path, campaign_dirs):
    """Appended lines (and a torn tail) ingest incrementally."""
    with open(journal_path(campaign_dirs[0]), "rb") as handle:
        lines = handle.read().splitlines(keepends=True)
    path = str(tmp_path / "journal.jsonl")
    with open(path, "wb") as handle:
        handle.writelines(lines[:6])  # header + 5 trials
    with ResultsStore() as store:
        assert store.ingest(path).new_trials == 5
        # Append three more whole lines plus a torn half-line, as a
        # crashing writer would leave them.
        with open(path, "ab") as handle:
            handle.writelines(lines[6:9])
            handle.write(lines[9][: len(lines[9]) // 2])
        report = store.ingest(path)
        assert report.new_trials == 3  # the torn line is not consumed
        # The writer completes the torn line; the next tick gets it.
        with open(path, "ab") as handle:
            handle.write(lines[9][len(lines[9]) // 2:])
            handle.writelines(lines[10:])
        report = store.ingest(path)
        assert report.total_trials == TRIALS
        assert not report.reset


def test_truncated_journal_is_reread_from_scratch(tmp_path, campaign_dirs):
    with open(journal_path(campaign_dirs[0]), "rb") as handle:
        data = handle.read()
    path = str(tmp_path / "journal.jsonl")
    with open(path, "wb") as handle:
        handle.write(data)
    with ResultsStore() as store:
        assert store.ingest(path).new_trials == TRIALS
        # The journal shrinks (e.g. --repair truncated it): the stored
        # offset is past EOF, so ingestion restarts from byte 0.
        lines = data.splitlines(keepends=True)
        with open(path, "wb") as handle:
            handle.writelines(lines[:4])
        report = store.ingest(path)
        assert report.reset
        assert report.new_trials == 0  # replaced, not duplicated
        assert report.total_trials == TRIALS


def _legacy_journal(source_dir, destination):
    """A schema-1 journal: no per-line CRCs, pre-``bit`` trial dicts."""
    records = []
    with open(journal_path(source_dir), "r", encoding="utf-8") as handle:
        for line in handle:
            records.append(json.loads(line))
    for record in records:
        record.pop("crc", None)
        if record.get("type") == "header":
            record["schema"] = 1
            record["fingerprint"] = "feed" * 16  # a distinct campaign
        else:
            for field in ("bit", "masking_cause", "first_read_cycle",
                          "arch_corrupt_cycle", "detect_latency"):
                record.get("trial", {}).pop(field, None)
    with open(destination, "w", encoding="utf-8") as handle:
        for record in records:
            handle.write(json.dumps(record, sort_keys=True,
                                    separators=(",", ":")) + "\n")


def test_legacy_schema1_journal_ingests_with_defaults(
        tmp_path, campaign_dirs):
    path = str(tmp_path / "journal.jsonl")
    _legacy_journal(campaign_dirs[0], path)
    with ResultsStore() as store:
        report = store.ingest(path, label="old-run")
        assert report.new_trials == TRIALS
        assert report.legacy_lines == TRIALS + 1  # header included
        campaign, = store.campaigns()
        assert campaign["journal_schema"] == 1
        assert campaign["label"] == "old-run"
        # Pre-``bit`` trials took trial_from_dict's defaults.
        bits = [row[0] for row in store._db.execute(
            "SELECT bit FROM trials")]
        assert bits == [0] * TRIALS
        causes = store.masking_table()
        assert causes == {}  # stripped provenance -> no masking table


def test_trials_before_header_rejected(tmp_path, campaign_dirs):
    with open(journal_path(campaign_dirs[0]), "rb") as handle:
        lines = handle.read().splitlines(keepends=True)
    path = str(tmp_path / "journal.jsonl")
    with open(path, "wb") as handle:
        handle.writelines(lines[1:3])  # trial lines, no header
    with ResultsStore() as store:
        with pytest.raises(SimulationError, match="before any header"):
            store.ingest(path)


def test_outcome_and_vulnerability_tables(store):
    fingerprints = [campaign["fingerprint"]
                    for campaign in store.campaigns()]
    table = store.outcome_table(by="category")
    assert set(table) == set(fingerprints)
    for cells in table.values():
        assert sum(count for counts in cells.values()
                   for count in counts.values()) == TRIALS
    # The provenance campaign produced a masking-cause table; the
    # non-provenance one contributed nothing.
    masking = store.masking_table()
    assert set(masking) <= {fingerprints[0]}
    rows = store.vulnerability(by="element")
    assert sum(trials for _k, _w, trials, _f in rows) == 2 * TRIALS
    assert all(failures <= trials for _k, _w, trials, failures in rows)
    with pytest.raises(SimulationError, match="unknown grouping"):
        store.outcome_table(by="nope")


def test_resolve_by_prefix_and_label(store):
    campaign = store.resolve("baseline")
    assert campaign["label"] == "baseline"
    by_prefix = store.resolve(campaign["fingerprint"][:8])
    assert by_prefix["fingerprint"] == campaign["fingerprint"]
    with pytest.raises(SimulationError, match="ambiguous"):
        store.resolve("")  # the empty prefix matches both
    with pytest.raises(SimulationError, match="no ingested campaign"):
        store.resolve("zzz-no-such")


def test_query_cli_two_campaigns_one_command(campaign_dirs, capsys):
    """Acceptance: the paper-style cross-campaign table, one command."""
    baseline, protected = campaign_dirs
    rc = main(["query", "--ingest", baseline, "--ingest", protected,
               "--by", "category", "--masking", "--latency"])
    assert rc == 0
    out = capsys.readouterr().out
    assert "Ingested campaigns" in out
    assert "Outcomes by category -- baseline" in out
    assert "Outcomes by category -- protected" in out
    assert "Failure-rate comparison by category" in out
    assert "delta_pp" in out
    assert "Masking causes -- baseline" in out


def test_query_cli_persistent_db(campaign_dirs, tmp_path, capsys):
    db = str(tmp_path / "results.sqlite")
    assert main(["query", "--db", db, "--ingest", campaign_dirs[0],
                 "--list"]) == 0
    capsys.readouterr()
    # Second invocation: the ingested campaign is still there.
    assert main(["query", "--db", db, "--by", "workload"]) == 0
    out = capsys.readouterr().out
    assert "baseline" in out
    assert os.path.exists(db)


def test_query_cli_empty_store_errors(tmp_path, capsys):
    assert main(["query", "--db", str(tmp_path / "empty.sqlite")]) == 2
    assert "empty" in capsys.readouterr().err
