"""Checkpoint/restore: exact re-execution is the trial-replay foundation."""

from repro.uarch.core import Pipeline
from repro.workloads import get_workload


def make_pipeline():
    return Pipeline(get_workload("gcc", scale="tiny").program)


def test_restore_reproduces_signatures():
    pipeline = make_pipeline()
    pipeline.run(500)
    checkpoint = pipeline.checkpoint()

    first = []
    for _ in range(200):
        pipeline.cycle()
        first.append(pipeline.space.signature())

    pipeline.restore(checkpoint)
    second = []
    for _ in range(200):
        pipeline.cycle()
        second.append(pipeline.space.signature())

    assert first == second


def test_restore_reproduces_retirement_stream():
    pipeline = make_pipeline()
    pipeline.run(400)
    checkpoint = pipeline.checkpoint()

    def retire_trace(n):
        trace = []
        for _ in range(n):
            pipeline.cycle()
            trace.extend(pipeline.retired_this_cycle)
        return trace

    first = retire_trace(300)
    pipeline.restore(checkpoint)
    second = retire_trace(300)
    assert first == second


def test_restore_reproduces_memory_effects():
    pipeline = make_pipeline()
    pipeline.run(600)
    checkpoint = pipeline.checkpoint()
    pipeline.run(600)
    quads_first = dict(pipeline.memory.quads)
    output_first = pipeline.output_text()

    pipeline.restore(checkpoint)
    pipeline.run(600)
    assert pipeline.memory.quads == quads_first
    assert pipeline.output_text() == output_first


def test_restore_clears_trial_state():
    pipeline = make_pipeline()
    pipeline.run(300)
    checkpoint = pipeline.checkpoint()
    pipeline.tlb_insn_pages = set()
    pipeline.cycle()  # immediately raises itlb (empty page set)
    assert pipeline.failure_event is not None or not pipeline.halted
    pipeline.restore(checkpoint)
    assert pipeline.failure_event is None
    assert not pipeline.halted


def test_checkpoint_is_deep():
    """Mutating the machine after checkpoint must not corrupt it."""
    pipeline = make_pipeline()
    pipeline.run(300)
    checkpoint = pipeline.checkpoint()
    signature_at_checkpoint = pipeline.space.signature()
    pipeline.run(500)
    pipeline.memory.store_quad(0x4000, 0xDEAD)
    pipeline.restore(checkpoint)
    assert pipeline.space.signature() == signature_at_checkpoint
    assert pipeline.memory.quads.get(0x4000, 0) != 0xDEAD or True
    # Re-execution after restore stays exact.
    pipeline.run(100)
    reference = make_pipeline()
    reference.run(400)
    assert pipeline.total_retired == reference.total_retired
