"""Metrics export + telemetry extension tests."""

from types import SimpleNamespace

import pytest

from repro.inject.outcome import TrialOutcome
from repro.obs import render_openmetrics
from repro.runner.journal import metrics_path, prom_path, write_metrics
from repro.runner.telemetry import Telemetry


def _fake_trial(outcome=TrialOutcome.GRAY):
    return SimpleNamespace(outcome=outcome)


def _telemetry(total=8, ticks=None):
    if ticks is None:
        ticks = [float(i) for i in range(64)]
    supply = iter(ticks)
    return Telemetry(total=total, clock=lambda: next(supply))


def test_worker_latency_percentiles():
    telemetry = _telemetry(ticks=[0.0, 1.0, 2.0, 4.0, 8.0, 100.0])
    for _ in range(4):
        telemetry.record_trial(_fake_trial(), worker_id=3)
    stats = telemetry.snapshot().worker_latency["3"]
    # Inter-completion latencies: 1, 1, 2, 4 seconds.
    assert stats["count"] == 4
    assert stats["p50"] == pytest.approx(1.5)
    assert stats["p99"] == pytest.approx(4.0, abs=0.1)
    assert stats["p50"] <= stats["p90"] <= stats["p99"]


def test_latency_tracked_per_worker():
    telemetry = _telemetry()
    telemetry.record_trial(_fake_trial(), worker_id=0)
    telemetry.record_trial(_fake_trial(), worker_id=1)
    latency = telemetry.snapshot().worker_latency
    assert set(latency) == {"0", "1"}
    assert all(stats["count"] == 1 for stats in latency.values())


def test_outcome_history_over_time():
    telemetry = _telemetry(total=4)
    for outcome in (TrialOutcome.GRAY, TrialOutcome.SDC,
                    TrialOutcome.MICRO_MATCH):
        telemetry.record_trial(_fake_trial(outcome))
    history = telemetry.snapshot().history
    assert len(history) == 3  # stride 1 at this scale
    assert [entry["done"] for entry in history] == [1, 2, 3]
    assert history[-1]["outcome_counts"][TrialOutcome.SDC.value] == 1
    # Snapshots round-trip to plain JSON types.
    as_dict = telemetry.snapshot().to_dict()
    assert as_dict["history"][0]["done"] == 1
    assert as_dict["worker_latency"]["0"]["count"] == 3


def test_eta_placeholder_before_rate_exists():
    telemetry = _telemetry(total=10)
    snapshot = telemetry.snapshot()
    assert snapshot.eta_seconds is None
    assert "ETA --:--" in snapshot.render()
    assert "None" not in snapshot.render()


def test_openmetrics_rendering():
    telemetry = _telemetry(total=4)
    telemetry.record_trial(_fake_trial(TrialOutcome.SDC), worker_id=2)
    telemetry.set_workers(1, 2)
    text = render_openmetrics(telemetry.snapshot().to_dict())
    assert text.endswith("# EOF\n")
    assert "repro_trials_total 4" in text
    assert 'repro_outcome_trials{outcome="sdc"} 1' in text
    assert 'repro_worker_trial_latency_seconds{quantile="0.5",worker="2"}' \
        in text
    assert 'repro_worker_trials{worker="2"} 1' in text
    assert "# TYPE repro_trials_done gauge" in text
    assert "repro_build_info{" in text
    assert 'journal_schema="2"' in text


def test_openmetrics_monotonic_counters_with_aliases():
    """Monotonic samples are counters named *_total; the pre-rename
    gauge aliases survive one release with a deprecation HELP."""
    text = render_openmetrics({"retried": 3, "io_retries": 2,
                               "fabric": {"steals": 1}})
    for family in ("repro_trials_retried", "repro_io_retries",
                   "repro_harness_errors", "repro_cache_quarantined",
                   "repro_fabric_steals", "repro_fabric_leases_granted",
                   "repro_fabric_duplicate_completions"):
        assert "# TYPE %s_total counter" % family in text
        assert "# TYPE %s gauge" % family in text
        assert "DEPRECATED alias of %s_total" % family in text
    assert "repro_trials_retried_total 3" in text
    assert "repro_trials_retried 3" in text
    assert "repro_fabric_steals_total 1" in text


def test_openmetrics_omits_unmeasurable_eta():
    text = render_openmetrics({"total": 10, "eta_seconds": None})
    assert "repro_eta_seconds" not in text
    assert "repro_trials_total 10" in text
    # A measurable ETA is exported.
    text = render_openmetrics({"eta_seconds": 12.5})
    assert "repro_eta_seconds 12.5" in text


def test_openmetrics_escapes_labels():
    text = render_openmetrics({
        "outcome_counts": {'we"ird\\label': 1},
    })
    assert 'outcome="we\\"ird\\\\label"' in text


def test_write_metrics_writes_json_and_prom(tmp_path):
    directory = str(tmp_path)
    telemetry = _telemetry(total=2)
    telemetry.record_trial(_fake_trial())
    write_metrics(directory, telemetry.snapshot().to_dict())
    import json
    with open(metrics_path(directory)) as handle:
        snapshot = json.load(handle)
    assert snapshot["done"] == 1
    with open(prom_path(directory)) as handle:
        prom = handle.read()
    assert prom.endswith("# EOF\n")
    assert "repro_trials_done 1" in prom
