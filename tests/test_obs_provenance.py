"""Provenance tracker tests: read watching, clear attribution, causes."""

import pytest

from repro.obs import ProvenanceTracker
from repro.uarch.core import Pipeline
from repro.uarch.statelib import Field
from repro.workloads import get_workload


@pytest.fixture
def pipeline():
    machine = Pipeline(get_workload("gzip", scale="tiny").program)
    machine.run(50)
    return machine


def _arm(pipeline, bit=0):
    space = pipeline.space
    meta = next(m for m in space.elements if m.injectable)
    space.flip_bit(meta.index, bit)
    tracker = ProvenanceTracker()
    tracker.arm(pipeline, meta, bit)
    return tracker, space.handles[meta.index]


def test_arm_swaps_field_class_and_disarm_restores(pipeline):
    tracker, handle = _arm(pipeline)
    assert type(handle) is not Field
    assert isinstance(handle, Field)  # subclass with identical layout
    tracker.disarm()
    assert type(handle) is Field
    tracker.disarm()  # idempotent
    assert type(handle) is Field
    # Collected state survives disarm for post-trial reporting.
    assert tracker.armed
    assert tracker.summary()["element"] == tracker.element_name


def test_first_read_only_counts_inside_a_cycle(pipeline):
    tracker, handle = _arm(pipeline)
    handle.get()  # harness read, outside begin/end -- must not count
    assert tracker.first_read_cycle is None
    tracker.begin_cycle(pipeline)
    handle.get()
    assert tracker.first_read_cycle == 0
    newly_read, mechanism = tracker.end_cycle(pipeline, False, False)
    assert newly_read and mechanism is None  # still corrupt, just read
    tracker.disarm()


def test_unwatched_fields_pay_nothing(pipeline):
    tracker, handle = _arm(pipeline)
    space = pipeline.space
    other = next(h for h in space.handles if h is not handle)
    assert type(other) is Field  # only the flipped element is watched
    tracker.disarm()


@pytest.mark.parametrize("flushed,recovered,expected", [
    (False, False, "overwritten"),
    (False, True, "squashed"),
    (True, False, "flushed"),
    (True, True, "flushed"),  # a full flush wins over a squash
])
def test_clear_mechanism_attribution(pipeline, flushed, recovered,
                                     expected):
    tracker, handle = _arm(pipeline)
    tracker.begin_cycle(pipeline)
    pipeline.cycle_count += 1  # pretend one cycle elapsed
    handle.set(tracker.corrupt_value ^ 1)  # corruption disappears
    _newly, mechanism = tracker.end_cycle(pipeline, flushed, recovered)
    assert mechanism == expected
    assert tracker.cleared_cycle == 0
    assert tracker.masking_cause() == expected
    # Attribution fires exactly once.
    tracker.begin_cycle(pipeline)
    assert tracker.end_cycle(pipeline, True, True) == (False, None)
    tracker.disarm()


def test_never_read_masking_cause(pipeline):
    tracker, _handle = _arm(pipeline)
    tracker.begin_cycle(pipeline)
    tracker.end_cycle(pipeline, False, False)
    assert tracker.first_read_cycle is None
    assert tracker.masking_cause() == "never-read"
    tracker.disarm()


def test_read_but_unresolved_has_no_cause(pipeline):
    tracker, handle = _arm(pipeline)
    tracker.begin_cycle(pipeline)
    handle.get()
    tracker.end_cycle(pipeline, False, False)
    assert tracker.masking_cause() is None  # latent corruption
    tracker.disarm()


def test_rearm_resets_collected_state(pipeline):
    tracker, handle = _arm(pipeline)
    tracker.begin_cycle(pipeline)
    handle.get()
    tracker.end_cycle(pipeline, False, False)
    assert tracker.first_read_cycle is not None
    meta = next(m for m in pipeline.space.elements if m.injectable)
    tracker.arm(pipeline, meta, 2)
    assert tracker.first_read_cycle is None
    assert tracker.cleared_cycle is None
    tracker.disarm()
