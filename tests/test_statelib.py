"""State-space tests: allocation, inventory, injection, snapshots."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.errors import SimulationError
from repro.uarch.statelib import (
    StateCategory,
    StateSpace,
    StorageKind,
)
from repro.utils.rng import SplitRng


def make_space():
    space = StateSpace()
    a = space.field("a", 8, StateCategory.CTRL, StorageKind.LATCH)
    b = space.field("b", 64, StateCategory.DATA, StorageKind.RAM)
    c = space.field("c", 1, StateCategory.VALID, StorageKind.LATCH)
    g = space.field("g", 16, StateCategory.GHOST, StorageKind.LATCH)
    space.freeze()
    return space, a, b, c, g


def test_field_width_masking():
    space, a, b, c, _g = make_space()
    a.set(0x1FF)
    assert a.get() == 0xFF
    c.set(2)
    assert c.get() == 0


def test_flip():
    space, a, _b, _c, _g = make_space()
    a.set(0)
    a.flip(3)
    assert a.get() == 8
    a.flip(3)
    assert a.get() == 0


def test_flip_wraps_bit_index():
    space, a, _b, _c, _g = make_space()
    a.set(0)
    a.flip(8)  # 8 % 8 == 0
    assert a.get() == 1


def test_total_bits_filters():
    space, *_ = make_space()
    assert space.total_bits() == 8 + 64 + 1  # ghosts excluded
    assert space.total_bits(kind=StorageKind.LATCH) == 9
    assert space.total_bits(kind=StorageKind.RAM) == 64
    assert space.total_bits(category=StateCategory.DATA) == 64


def test_inventory_excludes_ghosts():
    space, *_ = make_space()
    inventory = space.inventory()
    assert StateCategory.GHOST not in inventory
    assert inventory[StateCategory.CTRL][StorageKind.LATCH] == 8


def test_allocation_after_freeze_rejected():
    space, *_ = make_space()
    with pytest.raises(SimulationError):
        space.field("late", 1, StateCategory.CTRL, StorageKind.LATCH)


def test_snapshot_restore():
    space, a, b, _c, g = make_space()
    a.set(5)
    b.set(123456)
    g.set(99)
    snap = space.snapshot()
    a.set(6)
    b.set(0)
    g.set(100)
    space.restore(snap)
    assert a.get() == 5
    assert b.get() == 123456
    assert g.get() == 99  # ghosts restored too (exact re-execution)


def test_signature_ignores_ghosts():
    space, a, _b, _c, g = make_space()
    a.set(1)
    before = space.signature()
    g.set(12345)
    assert space.signature() == before
    a.set(2)
    assert space.signature() != before


def test_choose_bit_uniform_over_widths():
    """Bit selection must weight elements by their width."""
    space, a, b, c, _g = make_space()
    rng = SplitRng(7)
    counts = {"a": 0, "b": 0, "c": 0}
    n = 8000
    for _ in range(n):
        index, _bit = space.choose_bit(
            rng, frozenset({StorageKind.LATCH, StorageKind.RAM}))
        counts[space.elements[index].name] += 1
    total_bits = 73
    assert counts["b"] / n == pytest.approx(64 / total_bits, abs=0.03)
    assert counts["a"] / n == pytest.approx(8 / total_bits, abs=0.02)
    assert counts["c"] > 0


def test_choose_bit_respects_kind_filter():
    space, a, b, _c, _g = make_space()
    rng = SplitRng(3)
    for _ in range(200):
        index, _bit = space.choose_bit(rng, frozenset({StorageKind.LATCH}))
        assert space.elements[index].kind == StorageKind.LATCH


def test_choose_bit_no_eligible_state():
    space = StateSpace()
    space.field("g", 4, StateCategory.GHOST, StorageKind.LATCH)
    space.freeze()
    with pytest.raises(SimulationError):
        space.choose_bit(SplitRng(1), frozenset({StorageKind.RAM}))


def test_flip_bit_returns_metadata():
    space, a, *_ = make_space()
    meta = space.flip_bit(a.index, 0)
    assert meta.name == "a"
    assert meta.category == StateCategory.CTRL
    assert a.get() == 1


def test_array_allocation():
    space = StateSpace()
    regs = space.array("r", 4, 7, StateCategory.REGPTR, StorageKind.RAM)
    space.freeze()
    assert len(regs) == 4
    regs[2].set(99)
    assert regs[2].get() == 99
    assert space.total_bits() == 28


@given(st.lists(st.integers(min_value=0, max_value=255), min_size=1,
                max_size=20))
def test_snapshot_roundtrip_property(values):
    space = StateSpace()
    fields = [
        space.field("f%d" % i, 8, StateCategory.CTRL, StorageKind.LATCH)
        for i in range(len(values))
    ]
    space.freeze()
    for field, value in zip(fields, values):
        field.set(value)
    snap = space.snapshot()
    signature = space.signature()
    for field in fields:
        field.set(0)
    space.restore(snap)
    assert [f.get() for f in fields] == values
    assert space.signature() == signature
