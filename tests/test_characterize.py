"""Workload-signature tests: the paper's Section 3.1 claims hold here."""

import pytest

from repro.workloads.characterize import (
    characterize,
    characterize_all,
    render_profiles,
)


@pytest.fixture(scope="module")
def profiles():
    return characterize_all(
        names=("gzip", "bzip2", "mcf", "gcc", "perlbmk", "vpr"),
        warmup_cycles=23000, window_cycles=8000)


def test_gzip_highest_ipc(profiles):
    """Paper 3.1: 'gzip has the highest rate of instructions committed
    per cycle'."""
    ipcs = {name: profile.ipc for name, profile in profiles.items()}
    assert max(ipcs, key=ipcs.get) in ("gzip", "bzip2")
    assert ipcs["gzip"] > 1.5


def test_bzip2_best_dcache_hit_rate(profiles):
    """Paper 3.1: bzip2 has 'the highest data cache hit rate'."""
    rates = {name: profile.dcache_hit_rate
             for name, profile in profiles.items()}
    assert rates["bzip2"] >= max(rates.values()) - 0.02
    assert rates["bzip2"] > 0.95


def test_mcf_miss_bound(profiles):
    assert profiles["mcf"].dcache_hit_rate < \
        profiles["bzip2"].dcache_hit_rate
    assert profiles["mcf"].ipc < profiles["gzip"].ipc


def test_vpr_mispredicts_more_than_gzip(profiles):
    """vpr's random accept/reject branch defeats the predictor."""
    assert profiles["vpr"].branch_mpki > profiles["gzip"].branch_mpki


def test_fields_sane(profiles):
    for profile in profiles.values():
        assert 0.0 <= profile.ipc <= 6.0
        assert 0.0 <= profile.dcache_hit_rate <= 1.0
        assert profile.branch_mpki >= 0.0


def test_render_profiles(profiles):
    text = render_profiles(profiles)
    assert "kernel" in text
    assert "gzip" in text


def test_single_characterize():
    profile = characterize("crafty", warmup_cycles=8000,
                           window_cycles=4000)
    assert profile.name == "crafty"
    assert profile.ipc > 0.5
