"""Fabric integration tests: coordinator + workers vs the serial runner.

The acceptance bar for the fabric is *byte-identity*: a campaign
distributed over leases and workers -- including under seeded network
chaos with dropped leases, duplicate completions and partitioned
workers -- must journal exactly the trial lines the serial runner
journals, each exactly once.  These tests run a real coordinator and
real workers in one event loop against ``CampaignConfig.test()`` (12
trials) and compare canonical trial bytes against a module-scoped
serial reference run.
"""

import asyncio
import json
import shutil

import pytest

from repro.errors import FabricError
from repro.fabric import (
    Coordinator,
    FabricWorker,
    NetChaosSchedule,
    call,
    render_status,
)
from repro.inject.campaign import CampaignConfig
from repro.inject.store import config_to_dict
from repro.runner import run_campaign
from repro.runner.journal import canonical_trial_bytes, journal_path


@pytest.fixture(scope="module")
def config():
    return CampaignConfig.test()


@pytest.fixture(scope="module")
def serial_dir(tmp_path_factory, config):
    directory = tmp_path_factory.mktemp("fabric-serial") / "campaign"
    run_campaign(config, workers=0, directory=str(directory))
    return directory


def run_fabric(base_dir, config, workers, ttl=5.0, shard_size=3,
               submit_first=True, tenants=None, extra_configs=()):
    """One coordinator + N workers to completion; returns the status."""

    async def scenario():
        coord = Coordinator(str(base_dir), ttl=ttl, shard_size=shard_size)
        port = await coord.start()
        try:
            if submit_first:
                configs = [config] + list(extra_configs)
                names = tenants or ["default"] * len(configs)
                for tenant, cfg in zip(names, configs):
                    await call("127.0.0.1", port, "/submit",
                               {"tenant": tenant,
                                "config": config_to_dict(cfg)})
            fleet = [
                FabricWorker("127.0.0.1", port, name="w%d" % index,
                             exit_when_idle=True, poll_interval=0.05,
                             chaos=chaos)
                for index, chaos in enumerate(workers)
            ]
            stats = await asyncio.gather(*(w.run() for w in fleet))
            status = await call("127.0.0.1", port, "/status", {})
            return status, stats
        finally:
            await coord.stop()

    return asyncio.run(scenario())


def assert_byte_identical(base_dir, fingerprint, serial_dir):
    fabric_journal = journal_path(str(base_dir / fingerprint[:12]))
    serial_journal = journal_path(str(serial_dir))
    assert canonical_trial_bytes(fabric_journal) \
        == canonical_trial_bytes(serial_journal)


def journal_unit_keys(base_dir, fingerprint):
    path = journal_path(str(base_dir / fingerprint[:12]))
    keys = []
    with open(path) as handle:
        for line in handle:
            record = json.loads(line)
            if record.get("type") == "trial":
                keys.append(tuple(record["unit"]))
    return keys


def fingerprint_of(config):
    from repro.inject.store import campaign_fingerprint
    return campaign_fingerprint(config)


# -- the smoke: 2 plain workers ------------------------------------------


def test_two_worker_fabric_matches_serial_byte_for_byte(
        tmp_path, config, serial_dir):
    status, stats = run_fabric(tmp_path, config, workers=[None, None])
    fp = fingerprint_of(config)
    assert status["fabric"]["campaigns_done"] == 1
    assert status["fabric"]["campaigns_active"] == 0
    assert status["done"] == config.total_trials
    assert sum(s["trials"] for s in stats) == config.total_trials
    keys = journal_unit_keys(tmp_path, fp)
    assert len(keys) == len(set(keys)) == config.total_trials
    assert_byte_identical(tmp_path, fp, serial_dir)
    # The status one-liner renders without blowing up and says done.
    assert "campaigns 0 active 1 done" in render_status(status)


# -- the acceptance criterion: chaos, auto-recovery, still identical -----


def test_chaotic_fabric_recovers_and_stays_byte_identical(
        tmp_path, config, serial_dir):
    # Worker 0 drops its first lease on the floor and duplicates the
    # completion of its second; worker 1 partitions during its first
    # lease (no heartbeats, completes late after the TTL).  The short
    # TTL makes expiry + work stealing fire within the test.
    chaos = [
        NetChaosSchedule.from_spec("drop@1,dup@2", seed=2004),
        NetChaosSchedule.from_spec("partition@1", seed=2004),
    ]
    status, stats = run_fabric(tmp_path, config, workers=chaos,
                               ttl=0.6, shard_size=3)
    fp = fingerprint_of(config)
    fabric = status["fabric"]
    assert fabric["campaigns_done"] == 1
    # The dropped and partitioned leases both expired and were stolen.
    assert fabric["steals"] >= 1
    # The chaotic duplicate POST (and/or the late partition completion)
    # was absorbed idempotently, not double-journaled.
    assert fabric["duplicate_completions"] >= 1
    keys = journal_unit_keys(tmp_path, fp)
    assert len(keys) == len(set(keys)) == config.total_trials
    assert_byte_identical(tmp_path, fp, serial_dir)
    dropped = sum(s["dropped"] for s in stats)
    duplicates = sum(s["duplicates_sent"] for s in stats)
    partitions = sum(s["partitions"] for s in stats)
    assert (dropped, duplicates, partitions) == (1, 1, 1)


# -- resume: a partial journal is honored, not recomputed ----------------


def test_submit_resumes_partial_journal_and_converges(
        tmp_path, config, serial_dir):
    # Seed the campaign directory with the serial journal's header plus
    # its first 4 trial lines: shard 3 -> range (0,3) is fully covered
    # and pre-completed; unit 3 of range (3,6) is re-executed with the
    # rest of its range and deduped on append.
    fp = fingerprint_of(config)
    campaign_dir = tmp_path / fp[:12]
    campaign_dir.mkdir(parents=True)
    serial_lines = journal_path(str(serial_dir))
    with open(serial_lines) as handle:
        lines = handle.readlines()
    with open(journal_path(str(campaign_dir)), "w") as handle:
        handle.writelines(lines[:5])  # header + 4 trials

    async def scenario():
        coord = Coordinator(str(tmp_path), ttl=5.0, shard_size=3)
        port = await coord.start()
        try:
            reply = await call("127.0.0.1", port, "/submit",
                               {"config": config_to_dict(config)})
            worker = FabricWorker("127.0.0.1", port, name="resumer",
                                  exit_when_idle=True, poll_interval=0.05)
            stats = await worker.run()
            return reply, stats
        finally:
            await coord.stop()

    reply, stats = asyncio.run(scenario())
    assert reply["resumed_units"] == 4
    assert reply["ranges"] == 4  # 12 trials / shard 3
    # Only ranges (3,6), (6,9), (9,12) re-executed: 9 trials.
    assert stats["trials"] == 9
    keys = journal_unit_keys(tmp_path, fp)
    assert len(keys) == len(set(keys)) == config.total_trials
    assert_byte_identical(tmp_path, fp, serial_dir)


def test_resume_refuses_foreign_fingerprint(tmp_path, config, serial_dir):
    other = CampaignConfig.test(seed=config.seed + 1)
    campaign_dir = tmp_path / fingerprint_of(other)[:12]
    campaign_dir.mkdir(parents=True)
    # A journal for *config* squatting in *other*'s directory.
    shutil.copy(journal_path(str(serial_dir)),
                journal_path(str(campaign_dir)))

    async def scenario():
        coord = Coordinator(str(tmp_path))
        port = await coord.start()
        try:
            with pytest.raises(FabricError, match="refusing to mix"):
                await call("127.0.0.1", port, "/submit",
                           {"config": config_to_dict(other)})
        finally:
            await coord.stop()

    asyncio.run(scenario())


# -- multi-tenant: two campaigns, fair service, both converge ------------


def test_two_tenants_both_complete(tmp_path, config, serial_dir):
    other = CampaignConfig.test(seed=config.seed + 7)
    status, _stats = run_fabric(
        tmp_path, config, workers=[None, None],
        tenants=["alice", "bob"], extra_configs=[other])
    fabric = status["fabric"]
    assert fabric["campaigns_done"] == 2
    assert fabric["queue_depth"] == {}
    for cfg in (config, other):
        fp = fingerprint_of(cfg)
        keys = journal_unit_keys(tmp_path, fp)
        assert len(keys) == len(set(keys)) == cfg.total_trials
    assert_byte_identical(tmp_path, fingerprint_of(config), serial_dir)


# -- wire-level rejections the lease table must survive ------------------


def test_corrupt_segment_is_rejected_and_the_range_recovers(
        tmp_path, config, serial_dir):
    async def scenario():
        coord = Coordinator(str(tmp_path), ttl=0.5, shard_size=3)
        port = await coord.start()
        try:
            await call("127.0.0.1", port, "/submit",
                       {"config": config_to_dict(config)})
            granted = await call("127.0.0.1", port, "/lease",
                                 {"worker": "evil"})
            lease = granted["lease"]
            with pytest.raises(FabricError, match="checksum mismatch"):
                await call("127.0.0.1", port, "/complete",
                           {"worker": "evil",
                            "campaign": lease["campaign"],
                            "lease_id": lease["lease_id"],
                            "fingerprint": granted["fingerprint"],
                            "entries": [[["gzip", 0, 0], {}]],
                            "checksum": "00000000"})
            # The range was not completed; an honest worker finishes
            # the campaign once the poisoned lease expires.
            worker = FabricWorker("127.0.0.1", port, name="honest",
                                  exit_when_idle=True, poll_interval=0.05)
            await worker.run()
            return await call("127.0.0.1", port, "/status", {})
        finally:
            await coord.stop()

    status = asyncio.run(scenario())
    assert status["fabric"]["campaigns_done"] == 1
    assert status["fabric"]["steals"] >= 1
    assert_byte_identical(tmp_path, fingerprint_of(config), serial_dir)


def test_submit_is_idempotent_per_fingerprint(tmp_path, config):
    async def scenario():
        coord = Coordinator(str(tmp_path))
        port = await coord.start()
        try:
            first = await call("127.0.0.1", port, "/submit",
                               {"tenant": "alice",
                                "config": config_to_dict(config)})
            second = await call("127.0.0.1", port, "/submit",
                                {"tenant": "bob",
                                 "config": config_to_dict(config)})
            return first, second
        finally:
            await coord.stop()

    first, second = asyncio.run(scenario())
    assert first["campaign"] == second["campaign"]
    assert second["tenant"] == "alice"  # original registration wins
