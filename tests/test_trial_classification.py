"""Trial classification: directed faults must land in the right outcome.

Where the microarchitectural campaigns sample randomly, these tests
inject *chosen* bits whose consequences are predictable and assert the
classifier reports the paper's corresponding outcome and failure mode.
"""

import pytest

from repro.inject.golden import record_golden, workload_page_sets
from repro.inject.outcome import FailureMode, TrialOutcome
from repro.inject.trial import run_trial
from repro.uarch.config import PipelineConfig
from repro.uarch.core import Pipeline
from repro.uarch.statelib import StorageKind
from repro.utils.rng import SplitRng
from repro.workloads import get_workload

KINDS = frozenset({StorageKind.LATCH, StorageKind.RAM})
HORIZON = 600
MARGIN = 250


@pytest.fixture(scope="module")
def rig():
    """A warmed pipeline, its checkpoint, and its golden trace."""
    workload = get_workload("gzip", scale="tiny")
    insn_pages, data_pages = workload_page_sets(workload.program)
    pipeline = Pipeline(workload.program, PipelineConfig.paper())
    pipeline.run(700)
    checkpoint = pipeline.checkpoint()
    golden = record_golden(pipeline, checkpoint, HORIZON, MARGIN,
                           insn_pages, data_pages)
    return pipeline, checkpoint, golden


def _directed_trial(pipeline, checkpoint, golden, element_name, bit,
                    horizon=HORIZON):
    """run_trial with a deterministic single-element fault."""
    index = next(meta.index for meta in pipeline.space.elements
                 if meta.name == element_name)

    class _Rng:
        """Drives StateSpace.choose_bit to the wanted (element, bit)."""

        def randrange(self, total):
            # Find the cumulative offset of our element.
            table = pipeline.space._table_for(KINDS)
            indices, cumulative, _total = table
            position = indices.index(index)
            prior = cumulative[position - 1] if position else 0
            return prior + bit

    return run_trial(pipeline, checkpoint, golden, _Rng(), KINDS,
                     "gzip", 0, horizon=horizon)


def test_no_fault_would_match(rig):
    """Sanity: an uninjected replay matches the golden signature."""
    pipeline, checkpoint, golden = rig
    pipeline.restore(checkpoint)
    pipeline.cycle()
    assert pipeline.space.signature() == golden.sigs[0]


def test_committed_regfile_bit_is_sdc_regfile(rig):
    """Flip a mapped architectural register's value: regfile SDC."""
    pipeline, checkpoint, golden = rig
    pipeline.restore(checkpoint)
    preg = pipeline.arch_rat.read(9)  # s0: live loop counter state
    result = _directed_trial(pipeline, checkpoint, golden,
                             "regfile.data[%d]" % preg, 7)
    assert result.outcome == TrialOutcome.SDC
    assert result.failure_mode == FailureMode.REGFILE


def test_archrat_pointer_is_failure(rig):
    """Corrupt the architectural alias of a live register."""
    pipeline, checkpoint, golden = rig
    result = _directed_trial(pipeline, checkpoint, golden,
                             "archrat[9]", 2)
    assert result.outcome.is_failure


def test_rob_count_high_bit_locks(rig):
    """Inflating the ROB occupancy count wedges dispatch: locked."""
    pipeline, checkpoint, golden = rig
    result = _directed_trial(pipeline, checkpoint, golden, "rob.count", 6)
    assert result.outcome == TrialOutcome.TERMINATED
    assert result.failure_mode == FailureMode.LOCKED


def test_fetch_pc_high_bit_redirects(rig):
    """A high fetch-PC bit sends fetch to an unmapped page."""
    pipeline, checkpoint, golden = rig
    result = _directed_trial(pipeline, checkpoint, golden, "fetch.pc", 40)
    assert result.outcome.is_failure
    assert result.failure_mode in (FailureMode.ITLB, FailureMode.CTRL,
                                   FailureMode.LOCKED)


def test_free_regfile_entry_is_benign(rig):
    """Flip the value of an unmapped (free) physical register: masked."""
    pipeline, checkpoint, golden = rig
    pipeline.restore(checkpoint)
    mapped = {pipeline.arch_rat.read(a) for a in range(32)}
    free_head = pipeline.spec_freelist.head.get()
    # Take the *last* register of the free list: it will not be
    # reallocated within the horizon... it may; benign either way only if
    # the value is overwritten before use, so use the farthest slot.
    slot = (free_head + pipeline.spec_freelist.available - 1) \
        % pipeline.spec_freelist.capacity
    preg = pipeline.spec_freelist.entries[slot].get()
    assert preg not in mapped
    result = _directed_trial(pipeline, checkpoint, golden,
                             "regfile.data[%d]" % preg, 13)
    assert result.outcome.is_benign


def test_spare_annex_bit_is_benign(rig):
    """Bit 64 of a register entry feeds no logic: at worst Gray."""
    pipeline, checkpoint, golden = rig
    result = _directed_trial(pipeline, checkpoint, golden,
                             "regfile.data[5]", 64)
    assert result.outcome.is_benign


def test_trial_results_carry_metadata(rig):
    pipeline, checkpoint, golden = rig
    result = _directed_trial(pipeline, checkpoint, golden, "rob.count", 6)
    assert result.workload == "gzip"
    assert result.category == "qctrl"
    assert result.kind in ("latch", "ram")
    assert result.total_inflight >= result.valid_inflight >= 0


def test_trial_determinism(rig):
    pipeline, checkpoint, golden = rig
    first = run_trial(pipeline, checkpoint, golden, SplitRng(5), KINDS,
                      "gzip", 0, horizon=HORIZON)
    second = run_trial(pipeline, checkpoint, golden, SplitRng(5), KINDS,
                       "gzip", 0, horizon=HORIZON)
    assert first.outcome == second.outcome
    assert first.element_name == second.element_name
    assert first.cycles_run == second.cycles_run
