"""Parallel campaign runner tests."""

import pytest

from repro.inject.campaign import Campaign, CampaignConfig
from repro.inject.parallel import run_parallel


def make_config():
    return CampaignConfig(
        workloads=("gzip", "gcc"), scale="tiny",
        trials_per_start_point=5, start_points_per_workload=1,
        warmup_cycles=400, spacing_cycles=150, horizon=300, margin=150)


def test_parallel_matches_serial():
    config = make_config()
    serial = Campaign(config).run()
    parallel = run_parallel(config, workers=2)
    assert len(parallel.trials) == len(serial.trials)
    assert [(t.workload, t.element_name, t.outcome) for t in parallel.trials] \
        == [(t.workload, t.element_name, t.outcome) for t in serial.trials]
    assert parallel.eligible_bits == serial.eligible_bits


def test_parallel_single_worker_falls_back():
    config = make_config()
    result = run_parallel(config, workers=1)
    assert len(result.trials) == config.total_trials


def test_parallel_single_workload_falls_back():
    config = CampaignConfig(
        workloads=("gzip",), scale="tiny", trials_per_start_point=4,
        start_points_per_workload=1, warmup_cycles=400,
        spacing_cycles=150, horizon=300, margin=150)
    result = run_parallel(config, workers=4)
    assert len(result.trials) == 4
