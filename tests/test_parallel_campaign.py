"""``run_parallel`` compatibility-wrapper tests.

``run_parallel`` is now a thin wrapper over the trial-granular engine
in :mod:`repro.runner`; these tests pin its contract: serial-order,
byte-identical results for any worker count, including the
single-workload case the old workload-sharded runner could not
parallelise at all.
"""

from repro.inject.campaign import Campaign, CampaignConfig
from repro.inject.parallel import run_parallel


def make_config():
    return CampaignConfig(
        workloads=("gzip", "gcc"), scale="tiny",
        trials_per_start_point=5, start_points_per_workload=1,
        warmup_cycles=400, spacing_cycles=150, horizon=300, margin=150)


def test_parallel_matches_serial():
    config = make_config()
    serial = Campaign(config).run()
    parallel = run_parallel(config, workers=2)
    assert parallel.trials == serial.trials
    assert parallel.eligible_bits == serial.eligible_bits
    assert parallel.inventory == serial.inventory


def test_parallel_single_worker_matches_serial():
    config = make_config()
    serial = Campaign(config).run()
    result = run_parallel(config, workers=1)
    assert result.trials == serial.trials


def test_parallel_single_workload_uses_trial_granularity():
    # Historically this configuration silently fell back to the serial
    # path (parallelism was capped at len(workloads)); the engine now
    # schedules its 8 trial units across all four workers and must
    # still return the byte-identical serial-order result.
    config = CampaignConfig(
        workloads=("gzip",), scale="tiny", trials_per_start_point=4,
        start_points_per_workload=2, warmup_cycles=400,
        spacing_cycles=150, horizon=300, margin=150)
    serial = Campaign(config).run()
    result = run_parallel(config, workers=4)
    assert result.trials == serial.trials
