"""Ghost-state invariance: bookkeeping must never steer the machine.

DESIGN.md's ghost rule: sequence numbers exist for analysis only.  If
any stage logic read them, fault-free behaviour would depend on
simulator bookkeeping and the latch-accuracy claim would be void.  This
test corrupts every ghost field mid-execution and requires bit-exact
architectural behaviour afterwards.
"""

from repro.uarch.core import Pipeline
from repro.uarch.statelib import StateCategory
from repro.utils.rng import SplitRng
from repro.workloads import get_workload


def collect_outputs(pipeline, cycles):
    retired = []
    for _ in range(cycles):
        if pipeline.halted:
            break
        pipeline.cycle()
        retired.extend((pc, op, dest, value)
                       for _seq, pc, op, dest, value
                       in pipeline.retired_this_cycle)
    return retired, pipeline.output_text()


def test_ghost_corruption_is_behaviour_free():
    program = get_workload("gcc", scale="tiny").program

    reference = Pipeline(program)
    reference.run(700)
    reference_trace, reference_output = collect_outputs(reference, 800)

    victim = Pipeline(program)
    victim.run(700)
    rng = SplitRng(99)
    ghosts = [meta for meta in victim.space.elements
              if meta.category == StateCategory.GHOST]
    assert ghosts, "no ghost fields found"
    for meta in ghosts:
        victim.space.values[meta.index] = rng.getrandbits(meta.width)
    victim_trace, victim_output = collect_outputs(victim, 800)

    assert victim_trace == reference_trace
    assert victim_output == reference_output


def test_ghost_corruption_does_not_change_signature_stream():
    program = get_workload("gzip", scale="tiny").program
    reference = Pipeline(program)
    victim = Pipeline(program)
    reference.run(400)
    victim.run(400)

    rng = SplitRng(5)
    for meta in victim.space.elements:
        if meta.category == StateCategory.GHOST:
            victim.space.values[meta.index] = rng.getrandbits(meta.width)

    for _ in range(300):
        reference.cycle()
        victim.cycle()
        assert victim.space.signature() == reference.space.signature()
