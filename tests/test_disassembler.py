"""Disassembler tests."""

from repro.isa.disassembler import disassemble
from repro.isa.encoding import encode
from repro.isa.instruction import Instruction
from repro.isa.opcodes import Op


def test_operate_register_form():
    text = disassemble(encode(Instruction(op=Op.ADDQ, ra=1, rb=2, rc=3)))
    assert text.split() == ["addq", "r1,", "r2,", "r3"]


def test_operate_literal_form():
    text = disassemble(encode(Instruction(op=Op.SUBQ, ra=1, rc=3,
                                          is_literal=True, literal=9)))
    assert "#9" in text


def test_memory_form():
    text = disassemble(encode(Instruction(op=Op.LDQ, ra=4, rb=5, disp=-8)))
    assert "ldq" in text and "-8(r5)" in text


def test_branch_with_pc():
    word = encode(Instruction(op=Op.BEQ, ra=2, disp=3))
    text = disassemble(word, pc=0x1000)
    assert "0x1010" in text


def test_branch_without_pc():
    word = encode(Instruction(op=Op.BEQ, ra=2, disp=3))
    assert ".+12" in disassemble(word)


def test_jump_form():
    text = disassemble(encode(Instruction(op=Op.JSR, ra=26, rb=4)))
    assert "jsr" in text and "(r4)" in text


def test_pal_form():
    assert disassemble(encode(Instruction(op=Op.HALT))) == "halt"


def test_invalid_word():
    # Opcode 0x04 is unassigned in the subset.
    assert ".invalid" in disassemble(0x04 << 26)
    # CALL_PAL with an unknown function code.
    assert ".invalid" in disassemble(0x03FFFFFF)


def test_accepts_instruction_object():
    insn = Instruction(op=Op.XOR, ra=1, rb=2, rc=3)
    assert "xor" in disassemble(insn)
