"""Semantics tests: every operation against a Python reference model."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.isa.opcodes import Op
from repro.isa.semantics import (
    Exc,
    check_alignment,
    cond_taken,
    effective_address,
    operate,
)
from repro.utils.bits import MASK32, MASK64, sext, to_signed

U64 = st.integers(min_value=0, max_value=MASK64)


def test_addq_wraps():
    value, exc = operate(Op.ADDQ, MASK64, 1)
    assert value == 0
    assert exc == Exc.NONE


def test_subq_wraps():
    value, _ = operate(Op.SUBQ, 0, 1)
    assert value == MASK64


def test_addl_sign_extends():
    value, _ = operate(Op.ADDL, 0x7FFFFFFF, 1)
    assert to_signed(value) == -(1 << 31)


def test_compares():
    assert operate(Op.CMPEQ, 5, 5)[0] == 1
    assert operate(Op.CMPEQ, 5, 6)[0] == 0
    assert operate(Op.CMPLT, MASK64, 0)[0] == 1  # -1 < 0 signed
    assert operate(Op.CMPULT, MASK64, 0)[0] == 0  # unsigned
    assert operate(Op.CMPLE, 3, 3)[0] == 1
    assert operate(Op.CMPULE, 4, 3)[0] == 0


def test_logical_ops():
    assert operate(Op.AND, 0b1100, 0b1010)[0] == 0b1000
    assert operate(Op.BIS, 0b1100, 0b1010)[0] == 0b1110
    assert operate(Op.XOR, 0b1100, 0b1010)[0] == 0b0110
    assert operate(Op.BIC, 0b1100, 0b1010)[0] == 0b0100
    assert operate(Op.ORNOT, 0, 0)[0] == MASK64
    assert operate(Op.EQV, 5, 5)[0] == MASK64


def test_shifts():
    assert operate(Op.SLL, 1, 63)[0] == 1 << 63
    assert operate(Op.SRL, 1 << 63, 63)[0] == 1
    assert operate(Op.SRA, 1 << 63, 63)[0] == MASK64  # arithmetic
    # Shift amounts use only the low 6 bits.
    assert operate(Op.SLL, 1, 64)[0] == 1


def test_multiplies():
    assert operate(Op.MULQ, 3, 5)[0] == 15
    assert operate(Op.MULL, 1 << 31, 2)[0] == 0  # 32-bit wrap
    assert operate(Op.UMULH, 1 << 63, 4)[0] == 2


def test_divide():
    assert operate(Op.DIVQ, 7, 2)[0] == 3
    value, _ = operate(Op.DIVQ, to_signed(MASK64) & MASK64, 2)  # -1 / 2
    assert to_signed(value) == 0
    value, _ = operate(Op.DIVQ, (-7) & MASK64, 2)
    assert to_signed(value) == -3  # truncation toward zero


def test_remainder():
    assert operate(Op.REMQ, 7, 3)[0] == 1
    value, _ = operate(Op.REMQ, (-7) & MASK64, 3)
    assert to_signed(value) == -1


def test_divide_by_zero():
    assert operate(Op.DIVQ, 1, 0)[1] == Exc.DIV_ZERO
    assert operate(Op.REMQ, 1, 0)[1] == Exc.DIV_ZERO


def test_unknown_op_is_invalid():
    assert operate(Op.HALT, 0, 0)[1] == Exc.INVALID_INSN
    assert operate(Op.BEQ, 0, 0)[1] == Exc.INVALID_INSN


@pytest.mark.parametrize("op,a,expected", [
    (Op.BEQ, 0, True),
    (Op.BEQ, 1, False),
    (Op.BNE, 1, True),
    (Op.BLT, MASK64, True),
    (Op.BLT, 1, False),
    (Op.BGE, 0, True),
    (Op.BLE, 0, True),
    (Op.BGT, 1, True),
    (Op.BGT, MASK64, False),
    (Op.BLBC, 2, True),
    (Op.BLBS, 3, True),
])
def test_cond_taken(op, a, expected):
    assert cond_taken(op, a) is expected


def test_cond_taken_total():
    assert cond_taken(Op.ADDQ, 123) is False
    assert cond_taken(Op.BR, 0) is True
    assert cond_taken(Op.RET, 0) is True


def test_effective_address_wraps():
    assert effective_address(MASK64, 8) == 7


def test_alignment():
    assert check_alignment(8, 8) == Exc.NONE
    assert check_alignment(4, 8) == Exc.UNALIGNED
    assert check_alignment(4, 4) == Exc.NONE
    assert check_alignment(2, 4) == Exc.UNALIGNED


@given(U64, U64)
def test_addq_matches_reference(a, b):
    assert operate(Op.ADDQ, a, b)[0] == (a + b) & MASK64


@given(U64, U64)
def test_mulq_matches_reference(a, b):
    assert operate(Op.MULQ, a, b)[0] == (a * b) & MASK64


@given(U64, U64)
def test_umulh_matches_reference(a, b):
    assert operate(Op.UMULH, a, b)[0] == ((a * b) >> 64) & MASK64


@given(U64, st.integers(min_value=1, max_value=MASK64))
def test_div_rem_identity(a, b):
    """(a / b) * b + (a % b) == a in signed 64-bit arithmetic."""
    quotient, _ = operate(Op.DIVQ, a, b)
    remainder, _ = operate(Op.REMQ, a, b)
    sq, sr = to_signed(quotient), to_signed(remainder)
    assert (sq * to_signed(b) + sr) & MASK64 == a


@given(U64, U64)
def test_every_operate_masks_to_64_bits(a, b):
    for op in (Op.ADDQ, Op.SUBQ, Op.SLL, Op.MULQ, Op.XOR, Op.ORNOT,
               Op.ADDL, Op.SUBL, Op.SRA):
        value, _ = operate(op, a, b)
        assert 0 <= value <= MASK64
