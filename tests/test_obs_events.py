"""Event tracer tests: ring bounds, counts, timeline rendering."""

from repro.obs import EVENT_FIELDS, EventTracer, TraceEvent


def test_ring_bound_and_dropped_accounting():
    tracer = EventTracer(capacity=4)
    for cycle in range(10):
        tracer.emit(cycle, "fetch", seq=cycle, pc=0x1000 + cycle)
    assert len(tracer.events()) == 4
    assert tracer.dropped == 6
    # Per-kind counts survive the ring bound.
    assert tracer.counts["fetch"] == 10
    assert [event.cycle for event in tracer.events()] == [6, 7, 8, 9]


def test_kind_payload_field_does_not_collide():
    tracer = EventTracer()
    tracer.emit(5, "inject", element="rob[3].pc", category="pc",
                kind="latch", bit=7)
    event = tracer.events("inject")[0]
    assert event.kind == "inject"
    assert event.data["kind"] == "latch"
    assert tracer.inject_cycle == 5


def test_timeline_relative_to_injection():
    tracer = EventTracer()
    tracer.emit(100, "fetch", seq=1, pc=0x2000)
    tracer.emit(103, "inject", element="lq[0].addr", category="lsq",
                kind="latch", bit=3)
    tracer.emit(105, "retire", seq=1, pc=0x2000, op_id=4, dest=2, value=9)
    timeline = tracer.render_timeline()
    assert "c+-3" in timeline  # pre-injection event
    assert "c+0" in timeline
    assert "c+2" in timeline
    assert "pc=0x2000" in timeline


def test_timeline_filters_and_limits():
    tracer = EventTracer()
    for cycle in range(20):
        tracer.emit(cycle, "fetch", seq=cycle, pc=cycle)
        tracer.emit(cycle, "retire", seq=cycle, pc=cycle, op_id=0,
                    dest=None, value=None)
    only_retire = tracer.render_timeline(kinds=("retire",))
    assert "fetch" not in only_retire
    assert "value=-" in only_retire  # None renders as "-"
    limited = tracer.render_timeline(limit=3)
    assert len(limited.splitlines()) == 3


def test_dropped_banner_and_empty_timeline():
    tracer = EventTracer(capacity=2)
    assert tracer.render_timeline() == "(no events)"
    for cycle in range(5):
        tracer.emit(cycle, "flush", reason="timeout")
    assert "3 earlier events dropped" in tracer.render_timeline()
    tracer.clear()
    assert tracer.render_timeline() == "(no events)"
    assert tracer.dropped == 0 and not tracer.counts


def test_event_dict_round_trip_and_schema():
    event = TraceEvent(7, "drain", {"address": 0x4000, "value": 1,
                                    "size": 8})
    record = event.to_dict()
    assert record == {"cycle": 7, "kind": "drain", "address": 0x4000,
                      "value": 1, "size": 8}
    # Every schema kind lists its payload fields for the docs/tests.
    for kind, fields in EVENT_FIELDS.items():
        assert isinstance(kind, str) and isinstance(fields, tuple)
