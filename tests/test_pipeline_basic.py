"""Directed pipeline tests: each mechanism exercised by a small program."""

import pytest

from repro.isa.assembler import assemble
from repro.uarch.config import PipelineConfig
from repro.uarch.core import Pipeline


def run(source, config=None, max_cycles=50_000):
    pipeline = Pipeline(assemble(source), config or PipelineConfig.paper())
    pipeline.run(max_cycles)
    return pipeline


def test_straightline_arithmetic():
    pipe = run("""
    li   a0, 6
    mulq a0, #7, a0
    putq
    halt
""")
    assert pipe.halted
    assert pipe.output_text() == "42\n"


def test_dependent_chain():
    pipe = run("""
    li   t0, 1
    addq t0, t0, t0
    addq t0, t0, t0
    addq t0, t0, t0
    addq t0, t0, t0
    mov  t0, a0
    putq
    halt
""")
    assert pipe.output_text() == "16\n"


def test_branch_taken_and_not_taken():
    pipe = run("""
    clr  t0
    beq  t0, over       ; taken
    li   a0, 1
    putq
over:
    li   t1, 1
    beq  t1, bad        ; not taken
    li   a0, 2
    putq
    halt
bad:
    li   a0, 3
    putq
    halt
""")
    assert pipe.output_text() == "2\n"


def test_tight_loop_branch_prediction_warms():
    pipe = run("""
    li   s0, 200
    clr  t0
loop:
    addq t0, #1, t0
    subq s0, #1, s0
    bgt  s0, loop
    mov  t0, a0
    putq
    halt
""")
    assert pipe.output_text() == "200\n"
    # Predicted loop should sustain near-peak throughput.
    assert pipe.total_retired / pipe.cycle_count > 1.0


def test_load_store_forwarding():
    pipe = run("""
    li   s1, 0x4000
    li   t0, 77
    stq  t0, 0(s1)
    ldq  t1, 0(s1)      ; forwarded from the store queue
    mov  t1, a0
    putq
    halt
""")
    assert pipe.output_text() == "77\n"


def test_longword_memory():
    pipe = run("""
    li   s1, 0x4000
    li   t0, -5
    stl  t0, 4(s1)
    ldl  a0, 4(s1)
    putq
    halt
""")
    assert pipe.output_text() == "-5\n"


def test_cache_miss_path():
    """Loads spread over > L1 capacity must still be correct."""
    pipe = run("""
    li   s1, 0x10000
    li   s0, 64
    clr  t2
init:
    sll  s0, #10, t0     ; 1KB stride: many lines, some misses
    addq s1, t0, t0
    stq  s0, 0(t0)
    subq s0, #1, s0
    bgt  s0, init
    li   s0, 64
sum:
    sll  s0, #10, t0
    addq s1, t0, t0
    ldq  t1, 0(t0)
    addq t2, t1, t2
    subq s0, #1, s0
    bgt  s0, sum
    mov  t2, a0
    putq
    halt
""")
    assert pipe.output_text() == "%d\n" % sum(range(1, 65))


def test_call_return_ras():
    pipe = run("""
    li   s0, 5
    clr  s2
loop:
    bsr  ra, bump
    subq s0, #1, s0
    bgt  s0, loop
    mov  s2, a0
    putq
    halt
bump:
    addq s2, #10, s2
    ret  (ra)
""")
    assert pipe.output_text() == "50\n"


def test_indirect_jump_btb():
    pipe = run("""
    li   s0, 6
    li   s1, target
    clr  s2
loop:
    jmp  zero, (s1)
back:
    subq s0, #1, s0
    bgt  s0, loop
    mov  s2, a0
    putq
    halt
target:
    addq s2, #1, s2
    br   back
""")
    assert pipe.output_text() == "6\n"


def test_complex_alu_latency_pipeline():
    pipe = run("""
    li   t0, 3
    li   t1, 5
    mulq t0, t1, t2     ; complex
    divq t2, t0, t3     ; complex, dependent
    addq t2, t3, a0
    putq
    halt
""")
    assert pipe.output_text() == "20\n"


def test_store_to_load_same_cycle_window():
    """Store-set violation recovery: a load that raced ahead replays."""
    pipe = run("""
    li   s1, 0x4000
    li   s0, 20
loop:
    stq  s0, 0(s1)
    ldq  t0, 0(s1)      ; must observe the store above it
    addq t1, t0, t1
    subq s0, #1, s0
    bgt  s0, loop
    mov  t1, a0
    putq
    halt
""")
    assert pipe.output_text() == "%d\n" % sum(range(1, 21))


def test_exception_divide_by_zero():
    pipe = run("""
    clr  t0
    divq t0, t0, t1
    halt
""")
    assert pipe.halted
    assert pipe.failure_event is not None
    assert pipe.failure_event[0] == "except"


def test_exception_unaligned():
    pipe = run("""
    li   s1, 0x4001
    ldq  t0, 0(s1)
    halt
""")
    assert pipe.failure_event[0] == "except"


def test_exception_is_precise():
    """Output before a faulting instruction is emitted; after is not."""
    pipe = run("""
    li   a0, 1
    putq
    clr  t0
    divq t0, t0, t1
    li   a0, 2
    putq
    halt
""")
    assert pipe.output_text() == "1\n"
    assert pipe.failure_event[0] == "except"


def test_wrong_path_exception_squashed():
    """An exception on a mispredicted path must not be raised."""
    pipe = run("""
    li   s0, 50
    clr  t3
loop:
    subq s0, #1, s0
    bgt  s0, loop       ; final not-taken resolution squashes wrong path
    br   done           ; ensure divide is only on the wrong path
    clr  t0
    divq t0, t0, t1     ; wrong-path divide-by-zero
done:
    li   a0, 7
    putq
    halt
""")
    assert pipe.output_text() == "7\n"
    assert pipe.failure_event is None


def test_small_config_runs():
    pipe = run("""
    li   s0, 30
    clr  t0
loop:
    addq t0, s0, t0
    subq s0, #1, s0
    bgt  s0, loop
    mov  t0, a0
    putq
    halt
""", config=PipelineConfig.small())
    assert pipe.output_text() == "%d\n" % sum(range(1, 31))


def test_in_flight_capacity_counts():
    """The paper machine exposes ~132 in-flight slots."""
    config = PipelineConfig.paper()
    capacity = (config.fetchq_entries + config.fetch_width
                + config.decode_width + config.rename_width
                + config.rob_entries)
    assert 100 <= capacity <= 140


def test_state_inventory_magnitude():
    """Total injectable state is in the paper's ~45K-bit range."""
    pipe = Pipeline(assemble("    halt"), PipelineConfig.paper())
    total = pipe.eligible_bits()
    assert 30_000 <= total <= 55_000


def test_inventory_has_all_table1_categories():
    from repro.uarch.statelib import TABLE1_CATEGORIES
    pipe = Pipeline(assemble("    halt"), PipelineConfig.paper())
    inventory = pipe.space.inventory()
    for category in TABLE1_CATEGORIES:
        assert category in inventory, category
