"""Statistics and aggregation tests."""

import math

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.analysis.aggregate import (
    failure_contributions,
    failure_mode_totals,
    failure_modes_by_category,
    masked_fraction,
    outcomes_by_category,
    outcomes_by_workload,
    utilization_bins,
)
from repro.analysis.stats import (
    confidence_interval,
    least_squares,
    proportion_ci,
)
from repro.inject.outcome import FailureMode, TrialOutcome, TrialResult


def make_trial(outcome, mode=None, workload="w", category="data",
               valid=10):
    return TrialResult(
        outcome=outcome, failure_mode=mode, workload=workload,
        element_name="e", category=category, kind="latch", bit=0,
        start_point=0, inject_cycle=0, cycles_run=1,
        valid_inflight=valid, total_inflight=valid + 2)


TRIALS = [
    make_trial(TrialOutcome.MICRO_MATCH, category="data", valid=5),
    make_trial(TrialOutcome.MICRO_MATCH, category="pc", valid=60),
    make_trial(TrialOutcome.GRAY, category="pc", valid=60),
    make_trial(TrialOutcome.SDC, FailureMode.REGFILE, category="regfile",
               valid=100),
    make_trial(TrialOutcome.SDC, FailureMode.MEM, category="addr",
               valid=100),
    make_trial(TrialOutcome.TERMINATED, FailureMode.LOCKED,
               category="qctrl", valid=100),
]


def test_outcomes_by_category():
    table = outcomes_by_category(TRIALS)
    assert table["pc"][TrialOutcome.MICRO_MATCH] == 1
    assert table["pc"][TrialOutcome.GRAY] == 1
    assert table["regfile"][TrialOutcome.SDC] == 1


def test_outcomes_by_workload():
    table = outcomes_by_workload(TRIALS)
    assert sum(table["w"].values()) == len(TRIALS)


def test_failure_modes_by_category():
    table = failure_modes_by_category(TRIALS)
    assert table["qctrl"][FailureMode.LOCKED] == 1
    assert "pc" not in table


def test_failure_contributions_sum_to_one():
    shares = failure_contributions(TRIALS)
    assert sum(shares.values()) == pytest.approx(1.0)
    assert shares["regfile"] == pytest.approx(1 / 3)


def test_failure_contributions_empty():
    assert failure_contributions([TRIALS[0]]) == {}


def test_failure_mode_totals():
    totals = failure_mode_totals(TRIALS)
    assert totals[FailureMode.REGFILE] == 1
    assert sum(totals.values()) == 3


def test_masked_fraction():
    assert masked_fraction(TRIALS) == pytest.approx(2 / 6)
    assert masked_fraction(TRIALS, include_gray=True) == pytest.approx(3 / 6)
    assert masked_fraction([]) == 0.0


def test_utilization_bins():
    points, raw = utilization_bins(TRIALS, bin_width=64)
    assert len(raw) == len(TRIALS)
    low_bin = [p for p in points if p[0] == 32][0]
    assert low_bin[1] == 1.0  # all three low-occupancy trials benign
    assert low_bin[2] == 3
    high_bin = [p for p in points if p[0] == 96][0]
    assert high_bin[1] == 0.0  # all three high-occupancy trials failed
    assert high_bin[2] == 3


# -- stats -----------------------------------------------------------------------


def test_proportion_ci_basic():
    p, low, high = proportion_ci(50, 100)
    assert p == 0.5
    assert low < 0.5 < high
    assert high - low < 0.25


def test_proportion_ci_extremes():
    _, low, high = proportion_ci(0, 20)
    assert low == 0.0
    assert high > 0.0
    _, low, high = proportion_ci(20, 20)
    assert high == 1.0


def test_proportion_ci_empty():
    assert proportion_ci(0, 0) == (0.0, 0.0, 1.0)


def test_confidence_interval_matches_paper_claim():
    """25-30k trials -> CI < 0.7% at 95% (paper Section 2.3)."""
    assert confidence_interval(int(0.12 * 27_000), 27_000) < 0.007
    # ~100 trials -> CI about 10% (the paper's qctrl caveat).
    assert 0.05 < confidence_interval(50, 100) < 0.12


def test_least_squares_exact_line():
    points = [(x, 2.0 * x + 1.0) for x in range(10)]
    slope, intercept, r = least_squares(points)
    assert slope == pytest.approx(2.0)
    assert intercept == pytest.approx(1.0)
    assert r == pytest.approx(1.0)


def test_least_squares_negative_correlation():
    points = [(x, 100.0 - 3.0 * x) for x in range(20)]
    slope, _intercept, r = least_squares(points)
    assert slope == pytest.approx(-3.0)
    assert r == pytest.approx(-1.0)


def test_least_squares_degenerate():
    assert least_squares([]) == (0.0, 0.0, 0.0)
    assert least_squares([(1, 5)])[1] == 5
    slope, intercept, r = least_squares([(2, 7), (2, 9)])
    assert slope == 0.0


@given(st.lists(st.tuples(
    st.floats(min_value=-100, max_value=100),
    st.floats(min_value=-100, max_value=100)), min_size=3, max_size=30))
def test_least_squares_minimises_residual(points):
    slope, intercept, _r = least_squares(points)
    if math.isnan(slope) or math.isinf(slope):
        return

    def sse(m, b):
        return sum((y - (m * x + b)) ** 2 for x, y in points)

    best = sse(slope, intercept)
    for dm in (-0.01, 0.01):
        for db in (-0.01, 0.01):
            assert best <= sse(slope + dm, intercept + db) + 1e-6


def test_render_helpers_run():
    from repro.analysis.report import (
        render_category_outcomes,
        render_contributions,
        render_failure_modes,
        render_workload_outcomes,
    )
    assert "AGGREGATE" in render_workload_outcomes(TRIALS, "t")
    assert "regfile" in render_category_outcomes(TRIALS, "t")
    assert "locked" in render_failure_modes(TRIALS, "t")
    assert "%" in render_contributions(TRIALS, "t")
