"""Whole-machine determinism: identical machines stay bit-identical.

Determinism underpins the entire experimental method (golden traces,
trial replay, parallel sharding), so it gets its own direct test: two
pipelines built from the same program must agree on every state
signature, every cycle, forever -- and so must a checkpoint/restore
replay interleaved with unrelated work.
"""

import pytest

from repro.uarch.core import Pipeline
from repro.workloads import WORKLOAD_NAMES, get_workload


@pytest.mark.parametrize("name", ("gzip", "perlbmk", "vpr"))
def test_twin_pipelines_stay_identical(name):
    program = get_workload(name, scale="tiny").program
    first = Pipeline(program)
    second = Pipeline(program)
    for _ in range(1200):
        first.cycle()
        second.cycle()
        assert first.space.signature() == second.space.signature()
    assert first.output_text() == second.output_text()
    assert first.stats == second.stats


def test_checkpoint_replay_interleaved_with_other_work():
    """Restoring a checkpoint must be unaffected by whatever the
    pipeline did in between (no hidden global state)."""
    program = get_workload("gcc", scale="tiny").program
    pipeline = Pipeline(program)
    pipeline.run(500)
    checkpoint = pipeline.checkpoint()

    pipeline.run(700)
    first = [pipeline.space.signature()]
    for _ in range(100):
        pipeline.cycle()
        first.append(pipeline.space.signature())

    # Unrelated detour: flush, run elsewhere, mutate stats.
    pipeline.flush_all()
    pipeline.run(333)

    pipeline.restore(checkpoint)
    pipeline.run(700)
    second = [pipeline.space.signature()]
    for _ in range(100):
        pipeline.cycle()
        second.append(pipeline.space.signature())
    assert first == second


def test_retired_stream_equals_functional_for_random_programs():
    from repro.arch.functional import FunctionalSimulator
    from repro.workloads.generator import random_program

    for seed in (7, 21, 42):
        program = random_program(seed, body_blocks=10, loop_iters=4)
        reference = FunctionalSimulator(program)
        reference_pcs = []
        while not reference.halted and reference.instret < 3000:
            reference_pcs.append(reference.state.pc)
            reference.step()

        pipeline = Pipeline(program)
        pipeline_pcs = []
        for _ in range(60_000):
            if pipeline.halted or len(pipeline_pcs) >= len(reference_pcs):
                break
            pipeline.cycle()
            pipeline_pcs.extend(
                record[1] for record in pipeline.retired_this_cycle)
        length = min(len(reference_pcs), len(pipeline_pcs))
        assert length > 80  # small generated programs
        assert pipeline_pcs[:length] == reference_pcs[:length], seed
