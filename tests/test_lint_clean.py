"""CI gate: the tree must be repro.lint-clean, and the CLI must work.

A regression that introduces shadow state, nondeterminism, a
behavioral ghost read or an unreported category fails this module with
the offending file:line in the assertion message.
"""

import json
import os
import subprocess
import sys
import textwrap
from pathlib import Path

from repro.cli import main as repro_main
from repro.lint import load_config, run_lint

REPO = Path(__file__).resolve().parents[1]
SRC = REPO / "src" / "repro"


def _env():
    env = dict(os.environ)
    src = str(REPO / "src")
    existing = env.get("PYTHONPATH")
    env["PYTHONPATH"] = src + (os.pathsep + existing if existing else "")
    return env


def _run_cli(args, cwd):
    return subprocess.run(
        [sys.executable, "-m", "repro.lint"] + args,
        capture_output=True, text=True, env=_env(), cwd=str(cwd))


def test_tree_is_lint_clean():
    config = load_config(pyproject_path=str(REPO / "pyproject.toml"))
    result = run_lint([str(SRC)], config)
    rendered = "\n".join(f.render() for f in result.findings)
    assert result.findings == [], "lint findings:\n%s" % rendered
    assert result.exit_code == 0
    assert len(result.files) > 50
    assert result.rules == ("REP001", "REP002", "REP003", "REP004",
                            "REP005", "REP006", "REP007", "REP008")


def test_module_cli_json_clean():
    completed = _run_cli(["--format", "json", str(SRC)], cwd=REPO)
    assert completed.returncode == 0, completed.stdout + completed.stderr
    payload = json.loads(completed.stdout)
    assert payload["version"] == 1
    assert payload["findings"] == []
    assert payload["files_scanned"] > 50
    assert payload["rules"] == ["REP001", "REP002", "REP003", "REP004",
                                "REP005", "REP006", "REP007", "REP008"]


def test_seeded_violations_exit_nonzero(tmp_path):
    bad = tmp_path / "bad.py"
    bad.write_text(textwrap.dedent("""
    import random

    from repro.uarch.statelib import StateCategory, StorageKind


    class Stage:
        def __init__(self, space):
            self.pc = space.field(
                "pc", 64, StateCategory.PC, StorageKind.LATCH)
            self.shadow = []

        def cycle(self):
            self.shadow.append(random.random())
    """))
    completed = _run_cli(
        ["--no-config", "--format", "json", str(bad)], cwd=tmp_path)
    assert completed.returncode == 1
    payload = json.loads(completed.stdout)
    rules = {finding["rule"] for finding in payload["findings"]}
    assert rules == {"REP001", "REP002"}
    for finding in payload["findings"]:
        assert finding["path"].endswith("bad.py")
        assert finding["line"] > 0


def test_repro_cli_lint_subcommand(capsys):
    assert repro_main(["lint", "--list-rules"]) == 0
    assert "REP001" in capsys.readouterr().out
    assert repro_main(
        ["lint", "--config", str(REPO / "pyproject.toml"), str(SRC)]) == 0
    assert "clean" in capsys.readouterr().out
