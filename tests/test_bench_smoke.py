"""CI bench-smoke gate: throughput must not regress past the threshold.

A tiny fixed-seed run of the :mod:`repro.perf.bench` suite is compared
against the newest committed ``BENCH_*.json``; a throughput drop beyond
``REPRO_BENCH_TOLERANCE`` (default 25%) fails the build.  Set
``REPRO_BENCH_SKIP`` to any non-empty value to bypass the gate on
loaded or throttled machines; the machine-independent ratio checks
below run regardless.
"""

import os

import pytest

from repro.perf import bench


@pytest.fixture(scope="module")
def metrics():
    return bench.run_bench(reps=2)


def test_signature_read_is_orders_faster_than_full(metrics):
    # The incremental signature is an O(1) read; the full recompute
    # walks every element.  The ratio is machine-independent.
    assert metrics["signature_us"] < metrics["signature_full_us"] / 5


def test_cow_restore_beats_full_restore(metrics):
    assert 0 < metrics["restore_us"] < metrics["restore_full_us"]


def test_warm_golden_cache_beats_cold(metrics):
    # Warm runs skip warmup, spacing, recording and verification
    # entirely; anything less than strictly faster means the cache is
    # not being hit.
    assert metrics["trials_per_sec"] > metrics["trials_per_sec_cold"]


@pytest.mark.skipif(bool(os.environ.get("REPRO_BENCH_SKIP")),
                    reason="REPRO_BENCH_SKIP set")
def test_throughput_vs_committed_benchmark(metrics):
    files = bench.bench_files(bench.repo_root())
    if not files:
        pytest.skip("no committed BENCH_*.json to compare against")
    _path, committed = files[-1]
    regressions = bench.compare_metrics(
        committed["metrics"], metrics, bench.default_threshold())
    assert not regressions, "; ".join(regressions)


# -- harness unit checks (no timing involved) ---------------------------------


def test_compare_metrics_flags_only_real_regressions():
    previous = {"cycles_per_sec": 1000.0, "trials_per_sec": 50.0,
                "trials_per_sec_cold": 10.0, "signature_us": 0.05}
    improved = {"cycles_per_sec": 2000.0, "trials_per_sec": 60.0,
                "trials_per_sec_cold": 11.0, "signature_us": 5.0}
    assert bench.compare_metrics(previous, improved, 0.25) == []

    regressed = dict(improved, trials_per_sec=30.0)
    messages = bench.compare_metrics(previous, regressed, 0.25)
    assert len(messages) == 1
    assert "trials_per_sec" in messages[0]

    # Within-threshold noise is tolerated.
    noisy = dict(improved, trials_per_sec=40.0)
    assert bench.compare_metrics(previous, noisy, 0.25) == []

    # cycles_per_sec is a diagnostic, not a gated metric: the raw cycle
    # rate trades against per-write signature maintenance by design.
    slower_cycles = dict(improved, cycles_per_sec=100.0)
    assert bench.compare_metrics(previous, slower_cycles, 0.25) == []


def test_write_and_reload_roundtrip(tmp_path):
    sample = {"cycles_per_sec": 123.4, "trials_per_sec": 5.6}
    path = bench.write_bench(str(tmp_path), "abc1234", sample)
    assert os.path.basename(path) == "BENCH_abc1234.json"
    files = bench.bench_files(str(tmp_path))
    assert len(files) == 1
    assert files[0][1]["metrics"] == sample
    assert files[0][1]["rev"] == "abc1234"
    # The comparison baseline skips the current revision's own file.
    assert bench.load_previous(str(tmp_path), exclude_rev="abc1234") is None
    assert bench.load_previous(str(tmp_path))[1]["rev"] == "abc1234"


def test_batched_engine_beats_scalar_smoke(metrics):
    # Steady-state bit-plane batching must clearly beat the scalar
    # smoke number; parity means the batch path silently fell back.
    assert metrics["batch_lanes"] >= 2
    assert metrics["trials_per_sec_batched"] > metrics["trials_per_sec"]


def test_load_best_spans_all_committed_files(tmp_path):
    bench.write_bench(str(tmp_path), "aaa1111",
                      {"trials_per_sec": 50.0, "trials_per_sec_cold": 9.0})
    bench.write_bench(str(tmp_path), "bbb2222",
                      {"trials_per_sec": 40.0, "trials_per_sec_cold": 12.0,
                       "trials_per_sec_batched": 300.0})
    best, sources = bench.load_best(str(tmp_path))
    # Per-metric maximum, not the newest file's values.
    assert best == {"trials_per_sec": 50.0, "trials_per_sec_cold": 12.0,
                    "trials_per_sec_batched": 300.0}
    assert sources == {"trials_per_sec": "aaa1111",
                       "trials_per_sec_cold": "bbb2222",
                       "trials_per_sec_batched": "bbb2222"}
    # The current revision's own file never sets its own bar.
    best, sources = bench.load_best(str(tmp_path), exclude_rev="bbb2222")
    assert best == {"trials_per_sec": 50.0, "trials_per_sec_cold": 9.0}
    assert bench.load_best(str(tmp_path / "empty")) == (None, None)


def test_schema_one_files_still_load(tmp_path):
    import json

    path = tmp_path / "BENCH_old0001.json"
    path.write_text(json.dumps({
        "schema": 1, "rev": "old0001", "created": "2025-01-01T00:00:00Z",
        "metrics": {"trials_per_sec": 44.0}}))
    files = bench.bench_files(str(tmp_path))
    assert [data["rev"] for _p, data in files] == ["old0001"]
    best, _sources = bench.load_best(str(tmp_path))
    assert best == {"trials_per_sec": 44.0}
    # Unknown future schemas are skipped, not misread.
    bad = tmp_path / "BENCH_future.json"
    bad.write_text(json.dumps({"schema": 99, "rev": "future",
                               "metrics": {"trials_per_sec": 9999.0}}))
    assert len(bench.bench_files(str(tmp_path))) == 1
