"""Incremental-signature and copy-on-write restore equivalence.

The property under test is the one ``verify_golden`` asserts at
runtime: after *any* interleaving of field writes, bit flips,
snapshots and restores, the XOR-rolled signature equals a full
recompute -- and a copy-on-write (fast-path) restore leaves the
pipeline bit-identical to a from-scratch (slow-path) restore.
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.uarch.core import Pipeline
from repro.uarch.statelib import (
    StateCategory,
    StateSnapshot,
    StateSpace,
    StorageKind,
)
from repro.workloads import get_workload


def make_space():
    space = StateSpace()
    fields = [
        space.field("a", 8, StateCategory.CTRL, StorageKind.LATCH),
        space.field("b", 64, StateCategory.DATA, StorageKind.RAM),
        space.field("c", 1, StateCategory.VALID, StorageKind.LATCH),
        space.field("d", 32, StateCategory.ADDR, StorageKind.LATCH),
        space.field("g", 16, StateCategory.GHOST, StorageKind.LATCH),
    ]
    space.freeze()
    return space, fields


# One randomized mutation step: (op, field index, value/bit).
_STEPS = st.lists(
    st.tuples(st.sampled_from(("set", "flip", "snapshot", "restore")),
              st.integers(min_value=0, max_value=4),
              st.integers(min_value=0, max_value=2**64 - 1)),
    min_size=1, max_size=60)


@settings(max_examples=120, deadline=None)
@given(steps=_STEPS)
def test_incremental_signature_matches_full_recompute(steps):
    space, fields = make_space()
    snapshots = [space.snapshot()]
    for op, which, value in steps:
        field = fields[which]
        if op == "set":
            field.set(value)
        elif op == "flip":
            field.flip(value % field.width)
        elif op == "snapshot":
            snapshots.append(space.snapshot())
        else:
            space.restore(snapshots[value % len(snapshots)])
        assert space.signature() == space.signature(full=True)


@settings(max_examples=60, deadline=None)
@given(steps=_STEPS)
def test_ghost_writes_never_move_the_signature(steps):
    space, fields = make_space()
    ghost = fields[4]
    before = space.signature()
    for op, _which, value in steps:
        if op == "set":
            ghost.set(value)
        elif op == "flip":
            ghost.flip(value % ghost.width)
    assert space.signature() == before
    assert space.signature(full=True) == before


def test_flip_bit_updates_signature_incrementally():
    space, fields = make_space()
    flips = ((0, 0), (0, 7), (1, 8), (1, 63), (2, 0), (3, 31))
    for element, bit in flips:
        space.flip_bit(element, bit)
        assert space.signature() == space.signature(full=True)
    # Flipping the same bits again undoes every contribution.
    before = space.signature()
    for element, bit in flips:
        space.flip_bit(element, bit)
        space.flip_bit(element, bit)
    assert space.signature() == before
    assert space.signature() == space.signature(full=True)


def test_snapshot_carries_signature_and_pickles(tmp_path):
    import pickle

    space, fields = make_space()
    fields[0].set(0x5A)
    fields[1].set(0xDEADBEEF)
    snap = space.snapshot()
    assert isinstance(snap, StateSnapshot)
    assert snap.sig == space.signature(full=True)

    clone = pickle.loads(pickle.dumps(snap))
    assert list(clone) == list(snap)
    assert clone.sig == snap.sig

    # A plain-list snapshot (no cached signature) still restores
    # correctly via the full-recompute fallback.
    fields[0].set(0)
    space.restore(list(snap))
    assert space.signature() == space.signature(full=True)
    assert fields[0].get() == 0x5A


# -- copy-on-write restore ----------------------------------------------------


def _state_fingerprint(pipeline):
    """Everything a trial can observe, as comparable plain data."""
    side = {name: data for name, data in pipeline.checkpoint()[1].items()}
    return (
        list(pipeline.space.snapshot()),
        pipeline.space.signature(),
        dict(pipeline.memory.quads),
        side,
        list(pipeline.output),
        hash(pipeline.committed_view()),
    )


@pytest.mark.parametrize("disturb_cycles", [0, 5, 40])
def test_cow_restore_equals_slow_restore(disturb_cycles):
    import random

    workload = get_workload("gzip", scale="tiny")

    # Reference machine: restore via the slow path (a fresh pipeline
    # that never made the checkpoint its COW baseline).
    reference = Pipeline(workload.program)
    reference.run(150, stop_on_halt=True)
    checkpoint = reference.checkpoint()

    # Fast path: same machine runs on (dirtying memory, caches,
    # predictors, BIQ, store sets, the output log) and then restores
    # its own live checkpoint.
    reference.run(disturb_cycles, stop_on_halt=True)
    reference.inject_random_fault(random.Random(7))
    reference.run(3, stop_on_halt=True)
    reference.restore(checkpoint)
    fast = _state_fingerprint(reference)

    # Slow path: a second pipeline adopts the same checkpoint cold.
    other = Pipeline(workload.program)
    other.restore(checkpoint)
    slow = _state_fingerprint(other)

    assert fast == slow

    # And both continue identically: cycle-level lockstep signatures.
    reference.restore(checkpoint)
    other.restore(checkpoint)
    for _ in range(25):
        reference.cycle()
        other.cycle()
        assert reference.space.signature() == other.space.signature()
        assert reference.space.signature() \
            == reference.space.signature(full=True)


def test_repeated_trial_restores_are_idempotent():
    """The per-trial pattern: restore, corrupt, run, restore, ..."""
    import random

    workload = get_workload("gzip", scale="tiny")
    pipeline = Pipeline(workload.program)
    pipeline.run(150, stop_on_halt=True)
    checkpoint = pipeline.checkpoint()
    baseline = _state_fingerprint(pipeline)
    rng = random.Random(2004)
    for _ in range(6):
        pipeline.restore(checkpoint)
        pipeline.inject_random_fault(rng)
        pipeline.run(rng.randrange(1, 30), stop_on_halt=True)
    pipeline.restore(checkpoint)
    assert _state_fingerprint(pipeline) == baseline
