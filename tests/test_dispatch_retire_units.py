"""Dispatch and retirement edge cases."""

from repro.isa.assembler import assemble
from repro.uarch.config import PipelineConfig, ProtectionConfig
from repro.uarch.core import Pipeline


def run(source, config=None, max_cycles=80_000):
    pipeline = Pipeline(assemble(source), config or PipelineConfig.paper())
    pipeline.run(max_cycles)
    return pipeline


def test_dispatch_stalls_on_full_rob_then_drains():
    """More in-flight work than the ROB holds: back-pressure, no loss."""
    # A long dependent chain fills the window; everything must retire.
    chain = "\n".join("    addq t0, #1, t0" for _ in range(300))
    pipe = run("    clr t0\n%s\n    mov t0, a0\n    putq\n    halt" % chain)
    assert pipe.halted
    assert pipe.output_text() == "300\n"


def test_dispatch_stalls_on_full_lsq():
    """More stores than SQ entries in flight: back-pressure, no loss."""
    stores = "\n".join("    stq t0, %d(s1)" % (8 * i) for i in range(40))
    loads = "\n".join("    ldq t%d, %d(s1)\n    addq t9, t%d, t9"
                      % (1 + i % 3, 8 * (i % 40), 1 + i % 3)
                      for i in range(8))
    pipe = run("    li s1, 0x4000\n    li t0, 5\n%s\n%s\n"
               "    mov t9, a0\n    putq\n    halt" % (stores, loads))
    assert pipe.halted
    assert pipe.output_text() == "40\n"


def test_retire_width_limits_per_cycle():
    pipe = Pipeline(assemble("    halt"))
    width = pipe.config.retire_width
    # Structural check: the retire loop can never exceed the width.
    assert width == 8


def test_rename_stalls_without_free_registers():
    """A machine with minimal free registers still completes (stalls,
    does not deadlock or misrename)."""
    config = PipelineConfig.small()
    assert config.free_regs >= config.rename_width
    body = "\n".join("    addq t%d, #1, t%d" % (i % 8, (i + 1) % 8)
                     for i in range(64))
    pipe = run("    clr t0\n%s\n    mov t0, a0\n    putq\n    halt" % body,
               config=config)
    assert pipe.halted
    assert pipe.failure_event is None


def test_timeout_counter_resets_on_retirement():
    config = PipelineConfig.paper(ProtectionConfig(timeout=True))
    pipe = Pipeline(assemble("""
    li   s0, 50
loop:
    subq s0, #1, s0
    bgt  s0, loop
    li   a0, 9
    putq
    halt
"""), config)
    pipe.run(50_000)
    assert pipe.halted
    assert pipe.output_text() == "9\n"
    assert pipe.retire_unit.timeout_counter.get() == 0


def test_arch_pc_tracks_control_flow():
    pipe = Pipeline(assemble("""
    br   skip
    halt
skip:
    li   a0, 2
    putq
    halt
"""))
    pipe.run(20_000)
    assert pipe.halted
    assert pipe.output_text() == "2\n"


def test_output_value_read_through_arch_rat():
    """putq must print the architecturally latest a0, even with several
    renames of a0 in flight."""
    pipe = run("""
    li   a0, 1
    addq a0, #1, a0
    addq a0, #1, a0
    addq a0, #1, a0
    putq
    addq a0, #1, a0
    putq
    halt
""")
    assert pipe.output_text() == "4\n5\n"


def test_two_outputs_same_cycle_ordering():
    pipe = run("""
    li   a0, 7
    putq
    putq
    halt
""")
    assert pipe.output_text() == "7\n7\n"


def test_halt_stops_retirement_not_simulator():
    pipe = Pipeline(assemble("    halt"))
    pipe.run(1000)
    assert pipe.halted
    retired = pipe.total_retired
    pipe.cycle()  # stepping a halted machine is a defined no-op-ish
    assert pipe.total_retired == retired
