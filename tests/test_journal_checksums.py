"""Journal integrity tests: checksums, repair, retry, legacy loading.

Schema 2 seals every journal line with a CRC32 over its canonical JSON
encoding.  These tests pin the failure model around that seal: a
flipped bit mid-file is a hard error naming the line and byte offset,
a flipped bit on the final line is a torn tail that resume repairs
byte-identically, ``--repair`` truncates at the last valid line after
confirmation, transient append I/O errors are retried with backoff,
and pre-checksum (schema 1) journals still load with a one-line note.
"""

import json
import shutil

import pytest

from repro.errors import CampaignError, SimulationError
from repro.inject.campaign import Campaign, CampaignConfig
from repro.runner import run_campaign
from repro.runner.journal import (
    JournalWriter,
    canonical_trial_bytes,
    decode_line,
    journal_path,
    read_journal,
    repair_journal,
)
from repro.runner.journal import _canonical  # canonical JSON helper
from repro.runner.resume import load_resume_state


@pytest.fixture(scope="module")
def config():
    return CampaignConfig.test()


@pytest.fixture(scope="module")
def serial(config):
    return Campaign(config).run()


@pytest.fixture(scope="module")
def finished_dir(tmp_path_factory, config):
    """A completed campaign directory (copied per test before editing)."""
    directory = tmp_path_factory.mktemp("journal") / "campaign"
    run_campaign(config, workers=1, directory=str(directory))
    return directory


def _copy(finished_dir, tmp_path):
    target = tmp_path / "campaign"
    shutil.copytree(finished_dir, target)
    return target


def _flip_digit(line):
    """Corrupt one line by changing a digit (stays valid JSON)."""
    for position, char in enumerate(line):
        if char.isdigit():
            replacement = "1" if char != "1" else "2"
            return line[:position] + replacement + line[position + 1:]
    raise AssertionError("no digit to flip in %r" % line)


def test_every_line_carries_a_verified_checksum(finished_dir, config):
    lines = journal_path(str(finished_dir))
    with open(lines) as handle:
        for line in handle:
            record, status = decode_line(line)
            assert status == "ok"
            assert "crc" not in record  # stripped after verification
    contents = read_journal(journal_path(str(finished_dir)))
    assert len(contents.trials) == config.total_trials
    assert contents.legacy_lines == 0
    assert not contents.truncated


def test_midfile_flip_names_line_and_byte_offset(
        finished_dir, tmp_path, config):
    directory = _copy(finished_dir, tmp_path)
    path = journal_path(str(directory))
    with open(path) as handle:
        lines = handle.read().splitlines()
    expected_offset = len(lines[0]) + 1 + len(lines[1]) + 1
    lines[2] = _flip_digit(lines[2])
    with open(path, "w") as handle:
        handle.write("\n".join(lines) + "\n")
    with pytest.raises(SimulationError) as excinfo:
        run_campaign(config, workers=1, directory=str(directory))
    message = str(excinfo.value)
    assert "corrupt journal line 3" in message
    assert "byte offset %d" % expected_offset in message
    assert "--repair" in message


def test_final_line_flip_is_torn_tail_resume_byte_identical(
        finished_dir, tmp_path, config, serial):
    directory = _copy(finished_dir, tmp_path)
    path = journal_path(str(directory))
    with open(path) as handle:
        lines = handle.read().splitlines()
    lines[-1] = _flip_digit(lines[-1])
    with open(path, "w") as handle:
        handle.write("\n".join(lines) + "\n")
    contents = read_journal(path)
    assert contents.truncated
    assert len(contents.trials) == config.total_trials - 1

    resumed = run_campaign(config, workers=1, directory=str(directory))
    assert resumed.trials == serial.trials
    assert canonical_trial_bytes(path) \
        == canonical_trial_bytes(journal_path(str(finished_dir)))


def test_repair_cli_truncates_after_confirmation(
        finished_dir, tmp_path, config, serial, capsys):
    from repro.cli import main as repro_main
    directory = _copy(finished_dir, tmp_path)
    path = journal_path(str(directory))
    with open(path) as handle:
        lines = handle.read().splitlines()
    lines[4] = _flip_digit(lines[4])
    with open(path, "w") as handle:
        handle.write("\n".join(lines) + "\n")

    kept, dropped, _offset = repair_journal(path, dry_run=True)
    assert (kept, dropped) == (4, len(lines) - 4)
    with pytest.raises(SimulationError):
        read_journal(path)  # the dry run left the damage in place

    assert repro_main(["campaign", "--repair", "--dir", str(directory),
                       "--yes"]) == 0
    out = capsys.readouterr().out
    assert "truncated" in out
    contents = read_journal(path)
    assert len(contents.trials) == 3  # header + 3 trials kept
    resumed = run_campaign(config, workers=1, directory=str(directory))
    assert resumed.trials == serial.trials

    # A clean journal repairs to a no-op.
    assert repro_main(["campaign", "--repair", "--dir", str(directory),
                       "--yes"]) == 0
    assert "nothing to repair" in capsys.readouterr().out


def test_legacy_schema1_journal_loads_with_note(
        finished_dir, tmp_path, config, serial, capsys):
    directory = _copy(finished_dir, tmp_path)
    path = journal_path(str(directory))
    rewritten = []
    with open(path) as handle:
        for line in handle:
            record = json.loads(line)
            record.pop("crc", None)
            if record.get("type") == "header":
                record["schema"] = 1
            rewritten.append(_canonical(record))
    with open(path, "w") as handle:
        handle.write("\n".join(rewritten) + "\n")

    state = load_resume_state(str(directory), config)
    note = capsys.readouterr().err
    assert "predate journal checksums" in note
    assert "schema 1" in note
    assert len(state.trials) == config.total_trials

    resumed = run_campaign(config, workers=1, directory=str(directory))
    assert resumed.trials == serial.trials


def test_unknown_schema_is_rejected(finished_dir, tmp_path, config):
    directory = _copy(finished_dir, tmp_path)
    path = journal_path(str(directory))
    with open(path) as handle:
        lines = handle.read().splitlines()
    header = json.loads(lines[0])
    header.pop("crc", None)
    header["schema"] = 99
    lines[0] = _canonical(header)
    with open(path, "w") as handle:
        handle.write("\n".join(lines) + "\n")
    with pytest.raises(SimulationError, match="schema 99"):
        run_campaign(config, workers=1, directory=str(directory))


def test_transient_append_errors_are_retried(tmp_path, config):
    faults = {"remaining": 2}

    def flaky(writer, line):
        if faults["remaining"] > 0:
            faults["remaining"] -= 1
            raise OSError(5, "injected transient failure")

    retries = []
    sleeps = []
    writer = JournalWriter.open(
        str(tmp_path / "campaign"), config, eligible_bits=1, inventory={},
        fault_hook=flaky, on_retry=lambda: retries.append(1),
        sleep=sleeps.append)
    writer.close()
    assert len(retries) == 2
    assert sleeps == sorted(sleeps)  # exponential backoff never shrinks
    contents = read_journal(journal_path(str(tmp_path / "campaign")))
    assert contents.header is not None  # the retried header landed once
    assert not contents.truncated


def test_persistent_append_errors_escalate(tmp_path, config):
    def broken(writer, line):
        raise OSError(5, "disk on fire")

    with pytest.raises(CampaignError, match="failed 5 times"):
        JournalWriter.open(
            str(tmp_path / "campaign"), config, eligible_bits=1,
            inventory={}, fault_hook=broken, sleep=lambda seconds: None)


# -- segment reader/writer (shared by resume and the fabric) ------------------


def test_read_segment_slices_on_serial_unit_order(finished_dir, config):
    from repro.runner.journal import read_segment
    from repro.runner.units import enumerate_units

    units = enumerate_units(config)
    contents = read_segment(str(journal_path(finished_dir)), 2, 7)
    assert set(contents.trials) == set(units[2:7])
    unbounded = read_segment(str(journal_path(finished_dir)))
    assert set(unbounded.trials) == set(units)


def test_read_segment_without_header_cannot_slice(tmp_path):
    from repro.runner.journal import encode_line, read_segment

    path = tmp_path / "headerless.jsonl"
    path.write_text(encode_line(
        {"type": "trial", "unit": ["gzip", 0, 0], "trial": {}}) + "\n")
    assert read_segment(str(path)).trials  # unbounded read still works
    with pytest.raises(SimulationError, match="no header"):
        read_segment(str(path), 0, 1)


def test_write_segment_round_trips_checksummed(finished_dir, tmp_path,
                                               config):
    from repro.runner.journal import read_segment, write_segment

    contents = read_journal(str(journal_path(finished_dir)))
    pairs = sorted(contents.trials.items())[:5]
    path = tmp_path / "segment.jsonl"
    header = {k: v for k, v in contents.header.items() if k != "crc"}
    write_segment(str(path), header, pairs)
    back = read_segment(str(path))
    assert back.header["fingerprint"] == contents.header["fingerprint"]
    assert sorted(back.trials.items()) == pairs
    # Every line is schema-2 sealed: a flipped digit is detected.
    lines = path.read_text().splitlines()
    record, status = decode_line(lines[1])
    assert status == "ok"


def test_campaign_dict_from_journal_feeds_merge(finished_dir, serial,
                                                config):
    from repro.inject.store import campaign_to_dict, merge_campaign_dicts
    from repro.runner.journal import campaign_dict_from_journal

    document = campaign_dict_from_journal(str(journal_path(finished_dir)))
    assert document["kind"] == "uarch-campaign"
    merged = merge_campaign_dicts(
        [document, campaign_to_dict(serial)])
    assert len(merged["trials"]) == config.total_trials
    assert merged["fingerprint"] == document["fingerprint"]
