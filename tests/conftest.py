"""Shared fixtures for the test suite."""

import pytest

from repro.isa.assembler import assemble
from repro.uarch.config import PipelineConfig, ProtectionConfig
from repro.uarch.core import Pipeline

SUM_LOOP = """
    li    a0, 10
    clr   t0
    clr   t1
loop:
    addq  t0, t1, t0
    addq  t1, #1, t1
    cmplt t1, a0, t2
    bne   t2, loop
    mov   t0, a0
    putq
    halt
"""

MEMORY_LOOP = """
    li    s1, 0x4000
    li    s0, 6
loop:
    ldq   t1, 0(s1)
    addq  t1, #3, t1
    stq   t1, 0(s1)
    subq  s0, #1, s0
    bgt   s0, loop
    ldq   a0, 0(s1)
    putq
    halt
.org 0x4000
buf: .quad 100
"""


@pytest.fixture
def sum_program():
    return assemble(SUM_LOOP)


@pytest.fixture
def memory_program():
    return assemble(MEMORY_LOOP)


@pytest.fixture
def small_config():
    return PipelineConfig.small()


@pytest.fixture
def paper_config():
    return PipelineConfig.paper()


@pytest.fixture
def protected_config():
    return PipelineConfig.paper(ProtectionConfig.full())


def run_pipeline(program, config=None, max_cycles=100_000):
    pipeline = Pipeline(program, config or PipelineConfig.paper())
    pipeline.run(max_cycles)
    return pipeline
