"""CLI smoke tests."""

import pytest

from repro.cli import main


def test_no_command_prints_help(capsys):
    assert main([]) == 1
    assert "repro-faults" in capsys.readouterr().out


def test_inventory(capsys):
    assert main(["inventory"]) == 0
    out = capsys.readouterr().out
    assert "archrat" in out
    assert "total injectable bits" in out


def test_inventory_protected(capsys):
    assert main(["inventory", "--protected"]) == 0
    out = capsys.readouterr().out
    assert "ecc" in out
    assert "parity" in out


def test_run_workload(capsys):
    assert main(["run", "gzip", "--scale", "tiny"]) == 0
    out = capsys.readouterr().out
    assert "IPC" in out
    assert "halted   : True" in out


def test_campaign_small(capsys):
    assert main(["campaign", "--workloads", "gzip", "--scale", "tiny",
                 "--trials", "4", "--start-points", "1",
                 "--horizon", "300"]) == 0
    out = capsys.readouterr().out
    assert "Figure 3" in out
    assert "AGGREGATE" in out


def test_campaign_dir_then_resume(tmp_path, capsys):
    directory = str(tmp_path / "camp")
    args = ["campaign", "--workloads", "gzip", "--scale", "tiny",
            "--trials", "3", "--start-points", "1", "--horizon", "300"]
    assert main(args + ["--dir", directory]) == 0
    assert (tmp_path / "camp" / "journal.jsonl").exists()
    assert (tmp_path / "camp" / "metrics.json").exists()
    capsys.readouterr()
    assert main(args + ["--resume", directory]) == 0
    out = capsys.readouterr().out
    assert "AGGREGATE" in out


def test_campaign_resume_without_journal_fails(tmp_path, capsys):
    assert main(["campaign", "--workloads", "gzip", "--scale", "tiny",
                 "--trials", "1", "--start-points", "1",
                 "--resume", str(tmp_path / "missing")]) == 2
    assert "cannot resume" in capsys.readouterr().err


def test_software_small(capsys):
    assert main(["software", "--workloads", "gzip", "--trials", "1"]) == 0
    out = capsys.readouterr().out
    assert "Figure 11" in out
    assert "state_ok" in out


def test_overhead(capsys):
    assert main(["overhead"]) == 0
    out = capsys.readouterr().out
    assert "added_total_bits" in out
    assert "fault_rate_surcharge" in out


def test_bad_workload_rejected():
    with pytest.raises(SystemExit):
        main(["run", "nonexistent"])


def test_trace(capsys):
    assert main(["trace", "gzip", "--cycles", "600", "--log", "5"]) == 0
    out = capsys.readouterr().out
    assert "rob occupancy" in out
    assert "window IPC" in out
    assert "next retirements" in out


def test_avf(capsys):
    assert main(["avf", "--workloads", "gzip", "--cycles", "400"]) == 0
    out = capsys.readouterr().out
    assert "occupancy proxy" in out
    assert "scheduler" in out


def test_campaign_save_and_parallel(tmp_path, capsys):
    out_path = str(tmp_path / "result.json")
    assert main(["campaign", "--workloads", "gzip", "gcc",
                 "--scale", "tiny", "--trials", "2",
                 "--start-points", "1", "--horizon", "250",
                 "--parallel", "2", "--save", out_path]) == 0
    from repro.inject.store import load_result
    result = load_result(out_path)
    assert len(result.trials) == 4


def test_software_save(tmp_path, capsys):
    out_path = str(tmp_path / "sw.json")
    assert main(["software", "--workloads", "gzip", "--trials", "1",
                 "--save", out_path]) == 0
    from repro.inject.store import load_result
    assert load_result(out_path).trials
