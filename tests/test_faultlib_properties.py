"""Property tests for the statelib fault primitives at width edges.

The fault models in :mod:`repro.faultlib` stand on three statelib
primitives -- ``apply_fault`` (XOR a disturbance mask), ``undo_fault``
(its self-inverse), and ``force_bit`` (idempotent stuck-at assertion).
Every classification decision downstream compares the *incremental*
signature against golden, so the property that matters is threefold at
every width edge (top bit, full-width mask, over-wide mask): the value
is exactly right, the rolling signature equals a full recompute, and a
snapshot/restore across the fault is equivalent to never faulting.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.uarch.statelib import StateCategory, StateSpace, StorageKind

# Widths that exercise the clamp edges: single-bit, byte, word-boundary
# straddles, and the 64-bit machine-word edge where a naive mask would
# overflow into a Python long.
EDGE_WIDTHS = (1, 2, 8, 16, 31, 32, 63, 64, 65)


def one_field_space(width, category=StateCategory.DATA):
    space = StateSpace()
    field = space.field("f", width, category, StorageKind.LATCH)
    space.freeze()
    return space, field


def edge_masks(width):
    """Disturbance masks at the interesting edges of ``width``."""
    return (1,                        # bottom bit
            1 << (width - 1),         # top bit
            (1 << width) - 1,         # full-width upset
            1 << width,               # just past the edge: must clamp away
            ((1 << (width + 8)) - 1))  # over-wide: clamps to full width


@settings(max_examples=60)
@given(width=st.sampled_from(EDGE_WIDTHS), data=st.data())
def test_apply_fault_value_signature_and_undo(width, data):
    """value, rolling-vs-full signature, and XOR undo at every edge."""
    value = data.draw(st.integers(0, (1 << width) - 1))
    mask = data.draw(st.sampled_from(edge_masks(width)))
    space, field = one_field_space(width)
    field.set(value)
    before_sig = space.signature()
    assert before_sig == space.signature(full=True)

    space.apply_fault(field.index, mask)
    assert field.get() == value ^ (mask & ((1 << width) - 1))
    assert space.signature() == space.signature(full=True)

    space.undo_fault(field.index, mask)
    assert field.get() == value
    assert space.signature() == before_sig
    assert space.signature() == space.signature(full=True)


@settings(max_examples=60)
@given(width=st.sampled_from(EDGE_WIDTHS), data=st.data())
def test_snapshot_restore_equals_never_faulted(width, data):
    """COW restore across any fault sequence == never having faulted."""
    value = data.draw(st.integers(0, (1 << width) - 1))
    masks = data.draw(st.lists(st.sampled_from(edge_masks(width)),
                               min_size=1, max_size=4))
    space, field = one_field_space(width)
    field.set(value)
    snap = space.snapshot()
    sig = space.signature()

    for mask in masks:
        space.apply_fault(field.index, mask)
    space.force_bit(field.index, width - 1, 1)
    space.restore(snap)

    assert field.get() == value
    assert space.signature() == sig
    assert space.signature() == space.signature(full=True)


@settings(max_examples=60)
@given(width=st.sampled_from(EDGE_WIDTHS),
       bit=st.integers(0, 80), stuck=st.booleans(), data=st.data())
def test_force_bit_idempotent(width, bit, stuck, data):
    """Re-asserting a stuck-at is a no-op on value and signature."""
    value = data.draw(st.integers(0, (1 << width) - 1))
    space, field = one_field_space(width)
    field.set(value)

    changed = space.force_bit(field.index, bit, 1 if stuck else 0)
    pick = 1 << (bit % width)
    expected = (value | pick) if stuck else (value & ~pick)
    assert field.get() == expected
    assert changed == (expected != value)
    after_sig = space.signature()
    assert after_sig == space.signature(full=True)

    # Second assertion of the same stuck-at: nothing moves.
    assert space.force_bit(field.index, bit, 1 if stuck else 0) is False
    assert field.get() == expected
    assert space.signature() == after_sig


@given(width=st.sampled_from(EDGE_WIDTHS))
def test_ghost_faults_never_touch_signature(width):
    """Disturbing a ghost element leaves the match signature alone."""
    space = StateSpace()
    field = space.field("f", width, StateCategory.DATA, StorageKind.LATCH)
    ghost = space.field("g", width, StateCategory.GHOST, StorageKind.LATCH)
    space.freeze()
    field.set(1)
    sig = space.signature()
    space.apply_fault(ghost.index, (1 << width) - 1)
    space.force_bit(ghost.index, width - 1, 1)
    assert space.signature() == sig
    assert space.signature() == space.signature(full=True)


def test_array_members_groups_by_allocation():
    """``name[i]`` fields group; scalars and ghosts stay solitary."""
    space = StateSpace()
    regs = space.array("r", 3, 8, StateCategory.DATA, StorageKind.RAM)
    lone = space.field("lone", 4, StateCategory.CTRL, StorageKind.LATCH)
    ghost = space.field("g", 4, StateCategory.GHOST, StorageKind.LATCH)
    space.freeze()
    members = space.array_members(regs[1].index)
    assert members == tuple(r.index for r in regs)
    assert space.array_members(lone.index) == (lone.index,)
    # A ghost is not injectable, so it groups with nothing -- not even
    # itself beyond the identity fallback.
    assert space.array_members(ghost.index) == (ghost.index,)
