"""Control-word encoding tests."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.isa.encoding import decode, encode
from repro.isa.instruction import Instruction
from repro.isa.opcodes import Op
from repro.uarch.uop import (
    COMPLEX_LATENCY_BY_ID,
    CONTROL_IDS,
    LOAD_IDS,
    MEM_IDS,
    PAL_IDS,
    STORE_IDS,
    branch_disp,
    decode_control_word,
    fu_of,
    mem_disp,
    op_from_id,
    pack_pc,
    unpack_pc,
)


@given(st.integers(min_value=0, max_value=255))
def test_op_from_id_total(op_id):
    op = op_from_id(op_id)
    assert isinstance(op, Op)


def test_op_from_id_roundtrip():
    for op in Op:
        assert op_from_id(int(op)) == op


@given(st.integers(min_value=0, max_value=(1 << 62) - 1).map(lambda v: v * 4))
def test_pack_unpack_pc(pc):
    assert unpack_pc(pack_pc(pc)) == pc & ((1 << 64) - 1)


def test_mem_disp_sign_extension():
    assert mem_disp(0xFFFF) == -1
    assert mem_disp(8) == 8
    # Branch-format high bits are ignored by memory ops.
    assert mem_disp(0x1F0008) == 8


def test_branch_disp_sign_extension():
    assert branch_disp((1 << 21) - 1) == -1
    assert branch_disp(100) == 100


def test_decode_control_word_operate():
    insn = decode(encode(Instruction(op=Op.ADDQ, ra=1, rb=2, rc=3)))
    fields = decode_control_word(insn)
    assert fields["op_id"] == int(Op.ADDQ)
    assert fields["has_dest"] == 1 and fields["dest_arch"] == 3
    assert fields["use_a"] == 1 and fields["src_a"] == 1
    assert fields["use_b"] == 1 and fields["src_b"] == 2


def test_decode_control_word_literal():
    insn = decode(encode(Instruction(op=Op.SUBQ, ra=4, rc=5,
                                     is_literal=True, literal=7)))
    fields = decode_control_word(insn)
    assert fields["is_lit"] == 1 and fields["literal"] == 7
    assert fields["use_b"] == 0


def test_decode_control_word_store():
    insn = decode(encode(Instruction(op=Op.STQ, ra=3, rb=4, disp=8)))
    fields = decode_control_word(insn)
    assert fields["has_dest"] == 0
    assert fields["use_a"] == 1 and fields["src_a"] == 3  # data
    assert fields["use_b"] == 1 and fields["src_b"] == 4  # base


def test_decode_control_word_r31_sources_dropped():
    insn = decode(encode(Instruction(op=Op.ADDQ, ra=31, rb=2, rc=3)))
    fields = decode_control_word(insn)
    assert fields["use_a"] == 0  # r31 reads as constant zero


def test_decode_control_word_output_pal():
    insn = decode(encode(Instruction(op=Op.PUTQ)))
    fields = decode_control_word(insn)
    assert fields["use_a"] == 1 and fields["src_a"] == 16  # a0


def test_fu_classification():
    assert fu_of(int(Op.ADDQ)) == 0
    assert fu_of(int(Op.MULQ)) == 1
    assert fu_of(int(Op.BEQ)) == 2
    assert fu_of(int(Op.LDQ)) == 3
    assert fu_of(int(Op.HALT)) == 4


def test_id_sets_disjoint():
    assert not (LOAD_IDS & STORE_IDS)
    assert LOAD_IDS | STORE_IDS == MEM_IDS
    assert not (MEM_IDS & CONTROL_IDS)
    assert not (PAL_IDS & CONTROL_IDS)


def test_complex_latencies_in_paper_range():
    for latency in COMPLEX_LATENCY_BY_ID.values():
        assert 2 <= latency <= 5  # paper: "1 complex ALU (2-5 cycles)"
