"""Unit tests for the multi-tenant campaign queue (repro.fabric.queue)."""

from repro.fabric.queue import FabricQueue


def pick(queue, pending, outstanding=None):
    counts = outstanding or {}
    return queue.pick(lambda cid: cid in pending,
                      lambda tenant: counts.get(tenant, 0))


def test_fifo_within_tenant():
    q = FabricQueue()
    q.submit("alice", "c1")
    q.submit("alice", "c2")
    assert pick(q, {"c1", "c2"}) == "c1"
    assert pick(q, {"c2"}) == "c2"  # c1 drained -> next in line


def test_round_robin_across_tenants():
    q = FabricQueue()
    q.submit("alice", "a1")
    q.submit("bob", "b1")
    everything = {"a1", "b1"}
    first = pick(q, everything)
    second = pick(q, everything)
    third = pick(q, everything)
    assert {first, second} == {"a1", "b1"}  # each tenant served once
    assert third == first  # then the rotation wraps


def test_quota_skips_a_saturated_tenant():
    q = FabricQueue(quota=2)
    q.submit("alice", "a1")
    q.submit("bob", "b1")
    # alice already holds her full quota of leases -> bob wins even if
    # the rotation cursor points at alice.
    assert pick(q, {"a1", "b1"}, {"alice": 2}) == "b1"
    assert pick(q, {"a1", "b1"}, {"alice": 2}) == "b1"
    # a completed lease frees the quota.
    assert pick(q, {"a1", "b1"}, {"alice": 1}) == "a1"


def test_everyone_at_quota_means_no_grant():
    q = FabricQueue(quota=1)
    q.submit("alice", "a1")
    assert pick(q, {"a1"}, {"alice": 1}) is None


def test_discard_removes_campaign_and_empty_tenant():
    q = FabricQueue()
    q.submit("alice", "a1")
    q.submit("bob", "b1")
    q.discard("a1")
    assert pick(q, {"a1", "b1"}) == "b1"
    assert q.depths() == {"bob": 1}
    assert q.tenant_of("b1") == "bob"
    assert q.tenant_of("a1") is None


def test_depths_report_queued_campaigns_per_tenant():
    q = FabricQueue()
    q.submit("alice", "a1")
    q.submit("alice", "a2")
    q.submit("bob", "b1")
    assert q.depths() == {"alice": 2, "bob": 1}
    assert q.campaigns_of("alice") == ["a1", "a2"]


def test_empty_queue_picks_nothing():
    assert pick(FabricQueue(), set()) is None
