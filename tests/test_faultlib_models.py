"""Fault-model tests: parsing, determinism, batching, journal, query.

The contract of :mod:`repro.faultlib` is that a fault model changes the
*shape* of the disturbance and nothing else: campaigns stay
deterministic and resumable, serial and batched runs stay
byte-identical, default-model artifacts stay bit-for-bit what the
pre-faultlib harness produced, and the store can compare models in one
query.  ``EQUIVALENCE_SPECS`` and ``ROUNDTRIP_SPECS`` below are
module-level literals on purpose: the REP004-style inventory test
parses them from source and fails if a registered kind is missing from
either matrix.
"""

import json

import pytest

from repro.errors import CampaignError
from repro.faultlib import (
    DEFAULT_FAULT_MODEL,
    FaultModel,
    parse_fault_model,
)
from repro.inject.campaign import CampaignConfig
from repro.inject.outcome import TrialOutcome, TrialResult
from repro.inject.store import (
    campaign_fingerprint,
    config_from_dict,
    config_to_dict,
    trial_from_dict,
    trial_to_dict,
)
from repro.runner.engine import run_campaign
from repro.runner.journal import canonical_trial_bytes, journal_path
from repro.runner.pool import WorkerContext
from repro.runner.units import batch_units, enumerate_units

# One spec per registered kind, exercised scalar-vs-batched (the
# inventory test asserts full kind coverage -- keep these literal).
EQUIVALENCE_SPECS = (
    "single_bit",
    "multi_bit:adjacent:2",
    "burst:array:p=0.5",
    "stuck_at:0:lifetime=60",
    "intermittent:16,4",
)

# One spec per registered kind, journal/dict round-tripped (literal,
# same inventory contract as above).
ROUNDTRIP_SPECS = (
    "single_bit",
    "multi_bit:adjacent:3",
    "burst:array:p=0.25",
    "stuck_at:1",
    "intermittent:8,2",
)


# -- spec parsing --------------------------------------------------------


@pytest.mark.parametrize("spec,canonical", [
    ("single_bit", "single_bit"),
    ("", "single_bit"),
    (None, "single_bit"),
    ("multi_bit:adjacent:02", "multi_bit:adjacent:2"),
    ("burst:array:p=0.5", "burst:array:p=0.5"),
    ("burst:array:p=.5", "burst:array:p=0.5"),
    ("stuck_at:1", "stuck_at:1"),
    ("stuck_at:0:lifetime=060", "stuck_at:0:lifetime=60"),
    ("intermittent:16,04", "intermittent:16,4"),
])
def test_parse_canonicalizes(spec, canonical):
    model = parse_fault_model(spec)
    assert model.spec == canonical
    assert isinstance(model, FaultModel)
    # Canonical specs are fixed points of the parser.
    assert parse_fault_model(model.spec).spec == canonical
    # An already-parsed model passes through unchanged.
    assert parse_fault_model(model) is model


@pytest.mark.parametrize("spec", [
    "cosmic_ray",                 # unknown kind
    "single_bit:2",               # default takes no parameters
    "multi_bit:adjacent:1",       # span 1 is single_bit
    "multi_bit:adjacent:x",       # non-integer span
    "multi_bit:rowhammer:2",      # unknown geometry
    "burst:array:p=0",            # probability out of (0, 1]
    "burst:array:p=1.5",
    "burst:array:p=maybe",
    "stuck_at:2",                 # V must be 0 or 1
    "stuck_at:1:lifetime=0",      # lifetime must be >= 1
    "stuck_at:1:ttl=5",
    "intermittent:4",             # missing duty
    "intermittent:4,4",           # duty must be < period
    "intermittent:1,0",
])
def test_parse_rejects_malformed_specs(spec):
    with pytest.raises(CampaignError, match="invalid fault model"):
        parse_fault_model(spec)


def test_default_detection():
    assert parse_fault_model("single_bit").is_default
    assert not parse_fault_model("multi_bit:adjacent:2").is_default


def test_config_validates_and_canonicalizes_fault_model():
    config = CampaignConfig.test(fault_model="stuck_at:0:lifetime=060")
    assert config.fault_model == "stuck_at:0:lifetime=60"
    with pytest.raises(CampaignError):
        CampaignConfig.test(fault_model="nope")


# -- fingerprint / journal stability of the default --------------------


def test_default_model_absent_from_config_dict():
    """Existing fingerprints, resume state and caches stay valid."""
    flat = config_to_dict(CampaignConfig.test())
    assert "fault_model" not in flat
    assert campaign_fingerprint(CampaignConfig.test()) \
        == campaign_fingerprint(
            CampaignConfig.test(fault_model=DEFAULT_FAULT_MODEL))


def test_non_default_model_changes_fingerprint():
    assert campaign_fingerprint(CampaignConfig.test()) \
        != campaign_fingerprint(
            CampaignConfig.test(fault_model="multi_bit:adjacent:2"))


def test_config_dict_roundtrip_with_model():
    config = CampaignConfig.test(fault_model="burst:array:p=0.5")
    flat = config_to_dict(config)
    assert flat["fault_model"] == "burst:array:p=0.5"
    assert config_from_dict(flat) == config


def test_legacy_trial_dict_loads_as_single_bit():
    """A pre-faultlib journal line deserializes with the default model."""
    trial = trial_to_dict(_some_trial())
    legacy = dict(trial)
    legacy.pop("fault_model", None)
    assert trial_from_dict(legacy).fault_model == "single_bit"


def _some_trial(**overrides):
    fields = dict(outcome=TrialOutcome.MICRO_MATCH, failure_mode=None,
                  workload="gzip", element_name="f", category="ctrl",
                  kind="latch", bit=0, start_point=0, trial_index=0,
                  inject_cycle=400, cycles_run=10, valid_inflight=0,
                  total_inflight=0)
    fields.update(overrides)
    return TrialResult(**fields)


@pytest.mark.parametrize("spec", ROUNDTRIP_SPECS)
def test_trial_dict_roundtrip_per_model(spec):
    trial = _some_trial(fault_model=spec)
    flat = trial_to_dict(trial)
    if spec == DEFAULT_FAULT_MODEL:
        # Default trials serialize without the key: legacy bytes.
        assert "fault_model" not in flat
    else:
        assert flat["fault_model"] == spec
    assert trial_from_dict(flat) == trial


# -- scalar vs batched equivalence per model ----------------------------


def _config(spec):
    return CampaignConfig.test(start_points_per_workload=1,
                               horizon=300, fault_model=spec)


@pytest.mark.parametrize("spec", EQUIVALENCE_SPECS)
def test_scalar_vs_batched_trials_per_model(tmp_path, spec):
    """Every registered model: batched trials == scalar trials.

    Batchable models ride the bit-plane engine as plane XORs;
    persistent/multi-element models take its scalar fallback -- either
    way ``run_batch`` must equal ``run_unit`` trial for trial.
    """
    config = _config(spec)
    golden_dir = str(tmp_path / "golden")
    units = enumerate_units(config)

    scalar_context = WorkerContext(config, golden_dir=golden_dir)
    scalar = [scalar_context.run_unit(unit) for unit in units]
    assert all(trial.fault_model == parse_fault_model(spec).spec
               for trial in scalar)

    batched_context = WorkerContext(config, golden_dir=golden_dir,
                                    batch_lanes=8)
    batched = []
    for batch in batch_units(units, 8):
        batched.extend(trial for _unit, trial
                       in batched_context.run_batch(batch))
    assert batched == scalar


@pytest.mark.parametrize("spec", [s for s in EQUIVALENCE_SPECS
                                  if s != DEFAULT_FAULT_MODEL])
def test_serial_vs_batch8_journals_byte_identical(tmp_path, spec):
    """Acceptance bar: serial and ``--batch 8`` journals match bytewise."""
    config = _config(spec)
    canonical = {}
    for label, lanes in (("serial", None), ("batch8", 8)):
        directory = str(tmp_path / label)
        run_campaign(config, workers=1, directory=directory,
                     batch_lanes=lanes)
        canonical[label] = canonical_trial_bytes(journal_path(directory))
    assert canonical["batch8"] == canonical["serial"]


def test_journal_lines_carry_model(tmp_path):
    """Non-default journal lines record their model; defaults do not."""
    directory = str(tmp_path / "campaign")
    run_campaign(_config("multi_bit:adjacent:2"), workers=1,
                 directory=directory)
    lines = [json.loads(line)
             for line in open(journal_path(directory), encoding="utf-8")]
    trials = [line["trial"] for line in lines
              if line.get("type") == "trial"]
    assert trials
    assert all(t["fault_model"] == "multi_bit:adjacent:2" for t in trials)

    default_dir = str(tmp_path / "default")
    run_campaign(_config("single_bit"), workers=1, directory=default_dir)
    lines = [json.loads(line) for line
             in open(journal_path(default_dir), encoding="utf-8")]
    trials = [line["trial"] for line in lines
              if line.get("type") == "trial"]
    assert trials
    assert all("fault_model" not in t for t in trials)


# -- the cross-model query ---------------------------------------------


def test_query_by_fault_model_cli(tmp_path, capsys):
    """Mixed-model store: one CLI command renders the comparison."""
    from repro.cli import main

    dirs = []
    for spec in ("single_bit", "multi_bit:adjacent:2"):
        directory = str(tmp_path / spec.replace(":", "_"))
        run_campaign(_config(spec), workers=1, directory=directory)
        dirs.append(directory)

    argv = ["query", "--by", "fault_model"]
    for directory in dirs:
        argv += ["--ingest", directory]
    assert main(argv) == 0
    out = capsys.readouterr().out
    assert "Failure-rate comparison by category x fault model" in out
    assert "multi_bit:adjacent:2" in out
    assert "single_bit" in out
