"""Result-persistence tests (JSON round-trips and merging)."""

import copy

import pytest

from repro.errors import SimulationError
from repro.inject.campaign import Campaign, CampaignConfig
from repro.inject.software import SoftwareCampaign, SoftwareCampaignConfig
from repro.inject.store import (
    campaign_fingerprint,
    campaign_from_dict,
    campaign_to_dict,
    load_result,
    merge_campaign_dicts,
    merge_campaigns,
    save_result,
    software_from_dict,
    software_to_dict,
)


@pytest.fixture(scope="module")
def uarch_result():
    config = CampaignConfig.test(trials_per_start_point=5,
                                 start_points_per_workload=1)
    return Campaign(config).run()


@pytest.fixture(scope="module")
def software_result():
    config = SoftwareCampaignConfig.test(trials_per_model_per_workload=2)
    return SoftwareCampaign(config).run()


def test_uarch_roundtrip(uarch_result):
    loaded = campaign_from_dict(campaign_to_dict(uarch_result))
    assert loaded.config == uarch_result.config
    assert loaded.eligible_bits == uarch_result.eligible_bits
    assert loaded.inventory == uarch_result.inventory
    assert [(t.element_name, t.outcome, t.failure_mode)
            for t in loaded.trials] == \
        [(t.element_name, t.outcome, t.failure_mode)
         for t in uarch_result.trials]
    assert loaded.failure_rate() == uarch_result.failure_rate()


def test_software_roundtrip(software_result):
    loaded = software_from_dict(software_to_dict(software_result))
    assert loaded.config == software_result.config
    assert [(t.model, t.outcome, t.inject_index) for t in loaded.trials] \
        == [(t.model, t.outcome, t.inject_index)
            for t in software_result.trials]


def test_file_roundtrip(tmp_path, uarch_result, software_result):
    uarch_path = tmp_path / "uarch.json"
    software_path = tmp_path / "software.json"
    save_result(uarch_result, uarch_path)
    save_result(software_result, software_path)
    assert load_result(uarch_path).eligible_bits == \
        uarch_result.eligible_bits
    assert len(load_result(software_path).trials) == \
        len(software_result.trials)


def test_kind_mismatch_rejected(uarch_result):
    document = campaign_to_dict(uarch_result)
    with pytest.raises(ValueError):
        software_from_dict(document)
    document["kind"] = "garbage"
    with pytest.raises(ValueError):
        campaign_from_dict(document)


def test_save_rejects_unknown_type(tmp_path):
    with pytest.raises(TypeError):
        save_result(object(), tmp_path / "x.json")


def test_merge_campaigns(uarch_result):
    merged = merge_campaigns([uarch_result, uarch_result])
    assert len(merged.trials) == 2 * len(uarch_result.trials)
    assert merged.eligible_bits == uarch_result.eligible_bits
    with pytest.raises(ValueError):
        merge_campaigns([])


def test_merge_campaign_dicts_combines_partials(uarch_result):
    document = campaign_to_dict(uarch_result)
    # Two overlapping partial documents (e.g. journals of two
    # interrupted runs of the same fingerprint) merge back to the full
    # serial-order trial list, deduplicated on the unit key.
    first = dict(document, trials=document["trials"][:3])
    second = dict(document, trials=document["trials"][2:])
    merged = merge_campaign_dicts([first, second])
    assert merged["trials"] == document["trials"]
    assert merged["fingerprint"] == \
        campaign_fingerprint(uarch_result.config)
    assert campaign_from_dict(merged).trials == uarch_result.trials


def test_merge_campaign_dicts_rejects_fingerprint_mismatch(uarch_result):
    document = campaign_to_dict(uarch_result)
    other = copy.deepcopy(document)
    other["config"]["seed"] += 1
    with pytest.raises(SimulationError, match="fingerprint"):
        merge_campaign_dicts([document, other])


def test_merge_campaign_dicts_rejects_schema_mismatch(uarch_result):
    document = campaign_to_dict(uarch_result)
    other = dict(document, schema=99)
    with pytest.raises(SimulationError, match="schema"):
        merge_campaign_dicts([document, other])
    with pytest.raises(SimulationError, match="uarch-campaign"):
        merge_campaign_dicts([document, dict(document, kind="other")])
    with pytest.raises(SimulationError, match="nothing to merge"):
        merge_campaign_dicts([])
