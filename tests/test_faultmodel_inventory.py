"""Inventory guard: every fault-model kind is proven, not just parsed.

REP004 keeps the state-category inventory honest by failing the build
when a category exists that the analysis layer does not aggregate.
This applies the same pattern to fault models: a kind registered in
``repro.faultlib`` must appear in the scalar-vs-batched equivalence
matrix *and* the journal round-trip matrix of
``tests/test_faultlib_models.py``.  The matrices are module-level
literal tuples read from source with :mod:`ast`, so a new model that
ships without either proof fails here -- before a campaign ever runs
it.
"""

import ast
import os

from repro.faultlib import FAULT_MODEL_KINDS, parse_fault_model

_MODELS_TEST = os.path.join(os.path.dirname(__file__),
                            "test_faultlib_models.py")


def _literal_tuple(name):
    with open(_MODELS_TEST, "r", encoding="utf-8") as handle:
        tree = ast.parse(handle.read())
    for node in tree.body:
        if isinstance(node, ast.Assign) \
                and any(isinstance(target, ast.Name) and target.id == name
                        for target in node.targets):
            value = ast.literal_eval(node.value)
            assert isinstance(value, tuple), \
                "%s must stay a literal tuple" % name
            return value
    raise AssertionError("%s not found in %s" % (name, _MODELS_TEST))


def _kinds_of(specs):
    return {parse_fault_model(spec).kind for spec in specs}


def test_every_kind_in_equivalence_matrix():
    """Scalar-vs-batched equivalence covers every registered kind."""
    assert _kinds_of(_literal_tuple("EQUIVALENCE_SPECS")) \
        == set(FAULT_MODEL_KINDS)


def test_every_kind_in_roundtrip_matrix():
    """Journal/dict round-trips cover every registered kind."""
    assert _kinds_of(_literal_tuple("ROUNDTRIP_SPECS")) \
        == set(FAULT_MODEL_KINDS)


def test_kind_registry_is_stable():
    """Kinds are unique, canonical, and include the paper's default."""
    assert len(set(FAULT_MODEL_KINDS)) == len(FAULT_MODEL_KINDS)
    assert "single_bit" in FAULT_MODEL_KINDS
    for spec in ("single_bit", "multi_bit:adjacent:2",
                 "burst:array:p=0.3", "stuck_at:0", "intermittent:4,1"):
        model = parse_fault_model(spec)
        assert model.kind in FAULT_MODEL_KINDS
