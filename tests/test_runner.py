"""Execution-engine tests: determinism, crash recovery, robustness.

The engine's contract is byte-identity with the serial reference
runner: for a fixed config, ``CampaignRunner`` must produce exactly the
trials of ``Campaign(config).run()`` for any worker count, with or
without an interrupt, a truncated journal, or a dead worker in the
middle.  ``TrialResult`` is a plain dataclass, so ``==`` over the trial
lists is a field-for-field (byte-identical) comparison.
"""

import json
import os

import pytest

from repro.errors import SimulationError
from repro.inject.campaign import Campaign, CampaignConfig
from repro.inject.parallel import run_parallel
from repro.runner import CampaignRunner, enumerate_units, run_campaign
from repro.runner.journal import journal_path, metrics_path
from repro.runner.telemetry import Telemetry
from repro.runner.units import TrialUnit, auto_batch_size, batch_units


@pytest.fixture(scope="module")
def config():
    return CampaignConfig.test()


@pytest.fixture(scope="module")
def serial(config):
    return Campaign(config).run()


# -- Work decomposition --------------------------------------------------------


def test_units_enumerate_in_serial_order(config):
    units = enumerate_units(config)
    assert len(units) == config.total_trials
    assert units[0] == TrialUnit("gzip", 0, 0)
    assert units[config.trials_per_start_point] == TrialUnit("gzip", 1, 0)
    assert units == sorted(units)


def test_batches_never_span_start_points(config):
    units = enumerate_units(config)
    batches = batch_units(units, 4)
    assert sum(len(batch) for batch in batches) == len(units)
    for batch in batches:
        assert len(batch) <= 4
        rebuilt = batch.units()
        assert all(unit.start_point == batch.start_point for unit in rebuilt)
    flattened = [unit for batch in batches for unit in batch.units()]
    assert flattened == units


def test_auto_batch_size_bounds():
    assert auto_batch_size(0, 4) == 1
    assert auto_batch_size(10, 4) == 1  # fewer units than 4*workers
    assert auto_batch_size(30_000, 8) == 32  # capped quantum
    assert auto_batch_size(400, 4) == 25


# -- Determinism ---------------------------------------------------------------


def test_inline_engine_matches_serial(config, serial):
    result = run_campaign(config, workers=1)
    assert result.config == serial.config
    assert result.trials == serial.trials
    assert result.eligible_bits == serial.eligible_bits
    assert result.inventory == serial.inventory


def test_pool_engine_matches_serial(config, serial):
    result = run_campaign(config, workers=3)
    assert result.trials == serial.trials
    assert result.eligible_bits == serial.eligible_bits


def test_single_workload_campaign_scales_past_one_worker(config, serial):
    # The old workload-sharded runner fell back to serial whenever
    # len(workloads) <= 1; the trial-granular engine must not.
    runner = CampaignRunner(config, workers=99)
    assert runner.workers == config.total_trials  # clamped, not 1
    result = run_parallel(config, workers=4)
    assert result.trials == serial.trials


# -- Crash recovery ------------------------------------------------------------


class _Interrupt(KeyboardInterrupt):
    """Distinguishable SIGINT stand-in raised from the progress hook."""


def test_interrupt_truncation_resume_is_byte_identical(
        tmp_path, config, serial):
    directory = str(tmp_path / "campaign")
    seen = []

    def interrupt_after_four(snapshot):
        seen.append(snapshot.done)
        if snapshot.done == 4:
            raise _Interrupt()

    with pytest.raises(_Interrupt):
        CampaignRunner(config, workers=1, directory=directory,
                       progress=interrupt_after_four).run()

    path = journal_path(directory)
    with open(path) as handle:
        journaled = handle.read().splitlines()
    assert len(journaled) == 1 + 4  # header + the four completed trials

    # Simulate the crash happening mid-append: tear the last line.
    with open(path, "r+b") as handle:
        handle.truncate(os.path.getsize(path) - 15)

    resumed = run_campaign(config, workers=2, directory=directory)
    assert resumed.trials == serial.trials
    assert resumed.eligible_bits == serial.eligible_bits
    assert resumed.inventory == serial.inventory

    # The journal now holds the full campaign; a further resume
    # recomputes nothing and still reproduces the serial result.
    again = run_campaign(config, workers=1, directory=directory)
    assert again.trials == serial.trials
    metrics = json.loads(open(metrics_path(directory)).read())
    assert metrics["total"] == config.total_trials
    assert metrics["resumed"] == config.total_trials
    assert metrics["fresh"] == 0


def test_worker_death_requeues_and_matches_serial(config, serial):
    killed = []
    runner = CampaignRunner(config, workers=2, batch_size=4)

    def kill_one_busy_worker(snapshot):
        if snapshot.fresh >= 2 and not killed and runner.pool is not None:
            busy = [w for w in runner.pool.workers if w.busy and w.alive()]
            if busy:
                busy[0].process.terminate()
                killed.append(busy[0].worker_id)

    runner.progress = kill_one_busy_worker
    result = runner.run()
    assert killed, "test never observed a busy worker to kill"
    assert result.trials == serial.trials


def test_resume_rejects_fingerprint_mismatch(tmp_path, config):
    directory = str(tmp_path / "campaign")
    run_campaign(config, workers=1, directory=directory)
    other = CampaignConfig.test(seed=config.seed + 1)
    with pytest.raises(SimulationError, match="fingerprint"):
        run_campaign(other, workers=1, directory=directory)


def test_resume_rejects_mid_journal_corruption(tmp_path, config):
    directory = str(tmp_path / "campaign")
    run_campaign(config, workers=1, directory=directory)
    path = journal_path(directory)
    lines = open(path).read().splitlines()
    lines[2] = lines[2][:10]  # corrupt a *non-final* record
    with open(path, "w") as handle:
        handle.write("\n".join(lines) + "\n")
    with pytest.raises(SimulationError, match="corrupt journal line 3"):
        run_campaign(config, workers=1, directory=directory)


def test_resume_requires_journal_when_asked(tmp_path, config):
    with pytest.raises(SimulationError, match="cannot resume"):
        run_campaign(config, directory=str(tmp_path / "missing"),
                     require_journal=True)


# -- Telemetry -----------------------------------------------------------------


def test_telemetry_rates_and_eta(serial):
    # First tick anchors _started; record_trial timestamps each
    # completion (per-worker latency), snapshot reads elapsed.
    ticks = iter([0.0] + [10.0] * 8)
    telemetry = Telemetry(total=10, resumed=2, clock=lambda: next(ticks))
    for trial in serial.trials[:4]:
        telemetry.record_trial(trial)
    telemetry.set_workers(3, 4)
    snapshot = telemetry.snapshot()
    assert snapshot.done == 6 and snapshot.fresh == 4
    assert snapshot.trials_per_second == pytest.approx(0.4)
    assert snapshot.eta_seconds == pytest.approx(10.0)
    assert snapshot.percent == pytest.approx(60.0)
    assert sum(snapshot.outcome_counts.values()) == 4
    assert snapshot.workers_busy == 3
    rendered = snapshot.render()
    assert "60.0% 6/10" in rendered and "ETA" in rendered
    assert snapshot.to_dict()["workers_total"] == 4


def test_telemetry_incident_counters_in_line_json_and_prom():
    from repro.obs.metrics import render_openmetrics

    telemetry = Telemetry(total=10, clock=lambda: 0.0)
    clean = telemetry.snapshot().render()
    for token in ("harness-err", "quarantined", "io-retries", "retried"):
        assert token not in clean  # healthy runs stay terse

    telemetry.record_retry(2)
    telemetry.record_harness_error()
    telemetry.record_quarantine()
    telemetry.record_io_retry()
    telemetry.record_io_retry(2)
    snapshot = telemetry.snapshot()

    rendered = snapshot.render()
    assert "retried:2" in rendered
    assert "harness-err:1" in rendered
    assert "quarantined:1" in rendered
    assert "io-retries:3" in rendered

    as_dict = snapshot.to_dict()
    assert as_dict["harness_errors"] == 1
    assert as_dict["quarantined"] == 1
    assert as_dict["io_retries"] == 3

    prom = render_openmetrics(as_dict)
    assert "repro_harness_errors 1" in prom
    assert "repro_cache_quarantined 1" in prom
    assert "repro_io_retries 3" in prom
