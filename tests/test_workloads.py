"""Workload kernel tests: correctness, determinism, characterisation."""

import pytest

from repro.arch.functional import FunctionalSimulator
from repro.errors import ConfigError
from repro.isa.semantics import Exc
from repro.workloads import WORKLOAD_NAMES, get_workload, iter_workloads


def test_registry_has_ten_spec_kernels():
    assert len(WORKLOAD_NAMES) == 10
    assert set(WORKLOAD_NAMES) == {
        "bzip2", "crafty", "gcc", "gzip", "mcf", "parser", "perlbmk",
        "twolf", "vortex", "vpr"}


def test_unknown_workload_rejected():
    with pytest.raises(ConfigError):
        get_workload("specjbb")


def test_unknown_scale_rejected():
    with pytest.raises(ConfigError):
        get_workload("gzip", scale="huge")


@pytest.mark.parametrize("name", WORKLOAD_NAMES)
def test_kernel_runs_clean(name):
    workload = get_workload(name, scale="tiny")
    sim = FunctionalSimulator(workload.program)
    sim.run(3_000_000)
    assert sim.halted, "%s did not terminate" % name
    assert sim.exception == Exc.NONE
    assert sim.output_text(), "%s produced no output" % name


@pytest.mark.parametrize("name", WORKLOAD_NAMES)
def test_kernel_deterministic(name):
    first = FunctionalSimulator(get_workload(name, scale="tiny").program)
    first.run(3_000_000)
    second = FunctionalSimulator(get_workload(name, scale="tiny").program)
    second.run(3_000_000)
    assert first.output_text() == second.output_text()
    assert first.instret == second.instret


def test_scale_controls_length():
    tiny = FunctionalSimulator(get_workload("gzip", scale="tiny").program)
    tiny.run(10_000_000)
    small = FunctionalSimulator(get_workload("gzip", scale="small").program)
    small.run(10_000_000)
    assert small.instret > 4 * tiny.instret


def test_iter_workloads_subset():
    names = [w.name for w in iter_workloads(names=("mcf", "gzip"))]
    assert names == ["mcf", "gzip"]


def test_workload_metadata():
    workload = get_workload("mcf")
    assert "pointer" in workload.description or "list" in workload.description
    assert workload.profile
    assert workload.scale == "small"


def test_gzip_mirror():
    """gzip kernel's outputs match an exact Python mirror."""
    workload = get_workload("gzip", scale="tiny")
    sim = FunctionalSimulator(workload.program)
    sim.run(3_000_000)

    mask64 = (1 << 64) - 1
    lcg_a, lcg_c, seed = (6364136223846793005, 1442695040888963407,
                          88172645463325252)
    size = 192
    buf = []
    x = seed
    for _ in range(size):
        x = (x * lcg_a + lcg_c) & mask64
        buf.append(x)

    iters = 4  # tiny scale
    total = 0
    outputs = []
    for p in range(iters):
        hash32 = 0
        matches = 0
        for word in buf:
            hash32 = ((hash32 * 33) ^ word) & 0xFFFFFFFF
            if word & 255 < 16:
                matches += 1
        signal = 1 if hash32 & 255 < 8 else 0
        block = matches + signal
        total += block
        if (iters - p) % 4 == 0:  # the kernel prints every 4th block
            outputs.append("%d\n" % block)
    outputs.append("%d\n" % total)
    sample = buf[8] ^ (buf[8] >> 7)  # transformed word at offset 64
    signed = sample - (1 << 64) if sample >> 63 else sample
    outputs.append("%d\n" % signed)
    assert sim.output_text() == "".join(outputs)


def test_mcf_low_ipc_vs_gzip():
    """mcf (dependent misses) must run at lower IPC than gzip (paper 3.1)."""
    from repro.uarch import Pipeline
    ipcs = {}
    windows = {"gzip": 3000, "mcf": 23_000}  # past each init phase
    for name in ("gzip", "mcf"):
        workload = get_workload(name, scale="small")
        pipe = Pipeline(workload.program)
        pipe.run(windows[name])
        start = pipe.total_retired
        pipe.run(5000)
        ipcs[name] = (pipe.total_retired - start) / 5000.0
    assert ipcs["gzip"] > ipcs["mcf"]
