"""Occupancy/AVF-proxy analysis tests."""

from repro.analysis.avf import (
    STRUCTURES,
    estimate_avf,
    measured_structure_rates,
    sample_occupancy,
)
from repro.uarch.core import Pipeline
from repro.workloads import get_workload


def test_sample_occupancy_bounds():
    pipeline = Pipeline(get_workload("gzip", scale="tiny").program)
    pipeline.run(800)
    sample = sample_occupancy(pipeline)
    assert set(sample) == set(STRUCTURES)
    for value in sample.values():
        assert 0.0 <= value <= 1.0


def test_estimate_avf_high_ipc_fills_structures():
    pipeline = Pipeline(get_workload("gzip", scale="tiny").program)
    pipeline.run(600)
    estimate = estimate_avf(pipeline, 600)
    assert estimate.proxy("rob") > 0.3  # gzip keeps the window busy
    assert estimate.proxy("scheduler") > 0.05


def test_estimate_avf_mcf_emptier_than_gzip():
    """mcf's dependent misses drain the window relative to gzip."""
    estimates = {}
    for name in ("gzip", "mcf"):
        pipeline = Pipeline(get_workload(name, scale="tiny").program)
        pipeline.run(5000)  # past initialisation
        estimates[name] = estimate_avf(pipeline, 1500)
    assert estimates["mcf"].proxy("scheduler") != \
        estimates["gzip"].proxy("scheduler")


def test_estimate_avf_halted_program():
    pipeline = Pipeline(get_workload("gzip", scale="tiny").program)
    pipeline.run(10_000_000)  # to completion
    estimate = estimate_avf(pipeline, 100)
    assert estimate.occupancy == {} or estimate.cycles >= 0


def test_measured_structure_rates():
    from repro.inject.outcome import TrialOutcome, TrialResult

    def trial(element, outcome):
        return TrialResult(
            outcome=outcome, failure_mode=None, workload="w",
            element_name=element, category="ctrl", kind="ram", bit=0,
            start_point=0, inject_cycle=0, cycles_run=1,
            valid_inflight=0, total_inflight=0)

    trials = [
        trial("rob[3].pc", TrialOutcome.SDC),
        trial("rob[4].pc", TrialOutcome.MICRO_MATCH),
        trial("sched[1].op_id", TrialOutcome.MICRO_MATCH),
    ]
    rates = measured_structure_rates(trials)
    assert rates["rob"] == (0.5, 2)
    assert rates["scheduler"] == (0.0, 1)
    assert "loadq" not in rates
