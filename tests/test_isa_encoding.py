"""Encode/decode tests for the ISA, including totality properties."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.errors import EncodingError
from repro.isa.encoding import NOP_WORD, decode, encode
from repro.isa.instruction import Instruction
from repro.isa.opcodes import (
    BRANCH_OPCODES,
    MEMORY_OPCODES,
    OPERATE_FUNCS,
    PAL_FUNCS,
    Op,
)


def test_decode_is_total_over_random_words():
    for word in (0, 0xFFFFFFFF, 0xDEADBEEF, 0x12345678):
        insn = decode(word)
        assert isinstance(insn, Instruction)


@given(st.integers(min_value=0, max_value=0xFFFFFFFF))
def test_decode_total_property(word):
    insn = decode(word)
    assert 0 <= insn.ra < 32
    assert 0 <= insn.rb < 32
    assert 0 <= insn.rc < 32


def test_nop_is_bis_identity():
    insn = decode(NOP_WORD)
    assert insn.op == Op.BIS
    assert insn.ra == insn.rb == insn.rc == 31
    assert insn.dest is None
    assert insn.srcs == []


def test_memory_format_roundtrip():
    insn = Instruction(op=Op.LDQ, ra=5, rb=9, disp=-8)
    decoded = decode(encode(insn))
    assert decoded.op == Op.LDQ
    assert decoded.ra == 5
    assert decoded.rb == 9
    assert decoded.disp == -8


def test_branch_format_roundtrip():
    insn = Instruction(op=Op.BNE, ra=3, disp=-100)
    decoded = decode(encode(insn))
    assert decoded.op == Op.BNE
    assert decoded.ra == 3
    assert decoded.disp == -100


def test_operate_register_roundtrip():
    insn = Instruction(op=Op.ADDQ, ra=1, rb=2, rc=3)
    decoded = decode(encode(insn))
    assert (decoded.op, decoded.ra, decoded.rb, decoded.rc) == \
        (Op.ADDQ, 1, 2, 3)
    assert not decoded.is_literal


def test_operate_literal_roundtrip():
    insn = Instruction(op=Op.SUBQ, ra=1, rc=3, is_literal=True, literal=200)
    decoded = decode(encode(insn))
    assert decoded.is_literal
    assert decoded.literal == 200


def test_jump_roundtrip():
    for op in (Op.JMP, Op.JSR, Op.RET):
        insn = Instruction(op=op, ra=26, rb=4)
        decoded = decode(encode(insn))
        assert decoded.op == op
        assert decoded.ra == 26
        assert decoded.rb == 4


def test_pal_roundtrip():
    for op in (Op.HALT, Op.PUTC, Op.PUTQ, Op.PAL_NOP):
        decoded = decode(encode(Instruction(op=op)))
        assert decoded.op == op


def test_encode_range_checks():
    with pytest.raises(EncodingError):
        encode(Instruction(op=Op.LDQ, ra=1, rb=2, disp=1 << 20))
    with pytest.raises(EncodingError):
        encode(Instruction(op=Op.ADDQ, ra=1, rc=2, is_literal=True,
                           literal=300))


def _all_encodable():
    ops = set(MEMORY_OPCODES.values()) | set(BRANCH_OPCODES.values())
    ops |= {op for funcs in OPERATE_FUNCS.values() for op in funcs.values()}
    ops |= set(PAL_FUNCS.values())
    ops |= {Op.JMP, Op.JSR, Op.RET}
    return sorted(ops)


@pytest.mark.parametrize("op", _all_encodable())
def test_every_operation_roundtrips(op):
    from repro.isa.opcodes import (
        COND_BRANCH_OPS,
        JUMP_OPS,
        MEM_OPS,
        PAL_OPS,
        UNCOND_BRANCH_OPS,
    )
    if op in PAL_OPS:
        insn = Instruction(op=op)
    elif op in MEM_OPS or op in (Op.LDA, Op.LDAH):
        insn = Instruction(op=op, ra=7, rb=8, disp=16)
    elif op in JUMP_OPS:
        insn = Instruction(op=op, ra=26, rb=9)
    elif op in COND_BRANCH_OPS or op in UNCOND_BRANCH_OPS:
        insn = Instruction(op=op, ra=7, disp=12)
    else:
        insn = Instruction(op=op, ra=1, rb=2, rc=3)
    assert decode(encode(insn)).op == op


@given(st.sampled_from(_all_encodable()),
       st.integers(min_value=0, max_value=31),
       st.integers(min_value=0, max_value=31),
       st.integers(min_value=0, max_value=31))
def test_register_fields_roundtrip(op, ra, rb, rc):
    from repro.isa.opcodes import OPERATE_FUNCS
    operate_ops = {o for funcs in OPERATE_FUNCS.values()
                   for o in funcs.values()}
    if op not in operate_ops:
        return
    insn = Instruction(op=op, ra=ra, rb=rb, rc=rc)
    decoded = decode(encode(insn))
    assert (decoded.ra, decoded.rb, decoded.rc) == (ra, rb, rc)


def test_instruction_classification():
    assert decode(encode(Instruction(op=Op.LDQ, ra=1, rb=2))).is_load
    assert decode(encode(Instruction(op=Op.STQ, ra=1, rb=2))).is_store
    assert decode(encode(Instruction(op=Op.BEQ, ra=1))).is_cond_branch
    assert decode(encode(Instruction(op=Op.BR, ra=31))).is_uncond_branch
    assert decode(encode(Instruction(op=Op.RET, rb=26))).is_jump
    assert decode(encode(Instruction(op=Op.HALT))).is_halt


def test_srcs_and_dest():
    store = Instruction(op=Op.STQ, ra=3, rb=4)
    assert store.dest is None
    assert store.srcs == [3, 4]
    load = Instruction(op=Op.LDQ, ra=3, rb=4)
    assert load.dest == 3
    assert load.srcs == [4]
    op = Instruction(op=Op.ADDQ, ra=1, rb=2, rc=5)
    assert op.dest == 5
    assert op.srcs == [1, 2]
    # r31 writes have no architectural destination.
    sink = Instruction(op=Op.ADDQ, ra=1, rb=2, rc=31)
    assert sink.dest is None


def test_branch_target():
    insn = Instruction(op=Op.BR, ra=31, disp=3)
    assert insn.branch_target(0x1000) == 0x1000 + 4 + 12
    back = Instruction(op=Op.BNE, ra=1, disp=-2)
    assert back.branch_target(0x1000) == 0x1000 + 4 - 8
