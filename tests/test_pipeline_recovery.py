"""Recovery invariants: rename state must be exactly restored.

After any sequence of mispredictions and flushes in a fault-free run,
the machine's rename invariants must hold whenever the pipeline is
drained: the speculative RAT equals the architectural RAT, both free
lists hold exactly ``phys_regs - 32`` registers, and the union of
mapped + free physical registers is a partition.
"""

import pytest

from repro.isa.assembler import assemble
from repro.uarch.config import PipelineConfig
from repro.uarch.core import Pipeline
from repro.workloads import get_workload
from repro.workloads.generator import random_program


def check_rename_invariants(pipeline, spec_side=True):
    """Architectural rename invariants; with ``spec_side`` also checks
    the speculative state (requires a fully drained/flushed machine --
    after a natural HALT, wrong-path leftovers legitimately occupy the
    ROB and speculative rename state)."""
    config = pipeline.config
    arch_map = [pipeline.arch_rat.read(a) for a in range(32)]
    assert pipeline.arch_freelist.available == config.free_regs

    free = []
    head = pipeline.arch_freelist.head.get()
    for offset in range(config.free_regs):
        slot = (head + offset) % pipeline.arch_freelist.capacity
        free.append(pipeline.arch_freelist.entries[slot].get())
    mapped = set(arch_map)
    assert len(mapped) == 32, "architectural mapping must be injective"
    assert mapped.isdisjoint(free)
    assert mapped | set(free) == set(range(config.phys_regs))

    if spec_side:
        spec_map = [pipeline.spec_rat.read(a) for a in range(32)]
        assert spec_map == arch_map
        assert pipeline.spec_freelist.available == config.free_regs


def drain(pipeline, max_cycles=3000):
    for _ in range(max_cycles):
        if pipeline.rob.count.get() == 0 and \
                not any(s.valid.get() for s in pipeline.frontend.decode_slots):
            break
        pipeline.cycle()


@pytest.mark.parametrize("seed", range(6))
def test_invariants_after_random_program(seed):
    pipeline = Pipeline(random_program(seed, body_blocks=10, loop_iters=4))
    pipeline.run(200_000)
    assert pipeline.halted
    check_rename_invariants(pipeline, spec_side=False)
    pipeline.flush_all()
    check_rename_invariants(pipeline)


def test_invariants_after_mispredict_storm():
    """Data-dependent branches force constant mispredict recoveries."""
    workload = get_workload("vpr", scale="tiny")  # random accept branch
    pipeline = Pipeline(workload.program)
    pipeline.run(400_000)
    assert pipeline.halted
    check_rename_invariants(pipeline, spec_side=False)
    pipeline.flush_all()
    check_rename_invariants(pipeline)


def test_invariants_after_full_flush():
    source = """
    li   s0, 40
    clr  t0
loop:
    addq t0, #1, t0
    subq s0, #1, s0
    bgt  s0, loop
    mov  t0, a0
    putq
    halt
"""
    pipeline = Pipeline(assemble(source))
    pipeline.run(30)  # mid-loop
    pipeline.flush_all()
    drain(pipeline)
    check_rename_invariants(pipeline)
    # Execution must continue correctly after the flush.
    pipeline.run(50_000)
    assert pipeline.halted
    assert pipeline.output_text() == "40\n"


def test_flush_preserves_retired_stores():
    """Retired-but-undrained stores survive a recovery flush (paper 4.1)."""
    source = """
    li   s1, 0x4000
    li   t0, 55
    stq  t0, 0(s1)
    li   s0, 30
loop:
    subq s0, #1, s0
    bgt  s0, loop
    ldq  a0, 0(s1)
    putq
    halt
"""
    pipeline = Pipeline(assemble(source))
    # Run until the store retires but possibly before it drains.
    for _ in range(200):
        pipeline.cycle()
        if any(e.valid.get() and e.retired.get()
               for e in pipeline.memunit.sq):
            break
    pipeline.flush_all()
    pipeline.run(50_000)
    assert pipeline.halted
    assert pipeline.output_text() == "55\n"


def test_repeated_flushes_make_forward_progress():
    source = """
    li   s0, 25
    clr  t0
loop:
    addq t0, #2, t0
    subq s0, #1, s0
    bgt  s0, loop
    mov  t0, a0
    putq
    halt
"""
    pipeline = Pipeline(assemble(source))
    for _ in range(400):
        pipeline.cycle()
        if pipeline.halted:
            break
        if pipeline.cycle_count % 7 == 0:
            pipeline.flush_all()
    pipeline.run(100_000)
    assert pipeline.halted
    assert pipeline.output_text() == "50\n"


def test_biq_drains_with_pipeline():
    pipeline = Pipeline(get_workload("gcc", scale="tiny").program)
    pipeline.run(400_000)
    assert pipeline.halted
    # All in-flight branch-info entries released at retirement/recovery.
    assert pipeline.frontend.biq.count.get() <= 2  # wrong-path leftovers
