"""Worker wire-call hardening: bounded, jittered retry-backoff.

The fabric's at-least-once contract only holds if a worker survives
the coordinator *blipping*: a flaky ``/complete`` POST must not throw
away a computed range, a dropped ``/lease`` poll must not kill the
loop, and a missed heartbeat must be skipped, not fatal.  These tests
drive :meth:`FabricWorker._call_retry` against a scripted flaky stub
(monkeypatched over ``repro.fabric.worker.call``) and then run a real
coordinator behind a deterministically flaky transport to show the
campaign still converges byte-for-byte.
"""

import asyncio

import pytest

from repro.errors import FabricError
from repro.fabric import Coordinator, FabricWorker
from repro.fabric.protocol import call as real_call
from repro.inject.campaign import CampaignConfig
from repro.inject.store import campaign_fingerprint, config_to_dict
from repro.runner import run_campaign
from repro.runner.journal import canonical_trial_bytes, journal_path

import repro.fabric.worker as worker_module


class FlakyStub:
    """A scripted ``call`` replacement: fail N times, then answer."""

    def __init__(self, failures, reply=None, error=OSError):
        self.failures = failures
        self.reply = reply if reply is not None else {"ok": True}
        self.error = error
        self.calls = 0

    async def __call__(self, host, port, path, payload, timeout=None):
        self.calls += 1
        if self.calls <= self.failures:
            raise self.error("scripted transport failure %d" % self.calls)
        return dict(self.reply)


def _worker(**overrides):
    options = dict(name="flaky-test", retry_base=0.001, retry_attempts=4)
    options.update(overrides)
    return FabricWorker("127.0.0.1", 1, **options)


def test_call_retry_survives_transient_failures(monkeypatch):
    """Failures below the attempt cap are absorbed; the reply arrives."""
    stub = FlakyStub(failures=3, reply={"disposition": "accepted"})
    monkeypatch.setattr(worker_module, "call", stub)
    reply = asyncio.run(_worker().
                        _call_retry("/complete", {"worker": "w"}))
    assert reply == {"disposition": "accepted"}
    assert stub.calls == 4  # 3 failures + the success


def test_call_retry_exhaustion_raises_fabric_error(monkeypatch):
    """A coordinator that never answers surfaces a bounded FabricError."""
    stub = FlakyStub(failures=10 ** 6)
    monkeypatch.setattr(worker_module, "call", stub)
    with pytest.raises(FabricError, match="after 4 attempts"):
        asyncio.run(_worker()._call_retry("/lease", {"worker": "w"}))
    assert stub.calls == 4  # bounded: exactly retry_attempts calls


def test_call_retry_does_not_retry_coordinator_errors(monkeypatch):
    """A FabricError *reply* is an answer, not an outage: one call."""
    stub = FlakyStub(failures=10 ** 6, error=FabricError)
    monkeypatch.setattr(worker_module, "call", stub)
    with pytest.raises(FabricError, match="scripted transport failure 1"):
        asyncio.run(_worker()._call_retry("/complete", {"worker": "w"}))
    assert stub.calls == 1


def test_backoff_delays_bounded_and_jittered(monkeypatch):
    """Sleeps follow base * 2^k scaled by jitter in [0.5, 1.5)."""
    stub = FlakyStub(failures=3)
    monkeypatch.setattr(worker_module, "call", stub)
    slept = []

    async def fake_sleep(seconds):
        slept.append(seconds)

    monkeypatch.setattr(worker_module.asyncio, "sleep", fake_sleep)
    asyncio.run(_worker(retry_base=0.1)._call_retry("/lease", {}))
    assert len(slept) == 3
    for index, seconds in enumerate(slept):
        base = 0.1 * (2 ** index)
        assert 0.5 * base <= seconds < 1.5 * base


def test_backoff_jitter_is_per_worker_deterministic(monkeypatch):
    """Two same-named workers sleep identically; replayable chaos."""

    def delays():
        stub = FlakyStub(failures=3)
        monkeypatch.setattr(worker_module, "call", stub)
        slept = []

        async def fake_sleep(seconds):
            slept.append(seconds)

        monkeypatch.setattr(worker_module.asyncio, "sleep", fake_sleep)
        asyncio.run(_worker()._call_retry("/lease", {}))
        return slept

    assert delays() == delays()


def test_flaky_coordinator_campaign_converges(tmp_path, monkeypatch):
    """Every 3rd wire call dies in transit; the journal still matches.

    The worker's lease, heartbeat and complete calls all ride the same
    retry helper, so a transport that deterministically drops a third
    of the traffic costs latency, never trials -- the acceptance bar
    stays byte-identity with the serial run.
    """
    config = CampaignConfig.test()
    serial_dir = str(tmp_path / "serial")
    run_campaign(config, workers=0, directory=serial_dir)

    counter = {"n": 0}

    async def flaky_call(host, port, path, payload, timeout=None):
        counter["n"] += 1
        if counter["n"] % 3 == 0:
            raise OSError("scripted flaky transport")
        return await real_call(host, port, path, payload)

    monkeypatch.setattr(worker_module, "call", flaky_call)

    async def scenario():
        coord = Coordinator(str(tmp_path / "fabric"), ttl=5.0,
                            shard_size=3)
        port = await coord.start()
        try:
            await call_submit(port, config)
            worker = FabricWorker("127.0.0.1", port, name="blippy",
                                  exit_when_idle=True, poll_interval=0.05,
                                  retry_base=0.005)
            return await worker.run()
        finally:
            await coord.stop()

    async def call_submit(port, cfg):
        await real_call("127.0.0.1", port, "/submit",
                        {"config": config_to_dict(cfg)})

    stats = asyncio.run(scenario())
    assert stats["trials"] == config.total_trials
    fingerprint = campaign_fingerprint(config)
    fabric_journal = journal_path(
        str(tmp_path / "fabric" / fingerprint[:12]))
    assert canonical_trial_bytes(fabric_journal) \
        == canonical_trial_bytes(journal_path(serial_dir))
