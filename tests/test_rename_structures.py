"""RAT and free-list unit tests."""

import pytest

from repro.protect.ecc import REGPTR_CODE
from repro.uarch.rename import FreeList, RatFile
from repro.uarch.statelib import StateCategory, StateSpace, StorageKind


def make_rat(with_ecc=False):
    space = StateSpace()
    rat = RatFile(space, "rat", StateCategory.SPECRAT, 7, with_ecc)
    space.freeze()
    rat.reset(list(range(32)))
    return space, rat


def make_freelist(with_ecc=False, capacity=8):
    space = StateSpace()
    freelist = FreeList(space, "fl", StateCategory.SPECFREELIST, capacity,
                        7, with_ecc)
    space.freeze()
    freelist.reset(list(range(32, 32 + capacity - 2)))
    return space, freelist


def test_rat_identity_reset():
    _space, rat = make_rat()
    for arch in range(32):
        assert rat.read(arch) == arch


def test_rat_write_read():
    _space, rat = make_rat()
    rat.write(5, 77)
    assert rat.read(5) == 77
    assert rat.read(6) == 6


def test_rat_copy_from():
    space1 = StateSpace()
    a = RatFile(space1, "a", StateCategory.SPECRAT, 7, False)
    b = RatFile(space1, "b", StateCategory.ARCHRAT, 7, False)
    space1.freeze()
    a.reset(list(range(32)))
    b.reset([31 - i for i in range(32)])
    a.copy_from(b)
    assert a.read(0) == 31


def test_rat_ecc_repairs_single_bit():
    _space, rat = make_rat(with_ecc=True)
    rat.write(3, 0x55)
    rat.entries[3].flip(2)  # corrupt the stored pointer
    assert rat.read(3) == 0x55  # repaired on read
    assert rat.entries[3].get() == 0x55  # repaired in place


def test_freelist_fifo_order():
    _space, freelist = make_freelist()
    assert freelist.pop() == 32
    assert freelist.pop() == 33
    freelist.push(99)
    for _ in range(4):
        freelist.pop()
    assert freelist.pop() == 99


def test_freelist_count_tracking():
    _space, freelist = make_freelist()
    assert freelist.available == 6
    freelist.pop()
    assert freelist.available == 5
    freelist.push(50)
    assert freelist.available == 6


def test_freelist_push_front_undoes_pop():
    _space, freelist = make_freelist()
    value = freelist.pop()
    freelist.push_front(value)
    assert freelist.available == 6
    assert freelist.pop() == value


def test_freelist_copy_from():
    space = StateSpace()
    a = FreeList(space, "a", StateCategory.SPECFREELIST, 8, 7, False)
    b = FreeList(space, "b", StateCategory.ARCHFREELIST, 8, 7, False)
    space.freeze()
    a.reset([1, 2, 3])
    b.reset([4, 5, 6, 7])
    a.copy_from(b)
    assert a.available == 4
    assert a.pop() == 4


def test_freelist_ecc_repairs_single_bit():
    _space, freelist = make_freelist(with_ecc=True)
    slot = freelist.head.get()
    original = freelist.entries[slot].get()
    freelist.entries[slot].flip(4)
    assert freelist.pop() == original


def test_freelist_pop_empty_is_defined():
    """Popping an empty list (fault-corrupted count) must not raise."""
    _space, freelist = make_freelist()
    for _ in range(6):
        freelist.pop()
    value = freelist.pop()  # corrupted-state behaviour: some defined value
    assert 0 <= value < 128
    assert freelist.available == 0


def test_freelist_spec_arch_delay_invariant():
    """Retire-order pops from the arch list equal rename-order pops from
    the spec list -- the invariant retirement relies on."""
    space = StateSpace()
    spec = FreeList(space, "s", StateCategory.SPECFREELIST, 16, 7, False)
    arch = FreeList(space, "a", StateCategory.ARCHFREELIST, 16, 7, False)
    space.freeze()
    initial = list(range(40, 52))
    spec.reset(initial)
    arch.reset(initial)
    allocated = [spec.pop() for _ in range(5)]
    # Later, the same instructions retire in order:
    for pdst in allocated:
        assert arch.pop() == pdst
        arch.push(100 + pdst)  # pold
        spec.push(100 + pdst)
