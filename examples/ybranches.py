#!/usr/bin/env python
"""Y-branches: which dynamic branches can be flipped without harm?

The paper's companion study (Wang, Fertig, Patel, PACT 2003 -- cited as
[22]) found that a significant fraction of dynamic branches can take
the "wrong" direction and still converge.  This example measures the
same property on the synthetic kernels: for every static conditional
branch site, flip one dynamic instance and classify the outcome.

Run:  python examples/ybranches.py [--workload gzip] [--per-site N]
"""

import argparse
from collections import defaultdict

from repro.arch.functional import SoftwareFaultKind
from repro.inject.software import (
    SoftwareOutcome,
    record_software_golden,
    run_software_trial,
)
from repro.isa.disassembler import disassemble
from repro.utils.rng import SplitRng
from repro.utils.tables import format_table
from repro.workloads import get_workload


class _SiteRng:
    """Directs the trial's branch choice to a specific dynamic index."""

    def __init__(self, index):
        self.index = index

    def choice(self, _pool):
        return self.index

    def randrange(self, n):
        return 0

    def getrandbits(self, _n):
        return 0


def main():
    parser = argparse.ArgumentParser()
    parser.add_argument("--workload", default="vortex",
                    help="vortex's dirty-checked copies are rich in Y-branches")
    parser.add_argument("--per-site", type=int, default=6,
                        help="dynamic instances flipped per branch site")
    args = parser.parse_args()

    workload = get_workload(args.workload, scale="tiny")
    golden = record_software_golden(workload.program)

    # Group dynamic branch instances by their static site (PC).
    by_site = defaultdict(list)
    for index in golden.branch_indices:
        by_site[golden.pcs[index]].append(index)

    rng = SplitRng(7)
    rows = []
    total_benign = 0
    total = 0
    for pc in sorted(by_site):
        instances = by_site[pc]
        picks = [instances[rng.randrange(len(instances))]
                 for _ in range(min(args.per_site, len(instances)))]
        benign = 0
        for index in picks:
            result = run_software_trial(
                workload.program, golden, SoftwareFaultKind.FLIP_BRANCH,
                _SiteRng(index), args.workload)
            if result.outcome in (SoftwareOutcome.STATE_OK,
                                  SoftwareOutcome.OUTPUT_OK):
                benign += 1
        total_benign += benign
        total += len(picks)
        word = workload.program.word_at(pc)
        rows.append(["0x%x" % pc, disassemble(word, pc),
                     len(instances), 100.0 * benign / len(picks)])

    print(format_table(
        ["site", "branch", "dyn instances", "flip-benign%"], rows,
        title="Y-branch analysis of %r" % args.workload))
    print("\n%.0f%% of flipped dynamic branch instances were benign "
          "(State OK or Output OK); [22] reports ~40%% of dynamic "
          "branches are wrong-path-convergent in SPEC."
          % (100.0 * total_benign / total))


if __name__ == "__main__":
    main()
