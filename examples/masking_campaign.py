#!/usr/bin/env python
"""Microarchitectural masking campaign (paper Figures 3 and 4, small).

Runs a latch+RAM fault-injection campaign over three contrasting
workloads and prints the paper-style outcome tables: outcome mix per
benchmark (Figure 3) and per state category (Figure 4), plus the
utilization correlation (Figure 6).

Run:  python examples/masking_campaign.py [--trials N]
"""

import argparse

from repro.analysis.aggregate import utilization_bins
from repro.analysis.report import (
    render_category_outcomes,
    render_workload_outcomes,
)
from repro.analysis.stats import least_squares
from repro.inject import Campaign, CampaignConfig


def main():
    parser = argparse.ArgumentParser()
    parser.add_argument("--trials", type=int, default=25,
                        help="trials per start point")
    parser.add_argument("--workloads", nargs="*",
                        default=["gzip", "mcf", "gcc"])
    args = parser.parse_args()

    config = CampaignConfig(
        workloads=tuple(args.workloads), scale="small",
        trials_per_start_point=args.trials, start_points_per_workload=3,
        warmup_cycles=1000, spacing_cycles=400, horizon=1200, margin=400)
    print("running %d trials over %s ..."
          % (config.total_trials, ", ".join(args.workloads)))
    result = Campaign(config).run(
        progress=lambda done, total: print("\r%d/%d" % (done, total),
                                           end="", flush=True))
    print("\n")

    print(render_workload_outcomes(
        result.trials, "Outcome mix by benchmark (cf. Figure 3)"))
    print()
    print(render_category_outcomes(
        result.trials, "Outcome mix by state category (cf. Figure 4)"))
    print()

    points, _raw = utilization_bins(result.trials, bin_width=16)
    slope, intercept, r = least_squares([(x, y) for x, y, _n in points])
    print("Utilization correlation (cf. Figure 6): "
          "benign%% = %.2f * occupancy + %.1f   r=%.2f"
          % (100 * slope, 100 * intercept, r))
    print("\n%d trials in %.1fs over %d bits of state"
          % (len(result.trials), result.elapsed_seconds,
             result.eligible_bits))


if __name__ == "__main__":
    main()
