#!/usr/bin/env python
"""Quickstart: assemble a program, run both simulators, inject one fault.

This walks the three layers of the library:

1. the ISA layer (assemble an Alpha-subset program);
2. the architectural layer (the functional simulator);
3. the microarchitectural layer (the latch-accurate pipeline), including
   a single-bit fault injection and its classification.

Run:  python examples/quickstart.py
"""

from repro.arch import FunctionalSimulator
from repro.inject.golden import record_golden, workload_page_sets
from repro.inject.trial import run_trial
from repro.isa import assemble
from repro.uarch import Pipeline, PipelineConfig
from repro.uarch.statelib import StorageKind
from repro.utils.rng import SplitRng

SOURCE = """
    ; sum of squares 1..n, printed, then looped with new n
    li    s0, 200           ; outer repetitions (keeps the pipeline busy)
outer:
    li    a0, 15            ; n
    clr   t0                ; sum
    li    t1, 1             ; i
loop:
    mulq  t1, t1, t2        ; i^2 (complex ALU)
    addq  t0, t2, t0
    addq  t1, #1, t1
    cmple t1, a0, t3
    bne   t3, loop
    subq  s0, #1, s0
    bgt   s0, outer
    mov   t0, a0
    putq                    ; prints 1240
    halt
"""


def main():
    program = assemble(SOURCE)

    # --- Layer 1/2: architectural execution ---------------------------------
    functional = FunctionalSimulator(program)
    functional.run(1_000_000)
    print("functional simulator : output=%r, %d instructions"
          % (functional.output_text().strip(), functional.instret))

    # --- Layer 3: the latch-accurate pipeline --------------------------------
    pipeline = Pipeline(program, PipelineConfig.paper())
    pipeline.run(1_000_000)
    ipc = pipeline.total_retired / pipeline.cycle_count
    print("pipeline model       : output=%r, %d cycles, IPC %.2f"
          % (pipeline.output_text().strip(), pipeline.cycle_count, ipc))
    assert pipeline.output_text() == functional.output_text()
    print("co-simulation        : outputs match")
    print("injectable state     : %d bits across %d elements"
          % (pipeline.eligible_bits(), len(pipeline.space.elements)))

    # --- One fault-injection trial -------------------------------------------
    pages = workload_page_sets(program)
    pipeline = Pipeline(program, PipelineConfig.paper())
    pipeline.run(400)  # warm up mid-execution
    checkpoint = pipeline.checkpoint()
    golden = record_golden(pipeline, checkpoint, horizon=800, margin=300,
                           insn_pages=pages[0], data_pages=pages[1])

    kinds = frozenset({StorageKind.LATCH, StorageKind.RAM})
    for seed in range(5):
        result = run_trial(pipeline, checkpoint, golden, SplitRng(seed),
                           kinds, "quickstart", 0)
        print("trial %d: flipped %-24s -> %-12s %s"
              % (seed, result.element_name, result.outcome.value,
                 result.failure_mode.value if result.failure_mode else ""))


if __name__ == "__main__":
    main()
