#!/usr/bin/env python
"""Propagation timelines of two contrasting fault-injection trials.

Runs a small provenance-enabled campaign to find one SDC trial and one
masked (uArch Match) trial, then replays each with full event tracing
and prints its propagation timeline: injection, every read of the
corrupt value, the clearing mechanism (or the failure), and the final
verdict.  Demonstrates that replay from ``(workload, start_point,
trial_index, seed)`` is deterministic -- the replayed outcome always
matches the campaign's.

Run:  python examples/trace_trial.py [--seed N]
"""

import argparse

from repro.inject import Campaign, CampaignConfig
from repro.inject.outcome import TrialOutcome
from repro.obs.replay import replay_trial


def main():
    parser = argparse.ArgumentParser()
    parser.add_argument("--seed", type=int, default=2004)
    parser.add_argument("--limit", type=int, default=25,
                        help="timeline events to print per trial")
    args = parser.parse_args()

    config = CampaignConfig.test(
        seed=args.seed, trials_per_start_point=20,
        start_points_per_workload=2, provenance=True)
    print("scouting %d trials for an SDC and a masked one ..."
          % config.total_trials)
    result = Campaign(config).run()

    picks = {}
    for trial in result.trials:
        if trial.outcome == TrialOutcome.SDC and "sdc" not in picks:
            picks["sdc"] = trial
        if trial.outcome == TrialOutcome.MICRO_MATCH \
                and "masked" not in picks:
            picks["masked"] = trial

    for label in ("sdc", "masked"):
        trial = picks.get(label)
        if trial is None:
            print("\n(no %s trial in this sweep; try another --seed)"
                  % label)
            continue
        print("\n%s\n== %s trial ==\n" % ("=" * 72, label.upper()))
        replayed = replay_trial(
            trial.workload, trial.start_point,
            trial_index=trial.trial_index, seed=config.seed,
            scale=config.scale, kinds=config.kinds,
            horizon=config.horizon, warmup_cycles=config.warmup_cycles,
            spacing_cycles=config.spacing_cycles, margin=config.margin)
        print(replayed.render(limit=args.limit))
        assert replayed.trial.outcome == trial.outcome, \
            "replay diverged from the campaign"

    print("\nreplays are deterministic: both verdicts matched the "
          "campaign's originals")


if __name__ == "__main__":
    main()
