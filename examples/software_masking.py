#!/usr/bin/env python
"""Software-level fault masking (paper Section 5 / Figure 11).

Injects the paper's six architectural fault models into dynamic
instructions on the functional simulator and classifies each trial as
Exception / State OK / Output OK / Output Bad, reporting the masking
levels software provides on top of the microarchitecture.

Run:  python examples/software_masking.py [--trials N]
"""

import argparse

from repro.inject.software import (
    ALL_FAULT_MODELS,
    SoftwareCampaign,
    SoftwareCampaignConfig,
    SoftwareOutcome,
)
from repro.utils.tables import format_table


def main():
    parser = argparse.ArgumentParser()
    parser.add_argument("--trials", type=int, default=10,
                        help="trials per fault model per workload")
    parser.add_argument("--workloads", nargs="*",
                        default=["gzip", "gcc", "crafty", "vortex"])
    args = parser.parse_args()

    config = SoftwareCampaignConfig(
        workloads=tuple(args.workloads),
        trials_per_model_per_workload=args.trials)
    print("running %d software-level trials ..." % config.total_trials)
    result = SoftwareCampaign(config).run()

    headers = ["fault model", "exception%", "state_ok%", "output_ok%",
               "output_bad%", "diverged%"]
    rows = []
    for model in ALL_FAULT_MODELS:
        counts = result.outcome_counts(model)
        total = sum(counts.values())
        rows.append([
            model.value,
            100.0 * counts[SoftwareOutcome.EXCEPTION] / total,
            100.0 * counts[SoftwareOutcome.STATE_OK] / total,
            100.0 * counts[SoftwareOutcome.OUTPUT_OK] / total,
            100.0 * counts[SoftwareOutcome.OUTPUT_BAD] / total,
            100.0 * result.state_ok_divergence_rate(model),
        ])
    print()
    print(format_table(headers, rows,
                       title="Software fault models (cf. Figure 11)"))

    counts = result.outcome_counts()
    total = sum(counts.values())
    masked = counts[SoftwareOutcome.STATE_OK]
    print("\n%.0f%% of architectural errors fully re-converged (State OK); "
          "paper: ~50%%" % (100 * masked / total))
    print("'diverged%%' = State-OK trials whose control flow temporarily "
          "left the reference path (paper: 10-20%% for models 1-5)")


if __name__ == "__main__":
    main()
