#!/usr/bin/env python
"""Protection-mechanism study (paper Section 4).

Runs the same injection campaign against the baseline machine and
against the machine hardened with the paper's four lightweight
mechanisms (timeout counter, register-file ECC, register-pointer ECC,
instruction-word parity), then reports the failure-rate reduction after
charging the protected machine for its larger fault surface -- the
paper's headline ~75% result.

Run:  python examples/protection_study.py [--trials N]
"""

import argparse

from repro.analysis.report import render_contributions
from repro.inject import Campaign, CampaignConfig
from repro.isa import assemble
from repro.protect import protection_overhead_report
from repro.uarch import Pipeline, PipelineConfig
from repro.uarch.config import ProtectionConfig


def run_campaign(protection, label, trials, workloads):
    config = CampaignConfig(
        workloads=workloads, scale="small",
        trials_per_start_point=trials, start_points_per_workload=3,
        warmup_cycles=1000, spacing_cycles=400, horizon=1200, margin=400,
        protection=protection)
    print("[%s] running %d trials ..." % (label, config.total_trials))
    return Campaign(config).run()


def main():
    parser = argparse.ArgumentParser()
    parser.add_argument("--trials", type=int, default=20)
    parser.add_argument("--workloads", nargs="*",
                        default=["gzip", "vortex", "gcc"])
    args = parser.parse_args()
    workloads = tuple(args.workloads)

    baseline = run_campaign(ProtectionConfig.none(), "baseline",
                            args.trials, workloads)
    protected = run_campaign(ProtectionConfig.full(), "protected",
                             args.trials, workloads)

    # Overheads (Section 4.3).
    pipeline = Pipeline(assemble("    halt"),
                        PipelineConfig.paper(ProtectionConfig.full()))
    report = protection_overhead_report(pipeline)
    print("\nstorage overhead: %d bits on a %d-bit machine (%.1f%% "
          "fault-rate surcharge; paper: 3061 on ~45K)"
          % (report["added_total_bits"], report["baseline_bits"],
             100 * report["fault_rate_surcharge"]))

    # Effectiveness (Section 4.4).
    surcharge = protected.eligible_bits / baseline.eligible_bits
    base_rate = baseline.failure_rate()
    prot_rate = protected.failure_rate() * surcharge
    reduction = 1 - prot_rate / base_rate if base_rate else 0.0
    print("failure rate: baseline %.1f%% -> protected %.1f%% "
          "(surcharged) = %.0f%% reduction (paper: ~75%%)"
          % (100 * base_rate, 100 * prot_rate, 100 * reduction))

    print()
    print(render_contributions(
        baseline.trials, "Failure contributions, baseline (cf. Figure 8)"))
    print()
    print(render_contributions(
        protected.trials, "Failure contributions, protected (cf. Figure 10)"))


if __name__ == "__main__":
    main()
