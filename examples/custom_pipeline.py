#!/usr/bin/env python
"""Exploring the model: custom machine configurations and workloads.

Shows the library as a research vehicle beyond the paper's experiments:

* sweep a structural parameter (ROB size) and observe IPC;
* compare the workload kernels' microarchitectural signatures;
* write a custom assembly workload and measure its masking profile.

Run:  python examples/custom_pipeline.py
"""

import dataclasses

from repro.inject import Campaign, CampaignConfig
from repro.isa import assemble
from repro.uarch import Pipeline, PipelineConfig
from repro.utils.tables import format_table
from repro.workloads import get_workload


def rob_size_sweep():
    """IPC versus reorder-buffer size on the gzip kernel."""
    rows = []
    workload = get_workload("gzip", scale="tiny")
    for rob in (16, 32, 64, 128):
        config = dataclasses.replace(PipelineConfig.paper(),
                                     rob_entries=rob)
        pipeline = Pipeline(workload.program, config)
        pipeline.run(6000)
        rows.append([rob, pipeline.total_retired / pipeline.cycle_count])
    print(format_table(["rob_entries", "ipc"], rows,
                       title="ROB-size sweep (gzip kernel)"))


def workload_signatures():
    """Each kernel's IPC on the paper machine (cf. paper Section 3.1)."""
    rows = []
    for name in ("gzip", "bzip2", "crafty", "gcc", "mcf", "perlbmk"):
        workload = get_workload(name, scale="tiny")
        pipeline = Pipeline(workload.program)
        pipeline.run(4000)  # skip init
        start = pipeline.total_retired
        pipeline.run(6000)
        ipc = (pipeline.total_retired - start) / 6000.0
        rows.append([name, ipc, workload.profile])
    rows.sort(key=lambda row: -row[1])
    print(format_table(["kernel", "steady ipc", "profile"], rows,
                       title="Workload microarchitectural signatures"))


CUSTOM_KERNEL = """
    ; a deliberately serial kernel: one long dependency chain
    li    s0, 100000
    li    t0, 1
chain:
    mulq  t0, #3, t0
    addq  t0, #1, t0
    srl   t0, #1, t0
    subq  s0, #1, s0
    bgt   s0, chain
    mov   t0, a0
    putq
    halt
"""


def custom_workload_masking():
    """Masking profile of a user-written kernel (serial dependency chain:
    the pipeline runs near-empty, so masking should be high)."""
    import repro.workloads.registry as registry
    from repro.inject.golden import record_golden
    from repro.inject.trial import run_trial
    from repro.uarch.statelib import StorageKind
    from repro.utils.rng import SplitRng

    program = assemble(CUSTOM_KERNEL)
    pipeline = Pipeline(program)
    pipeline.run(2000)
    checkpoint = pipeline.checkpoint()
    golden = record_golden(pipeline, checkpoint, horizon=800, margin=300,
                           insn_pages={1}, data_pages=set())
    golden.insn_pages = {0x1000 >> 12}

    kinds = frozenset({StorageKind.LATCH, StorageKind.RAM})
    outcomes = {}
    for seed in range(60):
        result = run_trial(pipeline, checkpoint, golden, SplitRng(seed),
                           kinds, "custom", 0)
        outcomes[result.outcome] = outcomes.get(result.outcome, 0) + 1
    rows = [[outcome.value, count] for outcome, count in outcomes.items()]
    print(format_table(["outcome", "trials"], rows,
                       title="Custom serial kernel: 60 injection trials"))
    benign = sum(c for o, c in outcomes.items() if o.is_benign)
    print("benign fraction: %.0f%% -- the pipeline is near-empty "
          "(occupancy masking, paper Figure 6), but every in-flight "
          "instruction feeds the serial chain, so the live minority "
          "still fails" % (100 * benign / 60))


if __name__ == "__main__":
    rob_size_sweep()
    print()
    workload_signatures()
    print()
    custom_workload_masking()
