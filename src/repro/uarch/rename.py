"""Register renaming structures: alias tables and free lists.

Speculative and architectural register alias tables (32 x 7-bit RAM each,
the paper's ``specrat``/``archrat`` categories) plus speculative and
architectural free lists (48 x 7-bit RAM, ``specfreelist`` /
``archfreelist``), with queue pointers in the ``qctrl`` latch category.

With register-pointer ECC enabled (paper Section 4.2), each stored
pointer carries 4 Hamming check bits that are verified and repaired at
read time.
"""

from repro.protect.ecc import REGPTR_CODE
from repro.uarch.statelib import StateCategory, StorageKind


class RatFile:
    """A 32-entry register alias table (speculative or architectural)."""

    def __init__(self, space, name, category, phys_bits, with_ecc):
        self.entries = space.array(
            name, 32, phys_bits, category, StorageKind.RAM)
        self.ecc = None
        if with_ecc:
            self.ecc = space.array(
                name + ".ecc", 32, REGPTR_CODE.check_bits,
                StateCategory.ECC, StorageKind.RAM)

    def reset(self, mapping):
        """Install an initial architectural mapping (reg a -> phys a)."""
        for arch, phys in enumerate(mapping):
            self.write(arch, phys)

    def read(self, arch):
        """Mapped physical register; repairs single-bit errors when ECC'd."""
        arch &= 31
        value = self.entries[arch].get()
        if self.ecc is not None:
            corrected, _status = REGPTR_CODE.correct(
                value, self.ecc[arch].get())
            if corrected != value:
                self.entries[arch].set(corrected)
                value = corrected
        return value

    def read_raw(self, arch):
        """Read without ECC repair (used by state capture, not behaviour)."""
        return self.entries[arch & 31].get()

    def write(self, arch, phys):
        arch &= 31
        self.entries[arch].set(phys)
        if self.ecc is not None:
            self.ecc[arch].set(REGPTR_CODE.encode(self.entries[arch].get()))

    def copy_from(self, other):
        """Bulk copy (speculative map recovery on a full flush)."""
        for arch in range(32):
            self.entries[arch].set(other.entries[arch].get())
            if self.ecc is not None and other.ecc is not None:
                self.ecc[arch].set(other.ecc[arch].get())
            elif self.ecc is not None:
                self.ecc[arch].set(
                    REGPTR_CODE.encode(self.entries[arch].get()))


class FreeList:
    """A circular queue of free physical register pointers.

    The speculative list is popped at rename and repaired on recovery;
    the architectural list advances only at retirement.  Because rename
    allocates in FIFO order and instructions retire in rename order, the
    architectural list is exactly the speculative list delayed -- the
    property that lets both be plain queues (and lets a flush restore the
    speculative list by copying the architectural one).
    """

    def __init__(self, space, name, category, capacity, phys_bits, with_ecc):
        self.capacity = capacity
        self.entries = space.array(
            name, capacity, phys_bits, category, StorageKind.RAM)
        ptr_bits = max(1, (capacity - 1).bit_length())
        self.head = space.field(
            name + ".head", ptr_bits, StateCategory.QCTRL, StorageKind.LATCH)
        self.tail = space.field(
            name + ".tail", ptr_bits, StateCategory.QCTRL, StorageKind.LATCH)
        self.count = space.field(
            name + ".count", ptr_bits + 1, StateCategory.QCTRL,
            StorageKind.LATCH)
        self.ecc = None
        if with_ecc:
            self.ecc = space.array(
                name + ".ecc", capacity, REGPTR_CODE.check_bits,
                StateCategory.ECC, StorageKind.RAM)

    def reset(self, registers):
        """Fill the list with ``registers`` (pipeline initialisation)."""
        for slot, register in enumerate(registers):
            self.entries[slot].set(register)
            if self.ecc is not None:
                self.ecc[slot].set(
                    REGPTR_CODE.encode(self.entries[slot].get()))
        self.head.set(0)
        self.tail.set(len(registers) % self.capacity)
        self.count.set(len(registers))

    @property
    def available(self):
        return self.count.get()

    def pop(self):
        """Allocate the pointer at the head (ECC-repaired when enabled).

        Under fault corruption the count may claim availability the queue
        does not have; the read is still well-defined (any slot value) --
        the corruption propagates architecturally rather than crashing.
        """
        slot = self.head.get() % self.capacity
        value = self.entries[slot].get()
        if self.ecc is not None:
            corrected, _status = REGPTR_CODE.correct(
                value, self.ecc[slot].get())
            if corrected != value:
                self.entries[slot].set(corrected)
                value = corrected
        self.head.set((self.head.get() + 1) % self.capacity)
        count = self.count.get()
        if count:
            self.count.set(count - 1)
        return value

    def push(self, register):
        """Return a freed pointer at the tail (retirement)."""
        slot = self.tail.get() % self.capacity
        self.entries[slot].set(register)
        if self.ecc is not None:
            self.ecc[slot].set(REGPTR_CODE.encode(self.entries[slot].get()))
        self.tail.set((self.tail.get() + 1) % self.capacity)
        self.count.set(min(self.capacity, self.count.get() + 1))

    def push_front(self, register):
        """Undo an allocation (branch-recovery walk)."""
        slot = (self.head.get() - 1) % self.capacity
        self.entries[slot].set(register)
        if self.ecc is not None:
            self.ecc[slot].set(REGPTR_CODE.encode(self.entries[slot].get()))
        self.head.set(slot)
        self.count.set(min(self.capacity, self.count.get() + 1))

    def copy_from(self, other):
        """Restore from the architectural list (full-flush recovery)."""
        for slot in range(self.capacity):
            self.entries[slot].set(other.entries[slot].get())
            if self.ecc is not None and other.ecc is not None:
                self.ecc[slot].set(other.ecc[slot].get())
            elif self.ecc is not None:
                self.ecc[slot].set(
                    REGPTR_CODE.encode(self.entries[slot].get()))
        self.head.set(other.head.get())
        self.tail.set(other.tail.get())
        self.count.set(other.count.get())
