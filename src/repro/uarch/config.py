"""Pipeline configuration (paper Figure 2 parameters)."""

from dataclasses import dataclass, field

from repro.errors import ConfigError


@dataclass(frozen=True)
class ProtectionConfig:
    """Which of the paper's Section-4 protection mechanisms are enabled.

    * ``timeout``       -- retirement timeout counter forcing a flush.
    * ``regfile_ecc``   -- SECDED ECC on physical register file entries
      (generated one cycle after the write, leaving the paper's one-cycle
      vulnerability window).
    * ``regptr_ecc``    -- Hamming ECC accompanying every stored physical
      register pointer (RATs, free lists, pipeline regptr fields).
    * ``insn_parity``   -- parity accompanying instruction words from
      fetch to retirement, with a recovery flush on mismatch.
    """

    timeout: bool = False
    regfile_ecc: bool = False
    regptr_ecc: bool = False
    insn_parity: bool = False

    @classmethod
    def none(cls):
        return cls()

    @classmethod
    def full(cls):
        """All four mechanisms, as evaluated in paper Section 4.4."""
        return cls(timeout=True, regfile_ecc=True, regptr_ecc=True,
                   insn_parity=True)

    @property
    def any_enabled(self):
        return (self.timeout or self.regfile_ecc or self.regptr_ecc
                or self.insn_parity)


@dataclass(frozen=True)
class PipelineConfig:
    """Structural parameters of the modelled processor.

    Defaults reproduce the paper's machine (Figure 2): a 12-stage,
    6-issue pipeline with up to 132 instructions in flight.
    :meth:`small` returns a scaled-down variant for fast unit tests --
    same structure, smaller arrays.
    """

    # Widths
    fetch_width: int = 8
    decode_width: int = 4
    rename_width: int = 4
    issue_width: int = 6
    retire_width: int = 8

    # Queues / windows
    fetchq_entries: int = 32
    sched_entries: int = 32
    rob_entries: int = 64
    lq_entries: int = 16
    sq_entries: int = 16
    phys_regs: int = 80
    mhr_entries: int = 16

    # Function units
    simple_alus: int = 2
    complex_alus: int = 1
    branch_alus: int = 1
    agus: int = 2
    complex_depth: int = 5  # deepest complex-ALU latency

    # Caches (modelled functionally; arrays are not injectable, per paper 3.1)
    icache_bytes: int = 8 * 1024
    icache_assoc: int = 2
    icache_line: int = 32
    dcache_bytes: int = 32 * 1024
    dcache_assoc: int = 2
    dcache_line: int = 64
    dcache_banks: int = 8
    dcache_latency: int = 2
    miss_latency: int = 8  # constant L1 miss service (paper Section 2.1)

    # Predictors (modelled functionally; tables are not injectable)
    btb_entries: int = 1024
    btb_assoc: int = 4
    ras_entries: int = 8
    bimodal_entries: int = 2048
    local_hist_entries: int = 1024
    local_hist_bits: int = 10
    local_pht_entries: int = 1024
    global_hist_bits: int = 12
    choice_entries: int = 4096

    # Failure detection
    deadlock_cycles: int = 100  # paper Section 4.1 ("locked" detection)

    protection: ProtectionConfig = field(default_factory=ProtectionConfig)

    def __post_init__(self):
        if self.phys_regs < 32 + self.rename_width:
            raise ConfigError(
                "phys_regs=%d cannot cover 32 architectural registers plus "
                "a rename group" % self.phys_regs)
        for name in ("fetchq_entries", "sched_entries", "rob_entries",
                     "lq_entries", "sq_entries", "mhr_entries"):
            if getattr(self, name) <= 0:
                raise ConfigError("%s must be positive" % name)
        if self.ras_entries & (self.ras_entries - 1):
            raise ConfigError("ras_entries must be a power of two")

    @classmethod
    def paper(cls, protection=None):
        """The configuration of the paper's machine."""
        return cls(protection=protection or ProtectionConfig.none())

    @classmethod
    def small(cls, protection=None):
        """A structurally identical but smaller machine for fast tests."""
        return cls(
            fetch_width=4,
            fetchq_entries=8,
            sched_entries=12,
            rob_entries=16,
            lq_entries=6,
            sq_entries=6,
            phys_regs=48,
            mhr_entries=4,
            btb_entries=64,
            bimodal_entries=128,
            local_hist_entries=64,
            local_pht_entries=64,
            global_hist_bits=6,
            choice_entries=64,
            icache_bytes=2 * 1024,
            dcache_bytes=4 * 1024,
            protection=protection or ProtectionConfig.none(),
        )

    @property
    def free_regs(self):
        """Free-list capacity: physical minus architectural registers."""
        return self.phys_regs - 32

    @property
    def phys_bits(self):
        """Bits of a physical register pointer (7 for the paper machine)."""
        return max(1, (self.phys_regs - 1).bit_length())

    @property
    def rob_bits(self):
        """Bits of a reorder-buffer tag (6 for the paper machine)."""
        return max(1, (self.rob_entries - 1).bit_length())
