"""The dynamic scheduler: 32 entries, speculative wakeup, replay.

Issue is *speculative*: an instruction is selected when its operands are
ready in the register file, available in the bypass network, or promised
by an in-flight producer (including loads assumed to hit).  If a promise
fails -- a load missed, a producer replayed -- the consumer discovers the
missing operand at execute and **replays**: its scheduler entry reverts
to waiting.  Entries are freed only at writeback, when completion is
certain (paper Section 3.3 cites exactly this retention policy as a
source of dead state).

Selection is oldest-first (by ROB age) under the machine's function-unit
constraints: 2 simple ALUs, 1 complex ALU, 1 branch ALU, 2 AGUs, and a
total issue width of 6.
"""

from repro.uarch.statelib import StateCategory, StorageKind
from repro.uarch.uop import DISP_BITS, LOAD_IDS, fu_of
from repro.utils.bits import parity

_SEQ_BITS = 40


class _SchedEntry:
    __slots__ = ("valid", "issued", "op_id", "use_a", "psrc_a", "use_b",
                 "psrc_b", "has_dest", "pdst", "rob_index", "lq_index",
                 "sq_index", "is_lit", "literal", "disp", "pc", "pred_taken",
                 "biq_index", "seq", "parity", "ptr_ecc")

    def __init__(self, space, name, config, biq_bits):
        kind = StorageKind.RAM
        ctrl = StateCategory.CTRL
        phys_bits = config.phys_bits
        lsq_bits = max(1, (max(config.lq_entries, config.sq_entries)
                           - 1).bit_length())
        self.valid = space.field(name + ".valid", 1, StateCategory.VALID, kind)
        self.issued = space.field(name + ".issued", 1, ctrl, kind)
        self.op_id = space.field(name + ".op_id", 8, ctrl, kind)
        self.use_a = space.field(name + ".use_a", 1, ctrl, kind)
        self.use_b = space.field(name + ".use_b", 1, ctrl, kind)
        self.psrc_a = space.field(
            name + ".psrc_a", phys_bits, StateCategory.REGPTR, kind)
        self.psrc_b = space.field(
            name + ".psrc_b", phys_bits, StateCategory.REGPTR, kind)
        self.has_dest = space.field(name + ".has_dest", 1, ctrl, kind)
        self.pdst = space.field(
            name + ".pdst", phys_bits, StateCategory.REGPTR, kind)
        self.rob_index = space.field(
            name + ".rob", config.rob_bits, StateCategory.ROBPTR, kind)
        self.lq_index = space.field(
            name + ".lq", lsq_bits, StateCategory.QCTRL, kind)
        self.sq_index = space.field(
            name + ".sq", lsq_bits, StateCategory.QCTRL, kind)
        self.is_lit = space.field(name + ".is_lit", 1, StateCategory.INSN, kind)
        self.literal = space.field(
            name + ".literal", 8, StateCategory.INSN, kind)
        self.disp = space.field(
            name + ".disp", DISP_BITS, StateCategory.INSN, kind)
        self.pc = space.field(name + ".pc", 62, StateCategory.PC, kind)
        self.pred_taken = space.field(name + ".pred_taken", 1, ctrl, kind)
        self.biq_index = space.field(
            name + ".biq", biq_bits, ctrl, kind)
        self.seq = space.field(
            name + ".seq", _SEQ_BITS, StateCategory.GHOST, kind)
        self.parity = None
        if config.protection.insn_parity:
            self.parity = space.field(
                name + ".parity", 1, StateCategory.PARITY, kind)
        self.ptr_ecc = None
        if config.protection.regptr_ecc:
            from repro.protect.ecc import REGPTR_CODE
            self.ptr_ecc = [
                space.field(name + ".ecc_%s" % field_name,
                            REGPTR_CODE.check_bits, StateCategory.ECC, kind)
                for field_name in ("psrc_a", "psrc_b", "pdst")
            ]

    def encode_ptr_ecc(self):
        if self.ptr_ecc is None:
            return
        from repro.protect.ecc import REGPTR_CODE
        for check, ptr in zip(self.ptr_ecc,
                              (self.psrc_a, self.psrc_b, self.pdst)):
            check.set(REGPTR_CODE.encode(ptr.get()))

    def repair_ptrs(self):
        """ECC check/repair of the stored pointers (at issue read)."""
        if self.ptr_ecc is None:
            return
        from repro.protect.ecc import REGPTR_CODE
        for check, ptr in zip(self.ptr_ecc,
                              (self.psrc_a, self.psrc_b, self.pdst)):
            value = ptr.get()
            corrected, _status = REGPTR_CODE.correct(value, check.get())
            if corrected != value:
                ptr.set(corrected)

    def insn_parity_value(self):
        """Parity over the insn-word fields this entry retains."""
        return parity((self.is_lit.get() << 29) | (self.literal.get() << 21)
                      | self.disp.get())


class Scheduler:
    """32-entry unified scheduler."""

    def __init__(self, space, config, biq_bits):
        self.config = config
        self.entries = [
            _SchedEntry(space, "sched[%d]" % i, config, biq_bits)
            for i in range(config.sched_entries)
        ]

    def flush(self):
        for entry in self.entries:
            entry.valid.set(0)
            entry.issued.set(0)

    def free_entries(self):
        return sum(1 for e in self.entries if not e.valid.get())

    def insert(self, pipeline, slot, rob_index, lq_index, sq_index):
        """Dispatch one renamed instruction into a free entry."""
        for entry in self.entries:
            if entry.valid.get():
                continue
            entry.valid.set(1)
            entry.issued.set(0)
            entry.op_id.set(slot.op_id.get())
            entry.use_a.set(slot.use_a.get())
            entry.psrc_a.set(slot.psrc_a.get())
            entry.use_b.set(slot.use_b.get())
            entry.psrc_b.set(slot.psrc_b.get())
            entry.has_dest.set(slot.has_dest.get())
            entry.pdst.set(slot.pdst.get())
            entry.rob_index.set(rob_index)
            entry.lq_index.set(lq_index)
            entry.sq_index.set(sq_index)
            entry.is_lit.set(slot.is_lit.get())
            entry.literal.set(slot.literal.get())
            entry.disp.set(slot.disp.get())
            entry.pc.set(slot.pc.get())
            entry.pred_taken.set(slot.pred_taken.get())
            entry.biq_index.set(slot.biq_index.get())
            entry.seq.set(slot.seq.get())
            if entry.parity is not None:
                entry.parity.set(entry.insn_parity_value())
            entry.encode_ptr_ecc()
            return
        # Dispatch checked free_entries(); under fault corruption the
        # count may lie -- the instruction is silently dropped, which is a
        # real (deadlock-producing) failure mode, not a simulator error.

    # -- Select stage -----------------------------------------------------

    def select_stage(self, pipeline):
        execute = pipeline.execute
        if not execute.is_latch_empty():
            return  # register-read did not drain the issue latch
        candidates = []
        rob_head = pipeline.rob.head.get()
        rob_n = len(pipeline.rob.entries)
        for index, entry in enumerate(self.entries):
            if entry.valid.get() and not entry.issued.get():
                age = (entry.rob_index.get() - rob_head) % rob_n
                candidates.append((age, index))
        if not candidates:
            return
        candidates.sort()

        fu_budget = {
            0: self.config.simple_alus,
            1: self.config.complex_alus,
            2: self.config.branch_alus,
            3: self.config.agus,
            4: self.config.simple_alus,  # PAL ops borrow a simple ALU slot
        }
        issued = 0
        promised = None  # lazily-built promise set, shared by candidates
        for _age, index in candidates:
            if issued >= self.config.issue_width:
                break
            entry = self.entries[index]
            op_id = entry.op_id.get()
            fu = fu_of(op_id)
            budget_key = 0 if fu == 4 else fu
            if fu_budget[budget_key] <= 0:
                continue
            ok, promised = self._operands_promised(
                pipeline, entry, promised)
            if not ok:
                continue
            if op_id in LOAD_IDS and not pipeline.memunit.load_may_issue(
                    pipeline, entry):
                continue
            if fu == 1 and not execute.complex_can_accept():
                continue
            if entry.parity is not None and (
                    entry.insn_parity_value() != entry.parity.get()):
                pipeline.request_parity_flush()
                continue
            fu_budget[budget_key] -= 1
            entry.issued.set(1)
            execute.accept_issue(index, entry)
            if pipeline.obs is not None:
                pipeline.obs.on_issue(pipeline, seq=entry.seq.get(),
                                      rob_index=entry.rob_index.get(),
                                      op_id=op_id)
            issued += 1

    def _operands_promised(self, pipeline, entry, promised):
        """(both operands ready or promised, the promise set).

        The set of promised pregs is constant across one select stage
        (nothing in the stage body mutates the bypass network or EX
        latches), so it is built at most once per cycle -- lazily, on
        the first operand that is not already register-ready -- and
        shared by every candidate, replacing a per-operand scan.
        """
        regfile = pipeline.regfile
        for use, src in ((entry.use_a, entry.psrc_a),
                         (entry.use_b, entry.psrc_b)):
            if not use.get():
                continue
            preg = src.get()
            if regfile.is_ready(preg):
                continue
            if promised is None:
                promised = pipeline.execute.promised_pregs()
            if preg not in promised:
                return False, promised
        return True, promised

    # -- Replay / completion -------------------------------------------------

    def replay(self, sched_index):
        """Return an issued entry to the waiting state (failed promise)."""
        entry = self.entries[sched_index % len(self.entries)]
        if entry.valid.get():
            entry.issued.set(0)

    def complete(self, sched_index):
        """Free an entry whose instruction is certain to complete."""
        entry = self.entries[sched_index % len(self.entries)]
        entry.valid.set(0)
        entry.issued.set(0)

    def squash_younger(self, rob_head, boundary_age, rob_n):
        """Invalidate entries younger than ``boundary_age`` (recovery)."""
        for entry in self.entries:
            if not entry.valid.get():
                continue
            age = (entry.rob_index.get() - rob_head) % rob_n
            if age > boundary_age:
                entry.valid.set(0)
                entry.issued.set(0)
