"""The pipeline: wiring, the cycle loop, recovery, checkpoints.

:class:`Pipeline` assembles every structure of the modelled processor,
steps them one clock edge at a time (stages evaluated in reverse pipeline
order so each consumes the previous cycle's latch contents), applies
branch/memory-ordering recoveries and protection-mechanism flushes, and
exposes the observation surface the fault-injection harness uses:

* ``retired_this_cycle`` / ``drains_this_cycle`` -- the retirement and
  store-drain streams compared against the golden run;
* ``committed_view()`` -- the architectural register file as software
  sees it (the paper's per-cycle architectural-state check);
* ``space.signature()`` -- the full microarchitectural state hash (the
  paper's μArch Match criterion);
* ``failure_event`` / ``halted`` -- exceptions, TLB misses, HALT;
* ``checkpoint()`` / ``restore()`` -- trial start points.
"""

from repro.arch.memory import Memory, page_of
from repro.uarch.caches import BankedDCache, SetAssocCache
from repro.uarch.config import PipelineConfig
from repro.uarch.dispatch import RenameDispatch
from repro.uarch.execute import ExecuteUnit
from repro.uarch.frontend import Frontend
from repro.uarch.memunit import MemoryUnit
from repro.uarch.predictors import (
    BranchTargetBuffer,
    HybridPredictor,
    ReturnAddressStack,
)
from repro.uarch.regfile import PhysRegFile
from repro.uarch.rename import FreeList, RatFile
from repro.uarch.rob import ReorderBuffer, RetireUnit
from repro.uarch.scheduler import Scheduler
from repro.uarch.statelib import StateCategory, StateSpace, StorageKind
from repro.uarch.uop import (
    CONTROL_IDS,
    JUMP_IDS,
    op_from_id,
    unpack_pc,
)
from repro.utils.bits import to_signed

# Default injection population (normalized once; see StateSpace.choose_bit).
_ALL_KINDS = frozenset((StorageKind.LATCH, StorageKind.RAM))


class Pipeline:
    """A latch-accurate out-of-order pipeline executing one program."""

    # REP001 whitelist: derived/bookkeeping state deliberately held
    # outside the StateSpace.  Everything here is either functional-model
    # state excluded from injection per paper Section 3.1 (``ras``), or
    # harness observation/bookkeeping state; all of it is captured by
    # ``checkpoint()``/``restore()`` so trials replay bit-exactly.
    _DERIVED = (
        "stats", "cycle_count", "total_retired", "fetch_seq", "halted",
        "output", "syscall_count", "failure_event", "track_pages",
        "insn_pages", "data_pages", "tlb_insn_pages", "tlb_data_pages",
        "retired_this_cycle", "drains_this_cycle",
        "_recovery_requests", "_flush_requested", "_flush_reason",
        "ras", "obs", "_cow_baseline", "_output_base",
    )

    def __init__(self, program, config=None):
        self.config = config or PipelineConfig.paper()
        self.program = program
        self.space = StateSpace()
        self.memory = Memory(program.image)

        # Functional structures (excluded from injection per paper 3.1).
        cfg = self.config
        self.icache = SetAssocCache(
            cfg.icache_bytes, cfg.icache_assoc, cfg.icache_line)
        self.dcache = BankedDCache(
            cfg.dcache_bytes, cfg.dcache_assoc, cfg.dcache_line,
            cfg.dcache_banks)
        self.predictor = HybridPredictor(cfg)
        self.btb = BranchTargetBuffer(cfg.btb_entries, cfg.btb_assoc)
        self.ras = ReturnAddressStack(cfg.ras_entries)

        # State-holding structures (the injection surface).
        space = self.space
        self.regfile = PhysRegFile(space, cfg)
        with_ptr_ecc = cfg.protection.regptr_ecc
        self.spec_rat = RatFile(
            space, "specrat", StateCategory.SPECRAT, cfg.phys_bits,
            with_ptr_ecc)
        self.arch_rat = RatFile(
            space, "archrat", StateCategory.ARCHRAT, cfg.phys_bits,
            with_ptr_ecc)
        self.spec_freelist = FreeList(
            space, "specfreelist", StateCategory.SPECFREELIST,
            cfg.free_regs, cfg.phys_bits, with_ptr_ecc)
        self.arch_freelist = FreeList(
            space, "archfreelist", StateCategory.ARCHFREELIST,
            cfg.free_regs, cfg.phys_bits, with_ptr_ecc)
        self.frontend = Frontend(
            space, cfg, self.icache, self.predictor, self.btb, self.ras)
        biq_bits = self.frontend.biq.index_bits
        self.rename_dispatch = RenameDispatch(
            space, cfg, self.spec_rat, self.spec_freelist, biq_bits)
        self.scheduler = Scheduler(space, cfg, biq_bits)
        self.execute = ExecuteUnit(space, cfg, biq_bits)
        self.memunit = MemoryUnit(space, cfg, self.dcache)
        self.rob = ReorderBuffer(space, cfg, biq_bits)
        self.retire_unit = RetireUnit(space, cfg)
        space.freeze()

        # Side (non-injectable) bookkeeping.
        self.storesets = self.memunit.storesets
        self.stats = {}
        self.cycle_count = 0
        self.total_retired = 0
        self.fetch_seq = 0
        self.halted = False
        self.output = []
        self.syscall_count = 0
        self.failure_event = None
        self.track_pages = False
        self.insn_pages = set()
        self.data_pages = set()
        self.tlb_insn_pages = None
        self.tlb_data_pages = None

        # Per-cycle observation buffers.
        self.retired_this_cycle = []
        self.drains_this_cycle = []

        # Deferred recovery/flush requests.
        self._recovery_requests = []
        self._flush_requested = False
        self._flush_reason = None

        # Copy-on-write restore: the checkpoint the side structures'
        # undo journals are tracking against, and the output-list length
        # at that baseline (restore truncates instead of re-copying).
        self._cow_baseline = None
        self._output_base = 0

        # Observability: None by default, so every hook site pays one
        # attribute check.  An attached repro.obs.Observer is strictly
        # observation-only -- it can never change pipeline behaviour.
        self.obs = None
        # Stage table mirroring cycle()'s straight-line order, used by
        # the observed cycle path (per-stage event/profiling brackets).
        self._stages = (
            ("retire", self.retire_unit.retire_stage),
            ("writeback", self.execute.writeback_stage),
            ("ecc", self._ecc_stage),
            ("mem_m2", self.memunit.m2_stage),
            ("mem_mhr", self.memunit.mhr_step),
            ("mem_drain", self.memunit.drain_stage),
            ("mem_m1", self.memunit.m1_stage),
            ("execute", self.execute.execute_stage),
            ("recovery", self._recovery_stage),
            ("regread", self.execute.regread_stage),
            ("select", self.scheduler.select_stage),
            ("dispatch", self.rename_dispatch.dispatch_stage),
            ("rename", self.rename_dispatch.rename_stage),
            ("decode", self.frontend.decode_stage),
            ("fetch2", self.frontend.fetch2_stage),
            ("fetch1", self.frontend.fetch1_stage),
        )

        self._reset(program.entry)

    # ------------------------------------------------------------------
    # Reset
    # ------------------------------------------------------------------

    def _reset(self, entry_pc):
        identity = list(range(32))
        self.spec_rat.reset(identity)
        self.arch_rat.reset(identity)
        free = list(range(32, self.config.phys_regs))
        self.spec_freelist.reset(free)
        self.arch_freelist.reset(free)
        self.regfile.reset()
        self.frontend.reset(entry_pc)
        self.retire_unit.reset(entry_pc)
        self.rob.flush()
        self.scheduler.flush()
        self.execute.flush()

    # ------------------------------------------------------------------
    # The clock
    # ------------------------------------------------------------------

    def cycle(self):
        """Advance one clock edge."""
        obs = self.obs
        if obs is not None:
            self._cycle_observed(obs)
            return
        self.retired_this_cycle = []
        self.drains_this_cycle = []
        self._recovery_requests = []

        self.retire_unit.retire_stage(self)
        self.execute.writeback_stage(self)
        self.regfile.ecc_generate_step()
        self.memunit.m2_stage(self)
        self.memunit.mhr_step(self)
        self.memunit.drain_stage(self)
        self.memunit.m1_stage(self)
        self.execute.execute_stage(self)
        self._apply_recovery()
        self.execute.regread_stage(self)
        self.scheduler.select_stage(self)
        self.rename_dispatch.dispatch_stage(self)
        self.rename_dispatch.rename_stage(self)
        self.frontend.decode_stage(self)
        self.frontend.fetch2_stage(self)
        self.frontend.fetch1_stage(self)

        if self._flush_requested:
            self._flush_requested = False
            self.flush_all()
        self.cycle_count += 1

    def _cycle_observed(self, obs):
        """The cycle loop with an observer attached.

        Identical stage order and semantics to the straight-line
        :meth:`cycle` (the invariance test holds the two byte-identical);
        kept separate so the default path stays hot.  The flush check and
        cycle-count increment happen *before* ``end_cycle`` so corruption
        cleared by the end-of-cycle flush is attributed to this cycle.
        """
        self.retired_this_cycle = []
        self.drains_this_cycle = []
        self._recovery_requests = []

        obs.begin_cycle(self)
        profile = obs.profile
        if profile is not None:
            clock = profile.clock
            add = profile.add
            for name, stage in self._stages:
                started = clock()
                stage(self)
                add(name, clock() - started)
        else:
            for _name, stage in self._stages:
                stage(self)

        if self._flush_requested:
            self._flush_requested = False
            self.flush_all()
        self.cycle_count += 1
        obs.end_cycle(self)

    def _ecc_stage(self, _pipeline):
        self.regfile.ecc_generate_step()

    def _recovery_stage(self, _pipeline):
        self._apply_recovery()

    def run(self, cycles, stop_on_halt=True):
        """Run ``cycles`` clock edges (stopping at HALT by default)."""
        for _ in range(cycles):
            if stop_on_halt and self.halted:
                break
            self.cycle()

    # ------------------------------------------------------------------
    # Events raised by the stages
    # ------------------------------------------------------------------

    def next_seq(self, _pc):
        self.fetch_seq += 1
        return self.fetch_seq

    def note_retired(self, seq, pc, op_id, dest, value):
        self.total_retired += 1
        self.retired_this_cycle.append((seq, pc, op_id, dest, value))
        if self.obs is not None:
            self.obs.on_retire(self, seq, pc, op_id, dest, value)

    def note_store_drain(self, address, value, size):
        self.drains_this_cycle.append((address, value, size))
        if self.obs is not None:
            self.obs.on_drain(self, address, value, size)

    def bump(self, counter, amount=1):
        """Increment a (side, non-injectable) statistics counter."""
        self.stats[counter] = self.stats.get(counter, 0) + amount

    def emit_output(self, op_id, value):
        self.syscall_count += 1
        op = op_from_id(op_id)
        if op.name == "PUTC":
            self.output.append(chr(value & 0xFF))
        else:
            self.output.append("%d\n" % to_signed(value))

    def raise_failure(self, kind, **details):
        """An architectural failure observed at retirement (halts)."""
        if self.failure_event is None:
            self.failure_event = (kind, details)
            if self.obs is not None:
                self.obs.on_failure(self, kind)
        self.halted = True

    def note_fetch_pages(self, pc, count):
        if self.track_pages:
            for i in range(count):
                self.insn_pages.add(page_of(pc + 4 * i))

    def note_data_page(self, address):
        if self.track_pages:
            self.data_pages.add(page_of(address))

    # ------------------------------------------------------------------
    # Recovery
    # ------------------------------------------------------------------

    def request_branch_recovery(self, rob_index, target, biq_index, op_id,
                                pc, taken):
        self._recovery_requests.append(
            ("branch", rob_index, target, biq_index, op_id, pc, taken))

    def request_violation_recovery(self, rob_index, refetch_pc):
        self._recovery_requests.append(
            ("violation", rob_index, refetch_pc, None, None, None, None))

    def request_timeout_flush(self):
        self._flush_requested = True
        self._flush_reason = "timeout"

    def request_parity_flush(self):
        self._flush_requested = True
        self._flush_reason = "parity"

    def _apply_recovery(self):
        if not self._recovery_requests:
            return
        head = self.rob.head.get()
        n = len(self.rob.entries)

        def age_of(request):
            return (request[1] - head) % n

        request = min(self._recovery_requests, key=age_of)
        self._recovery_requests = []
        kind, rob_index = request[0], request[1]
        self.bump("branch_mispredicts" if kind == "branch"
                  else "ordering_violations")
        if self.obs is not None:
            self.obs.on_recovery(self, kind, rob_index, request[2])
        age = (rob_index - head) % n

        if kind == "branch":
            _k, _r, target, biq_index, op_id, pc, taken = request
            boundary_age = age  # keep the branch itself
            refetch_pc = target
        else:
            _k, _r, refetch_pc = request[0], request[1], request[2]
            boundary_age = age - 1  # squash the load too
            biq_index = op_id = pc = taken = None

        self.rename_dispatch.squash(self)  # newest first: undo rename latch
        squashed = self.rob.squash_younger(self, boundary_age)
        self.scheduler.squash_younger(head, boundary_age, n)
        self.execute.squash_younger(head, boundary_age, n)
        self.memunit.squash_younger(head, boundary_age, n)
        self.frontend.flush()

        # Prediction-state recovery from the branch-info-queue snapshots.
        biq = self.frontend.biq
        if kind == "branch":
            ras_top, ghr = biq.snapshot_of(biq_index)
            self.ras.recover(ras_top)
            self.predictor.global_hist = ghr
            self._reapply_branch_effect(op_id, pc, taken)
            biq.rewind_to(biq_index)
        else:
            # Violation recovery: rewind past every squashed branch.  The
            # squash walk visits youngest-first, so the last control op
            # seen is the oldest squashed branch.
            oldest_biq = None
            for _seq, sq_op, sq_biq in squashed:
                if sq_op in CONTROL_IDS:
                    oldest_biq = sq_biq
            if oldest_biq is not None:
                ras_top, ghr = biq.snapshot_of(oldest_biq)
                self.ras.recover(ras_top)
                self.predictor.global_hist = ghr
                # The oldest squashed branch's own entry is dropped too.
                biq.rewind_before(oldest_biq)

        self.frontend.redirect(refetch_pc)

    def _reapply_branch_effect(self, op_id, pc, taken):
        """Redo the resolved branch's own effect on prediction state."""
        op = op_from_id(op_id)
        if op.name in ("BSR", "JSR"):
            self.ras.push((pc + 4) & ((1 << 64) - 1))
        elif op.name == "RET":
            self.ras.pop()
        if op_id in CONTROL_IDS and op_id not in JUMP_IDS and \
                op.name not in ("BR", "BSR"):
            self.predictor.speculate(taken)

    def flush_all(self):
        """Full recovery flush (timeout / parity mechanisms).

        Restores speculative rename state from the architectural copies
        and restarts fetch at the next-to-retire PC.  Retired stores
        survive in the store buffer (paper Section 4.1).
        """
        self.bump("recovery_flushes")
        if self.obs is not None:
            self.obs.on_flush(self, self._flush_reason)
        self.spec_rat.copy_from(self.arch_rat)
        self.spec_freelist.copy_from(self.arch_freelist)
        self.regfile.mark_all_ready()
        self.rob.flush()
        self.scheduler.flush()
        self.execute.flush()
        self.memunit.flush_speculative()
        self.frontend.flush()
        self.frontend.biq.flush()
        self.rename_dispatch.flush()
        self.frontend.redirect(unpack_pc(self.retire_unit.arch_pc.get()))

    # ------------------------------------------------------------------
    # Observation surface
    # ------------------------------------------------------------------

    def committed_view(self):
        """The architectural register file as software sees it."""
        read = self.regfile.read
        rat = self.arch_rat
        view = tuple(read(rat.read(arch)) for arch in range(31))
        return view

    def committed_view_hash(self):
        return hash(self.committed_view())

    def arch_pc(self):
        return unpack_pc(self.retire_unit.arch_pc.get())

    # repro-lint: allow=REP003 (harness observation: ghost seqs feed the
    # Figure 6 occupancy metric and golden matching, never behavior)
    def inflight_seqs(self):
        """Ghost sequence numbers of all in-flight instructions."""
        seqs = []
        for slot in self.frontend.f2:
            if slot.valid.get():
                seqs.append(slot.seq.get())
        for entry in self.frontend.fetchq:
            if entry.valid.get():
                seqs.append(entry.seq.get())
        for slot in self.frontend.decode_slots:
            if slot.valid.get():
                seqs.append(slot.seq.get())
        for slot in self.rename_dispatch.slots:
            if slot.valid.get():
                seqs.append(slot.seq.get())
        for entry in self.rob.entries:
            if entry.valid.get():
                seqs.append(entry.seq.get())
        return seqs

    def output_text(self):
        return "".join(self.output)

    # ------------------------------------------------------------------
    # Checkpoints
    # ------------------------------------------------------------------

    def checkpoint(self):
        """Capture complete simulator state (for trial start points).

        The returned checkpoint doubles as a copy-on-write baseline:
        the pipeline's side structures start journaling their mutations
        against it, so restoring *this* checkpoint undoes only what ran
        since (O(touched state)); restoring any other checkpoint falls
        back to the full re-copy.
        """
        side = {
            "memory": dict(self.memory.quads),
            "icache": self.icache.save_side(),
            "dcache": self.dcache.save_side(),
            "predictor": self.predictor.save_side(),
            "btb": self.btb.save_side(),
            "ras": self.ras.save_side(),
            "storesets": self.storesets.save_side(),
            "biq": self.frontend.biq.save_side(),
            "output": list(self.output),
            "scalars": (self.cycle_count, self.total_retired,
                        self.fetch_seq, self.halted, self.syscall_count),
            "stats": dict(self.stats),
        }
        snapshot = (self.space.snapshot(), side)
        self._begin_cow_epoch(snapshot)
        return snapshot

    def _begin_cow_epoch(self, snapshot):
        """Arm copy-on-write tracking with ``snapshot`` as the baseline.

        Precondition: the live side structures are bit-identical to the
        baseline's side data (true right after ``checkpoint()`` captures
        them and right after a full ``restore()`` reinstates them).
        """
        self._cow_baseline = snapshot
        self._output_base = len(self.output)
        self.memory.cow_begin()
        self.icache.cow_begin()
        self.dcache.cow_begin()
        self.predictor.cow_begin()
        self.btb.cow_begin()
        self.storesets.cow_begin()

    def restore(self, snapshot):
        values, side = snapshot
        self.space.restore(values)
        if snapshot is self._cow_baseline:
            # Fast path: undo only what ran since the baseline.  The
            # RAS and BIQ side lists are small fixed-size structures,
            # cheaper to reload than to journal.
            self.memory.cow_restore()
            self.icache.cow_restore()
            self.dcache.cow_restore()
            self.predictor.cow_restore()
            self.btb.cow_restore()
            self.storesets.cow_restore()
            self.ras.load_side(side["ras"])
            self.frontend.biq.load_side(side["biq"])
            del self.output[self._output_base:]
        else:
            self.memory.quads = dict(side["memory"])
            self.icache.load_side(side["icache"])
            self.dcache.load_side(side["dcache"])
            self.predictor.load_side(side["predictor"])
            self.btb.load_side(side["btb"])
            self.ras.load_side(side["ras"])
            self.storesets.load_side(side["storesets"])
            self.frontend.biq.load_side(side["biq"])
            self.output = list(side["output"])
            self._begin_cow_epoch(snapshot)
        (self.cycle_count, self.total_retired, self.fetch_seq,
         self.halted, self.syscall_count) = side["scalars"]
        self.stats = dict(side["stats"])
        self.failure_event = None
        self.retired_this_cycle = []
        self.drains_this_cycle = []
        self._recovery_requests = []
        self._flush_requested = False

    # ------------------------------------------------------------------
    # Fault injection surface
    # ------------------------------------------------------------------

    def eligible_bits(self, kinds=_ALL_KINDS):
        return self.space.eligible_bits(kinds)

    def inject_random_fault(self, rng, kinds=_ALL_KINDS):
        """Flip one uniformly-chosen bit; returns ``(metadata, bit)``.

        ``choose_bit`` already returns a bit offset below the element's
        width (and ``flip_bit`` masks defensively), so the offset is
        reported as-is.
        """
        element_index, bit = self.space.choose_bit(rng, kinds)
        meta = self.space.flip_bit(element_index, bit)
        if self.obs is not None:
            self.obs.on_inject(self, meta, bit)
        return meta, bit

    def inject_fault(self, rng, kinds=_ALL_KINDS, model=None):
        """Model-driven injection; returns ``(metadata, bit, fault)``.

        With no model (or the default single-bit model) this takes the
        exact legacy path -- same single RNG draw, same flip -- and
        returns ``fault=None``, keeping default campaigns byte-identical.
        Otherwise the model samples a :class:`FaultInstance` from the
        trial RNG and applies its injection-time disturbance; the window
        loop handles any persistent re-assertion.  ``metadata``/``bit``
        describe the base upset, which is what results report and what
        the observer's provenance tracker watches.
        """
        if model is None or model.is_default:
            meta, bit = self.inject_random_fault(rng, kinds)
            return meta, bit, None
        fault = model.sample(self.space, rng, kinds)
        fault.apply(self.space)
        meta = self.space.elements[fault.element_index]
        if self.obs is not None:
            self.obs.on_inject(self, meta, fault.bit)
        return meta, fault.bit, fault
