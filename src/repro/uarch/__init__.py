"""Latch-accurate model of a deeply pipelined out-of-order processor.

This package models the paper's experimental substrate: a 12-stage,
6-issue, 132-in-flight dynamically scheduled Alpha-subset pipeline in
which *every architected latch and pipeline-RAM bit is an explicitly
registered state element* (see :mod:`repro.uarch.statelib`).  All
behaviour each cycle is computed from those bits, so a single injected
bit flip propagates -- or is masked -- through the same structural paths
the paper's Verilog model exercises.

Entry point: :class:`repro.uarch.core.Pipeline`.
"""

from repro.uarch.config import PipelineConfig
from repro.uarch.core import Pipeline
from repro.uarch.statelib import StateCategory, StateSpace, StorageKind

__all__ = [
    "Pipeline",
    "PipelineConfig",
    "StateCategory",
    "StateSpace",
    "StorageKind",
]
