"""Physical register file with scoreboard and optional SECDED ECC.

80 x 65-bit RAM entries plus 80 scoreboard latches, matching the paper's
Table 1 ``regfile`` row (5200 RAM bits + 80 latch bits).  Bit 64 of each
entry is the spare/annex bit present in the modelled implementation; it
is injectable but feeds no logic, which slightly raises measured masking
exactly as dead implementation bits do in real designs.

With register-file ECC enabled (paper Section 4.2), each entry gains 8
SECDED check bits.  Check bits are generated **one cycle after** the data
write -- the paper's deliberate trade of a one-cycle vulnerability window
for cycle-time headroom -- and reads verify/correct single-bit errors.
"""

from repro.protect.ecc import REGFILE_CODE
from repro.utils.bits import MASK64
from repro.uarch.statelib import StateCategory, StorageKind


class PhysRegFile:
    """The physical register file, scoreboard, and ECC pipeline."""

    def __init__(self, space, config):
        self.num_regs = config.phys_regs
        self.data = space.array(
            "regfile.data", self.num_regs, 65,
            StateCategory.REGFILE, StorageKind.RAM)
        self.ready = space.array(
            "regfile.ready", self.num_regs, 1,
            StateCategory.REGFILE, StorageKind.LATCH)
        self.with_ecc = config.protection.regfile_ecc
        self.ecc = None
        self._pending = None
        if self.with_ecc:
            self.ecc = space.array(
                "regfile.ecc", self.num_regs, REGFILE_CODE.check_bits,
                StateCategory.ECC, StorageKind.RAM)
            # Writes whose check bits are generated next cycle: one slot
            # per write port (issue width results + memory fills).
            ports = config.issue_width + 2
            self._pending = [
                (
                    space.field("regfile.eccgen[%d].valid" % i, 1,
                                StateCategory.ECC, StorageKind.LATCH),
                    space.field("regfile.eccgen[%d].preg" % i,
                                config.phys_bits,
                                StateCategory.ECC, StorageKind.LATCH),
                )
                for i in range(ports)
            ]

    def reset(self):
        for ready in self.ready:
            ready.set(1)
        if self.with_ecc:
            for index in range(self.num_regs):
                self.ecc[index].set(
                    REGFILE_CODE.encode(self.data[index].get() & MASK64))

    # -- Data access -----------------------------------------------------

    def read(self, preg):
        """Read the 64-bit value, applying ECC check/correct when enabled."""
        preg %= self.num_regs
        value = self.data[preg].get() & MASK64
        if self.with_ecc:
            corrected, _status = REGFILE_CODE.correct(
                value, self.ecc[preg].get())
            if corrected != value:
                annex = self.data[preg].get() & ~MASK64
                self.data[preg].set(annex | corrected)
                value = corrected
        return value

    def write(self, preg, value):
        """Write a result and mark it ready; ECC generation is deferred."""
        preg %= self.num_regs
        self.data[preg].set(value & MASK64)
        self.ready[preg].set(1)
        if self.with_ecc:
            self._schedule_ecc(preg)

    def _schedule_ecc(self, preg):
        for valid, reg in self._pending:
            if not valid.get():
                valid.set(1)
                reg.set(preg)
                return
        # All generation slots busy: generate immediately (hardware would
        # stall the port; the window merely closes early).
        self.ecc[preg].set(REGFILE_CODE.encode(self.data[preg].get() & MASK64))

    def ecc_generate_step(self):
        """Run the one-cycle-delayed ECC generation (call once per cycle)."""
        if not self.with_ecc:
            return
        for valid, reg in self._pending:
            if valid.get():
                preg = reg.get() % self.num_regs
                self.ecc[preg].set(
                    REGFILE_CODE.encode(self.data[preg].get() & MASK64))
                valid.set(0)

    # -- Scoreboard ------------------------------------------------------------

    def is_ready(self, preg):
        return bool(self.ready[preg % self.num_regs].get())

    def mark_not_ready(self, preg):
        self.ready[preg % self.num_regs].set(0)

    def mark_all_ready(self):
        """Full-flush recovery: no writers remain in flight."""
        for ready in self.ready:
            ready.set(1)
