"""Functional cache models (tags + LRU only).

The paper excludes the i/d-cache RAM arrays and predictor tables from
fault injection because "these structures are easily protected with
parity and error correcting codes" (Section 3.1), so the model keeps them
*functional*: they determine hit/miss timing but hold no injectable state
and no data (loads and stores are serviced against the backing memory
image, write-through).  Structures that *support* the caches -- miss
handling registers, memory data-path latches -- are real state elements
in :mod:`repro.uarch.memunit`.
"""


class SetAssocCache:
    """A set-associative tag store with true-LRU replacement.

    Supports copy-on-write baselines for fast trial restore: once
    :meth:`cow_begin` is armed, the first mutation of a set stashes the
    pristine ways list and replaces it with a copy, so
    :meth:`cow_restore` just reinstates the stashed originals --
    O(touched sets) instead of re-copying every set.  Mutations that
    would not change LRU state (re-touching or re-filling the MRU tag)
    are skipped outright, which is both byte-identical and the common
    case in tight loops.
    """

    def __init__(self, size_bytes, assoc, line_bytes):
        self.line_bytes = line_bytes
        self.assoc = assoc
        self.num_sets = max(1, size_bytes // (assoc * line_bytes))
        # Per-set list of tags, most recently used last.
        self.sets = [[] for _ in range(self.num_sets)]
        self._cow = None  # set index -> pristine ways list of the baseline

    def _locate(self, address):
        line = address // self.line_bytes
        return line % self.num_sets, line

    def cow_begin(self):
        """Make the current contents the copy-on-write baseline."""
        if self._cow is None:
            self._cow = {}
        else:
            self._cow.clear()

    def cow_restore(self):
        """Reinstate the :meth:`cow_begin` baseline."""
        sets = self.sets
        for set_index, ways in self._cow.items():
            sets[set_index] = ways
        self._cow.clear()

    def _touch_ways(self, set_index):
        """The mutable ways list for ``set_index`` (copy-on-first-write)."""
        ways = self.sets[set_index]
        cow = self._cow
        if cow is not None and set_index not in cow:
            cow[set_index] = ways
            ways = list(ways)
            self.sets[set_index] = ways
        return ways

    def lookup(self, address, touch=True):
        """True on hit; updates LRU order when ``touch`` is set."""
        set_index, tag = self._locate(address)
        ways = self.sets[set_index]
        if tag in ways:
            if touch and ways[-1] != tag:
                ways = self._touch_ways(set_index)
                ways.remove(tag)
                ways.append(tag)
            return True
        return False

    def fill(self, address):
        """Install the line containing ``address`` (evicting LRU)."""
        set_index, tag = self._locate(address)
        ways = self.sets[set_index]
        if ways and ways[-1] == tag:
            return
        ways = self._touch_ways(set_index)
        if tag in ways:
            ways.remove(tag)
        elif len(ways) >= self.assoc:
            ways.pop(0)
        ways.append(tag)

    def line_address(self, address):
        return address - (address % self.line_bytes)

    def save_side(self):
        return [list(ways) for ways in self.sets]

    def load_side(self, saved):
        self.sets = [list(ways) for ways in saved]
        if self._cow:
            # The baseline no longer describes the live contents; the
            # pipeline re-arms tracking after every full restore.
            self._cow.clear()


class BankedDCache(SetAssocCache):
    """The L1 data cache: dual-ported via eight interleaved banks.

    Two accesses proceed per cycle when they target different banks
    (paper Figure 2); the memory unit arbitrates bank conflicts.
    """

    def __init__(self, size_bytes, assoc, line_bytes, banks):
        super().__init__(size_bytes, assoc, line_bytes)
        self.banks = banks

    def bank_of(self, address):
        """Bank index: interleaved on 8-byte words."""
        return (address >> 3) % self.banks
