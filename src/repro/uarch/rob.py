"""Reorder buffer and the retirement stage.

64 entries, 8-wide retirement (paper Figure 2).  Retirement updates the
architectural RAT and free list, releases load-queue entries, marks
stores eligible to drain, performs the PAL output effects, raises
architectural exceptions and TLB-miss failures, and -- when the timeout
protection mechanism is configured -- counts retirement-free cycles and
forces a recovery flush at the deadlock threshold (paper Section 4.2).
"""

from repro.arch.memory import page_of
from repro.isa.instruction import PAL_ARG_REG
from repro.uarch.execute import EXC_DTLB, EXC_NONE
from repro.uarch.statelib import StateCategory, StorageKind
from repro.uarch.uop import (
    CONTROL_IDS,
    HALT_ID,
    LOAD_IDS,
    OUTPUT_IDS,
    PAL_IDS,
    STORE_IDS,
    pack_pc,
    unpack_pc,
)
from repro.utils.bits import to_signed

_SEQ_BITS = 40


class _RobEntry:
    __slots__ = ("valid", "done", "op_id", "has_dest", "dest_arch", "pdst",
                 "pold", "pc", "target", "taken", "exc", "lq_index",
                 "sq_index", "biq_index", "seq", "ptr_ecc")

    def __init__(self, space, name, config, lsq_bits, biq_bits):
        kind = StorageKind.RAM
        ctrl = StateCategory.CTRL
        self.valid = space.field(name + ".valid", 1, StateCategory.VALID, kind)
        self.done = space.field(name + ".done", 1, ctrl, kind)
        self.op_id = space.field(name + ".op_id", 8, ctrl, kind)
        self.has_dest = space.field(name + ".has_dest", 1, ctrl, kind)
        self.dest_arch = space.field(name + ".dest_arch", 5, ctrl, kind)
        self.pdst = space.field(
            name + ".pdst", config.phys_bits, StateCategory.REGPTR, kind)
        self.pold = space.field(
            name + ".pold", config.phys_bits, StateCategory.REGPTR, kind)
        self.pc = space.field(name + ".pc", 62, StateCategory.PC, kind)
        self.target = space.field(name + ".target", 62, StateCategory.PC, kind)
        self.taken = space.field(name + ".taken", 1, ctrl, kind)
        self.exc = space.field(name + ".exc", 3, ctrl, kind)
        self.lq_index = space.field(name + ".lq", lsq_bits, ctrl, kind)
        self.sq_index = space.field(name + ".sq", lsq_bits, ctrl, kind)
        self.biq_index = space.field(name + ".biq", biq_bits, ctrl, kind)
        self.seq = space.field(
            name + ".seq", _SEQ_BITS, StateCategory.GHOST, kind)
        self.ptr_ecc = None
        if config.protection.regptr_ecc:
            from repro.protect.ecc import REGPTR_CODE
            self.ptr_ecc = [
                space.field(name + ".ecc_%s" % field_name,
                            REGPTR_CODE.check_bits, StateCategory.ECC, kind)
                for field_name in ("pdst", "pold")
            ]

    def encode_ptr_ecc(self):
        if self.ptr_ecc is None:
            return
        from repro.protect.ecc import REGPTR_CODE
        for check, ptr in zip(self.ptr_ecc, (self.pdst, self.pold)):
            check.set(REGPTR_CODE.encode(ptr.get()))

    def repair_ptrs(self):
        """ECC check/repair of pdst/pold (retirement / recovery reads)."""
        if self.ptr_ecc is None:
            return
        from repro.protect.ecc import REGPTR_CODE
        for check, ptr in zip(self.ptr_ecc, (self.pdst, self.pold)):
            value = ptr.get()
            corrected, _status = REGPTR_CODE.correct(value, check.get())
            if corrected != value:
                ptr.set(corrected)


class ReorderBuffer:
    """The 64-entry circular reorder buffer."""

    def __init__(self, space, config, biq_bits):
        lsq_bits = max(1, (max(config.lq_entries, config.sq_entries)
                           - 1).bit_length())
        self.entries = [
            _RobEntry(space, "rob[%d]" % i, config, lsq_bits, biq_bits)
            for i in range(config.rob_entries)
        ]
        bits = config.rob_bits
        self.head = space.field(
            "rob.head", bits, StateCategory.QCTRL, StorageKind.LATCH)
        self.tail = space.field(
            "rob.tail", bits, StateCategory.QCTRL, StorageKind.LATCH)
        self.count = space.field(
            "rob.count", bits + 1, StateCategory.QCTRL, StorageKind.LATCH)

    def flush(self):
        for entry in self.entries:
            entry.valid.set(0)
            entry.done.set(0)
        self.head.set(0)
        self.tail.set(0)
        self.count.set(0)

    def free_entries(self):
        return len(self.entries) - self.count.get()

    def alloc(self, slot):
        index = self.tail.get() % len(self.entries)
        entry = self.entries[index]
        entry.valid.set(1)
        entry.done.set(0)
        entry.op_id.set(slot.op_id.get())
        entry.has_dest.set(slot.has_dest.get())
        entry.dest_arch.set(slot.dest_arch.get())
        entry.pdst.set(slot.pdst.get())
        entry.pold.set(slot.pold.get())
        entry.pc.set(slot.pc.get())
        entry.target.set(0)
        entry.taken.set(0)
        entry.exc.set(EXC_NONE)
        entry.lq_index.set(0)
        entry.sq_index.set(0)
        entry.biq_index.set(slot.biq_index.get())
        entry.seq.set(slot.seq.get())
        entry.encode_ptr_ecc()
        self.tail.set((self.tail.get() + 1) % len(self.entries))
        self.count.set(min(len(self.entries), self.count.get() + 1))
        return index

    def set_lsq(self, rob_index, lq_index, sq_index):
        entry = self.entries[rob_index % len(self.entries)]
        entry.lq_index.set(lq_index)
        entry.sq_index.set(sq_index)

    def mark_done(self, rob_index):
        entry = self.entries[rob_index % len(self.entries)]
        if entry.valid.get():
            entry.done.set(1)

    def set_exception(self, rob_index, exc):
        entry = self.entries[rob_index % len(self.entries)]
        if entry.valid.get():
            entry.exc.set(exc)

    def set_branch_outcome(self, rob_index, taken, target):
        entry = self.entries[rob_index % len(self.entries)]
        if entry.valid.get():
            entry.taken.set(1 if taken else 0)
            entry.target.set(pack_pc(target))

    def pc_of(self, rob_index):
        return unpack_pc(self.entries[rob_index % len(self.entries)].pc.get())

    def squash_younger(self, pipeline, boundary_age):
        """Walk from the tail towards the recovery point, undoing rename.

        For each squashed instruction with a destination, the speculative
        RAT is restored to the previous mapping (``pold``) and the
        allocated register is returned to the head of the speculative free
        list.  Returns the list of squashed (seq, op_id) pairs for
        prediction-state recovery.
        """
        squashed = []
        n = len(self.entries)
        head = self.head.get()
        count = self.count.get()
        for _ in range(count):
            tail = (self.tail.get() - 1) % n
            entry = self.entries[tail]
            if not entry.valid.get():
                break
            age = (tail - head) % n
            if age <= boundary_age:
                break
            # repro-lint: allow=REP003 (seq is threaded to the harness
            # only; recovery consumes just op_id and biq_index)
            squashed.append((entry.seq.get(), entry.op_id.get(),
                             entry.biq_index.get()))
            if entry.has_dest.get():
                entry.repair_ptrs()
                pipeline.spec_rat.write(entry.dest_arch.get(),
                                        entry.pold.get())
                pipeline.spec_freelist.push_front(entry.pdst.get())
                pipeline.regfile.ready[
                    entry.pdst.get() % pipeline.regfile.num_regs].set(1)
            entry.valid.set(0)
            entry.done.set(0)
            self.tail.set(tail)
            remaining = self.count.get()
            if remaining:
                self.count.set(remaining - 1)
        return squashed


class RetireUnit:
    """8-wide in-order retirement plus the timeout protection counter."""

    def __init__(self, space, config):
        self.config = config
        self.arch_pc = space.field(
            "retire.arch_pc", 62, StateCategory.PC, StorageKind.LATCH)
        self.timeout_counter = None
        if config.protection.timeout:
            self.timeout_counter = space.field(
                "retire.timeout", 7, StateCategory.CTRL, StorageKind.LATCH)

    def reset(self, entry_pc):
        self.arch_pc.set(pack_pc(entry_pc))
        if self.timeout_counter is not None:
            self.timeout_counter.set(0)

    def retire_stage(self, pipeline):
        rob = pipeline.rob
        retired = 0
        n = len(rob.entries)
        while retired < self.config.retire_width and not pipeline.halted:
            if rob.count.get() == 0:
                break
            head = rob.head.get() % n
            entry = rob.entries[head]
            if not entry.valid.get() or not entry.done.get():
                break
            if not self._retire_one(pipeline, entry):
                break
            entry.valid.set(0)
            entry.done.set(0)
            rob.head.set((head + 1) % n)
            count = rob.count.get()
            if count:
                rob.count.set(count - 1)
            retired += 1
        self._timeout_step(pipeline, retired)
        return retired

    def _retire_one(self, pipeline, entry):
        """Retire the head instruction; False aborts this cycle's group.

        The architectural program counter is *chained* (incremented, or
        redirected by a taken control transfer) rather than read from the
        entry's stored PC field -- as in real retirement logic.  The
        per-entry PC fields serve exception reporting and recovery only,
        which is why the paper's large unencoded ROB PC arrays are mostly
        dead state (its Section 6 remark).
        """
        pc = unpack_pc(self.arch_pc.get())
        op_id = entry.op_id.get()

        # ITLB: committed control flow reached an unmapped page.
        if (pipeline.tlb_insn_pages is not None
                and page_of(pc) not in pipeline.tlb_insn_pages):
            pipeline.raise_failure("itlb", pc=pc)
            return False
        exc = entry.exc.get()
        if exc != EXC_NONE:
            kind = "dtlb" if exc == EXC_DTLB else "except"
            pipeline.raise_failure(kind, pc=pc, code=exc)
            return False

        value = None
        dest = None
        if op_id in PAL_IDS:
            if op_id == HALT_ID:
                pipeline.halted = True
            elif op_id in OUTPUT_IDS:
                value = self._read_arch_reg(pipeline, PAL_ARG_REG)
                pipeline.emit_output(op_id, value)
        elif entry.has_dest.get():
            entry.repair_ptrs()
            dest = entry.dest_arch.get()
            pdst = entry.pdst.get()
            value = pipeline.regfile.read(pdst)
            pipeline.arch_rat.write(dest, pdst)
            pold = entry.pold.get()
            pipeline.arch_freelist.pop()  # FIFO invariant: this is pdst
            pipeline.arch_freelist.push(pold)
            # The old register is free for re-allocation from now on.
            pipeline.spec_freelist.push(pold)

        if op_id in STORE_IDS:
            pipeline.memunit.sq_mark_retired(entry.sq_index.get())
        elif op_id in LOAD_IDS:
            pipeline.memunit.lq_retire(entry.lq_index.get())

        if op_id in CONTROL_IDS:
            pipeline.frontend.biq.free_head()
            if entry.taken.get():
                next_pc = unpack_pc(entry.target.get())
            else:
                next_pc = (pc + 4) & ((1 << 64) - 1)
        else:
            next_pc = (pc + 4) & ((1 << 64) - 1)
        self.arch_pc.set(pack_pc(next_pc))

        # repro-lint: allow=REP003 (observation surface: the retirement
        # record carries seq for golden matching, never back into logic)
        pipeline.note_retired(entry.seq.get(), pc, op_id, dest, value)
        return True

    def _read_arch_reg(self, pipeline, arch_reg):
        """Architecturally-correct register read at retirement time."""
        preg = pipeline.arch_rat.read(arch_reg)
        return pipeline.regfile.read(preg)

    def _timeout_step(self, pipeline, retired):
        if self.timeout_counter is None:
            return
        if retired or pipeline.halted:
            self.timeout_counter.set(0)
            return
        count = self.timeout_counter.get() + 1
        if count >= self.config.deadlock_cycles:
            self.timeout_counter.set(0)
            pipeline.request_timeout_flush()
        else:
            self.timeout_counter.set(min(127, count))

    def committed_value_signed(self, value):
        return to_signed(value)
