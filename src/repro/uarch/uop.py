"""Control-word encoding: how decoded instructions live in pipeline bits.

After decode, an instruction travels the pipeline as a bundle of numeric
fields stored in state elements (the paper's ``ctrl`` / ``insn`` / ``pc``
categories).  *All* downstream behaviour is computed from these stored
bits, never from shadow Python objects -- so a bit flip in a latched
control word genuinely re-steers execution (possibly to a different but
valid operation: the paper's ``ctrl`` failure mode).

Field inventory per in-flight instruction:

=============  =====  ==========  =========================================
field          bits   category    meaning
=============  =====  ==========  =========================================
op_id          8      ctrl        :class:`~repro.isa.opcodes.Op` value
has_dest       1      ctrl        writes a register
dest_arch      5      ctrl        architectural destination
use_a/use_b    1+1    ctrl        source-operand valid bits
src_a/src_b    5+5    ctrl        architectural sources (ra / rb role)
is_lit         1      insn        operate-format literal flag
literal        8      insn        operate-format literal
disp           21     insn        branch (21b) / memory (low 16b) disp
insn_word      32     insn        raw word (fetch queue / decode latch)
pc             62     pc          pc >> 2
pred_taken     1      ctrl        fetch-time direction prediction
biq_index      5      ctrl        branch-info-queue slot (predicted
                                  next-PC + recovery snapshots live there)
=============  =====  ==========  =========================================
"""

from repro.isa.instruction import PAL_ARG_REG
from repro.isa.opcodes import (
    COMPLEX_LATENCY,
    COMPLEX_OPS,
    COND_BRANCH_OPS,
    CONTROL_OPS,
    JUMP_OPS,
    LOAD_OPS,
    OUTPUT_OPS,
    PAL_OPS,
    REG_ZERO,
    STORE_OPS,
    UNCOND_BRANCH_OPS,
    Op,
)
from repro.utils.bits import sext

PC_BITS = 62  # the paper stores 62-bit PC fields (pc >> 2)
OP_BITS = 8
DISP_BITS = 21

_OP_BY_ID = {int(op): op for op in Op}

# Fast integer-keyed classification sets (hot path: called per uop per cycle).
LOAD_IDS = frozenset(int(op) for op in LOAD_OPS)
STORE_IDS = frozenset(int(op) for op in STORE_OPS)
MEM_IDS = LOAD_IDS | STORE_IDS
COND_IDS = frozenset(int(op) for op in COND_BRANCH_OPS)
UNCOND_IDS = frozenset(int(op) for op in UNCOND_BRANCH_OPS)
JUMP_IDS = frozenset(int(op) for op in JUMP_OPS)
CONTROL_IDS = frozenset(int(op) for op in CONTROL_OPS)
PAL_IDS = frozenset(int(op) for op in PAL_OPS)
OUTPUT_IDS = frozenset(int(op) for op in OUTPUT_OPS)
COMPLEX_IDS = frozenset(int(op) for op in COMPLEX_OPS)
HALT_ID = int(Op.HALT)
LDA_ID = int(Op.LDA)
LDAH_ID = int(Op.LDAH)
LDL_ID = int(Op.LDL)
STL_ID = int(Op.STL)

COMPLEX_LATENCY_BY_ID = {int(op): lat for op, lat in COMPLEX_LATENCY.items()}


def op_from_id(op_id):
    """Total mapping from a stored 8-bit op field to an ``Op``."""
    return _OP_BY_ID.get(op_id & 0xFF, Op.INVALID)


def pack_pc(pc):
    """Store a byte PC in a 62-bit field (word-aligned, as the paper does)."""
    return (pc >> 2) & ((1 << PC_BITS) - 1)


def unpack_pc(field_value):
    """Recover the byte PC from a stored 62-bit field."""
    return (field_value << 2) & ((1 << 64) - 1)


def mem_disp(disp_field):
    """Memory-format displacement from the stored 21-bit field."""
    return sext(disp_field & 0xFFFF, 16)


def branch_disp(disp_field):
    """Branch-format displacement from the stored 21-bit field."""
    return sext(disp_field, DISP_BITS)


def decode_control_word(insn):
    """Decode an :class:`~repro.isa.instruction.Instruction` into the
    numeric control-word fields dispatched into pipeline state.

    Returns a dict with keys matching the field inventory above
    (except pc/prediction, which fetch supplies).
    """
    op = insn.op
    op_id = int(op)
    dest = insn.dest
    use_a = use_b = 0
    src_a = src_b = REG_ZERO

    if op in LOAD_OPS or op in (Op.LDA, Op.LDAH):
        use_b, src_b = 1, insn.rb
    elif op in STORE_OPS:
        use_a, src_a = 1, insn.ra
        use_b, src_b = 1, insn.rb
    elif op in COND_BRANCH_OPS:
        use_a, src_a = 1, insn.ra
    elif op in JUMP_OPS:
        use_b, src_b = 1, insn.rb
    elif op in OUTPUT_OPS:
        use_a, src_a = 1, PAL_ARG_REG
    elif op in PAL_OPS or op in UNCOND_BRANCH_OPS or op == Op.INVALID:
        pass
    else:  # operate format
        use_a, src_a = 1, insn.ra
        if not insn.is_literal:
            use_b, src_b = 1, insn.rb

    # Reads of r31 are constant zero: no dependence to track.
    if src_a == REG_ZERO:
        use_a = 0
    if src_b == REG_ZERO:
        use_b = 0

    return {
        "op_id": op_id,
        "has_dest": 1 if dest is not None else 0,
        "dest_arch": dest if dest is not None else 0,
        "use_a": use_a,
        "src_a": src_a,
        "use_b": use_b,
        "src_b": src_b,
        "is_lit": 1 if insn.is_literal else 0,
        "literal": insn.literal & 0xFF,
        "disp": insn.disp & ((1 << DISP_BITS) - 1),
    }


def fu_of(op_id):
    """Function-unit class for a stored op field: 0 simple, 1 complex,
    2 branch, 3 agen, 4 none."""
    if op_id in COMPLEX_IDS:
        return 1
    if op_id in CONTROL_IDS:
        return 2
    if op_id in MEM_IDS:
        return 3
    if op_id in PAL_IDS:
        return 4
    return 0
