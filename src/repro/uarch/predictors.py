"""Functional branch prediction: hybrid direction predictor, BTB, RAS.

Prediction structures "only affect timing" (paper Section 3.1) and are
excluded from fault injection, so they are modelled functionally.  Their
*influence* on the experiment is nonetheless essential: speculation down
wrong paths is one of the major sources of microarchitectural masking
the paper credits for its higher-than-historical masking rates.

The direction predictor follows McFarling's combining scheme cited by
the paper: bimodal + local + global components with a choice table.
"""


def _counter_update(value, taken, maximum=3):
    if taken:
        return min(maximum, value + 1)
    return max(0, value - 1)


class HybridPredictor:
    """Tournament direction predictor (bimodal/local/global + chooser).

    Follows the McFarling combining scheme the paper cites: a local
    (per-branch history) component and a global (gshare) component,
    selected by a chooser trained toward whichever was right, with the
    bimodal table as the cold-start fallback either component can fall
    back to.  Prediction and training must use the *fetch-time* global
    history (recovery rewinds it), so every query takes an optional
    ``ghr``; the branch-info queue carries the fetch-time snapshot to
    the resolution point.
    """

    def __init__(self, config):
        self.bimodal = [1] * config.bimodal_entries
        self.local_hist = [0] * config.local_hist_entries
        self.local_pht = [1] * config.local_pht_entries
        self.local_hist_bits = config.local_hist_bits
        self.global_hist = 0
        self.global_bits = config.global_hist_bits
        self.global_pht = [1] * (1 << config.global_hist_bits)
        # Chooser: >= 2 selects the global component.
        self.choice = [1] * config.choice_entries
        # Copy-on-write undo journals, one per table (armed by
        # cow_begin); _ghr_base is the baseline global history.
        self._cow = None
        self._ghr_base = 0

    # -- Copy-on-write baseline ---------------------------------------------

    def cow_begin(self):
        """Journal table updates against the current contents."""
        if self._cow is None:
            self._cow = ({}, {}, {}, {}, {})
        else:
            for undo in self._cow:
                undo.clear()
        self._ghr_base = self.global_hist

    def cow_restore(self):
        """Roll every table back to the :meth:`cow_begin` baseline."""
        bim_u, lh_u, lp_u, gp_u, ch_u = self._cow
        for index, value in bim_u.items():
            self.bimodal[index] = value
        for index, value in lh_u.items():
            self.local_hist[index] = value
        for index, value in lp_u.items():
            self.local_pht[index] = value
        for index, value in gp_u.items():
            self.global_pht[index] = value
        for index, value in ch_u.items():
            self.choice[index] = value
        for undo in self._cow:
            undo.clear()
        self.global_hist = self._ghr_base

    def _indices(self, pc, ghr):
        line = pc >> 2
        bim = line % len(self.bimodal)
        lh = line % len(self.local_hist)
        lp = (self.local_hist[lh] ^ line) % len(self.local_pht)
        gp = (line ^ ghr) % len(self.global_pht)
        ch = line % len(self.choice)
        return bim, lh, lp, gp, ch

    def predict(self, pc, ghr=None):
        """Predicted direction using the given (fetch-time) history."""
        ghr = self.global_hist if ghr is None else ghr
        bim, _lh, lp, gp, ch = self._indices(pc, ghr)
        local_taken = self.local_pht[lp] >= 2
        global_taken = self.global_pht[gp] >= 2
        if self.choice[ch] >= 2:
            return global_taken
        return local_taken

    def speculate(self, taken):
        """Shift the speculative global history at prediction time."""
        mask = (1 << self.global_bits) - 1
        self.global_hist = ((self.global_hist << 1)
                            | (1 if taken else 0)) & mask

    def update(self, pc, taken, ghr=None):
        """Train on the resolved direction, with fetch-time history."""
        ghr = self.global_hist if ghr is None else ghr
        bim, lh, lp, gp, ch = self._indices(pc, ghr)
        cow = self._cow
        if cow is not None:
            bim_u, lh_u, lp_u, gp_u, ch_u = cow
            if bim not in bim_u:
                bim_u[bim] = self.bimodal[bim]
            if lh not in lh_u:
                lh_u[lh] = self.local_hist[lh]
            if lp not in lp_u:
                lp_u[lp] = self.local_pht[lp]
            if gp not in gp_u:
                gp_u[gp] = self.global_pht[gp]
            if ch not in ch_u:
                ch_u[ch] = self.choice[ch]
        local_taken = self.local_pht[lp] >= 2
        global_taken = self.global_pht[gp] >= 2
        if local_taken != global_taken:
            self.choice[ch] = _counter_update(
                self.choice[ch], global_taken == taken)
        self.bimodal[bim] = _counter_update(self.bimodal[bim], taken)
        self.local_pht[lp] = _counter_update(self.local_pht[lp], taken)
        self.global_pht[gp] = _counter_update(self.global_pht[gp], taken)
        hist_mask = (1 << self.local_hist_bits) - 1
        self.local_hist[lh] = ((self.local_hist[lh] << 1)
                               | (1 if taken else 0)) & hist_mask

    def save_side(self):
        return (list(self.bimodal), list(self.local_hist),
                list(self.local_pht), self.global_hist,
                list(self.global_pht), list(self.choice))

    def load_side(self, saved):
        (bimodal, local_hist, local_pht, global_hist,
         global_pht, choice) = saved
        self.bimodal = list(bimodal)
        self.local_hist = list(local_hist)
        self.local_pht = list(local_pht)
        self.global_hist = global_hist
        self.global_pht = list(global_pht)
        self.choice = list(choice)
        if self._cow is not None:
            for undo in self._cow:
                undo.clear()
        self._ghr_base = self.global_hist


class BranchTargetBuffer:
    """Set-associative BTB for indirect-jump targets."""

    def __init__(self, entries, assoc):
        self.num_sets = max(1, entries // assoc)
        self.assoc = assoc
        self.sets = [dict() for _ in range(self.num_sets)]
        self.order = [[] for _ in range(self.num_sets)]
        self._cow = None  # set index -> pristine (ways, order) pair

    def _set_of(self, pc):
        return (pc >> 2) % self.num_sets

    def cow_begin(self):
        """Make the current contents the copy-on-write baseline."""
        if self._cow is None:
            self._cow = {}
        else:
            self._cow.clear()

    def cow_restore(self):
        """Reinstate the :meth:`cow_begin` baseline."""
        for set_index, (ways, order) in self._cow.items():
            self.sets[set_index] = ways
            self.order[set_index] = order
        self._cow.clear()

    def lookup(self, pc):
        """Predicted target for the control instruction at ``pc``, or None."""
        return self.sets[self._set_of(pc)].get(pc)

    def update(self, pc, target):
        set_index = self._set_of(pc)
        ways = self.sets[set_index]
        order = self.order[set_index]
        if order and order[-1] == pc and ways[pc] == target:
            return  # already MRU with this target: update is a no-op
        cow = self._cow
        if cow is not None and set_index not in cow:
            cow[set_index] = (ways, order)
            ways = dict(ways)
            order = list(order)
            self.sets[set_index] = ways
            self.order[set_index] = order
        if pc in ways:
            order.remove(pc)
        elif len(ways) >= self.assoc:
            victim = order.pop(0)
            del ways[victim]
        ways[pc] = target
        order.append(pc)

    def save_side(self):
        return ([dict(s) for s in self.sets], [list(o) for o in self.order])

    def load_side(self, saved):
        sets, order = saved
        self.sets = [dict(s) for s in sets]
        self.order = [list(o) for o in order]
        if self._cow:
            self._cow.clear()


class ReturnAddressStack:
    """8-entry circular return-address stack with pointer recovery.

    The stack and its top pointer are prediction state (timing-only),
    modelled functionally; each in-flight branch snapshots the pointer so
    misprediction recovery can restore it (paper Figure 2: "8-entry
    return address stack with pointer recovery").
    """

    def __init__(self, entries):
        self.entries = [0] * entries
        self.top = 0

    def push(self, address):
        self.top = (self.top + 1) % len(self.entries)
        self.entries[self.top] = address

    def pop(self):
        value = self.entries[self.top]
        self.top = (self.top - 1) % len(self.entries)
        return value

    def snapshot(self):
        return self.top

    def recover(self, snapshot):
        self.top = snapshot % len(self.entries)

    def save_side(self):
        return (list(self.entries), self.top)

    def load_side(self, saved):
        entries, top = saved
        self.entries = list(entries)
        self.top = top
