"""Execution engine: register read, ALUs, branch unit, bypass, writeback.

Stage flow (one cycle per arrow)::

    scheduler --select--> IS latch --regread--> EX latch --execute--> WB
    latch --writeback--> register file

Operand capture is split exactly as in hardware: register read fetches
operands that are architecturally ready; operands promised by in-flight
producers are picked off the bypass network at execute.  A promise that
fails (load miss, producer replay) causes the consumer to **replay**.

The complex ALU is a single pipelined unit with 2-5 cycle latency and a
result buffer for register-file port conflicts (paper Figure 2).  All
operand/result values in flight live in ``data``-category latches -- the
largest latch population in the paper's Table 1.
"""

from repro.isa.semantics import Exc, cond_taken, operate
from repro.uarch.statelib import StateCategory, StorageKind
from repro.uarch.uop import (
    COMPLEX_LATENCY_BY_ID,
    CONTROL_IDS,
    DISP_BITS,
    JUMP_IDS,
    LDA_ID,
    LDAH_ID,
    MEM_IDS,
    PAL_IDS,
    branch_disp,
    fu_of,
    mem_disp,
    op_from_id,
    unpack_pc,
)
from repro.utils.bits import MASK64

_SEQ_BITS = 40

# ROB exception-field encoding (3 bits, total decode).
EXC_NONE = 0
EXC_INVALID = 1
EXC_DIV0 = 2
EXC_UNALIGNED = 3
EXC_DTLB = 4

_EXC_FROM_SEM = {
    Exc.NONE: EXC_NONE,
    Exc.INVALID_INSN: EXC_INVALID,
    Exc.DIV_ZERO: EXC_DIV0,
    Exc.UNALIGNED: EXC_UNALIGNED,
}


class _IsSlot:
    __slots__ = ("valid", "sched_index")

    def __init__(self, space, name, sched_bits):
        self.valid = space.field(
            name + ".valid", 1, StateCategory.VALID, StorageKind.LATCH)
        self.sched_index = space.field(
            name + ".sched", sched_bits, StateCategory.CTRL,
            StorageKind.LATCH)


class _ExSlot:
    """EX-input latch: full control word + captured operand values."""

    __slots__ = ("valid", "sched_index", "op_id", "use_a", "a_valid",
                 "a_value", "psrc_a", "use_b", "b_valid", "b_value", "psrc_b",
                 "has_dest", "pdst", "rob_index", "lq_index", "sq_index",
                 "is_lit", "literal", "disp", "pc", "pred_taken",
                 "biq_index", "seq")

    def __init__(self, space, name, config, sched_bits, lsq_bits,
                 biq_bits):
        kind = StorageKind.LATCH
        ctrl = StateCategory.CTRL
        data = StateCategory.DATA
        phys_bits = config.phys_bits
        self.valid = space.field(name + ".valid", 1, StateCategory.VALID, kind)
        self.sched_index = space.field(name + ".sched", sched_bits, ctrl, kind)
        self.op_id = space.field(name + ".op_id", 8, ctrl, kind)
        self.use_a = space.field(name + ".use_a", 1, ctrl, kind)
        self.a_valid = space.field(name + ".a_valid", 1, ctrl, kind)
        self.a_value = space.field(name + ".a_value", 64, data, kind)
        self.psrc_a = space.field(
            name + ".psrc_a", phys_bits, StateCategory.REGPTR, kind)
        self.use_b = space.field(name + ".use_b", 1, ctrl, kind)
        self.b_valid = space.field(name + ".b_valid", 1, ctrl, kind)
        self.b_value = space.field(name + ".b_value", 64, data, kind)
        self.psrc_b = space.field(
            name + ".psrc_b", phys_bits, StateCategory.REGPTR, kind)
        self.has_dest = space.field(name + ".has_dest", 1, ctrl, kind)
        self.pdst = space.field(
            name + ".pdst", phys_bits, StateCategory.REGPTR, kind)
        self.rob_index = space.field(
            name + ".rob", config.rob_bits, StateCategory.ROBPTR, kind)
        self.lq_index = space.field(
            name + ".lq", lsq_bits, StateCategory.QCTRL, kind)
        self.sq_index = space.field(
            name + ".sq", lsq_bits, StateCategory.QCTRL, kind)
        self.is_lit = space.field(name + ".is_lit", 1, StateCategory.INSN, kind)
        self.literal = space.field(
            name + ".literal", 8, StateCategory.INSN, kind)
        self.disp = space.field(
            name + ".disp", DISP_BITS, StateCategory.INSN, kind)
        self.pc = space.field(name + ".pc", 62, StateCategory.PC, kind)
        self.pred_taken = space.field(name + ".pred_taken", 1, ctrl, kind)
        self.biq_index = space.field(name + ".biq", biq_bits, ctrl, kind)
        self.seq = space.field(
            name + ".seq", _SEQ_BITS, StateCategory.GHOST, kind)


class _WbSlot:
    """Writeback latch: a result heading for the register file / ROB."""

    __slots__ = ("valid", "has_dest", "pdst", "value", "sched_index",
                 "rob_index", "exc", "free_sched", "is_load", "lq_index",
                 "seq")

    def __init__(self, space, name, config, sched_bits, lsq_bits):
        kind = StorageKind.LATCH
        ctrl = StateCategory.CTRL
        self.valid = space.field(name + ".valid", 1, StateCategory.VALID, kind)
        self.has_dest = space.field(name + ".has_dest", 1, ctrl, kind)
        self.pdst = space.field(
            name + ".pdst", config.phys_bits, StateCategory.REGPTR, kind)
        self.value = space.field(
            name + ".value", 64, StateCategory.DATA, kind)
        self.sched_index = space.field(name + ".sched", sched_bits, ctrl, kind)
        self.rob_index = space.field(
            name + ".rob", config.rob_bits, StateCategory.ROBPTR, kind)
        self.exc = space.field(name + ".exc", 3, ctrl, kind)
        self.free_sched = space.field(name + ".free_sched", 1, ctrl, kind)
        self.is_load = space.field(name + ".is_load", 1, ctrl, kind)
        self.lq_index = space.field(name + ".lq", lsq_bits, ctrl, kind)
        self.seq = space.field(
            name + ".seq", _SEQ_BITS, StateCategory.GHOST, kind)


class _ComplexSlot:
    """One stage of the pipelined complex ALU (result in flight)."""

    __slots__ = ("valid", "timer", "value", "has_dest", "pdst", "rob_index",
                 "sched_index", "exc", "seq")

    def __init__(self, space, name, config, sched_bits):
        kind = StorageKind.LATCH
        ctrl = StateCategory.CTRL
        self.valid = space.field(name + ".valid", 1, StateCategory.VALID, kind)
        self.timer = space.field(name + ".timer", 3, ctrl, kind)
        self.value = space.field(name + ".value", 64, StateCategory.DATA, kind)
        self.has_dest = space.field(name + ".has_dest", 1, ctrl, kind)
        self.pdst = space.field(
            name + ".pdst", config.phys_bits, StateCategory.REGPTR, kind)
        self.rob_index = space.field(
            name + ".rob", config.rob_bits, StateCategory.ROBPTR, kind)
        self.sched_index = space.field(name + ".sched", sched_bits, ctrl, kind)
        self.exc = space.field(name + ".exc", 3, ctrl, kind)
        self.seq = space.field(
            name + ".seq", _SEQ_BITS, StateCategory.GHOST, kind)


class _BypassSlot:
    """Bypass-network latch: a result available to consumers at EX."""

    __slots__ = ("valid", "preg", "value", "age")

    def __init__(self, space, name, config):
        kind = StorageKind.LATCH
        self.valid = space.field(name + ".valid", 1, StateCategory.VALID, kind)
        self.preg = space.field(
            name + ".preg", config.phys_bits, StateCategory.REGPTR, kind)
        self.value = space.field(name + ".value", 64, StateCategory.DATA, kind)
        self.age = space.field(name + ".age", 2, StateCategory.CTRL, kind)


class ExecuteUnit:
    """IS/EX/WB latches, function units, bypass network."""

    BYPASS_SLOTS_PER_PORT = 2
    BYPASS_LIFETIME = 2

    def __init__(self, space, config, biq_bits):
        self.config = config
        sched_bits = max(1, (config.sched_entries - 1).bit_length())
        lsq_bits = max(1, (max(config.lq_entries, config.sq_entries)
                           - 1).bit_length())
        self.is_latch = [
            _IsSlot(space, "is[%d]" % i, sched_bits)
            for i in range(config.issue_width)
        ]
        self.ex_latch = [
            _ExSlot(space, "ex[%d]" % i, config, sched_bits, lsq_bits,
                    biq_bits)
            for i in range(config.issue_width)
        ]
        # Worst simultaneous completions: EX (issue width) + 2 dcache
        # ports + 2 MHR fills + up to 3 complex-ALU latency collisions.
        wb_ports = config.issue_width + 7
        self.wb_latch = [
            _WbSlot(space, "wb[%d]" % i, config, sched_bits, lsq_bits)
            for i in range(wb_ports)
        ]
        self.complex_pipe = [
            _ComplexSlot(space, "cplx[%d]" % i, config, sched_bits)
            for i in range(config.complex_depth)
        ]
        self.bypass = [
            _BypassSlot(space, "bypass[%d]" % i, config)
            for i in range(wb_ports * self.BYPASS_LIFETIME)
        ]

    # -- Flush -----------------------------------------------------------

    def flush(self):
        for group in (self.is_latch, self.ex_latch, self.wb_latch,
                      self.complex_pipe, self.bypass):
            for slot in group:
                slot.valid.set(0)

    def squash_younger(self, rob_head, boundary_age, rob_n):
        """Drop in-flight work younger than the recovery point."""
        for slot in self.ex_latch:
            if slot.valid.get():
                age = (slot.rob_index.get() - rob_head) % rob_n
                if age > boundary_age:
                    slot.valid.set(0)
        for slot in self.wb_latch:
            if slot.valid.get():
                age = (slot.rob_index.get() - rob_head) % rob_n
                if age > boundary_age:
                    slot.valid.set(0)
        for slot in self.complex_pipe:
            if slot.valid.get():
                age = (slot.rob_index.get() - rob_head) % rob_n
                if age > boundary_age:
                    slot.valid.set(0)
        # IS-latch slots reference scheduler entries; squashed entries are
        # invalidated there and regread drops dangling references.

    # -- Issue interface ------------------------------------------------------

    def is_latch_empty(self):
        return not any(slot.valid.get() for slot in self.is_latch)

    def accept_issue(self, sched_index, _entry):
        for slot in self.is_latch:
            if not slot.valid.get():
                slot.valid.set(1)
                slot.sched_index.set(sched_index)
                return

    def complex_can_accept(self):
        return any(not slot.valid.get() for slot in self.complex_pipe)

    # -- Wakeup promises --------------------------------------------------------

    def promised_pregs(self):
        """Every preg :meth:`promises` holds for, gathered in one scan.

        The select stage shares this set across all of a cycle's
        candidates instead of re-scanning the bypass network and EX
        latches per operand; membership is exactly ``promises(preg)``.
        """
        promised = set()
        for slot in self.bypass:
            if slot.valid.get():
                promised.add(slot.preg.get())
        for slot in self.ex_latch:
            if (slot.valid.get() and slot.has_dest.get()
                    and fu_of(slot.op_id.get()) == 0):
                promised.add(slot.pdst.get())
        for slot in self.complex_pipe:
            if (slot.valid.get() and slot.has_dest.get()
                    and slot.timer.get() <= 1):
                promised.add(slot.pdst.get())
        return promised

    def promises(self, preg):
        """Will ``preg`` be bypassable in time for a consumer issued now?"""
        for slot in self.bypass:
            if slot.valid.get() and slot.preg.get() == preg:
                return True
        for slot in self.ex_latch:
            if (slot.valid.get() and slot.has_dest.get()
                    and slot.pdst.get() == preg
                    and fu_of(slot.op_id.get()) == 0):
                return True
        for slot in self.complex_pipe:
            if (slot.valid.get() and slot.has_dest.get()
                    and slot.pdst.get() == preg and slot.timer.get() <= 1):
                return True
        return False

    def bypass_lookup(self, preg):
        for slot in self.bypass:
            if slot.valid.get() and slot.preg.get() == preg:
                return slot.value.get()
        return None

    def _bypass_insert(self, preg, value):
        target = None
        oldest_age = -1
        for slot in self.bypass:
            if not slot.valid.get():
                target = slot
                break
            if slot.age.get() > oldest_age:
                oldest_age = slot.age.get()
                target = slot
        target.valid.set(1)
        target.preg.set(preg)
        target.value.set(value & MASK64)
        target.age.set(0)

    def _bypass_age_step(self):
        for slot in self.bypass:
            if slot.valid.get():
                age = slot.age.get() + 1
                if age > self.BYPASS_LIFETIME:
                    slot.valid.set(0)
                else:
                    slot.age.set(age)

    # -- Result posting (used by EX, complex ALU, memory unit) -----------------

    def post_result(self, pipeline, rob_index, sched_index, has_dest, pdst,
                    value, exc=EXC_NONE, free_sched=True, is_load=False,
                    lq_index=0, seq=0):
        """Insert a completed result into the WB latch.

        Returns False when all WB ports are busy this cycle (the caller
        retries -- the paper's port-conflict buffering).
        """
        for slot in self.wb_latch:
            if slot.valid.get():
                continue
            slot.valid.set(1)
            slot.has_dest.set(1 if has_dest else 0)
            slot.pdst.set(pdst)
            slot.value.set(value & MASK64)
            slot.sched_index.set(sched_index)
            slot.rob_index.set(rob_index)
            slot.exc.set(exc)
            slot.free_sched.set(1 if free_sched else 0)
            slot.is_load.set(1 if is_load else 0)
            slot.lq_index.set(lq_index)
            slot.seq.set(seq)
            if has_dest and exc == EXC_NONE:
                self._bypass_insert(pdst, value)
            return True
        return False

    # -- Register-read stage (IS latch -> EX latch) ------------------------------

    def regread_stage(self, pipeline):
        sched = pipeline.scheduler
        regfile = pipeline.regfile
        moved = False
        for is_slot in self.is_latch:
            if not is_slot.valid.get():
                continue
            is_slot.valid.set(0)
            index = is_slot.sched_index.get() % len(sched.entries)
            entry = sched.entries[index]
            if not entry.valid.get() or not entry.issued.get():
                continue  # squashed while in the issue latch
            entry.repair_ptrs()  # regptr ECC check at the payload read
            ex = self._free_ex_slot()
            if ex is None:
                # No EX slot (corrupted valid bits): replay the uop.
                sched.replay(index)
                continue
            self._capture(ex, entry, index, regfile)
            moved = True
        return moved

    def _free_ex_slot(self):
        for slot in self.ex_latch:
            if not slot.valid.get():
                return slot
        return None

    def _capture(self, ex, entry, sched_index, regfile):
        ex.valid.set(1)
        ex.sched_index.set(sched_index)
        ex.op_id.set(entry.op_id.get())
        ex.use_a.set(entry.use_a.get())
        ex.psrc_a.set(entry.psrc_a.get())
        ex.use_b.set(entry.use_b.get())
        ex.psrc_b.set(entry.psrc_b.get())
        ex.has_dest.set(entry.has_dest.get())
        ex.pdst.set(entry.pdst.get())
        ex.rob_index.set(entry.rob_index.get())
        ex.lq_index.set(entry.lq_index.get())
        ex.sq_index.set(entry.sq_index.get())
        ex.is_lit.set(entry.is_lit.get())
        ex.literal.set(entry.literal.get())
        ex.disp.set(entry.disp.get())
        ex.pc.set(entry.pc.get())
        ex.pred_taken.set(entry.pred_taken.get())
        ex.biq_index.set(entry.biq_index.get())
        ex.seq.set(entry.seq.get())
        for use, src, val_valid, val in (
                (ex.use_a, ex.psrc_a, ex.a_valid, ex.a_value),
                (ex.use_b, ex.psrc_b, ex.b_valid, ex.b_value)):
            if not use.get():
                val_valid.set(1)
                val.set(0)
                continue
            preg = src.get()
            if regfile.is_ready(preg):
                val_valid.set(1)
                val.set(regfile.read(preg))
            else:
                bypassed = self.bypass_lookup(preg)
                if bypassed is not None:
                    val_valid.set(1)
                    val.set(bypassed)
                else:
                    val_valid.set(0)  # promised: resolve at EX
                    val.set(0)

    # -- Execute stage (EX latch -> WB latch / FUs / memory unit) ----------------

    def execute_stage(self, pipeline):
        self._bypass_age_step()
        sched = pipeline.scheduler
        for ex in self.ex_latch:
            if not ex.valid.get():
                continue
            ex.valid.set(0)
            if not self._resolve_operands(pipeline, ex):
                sched.replay(ex.sched_index.get())
                continue
            op_id = ex.op_id.get()
            if op_id in MEM_IDS:
                pipeline.memunit.execute_mem(pipeline, ex)
            elif op_id in CONTROL_IDS:
                self._execute_branch(pipeline, ex)
            elif op_id in COMPLEX_LATENCY_BY_ID:
                self._enter_complex(pipeline, ex)
            else:
                self._execute_simple(pipeline, ex)
        self._complex_step(pipeline)

    def _resolve_operands(self, pipeline, ex):
        regfile = pipeline.regfile
        for val_valid, src, val in ((ex.a_valid, ex.psrc_a, ex.a_value),
                                    (ex.b_valid, ex.psrc_b, ex.b_value)):
            if val_valid.get():
                continue
            preg = src.get()
            bypassed = self.bypass_lookup(preg)
            if bypassed is not None:
                val.set(bypassed)
                val_valid.set(1)
            elif regfile.is_ready(preg):
                val.set(regfile.read(preg))
                val_valid.set(1)
            else:
                return False
        return True

    def _operands(self, ex):
        a = ex.a_value.get()
        b = ex.literal.get() if ex.is_lit.get() else ex.b_value.get()
        return a, b

    def _execute_simple(self, pipeline, ex):
        op_id = ex.op_id.get()
        op = op_from_id(op_id)
        a, b = self._operands(ex)
        exc = EXC_NONE
        if op_id in PAL_IDS:
            value = a  # output PAL ops carry their argument; HALT acts at retire
        elif op_id == LDA_ID:
            value = (ex.b_value.get() + mem_disp(ex.disp.get())) & MASK64
        elif op_id == LDAH_ID:
            value = (ex.b_value.get()
                     + mem_disp(ex.disp.get()) * 65536) & MASK64
        else:
            value, sem_exc = operate(op, a, b)
            exc = _EXC_FROM_SEM.get(sem_exc, EXC_INVALID)
        posted = self.post_result(
            pipeline, ex.rob_index.get(), ex.sched_index.get(),
            ex.has_dest.get(), ex.pdst.get(), value, exc=exc,
            seq=ex.seq.get())
        if not posted:
            pipeline.scheduler.replay(ex.sched_index.get())

    def _enter_complex(self, pipeline, ex):
        slot = None
        for candidate in self.complex_pipe:
            if not candidate.valid.get():
                slot = candidate
                break
        if slot is None:
            pipeline.scheduler.replay(ex.sched_index.get())
            return
        op = op_from_id(ex.op_id.get())
        a, b = self._operands(ex)
        value, sem_exc = operate(op, a, b)
        slot.valid.set(1)
        slot.timer.set(min(7, COMPLEX_LATENCY_BY_ID.get(ex.op_id.get(), 2)))
        slot.value.set(value)
        slot.has_dest.set(ex.has_dest.get())
        slot.pdst.set(ex.pdst.get())
        slot.rob_index.set(ex.rob_index.get())
        slot.sched_index.set(ex.sched_index.get())
        slot.exc.set(_EXC_FROM_SEM.get(sem_exc, EXC_INVALID))
        slot.seq.set(ex.seq.get())

    def _complex_step(self, pipeline):
        for slot in self.complex_pipe:
            if not slot.valid.get():
                continue
            timer = slot.timer.get()
            if timer > 1:
                slot.timer.set(timer - 1)
                continue
            posted = self.post_result(
                pipeline, slot.rob_index.get(), slot.sched_index.get(),
                slot.has_dest.get(), slot.pdst.get(), slot.value.get(),
                exc=slot.exc.get(), seq=slot.seq.get())
            if posted:
                slot.valid.set(0)
            # else: result buffered in the slot until a WB port frees
            # (the paper's register-file port-conflict buffer).

    def _execute_branch(self, pipeline, ex):
        op_id = ex.op_id.get()
        op = op_from_id(op_id)
        pc = unpack_pc(ex.pc.get())
        fall_through = (pc + 4) & MASK64
        if op_id in JUMP_IDS:
            taken = True
            target = ex.b_value.get() & ~3 & MASK64
        else:
            taken = cond_taken(op, ex.a_value.get())
            if taken:
                target = (fall_through
                          + 4 * branch_disp(ex.disp.get())) & MASK64
            else:
                target = fall_through
        predicted = pipeline.frontend.biq.predicted_next(
            ex.biq_index.get())

        pipeline.rob.set_branch_outcome(ex.rob_index.get(), taken, target)
        posted = self.post_result(
            pipeline, ex.rob_index.get(), ex.sched_index.get(),
            ex.has_dest.get(), ex.pdst.get(), fall_through,
            seq=ex.seq.get())
        if not posted:
            # WB ports exhausted (possible only under fault corruption of
            # the valid bits): re-execute the branch; its resolution and
            # any recovery below are idempotent.
            pipeline.scheduler.replay(ex.sched_index.get())
            return

        # Train predictors at resolution, using the fetch-time global
        # history carried by the branch-info queue.
        if op_id not in JUMP_IDS and op_id in CONTROL_IDS:
            is_cond = not (op_from_id(op_id).name in ("BR", "BSR"))
            if is_cond:
                _ras_snap, fetch_ghr = pipeline.frontend.biq.snapshot_of(
                    ex.biq_index.get())
                pipeline.predictor.update(pc, taken, ghr=fetch_ghr)
        else:
            pipeline.btb.update(pc, target)

        if target != predicted:
            pipeline.request_branch_recovery(
                rob_index=ex.rob_index.get(), target=target,
                biq_index=ex.biq_index.get(), op_id=op_id, pc=pc,
                taken=taken)

    # -- Writeback stage (WB latch -> regfile / ROB / scheduler) -----------------

    def writeback_stage(self, pipeline):
        sched = pipeline.scheduler
        rob = pipeline.rob
        for slot in self.wb_latch:
            if not slot.valid.get():
                continue
            slot.valid.set(0)
            exc = slot.exc.get()
            if exc != EXC_NONE:
                rob.set_exception(slot.rob_index.get(), exc)
            elif slot.has_dest.get():
                pipeline.regfile.write(slot.pdst.get(), slot.value.get())
            rob.mark_done(slot.rob_index.get())
            if slot.free_sched.get():
                sched.complete(slot.sched_index.get())
            if slot.is_load.get():
                pipeline.memunit.lq_mark_done(slot.lq_index.get())
            if pipeline.obs is not None:
                pipeline.obs.on_writeback(
                    pipeline, rob_index=slot.rob_index.get(),
                    pdst=slot.pdst.get() if slot.has_dest.get() else None,
                    value=slot.value.get() if slot.has_dest.get() else None,
                    exc=exc)
