"""Memory unit: load/store queues, miss handling, store sets, drain.

* 16-entry load and store queues (paper Figure 2), circular, allocated at
  dispatch in program order.
* 2-cycle dual-ported L1 data cache, dual porting via eight interleaved
  banks; bank conflicts retry.
* 16 non-coalescing miss-handling registers; an L1 miss is serviced in a
  constant 8 cycles (paper Section 2.1).
* Store-to-load forwarding through an explicit forward latch (the
  "state in the memory unit that records store to load forwarding" the
  paper calls out as frequently-dead state).
* Memory-dependence speculation with store sets [Chrysos & Emer]: loads
  issue past unknown-address stores; a violating store triggers a
  recovery flush from the load and trains the predictor.

Stores drain to memory in program order after retirement, one per cycle;
the store buffer keeps its state across pipeline flushes (the paper notes
this is why a flush cannot clear store-buffer deadlocks).
"""

from repro.arch.memory import page_of
from repro.uarch.execute import EXC_DTLB, EXC_NONE, EXC_UNALIGNED
from repro.uarch.statelib import StateCategory, StorageKind
from repro.uarch.uop import LDL_ID, LOAD_IDS, STL_ID, mem_disp, unpack_pc
from repro.utils.bits import MASK64

_SEQ_BITS = 40

# Sentinel: the load must wait (unforwardable older-store conflict).
_WAIT = object()

# Undo-journal marker: the key was absent at the copy-on-write baseline.
_ABSENT = object()


class _LoadEntry:
    __slots__ = ("valid", "addr", "addr_ready", "size_l", "executed", "done",
                 "pdst", "rob_index", "sched_index", "seq", "pdst_ecc")

    def __init__(self, space, name, config, sched_bits):
        kind = StorageKind.RAM
        ctrl = StateCategory.CTRL
        self.valid = space.field(name + ".valid", 1, StateCategory.VALID, kind)
        self.addr = space.field(name + ".addr", 64, StateCategory.ADDR, kind)
        self.addr_ready = space.field(name + ".addr_ready", 1, ctrl, kind)
        self.size_l = space.field(name + ".size_l", 1, ctrl, kind)
        self.executed = space.field(name + ".executed", 1, ctrl, kind)
        self.done = space.field(name + ".done", 1, ctrl, kind)
        self.pdst = space.field(
            name + ".pdst", config.phys_bits, StateCategory.REGPTR, kind)
        self.rob_index = space.field(
            name + ".rob", config.rob_bits, StateCategory.ROBPTR, kind)
        self.sched_index = space.field(name + ".sched", sched_bits, ctrl, kind)
        self.seq = space.field(
            name + ".seq", _SEQ_BITS, StateCategory.GHOST, kind)
        self.pdst_ecc = None
        if config.protection.regptr_ecc:
            from repro.protect.ecc import REGPTR_CODE
            self.pdst_ecc = space.field(
                name + ".pdst_ecc", REGPTR_CODE.check_bits,
                StateCategory.ECC, kind)

    def encode_ptr_ecc(self):
        if self.pdst_ecc is not None:
            from repro.protect.ecc import REGPTR_CODE
            self.pdst_ecc.set(REGPTR_CODE.encode(self.pdst.get()))

    def repair_ptrs(self):
        if self.pdst_ecc is None:
            return
        from repro.protect.ecc import REGPTR_CODE
        value = self.pdst.get()
        corrected, _status = REGPTR_CODE.correct(value, self.pdst_ecc.get())
        if corrected != value:
            self.pdst.set(corrected)


class _StoreEntry:
    __slots__ = ("valid", "addr", "addr_ready", "data", "data_ready",
                 "size_l", "retired", "rob_index", "seq")

    def __init__(self, space, name, config):
        kind = StorageKind.RAM
        ctrl = StateCategory.CTRL
        self.valid = space.field(name + ".valid", 1, StateCategory.VALID, kind)
        self.addr = space.field(name + ".addr", 64, StateCategory.ADDR, kind)
        self.addr_ready = space.field(name + ".addr_ready", 1, ctrl, kind)
        self.data = space.field(name + ".data", 64, StateCategory.DATA, kind)
        self.data_ready = space.field(name + ".data_ready", 1, ctrl, kind)
        self.size_l = space.field(name + ".size_l", 1, ctrl, kind)
        self.retired = space.field(name + ".retired", 1, ctrl, kind)
        self.rob_index = space.field(
            name + ".rob", config.rob_bits, StateCategory.ROBPTR, kind)
        self.seq = space.field(
            name + ".seq", _SEQ_BITS, StateCategory.GHOST, kind)


class _MissRegister:
    __slots__ = ("valid", "addr", "timer", "size_l", "pdst", "rob_index",
                 "sched_index", "lq_index", "seq")

    def __init__(self, space, name, config, sched_bits, lq_bits):
        kind = StorageKind.LATCH
        ctrl = StateCategory.CTRL
        self.valid = space.field(name + ".valid", 1, StateCategory.VALID, kind)
        self.addr = space.field(name + ".addr", 64, StateCategory.ADDR, kind)
        self.timer = space.field(name + ".timer", 4, ctrl, kind)
        self.size_l = space.field(name + ".size_l", 1, ctrl, kind)
        self.pdst = space.field(
            name + ".pdst", config.phys_bits, StateCategory.REGPTR, kind)
        self.rob_index = space.field(
            name + ".rob", config.rob_bits, StateCategory.ROBPTR, kind)
        self.sched_index = space.field(name + ".sched", sched_bits, ctrl, kind)
        self.lq_index = space.field(name + ".lq", lq_bits, ctrl, kind)
        self.seq = space.field(
            name + ".seq", _SEQ_BITS, StateCategory.GHOST, kind)


class _AccessSlot:
    """M1/M2 pipeline latch for an in-flight data-cache access."""

    __slots__ = ("valid", "lq_index", "fwd_valid", "fwd_value")

    def __init__(self, space, name, lq_bits):
        kind = StorageKind.LATCH
        self.valid = space.field(name + ".valid", 1, StateCategory.VALID, kind)
        self.lq_index = space.field(
            name + ".lq", lq_bits, StateCategory.CTRL, kind)
        # Store-to-load forwarding latch.
        self.fwd_valid = space.field(
            name + ".fwd_valid", 1, StateCategory.CTRL, kind)
        self.fwd_value = space.field(
            name + ".fwd_value", 64, StateCategory.DATA, kind)


class StoreSets:
    """Functional store-set predictor (SSIT + LFST).

    Prediction tables are timing-only (a wrong prediction is recovered by
    the violation flush), so they are side state, not injectable.  Both
    tables support copy-on-write undo journaling (``cow_begin`` /
    ``cow_restore``) for O(touched entries) trial restore.
    """

    def __init__(self):
        self.ssit = {}
        self.next_set = 1
        self.lfst = {}
        self._cow = None  # (ssit undo, lfst undo) when armed
        self._next_set_base = 1

    def cow_begin(self):
        """Journal table updates against the current contents."""
        if self._cow is None:
            self._cow = ({}, {})
        else:
            for undo in self._cow:
                undo.clear()
        self._next_set_base = self.next_set

    def cow_restore(self):
        """Roll both tables back to the :meth:`cow_begin` baseline."""
        ssit_undo, lfst_undo = self._cow
        for pc, value in ssit_undo.items():
            if value is _ABSENT:
                self.ssit.pop(pc, None)
            else:
                self.ssit[pc] = value
        for set_id, value in lfst_undo.items():
            if value is _ABSENT:
                self.lfst.pop(set_id, None)
            else:
                self.lfst[set_id] = value
        for undo in self._cow:
            undo.clear()
        self.next_set = self._next_set_base

    def set_of(self, pc):
        return self.ssit.get(pc)

    def note_store_dispatch(self, pc, sq_index):
        set_id = self.ssit.get(pc)
        if set_id is not None:
            cow = self._cow
            if cow is not None and set_id not in cow[1]:
                cow[1][set_id] = self.lfst.get(set_id, _ABSENT)
            self.lfst[set_id] = sq_index

    def blocking_store(self, pc):
        """SQ index the load at ``pc`` should wait for, or None."""
        set_id = self.ssit.get(pc)
        if set_id is None:
            return None
        return self.lfst.get(set_id)

    def train(self, load_pc, store_pc):
        """Assign the violating load/store pair to one store set."""
        set_id = (self.ssit.get(load_pc) or self.ssit.get(store_pc))
        if set_id is None:
            set_id = self.next_set
            self.next_set += 1
        cow = self._cow
        if cow is not None:
            ssit_undo = cow[0]
            if load_pc not in ssit_undo:
                ssit_undo[load_pc] = self.ssit.get(load_pc, _ABSENT)
            if store_pc not in ssit_undo:
                ssit_undo[store_pc] = self.ssit.get(store_pc, _ABSENT)
        self.ssit[load_pc] = set_id
        self.ssit[store_pc] = set_id

    def save_side(self):
        return (dict(self.ssit), self.next_set, dict(self.lfst))

    def load_side(self, saved):
        ssit, next_set, lfst = saved
        self.ssit = dict(ssit)
        self.next_set = next_set
        self.lfst = dict(lfst)
        if self._cow is not None:
            for undo in self._cow:
                undo.clear()
        self._next_set_base = self.next_set


class MemoryUnit:
    """LQ, SQ, MHRs and the 2-cycle banked data-cache pipeline."""

    def __init__(self, space, config, dcache):
        self.config = config
        self.dcache = dcache
        self.storesets = StoreSets()
        sched_bits = max(1, (config.sched_entries - 1).bit_length())
        lq_bits = max(1, (config.lq_entries - 1).bit_length())
        sq_bits = max(1, (config.sq_entries - 1).bit_length())

        self.lq = [
            _LoadEntry(space, "lq[%d]" % i, config, sched_bits)
            for i in range(config.lq_entries)
        ]
        self.lq_head = space.field(
            "lq.head", lq_bits, StateCategory.QCTRL, StorageKind.LATCH)
        self.lq_tail = space.field(
            "lq.tail", lq_bits, StateCategory.QCTRL, StorageKind.LATCH)
        self.lq_count = space.field(
            "lq.count", lq_bits + 1, StateCategory.QCTRL, StorageKind.LATCH)

        self.sq = [
            _StoreEntry(space, "sq[%d]" % i, config)
            for i in range(config.sq_entries)
        ]
        self.sq_head = space.field(
            "sq.head", sq_bits, StateCategory.QCTRL, StorageKind.LATCH)
        self.sq_tail = space.field(
            "sq.tail", sq_bits, StateCategory.QCTRL, StorageKind.LATCH)
        self.sq_count = space.field(
            "sq.count", sq_bits + 1, StateCategory.QCTRL, StorageKind.LATCH)

        self.mhr = [
            _MissRegister(space, "mhr[%d]" % i, config, sched_bits, lq_bits)
            for i in range(config.mhr_entries)
        ]
        ports = 2
        self.m1 = [_AccessSlot(space, "m1[%d]" % i, lq_bits)
                   for i in range(ports)]
        self.m2 = [_AccessSlot(space, "m2[%d]" % i, lq_bits)
                   for i in range(ports)]

    # -- Allocation (dispatch) -------------------------------------------

    def lq_free(self):
        return len(self.lq) - self.lq_count.get()

    def sq_free(self):
        return len(self.sq) - self.sq_count.get()

    def lq_alloc(self, slot, rob_index):
        index = self.lq_tail.get() % len(self.lq)
        entry = self.lq[index]
        entry.valid.set(1)
        entry.addr_ready.set(0)
        entry.executed.set(0)
        entry.done.set(0)
        entry.size_l.set(1 if slot.op_id.get() == LDL_ID else 0)
        entry.pdst.set(slot.pdst.get())
        entry.rob_index.set(rob_index)
        entry.sched_index.set(0)
        entry.seq.set(slot.seq.get())
        entry.encode_ptr_ecc()
        self.lq_tail.set((self.lq_tail.get() + 1) % len(self.lq))
        self.lq_count.set(min(len(self.lq), self.lq_count.get() + 1))
        return index

    def sq_alloc(self, slot, rob_index):
        index = self.sq_tail.get() % len(self.sq)
        entry = self.sq[index]
        entry.valid.set(1)
        entry.addr_ready.set(0)
        entry.data_ready.set(0)
        entry.retired.set(0)
        entry.size_l.set(1 if slot.op_id.get() == STL_ID else 0)
        entry.rob_index.set(rob_index)
        entry.seq.set(slot.seq.get())
        self.sq_tail.set((self.sq_tail.get() + 1) % len(self.sq))
        self.sq_count.set(min(len(self.sq), self.sq_count.get() + 1))
        self.storesets.note_store_dispatch(unpack_pc(slot.pc.get()), index)
        return index

    # -- Scheduler gating ---------------------------------------------------

    def load_may_issue(self, pipeline, entry):
        """Store-set gating: hold loads predicted to conflict."""
        blocking = self.storesets.blocking_store(unpack_pc(entry.pc.get()))
        if blocking is None:
            return True
        store = self.sq[blocking % len(self.sq)]
        if store.valid.get() and not store.data_ready.get():
            rob_head = pipeline.rob.head.get()
            rob_n = len(pipeline.rob.entries)
            store_age = (store.rob_index.get() - rob_head) % rob_n
            load_age = (entry.rob_index.get() - rob_head) % rob_n
            if store_age < load_age:
                return False
        return True

    # -- Execute-stage entry (address generation) ------------------------------

    def execute_mem(self, pipeline, ex):
        op_id = ex.op_id.get()
        address = (ex.b_value.get() + mem_disp(ex.disp.get())) & MASK64
        size = 4 if op_id in (LDL_ID, STL_ID) else 8
        exc = EXC_NONE
        if address % size:
            exc = EXC_UNALIGNED
        elif (pipeline.tlb_data_pages is not None
                and page_of(address) not in pipeline.tlb_data_pages):
            exc = EXC_DTLB
        pipeline.note_data_page(address)

        if op_id in LOAD_IDS:
            self._execute_load(pipeline, ex, address, exc)
        else:
            self._execute_store(pipeline, ex, address, exc)

    def _execute_load(self, pipeline, ex, address, exc):
        entry = self.lq[ex.lq_index.get() % len(self.lq)]
        if exc != EXC_NONE:
            entry.done.set(1)
            if not pipeline.execute.post_result(
                    pipeline, ex.rob_index.get(), ex.sched_index.get(),
                    False, 0, 0, exc=exc, seq=ex.seq.get()):
                entry.done.set(0)
                pipeline.scheduler.replay(ex.sched_index.get())
            return
        entry.addr.set(address)
        entry.addr_ready.set(1)
        entry.sched_index.set(ex.sched_index.get())
        for slot in self.m1:
            if not slot.valid.get():
                slot.valid.set(1)
                slot.lq_index.set(ex.lq_index.get())
                slot.fwd_valid.set(0)
                return
        # Both cache ports' M1 slots busy: replay the load.
        pipeline.scheduler.replay(ex.sched_index.get())

    def _execute_store(self, pipeline, ex, address, exc):
        if exc != EXC_NONE:
            if not pipeline.execute.post_result(
                    pipeline, ex.rob_index.get(), ex.sched_index.get(),
                    False, 0, 0, exc=exc, seq=ex.seq.get()):
                pipeline.scheduler.replay(ex.sched_index.get())
            return
        entry = self.sq[ex.sq_index.get() % len(self.sq)]
        entry.addr.set(address)
        entry.addr_ready.set(1)
        entry.data.set(ex.a_value.get())
        entry.data_ready.set(1)
        if not pipeline.execute.post_result(
                pipeline, ex.rob_index.get(), ex.sched_index.get(),
                False, 0, 0, seq=ex.seq.get()):
            pipeline.scheduler.replay(ex.sched_index.get())
            return
        self._check_violation(pipeline, ex, address, entry)

    def _check_violation(self, pipeline, ex, address, store_entry):
        """A store found a younger, already-executed, overlapping load."""
        rob_head = pipeline.rob.head.get()
        rob_n = len(pipeline.rob.entries)
        store_age = (store_entry.rob_index.get() - rob_head) % rob_n
        victim = None
        victim_age = None
        quad = address & ~7
        for load in self.lq:
            if not (load.valid.get() and load.executed.get()
                    and load.addr_ready.get()):
                continue
            if load.addr.get() & ~7 != quad:
                continue
            load_age = (load.rob_index.get() - rob_head) % rob_n
            if load_age <= store_age:
                continue
            if victim_age is None or load_age < victim_age:
                victim = load
                victim_age = load_age
        if victim is None:
            return
        load_pc = pipeline.rob.pc_of(victim.rob_index.get())
        self.storesets.train(load_pc, unpack_pc(ex.pc.get()))
        pipeline.request_violation_recovery(
            rob_index=victim.rob_index.get(), refetch_pc=load_pc)

    # -- M1: bank arbitration, forwarding, tag lookup ------------------------------

    def m1_stage(self, pipeline):
        banks_used = set()
        accesses = 0
        for slot in self.m1:
            if not slot.valid.get():
                continue
            entry = self.lq[slot.lq_index.get() % len(self.lq)]
            if not (entry.valid.get() and entry.addr_ready.get()):
                slot.valid.set(0)  # squashed underneath us
                continue
            address = entry.addr.get()
            bank = self.dcache.bank_of(address)
            if accesses >= 2 or bank in banks_used:
                continue  # bank/port conflict: retry next cycle
            m2_slot = self._free_m2()
            if m2_slot is None:
                continue
            forwarded = self._forward_lookup(pipeline, entry)
            if forwarded is _WAIT:
                continue  # older store's data not ready: retry next cycle
            if forwarded is None:
                pipeline.bump("dcache_accesses")
                if not self.dcache.lookup(address):
                    pipeline.bump("dcache_misses")
                    if self._start_miss(entry, slot.lq_index.get()):
                        entry.executed.set(1)
                        slot.valid.set(0)
                    continue  # no MHR free: retry
            else:
                pipeline.bump("store_forwards")
            banks_used.add(bank)
            accesses += 1
            entry.executed.set(1)
            m2_slot.valid.set(1)
            m2_slot.lq_index.set(slot.lq_index.get())
            if forwarded is not None:
                m2_slot.fwd_valid.set(1)
                m2_slot.fwd_value.set(forwarded)
            else:
                m2_slot.fwd_valid.set(0)
                m2_slot.fwd_value.set(0)
            slot.valid.set(0)

    def _free_m2(self):
        for slot in self.m2:
            if not slot.valid.get():
                return slot
        return None

    def _forward_lookup(self, pipeline, load_entry):
        """Youngest older store with matching address and ready data."""
        rob_head = pipeline.rob.head.get()
        rob_n = len(pipeline.rob.entries)
        load_age = (load_entry.rob_index.get() - rob_head) % rob_n
        address = load_entry.addr.get()
        best = None
        best_age = -1
        for store in self.sq:
            if not (store.valid.get() and store.addr_ready.get()):
                continue
            store_age = (store.rob_index.get() - rob_head) % rob_n
            if store.retired.get():
                store_age = -1  # retired stores are older than everything
            elif store_age >= load_age:
                continue  # younger store: not visible to this load
            if store.addr.get() != address:
                if store.addr.get() & ~7 == address & ~7:
                    # Partial overlap in the same quadword: conservatively
                    # unforwardable; the load retries until the store drains.
                    return _WAIT
                continue
            if store.size_l.get() != load_entry.size_l.get():
                return _WAIT
            if not store.data_ready.get():
                return _WAIT  # older matching store without data yet
            if store_age >= best_age:
                best_age = store_age
                best = store.data.get()
        return best

    def _start_miss(self, entry, lq_index):
        for mhr in self.mhr:
            if mhr.valid.get():
                continue
            mhr.valid.set(1)
            mhr.addr.set(entry.addr.get())
            mhr.timer.set(min(15, self.config.miss_latency))
            mhr.size_l.set(entry.size_l.get())
            mhr.pdst.set(entry.pdst.get())
            mhr.rob_index.set(entry.rob_index.get())
            mhr.sched_index.set(entry.sched_index.get())
            mhr.lq_index.set(lq_index)
            mhr.seq.set(entry.seq.get())
            return True
        return False

    # -- M2: data return ------------------------------------------------------------

    def m2_stage(self, pipeline):
        for slot in self.m2:
            if not slot.valid.get():
                continue
            entry = self.lq[slot.lq_index.get() % len(self.lq)]
            if not entry.valid.get():
                slot.valid.set(0)  # squashed
                continue
            if slot.fwd_valid.get():
                value = slot.fwd_value.get()
            else:
                value = self._read_memory(pipeline, entry)
            entry.repair_ptrs()
            posted = pipeline.execute.post_result(
                pipeline, entry.rob_index.get(), entry.sched_index.get(),
                True, entry.pdst.get(), value, free_sched=True,
                is_load=True, lq_index=slot.lq_index.get(),
                seq=entry.seq.get())
            if posted:
                slot.valid.set(0)
            # else retry next cycle (WB port conflict)

    def _read_memory(self, pipeline, entry):
        address = entry.addr.get()
        if entry.size_l.get():
            return pipeline.memory.load_long(address)
        return pipeline.memory.load_quad(address)

    # -- Miss handling -----------------------------------------------------------------

    def mhr_step(self, pipeline):
        for mhr in self.mhr:
            if not mhr.valid.get():
                continue
            timer = mhr.timer.get()
            if timer > 1:
                mhr.timer.set(timer - 1)
                continue
            self.dcache.fill(mhr.addr.get())
            entry = self.lq[mhr.lq_index.get() % len(self.lq)]
            if not entry.valid.get() or entry.rob_index.get() != \
                    mhr.rob_index.get():
                mhr.valid.set(0)  # load was squashed; fill was timing-only
                continue
            if entry.size_l.get():
                value = pipeline.memory.load_long(mhr.addr.get())
            else:
                value = pipeline.memory.load_quad(mhr.addr.get())
            posted = pipeline.execute.post_result(
                pipeline, mhr.rob_index.get(), mhr.sched_index.get(),
                True, mhr.pdst.get(), value, free_sched=True, is_load=True,
                lq_index=mhr.lq_index.get(), seq=mhr.seq.get())
            if posted:
                mhr.valid.set(0)

    # -- Store drain --------------------------------------------------------------------

    def drain_stage(self, pipeline):
        head = self.sq_head.get() % len(self.sq)
        entry = self.sq[head]
        if not (entry.valid.get() and entry.retired.get()
                and entry.addr_ready.get()):
            return
        address = entry.addr.get()
        value = entry.data.get()
        size = 4 if entry.size_l.get() else 8
        if entry.size_l.get():
            pipeline.memory.store_long(address, value)
        else:
            pipeline.memory.store_quad(address, value)
        pipeline.note_store_drain(address, value, size)
        entry.valid.set(0)
        entry.retired.set(0)
        self.sq_head.set((self.sq_head.get() + 1) % len(self.sq))
        count = self.sq_count.get()
        if count:
            self.sq_count.set(count - 1)

    # -- Completion / retirement hooks ----------------------------------------------------

    def lq_mark_done(self, lq_index):
        entry = self.lq[lq_index % len(self.lq)]
        if entry.valid.get():
            entry.done.set(1)

    def lq_retire(self, lq_index):
        """Free a load entry at retirement (kept until then for ordering)."""
        entry = self.lq[lq_index % len(self.lq)]
        entry.valid.set(0)
        head = self.lq_head.get()
        if lq_index % len(self.lq) == head % len(self.lq):
            self.lq_head.set((head + 1) % len(self.lq))
            count = self.lq_count.get()
            if count:
                self.lq_count.set(count - 1)

    def sq_mark_retired(self, sq_index):
        entry = self.sq[sq_index % len(self.sq)]
        if entry.valid.get():
            entry.retired.set(1)

    # -- Recovery ----------------------------------------------------------------------------

    def squash_younger(self, rob_head, boundary_age, rob_n):
        """Rewind LQ/SQ tails past squashed entries; drop their accesses."""
        for _ in range(len(self.lq)):
            tail = (self.lq_tail.get() - 1) % len(self.lq)
            entry = self.lq[tail]
            if not entry.valid.get():
                break
            age = (entry.rob_index.get() - rob_head) % rob_n
            if age <= boundary_age:
                break
            entry.valid.set(0)
            self.lq_tail.set(tail)
            count = self.lq_count.get()
            if count:
                self.lq_count.set(count - 1)
        for _ in range(len(self.sq)):
            tail = (self.sq_tail.get() - 1) % len(self.sq)
            entry = self.sq[tail]
            if not entry.valid.get() or entry.retired.get():
                break
            age = (entry.rob_index.get() - rob_head) % rob_n
            if age <= boundary_age:
                break
            entry.valid.set(0)
            self.sq_tail.set(tail)
            count = self.sq_count.get()
            if count:
                self.sq_count.set(count - 1)
        # Drop in-flight cache accesses and pending fills whose loads were
        # just squashed.  This must happen *now*: the squashed LQ/ROB
        # slots will be re-allocated to the refetched instructions with
        # the same indices, and a stale access delivering into the new
        # incarnation would complete it with pre-recovery data.
        for slot in self.m1:
            if slot.valid.get() and not self.lq[
                    slot.lq_index.get() % len(self.lq)].valid.get():
                slot.valid.set(0)
        for slot in self.m2:
            if slot.valid.get() and not self.lq[
                    slot.lq_index.get() % len(self.lq)].valid.get():
                slot.valid.set(0)
        for mhr in self.mhr:
            if not mhr.valid.get():
                continue
            age = (mhr.rob_index.get() - rob_head) % rob_n
            entry = self.lq[mhr.lq_index.get() % len(self.lq)]
            if age > boundary_age or not entry.valid.get():
                mhr.valid.set(0)  # the fill becomes a silent prefetch

    def flush_speculative(self):
        """Full flush: drop everything except retired stores."""
        for entry in self.lq:
            entry.valid.set(0)
        self.lq_head.set(0)
        self.lq_tail.set(0)
        self.lq_count.set(0)
        for slot in self.m1:
            slot.valid.set(0)
        for slot in self.m2:
            slot.valid.set(0)
        for mhr in self.mhr:
            mhr.valid.set(0)
        # Compact the store queue down to retired entries.
        retained = []
        head = self.sq_head.get() % len(self.sq)
        for offset in range(len(self.sq)):
            entry = self.sq[(head + offset) % len(self.sq)]
            if entry.valid.get() and entry.retired.get():
                retained.append((
                    entry.addr.get(), entry.addr_ready.get(),
                    entry.data.get(), entry.data_ready.get(),
                    entry.size_l.get(), entry.rob_index.get(),
                    # repro-lint: allow=REP003 (the seq round-trips into
                    # entry.seq.set() below during compaction; it is never
                    # branched on -- pure ghost propagation through a tuple)
                    entry.seq.get()))
        for entry in self.sq:
            entry.valid.set(0)
            entry.retired.set(0)
        for offset, fields in enumerate(retained):
            entry = self.sq[offset % len(self.sq)]
            (addr, addr_ready, data, data_ready, size_l, rob_index,
             seq) = fields
            entry.valid.set(1)
            entry.retired.set(1)
            entry.addr.set(addr)
            entry.addr_ready.set(addr_ready)
            entry.data.set(data)
            entry.data_ready.set(data_ready)
            entry.size_l.set(size_l)
            entry.rob_index.set(rob_index)
            entry.seq.set(seq)
        self.sq_head.set(0)
        self.sq_tail.set(len(retained) % len(self.sq))
        self.sq_count.set(len(retained))
