"""Rename and dispatch stages.

Rename (4-wide) maps architectural to physical registers through the
speculative RAT, allocating destinations from the speculative free list
and recording the previous mapping (``pold``) for recovery and
retirement-time freeing.  Dispatch allocates ROB, scheduler and
load/store-queue entries for a renamed group, all-or-nothing.

Injectable state: the rename output latch (control word plus four
physical-register pointers per slot -- the ``regptr`` latch population of
paper Table 1).
"""

from repro.protect.ecc import REGPTR_CODE
from repro.uarch.statelib import StateCategory, StorageKind
from repro.uarch.uop import DISP_BITS, LOAD_IDS, STORE_IDS, unpack_pc
from repro.utils.bits import parity

_SEQ_BITS = 40


class _RenameSlot:
    """Rename output latch slot: control word + physical pointers."""

    __slots__ = ("valid", "op_id", "has_dest", "dest_arch", "use_a", "psrc_a",
                 "use_b", "psrc_b", "pdst", "pold", "is_lit", "literal",
                 "disp", "pc", "pred_taken", "biq_index", "seq", "parity",
                 "ptr_ecc")

    def __init__(self, space, name, phys_bits, with_parity, with_ptr_ecc,
                 biq_bits):
        kind = StorageKind.LATCH
        ctrl = StateCategory.CTRL
        self.valid = space.field(name + ".valid", 1, StateCategory.VALID, kind)
        self.op_id = space.field(name + ".op_id", 8, ctrl, kind)
        self.has_dest = space.field(name + ".has_dest", 1, ctrl, kind)
        self.dest_arch = space.field(name + ".dest_arch", 5, ctrl, kind)
        self.use_a = space.field(name + ".use_a", 1, ctrl, kind)
        self.use_b = space.field(name + ".use_b", 1, ctrl, kind)
        self.psrc_a = space.field(
            name + ".psrc_a", phys_bits, StateCategory.REGPTR, kind)
        self.psrc_b = space.field(
            name + ".psrc_b", phys_bits, StateCategory.REGPTR, kind)
        self.pdst = space.field(
            name + ".pdst", phys_bits, StateCategory.REGPTR, kind)
        self.pold = space.field(
            name + ".pold", phys_bits, StateCategory.REGPTR, kind)
        self.is_lit = space.field(name + ".is_lit", 1, StateCategory.INSN, kind)
        self.literal = space.field(
            name + ".literal", 8, StateCategory.INSN, kind)
        self.disp = space.field(
            name + ".disp", DISP_BITS, StateCategory.INSN, kind)
        self.pc = space.field(name + ".pc", 62, StateCategory.PC, kind)
        self.pred_taken = space.field(name + ".pred_taken", 1, ctrl, kind)
        self.biq_index = space.field(name + ".biq", biq_bits, ctrl, kind)
        self.seq = space.field(
            name + ".seq", _SEQ_BITS, StateCategory.GHOST, kind)
        self.parity = None
        if with_parity:
            self.parity = space.field(
                name + ".parity", 1, StateCategory.PARITY, kind)
        self.ptr_ecc = None
        if with_ptr_ecc:
            # One Hamming check word accompanying pdst through the latch
            # (sources and pold are re-checked at their storage sites).
            self.ptr_ecc = space.field(
                name + ".pdst_ecc", REGPTR_CODE.check_bits,
                StateCategory.ECC, kind)


class RenameDispatch:
    """The rename output latch plus the rename and dispatch stages."""

    def __init__(self, space, config, spec_rat, spec_freelist, biq_bits):
        self.config = config
        self.spec_rat = spec_rat
        self.spec_freelist = spec_freelist
        self.slots = [
            _RenameSlot(space, "rename[%d]" % i, config.phys_bits,
                        config.protection.insn_parity,
                        config.protection.regptr_ecc, biq_bits)
            for i in range(config.rename_width)
        ]

    def flush(self):
        for slot in self.slots:
            slot.valid.set(0)

    def squash(self, pipeline):
        """Undo renamed-but-undispatched instructions (recovery walk).

        These instructions already popped destinations from the free list
        and rewrote the speculative RAT, but have no ROB entry yet -- the
        ROB recovery walk cannot see them, so they are unwound here, in
        reverse rename order.
        """
        for slot in reversed(self.slots):
            if not slot.valid.get():
                continue
            if slot.has_dest.get():
                self.spec_rat.write(slot.dest_arch.get(), slot.pold.get())
                self.spec_freelist.push_front(slot.pdst.get())
                pipeline.regfile.ready[
                    slot.pdst.get() % pipeline.regfile.num_regs].set(1)
            slot.valid.set(0)

    # -- Rename stage (decode latch -> rename latch) -------------------------

    def rename_stage(self, pipeline):
        if any(slot.valid.get() for slot in self.slots):
            return  # dispatch has not consumed the previous group
        decode_slots = pipeline.frontend.decode_slots
        group = [slot for slot in decode_slots if slot.valid.get()]
        if not group:
            return
        dests = sum(1 for slot in group if slot.has_dest.get())
        if self.spec_freelist.available < dests:
            return  # not enough physical registers: stall

        for i, din in enumerate(group):
            if din.parity is not None:
                # The raw instruction word is dropped here: verify its
                # parity one last time before only decoded fields remain.
                if parity(din.insn.get()) != din.parity.get():
                    pipeline.request_parity_flush()
                    return
            out = self.slots[i]
            out.valid.set(1)
            out.op_id.set(din.op_id.get())
            out.has_dest.set(din.has_dest.get())
            out.dest_arch.set(din.dest_arch.get())
            out.use_a.set(din.use_a.get())
            out.use_b.set(din.use_b.get())
            out.psrc_a.set(self.spec_rat.read(din.src_a.get())
                           if din.use_a.get() else 0)
            out.psrc_b.set(self.spec_rat.read(din.src_b.get())
                           if din.use_b.get() else 0)
            if din.has_dest.get():
                dest_arch = din.dest_arch.get()
                pdst = self.spec_freelist.pop()
                out.pold.set(self.spec_rat.read(dest_arch))
                out.pdst.set(pdst)
                self.spec_rat.write(dest_arch, pdst)
                pipeline.regfile.mark_not_ready(pdst)
            else:
                out.pold.set(0)
                out.pdst.set(0)
            out.is_lit.set(din.is_lit.get())
            out.literal.set(din.literal.get())
            out.disp.set(din.disp.get())
            out.pc.set(din.pc.get())
            out.pred_taken.set(din.pred_taken.get())
            out.biq_index.set(din.biq_index.get())
            out.seq.set(din.seq.get())
            if out.parity is not None:
                # Word dropped; parity now covers the retained insn fields.
                out.parity.set(parity(
                    (din.is_lit.get() << 29) | (din.literal.get() << 21)
                    | din.disp.get()))
            if out.ptr_ecc is not None:
                out.ptr_ecc.set(REGPTR_CODE.encode(out.pdst.get()))
            if pipeline.obs is not None:
                pipeline.obs.on_rename(pipeline, seq=din.seq.get(),
                                       pc=unpack_pc(din.pc.get()),
                                       pdst=out.pdst.get())
            din.valid.set(0)

    # -- Dispatch stage (rename latch -> ROB/scheduler/LSQ) -------------------

    def dispatch_stage(self, pipeline):
        group = [slot for slot in self.slots if slot.valid.get()]
        if not group:
            return
        rob = pipeline.rob
        sched = pipeline.scheduler
        mem = pipeline.memunit
        loads = sum(1 for s in group if s.op_id.get() in LOAD_IDS)
        stores = sum(1 for s in group if s.op_id.get() in STORE_IDS)
        if (rob.free_entries() < len(group)
                or sched.free_entries() < len(group)
                or mem.lq_free() < loads
                or mem.sq_free() < stores):
            return  # structural stall

        for slot in group:
            op_id = slot.op_id.get()
            rob_index = rob.alloc(slot)
            lq_index = sq_index = 0
            if op_id in LOAD_IDS:
                lq_index = mem.lq_alloc(slot, rob_index)
            elif op_id in STORE_IDS:
                sq_index = mem.sq_alloc(slot, rob_index)
            rob.set_lsq(rob_index, lq_index, sq_index)
            sched.insert(pipeline, slot, rob_index, lq_index, sq_index)
            if pipeline.obs is not None:
                pipeline.obs.on_dispatch(pipeline, seq=slot.seq.get(),
                                         rob_index=rob_index)
            slot.valid.set(0)
