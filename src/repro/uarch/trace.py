"""Pipeline introspection and debug tracing.

Research on a cycle-level model lives and dies by visibility; this
module provides a per-cycle "pipeview"-style trace (which instructions
occupy which structures), occupancy timelines, and retirement logs --
used by the examples, by debugging sessions, and by tests that need to
assert on internal timing.
"""

from dataclasses import dataclass, field
from typing import List

from repro.isa.disassembler import disassemble
from repro.uarch.uop import op_from_id, unpack_pc


def structure_snapshot(pipeline):
    """One-line-per-structure occupancy summary for the current cycle."""
    frontend = pipeline.frontend
    mem = pipeline.memunit
    parts = [
        "cyc=%d" % pipeline.cycle_count,
        "ret=%d" % pipeline.total_retired,
        "fq=%d/%d" % (frontend.fq_count.get(), len(frontend.fetchq)),
        "rob=%d/%d" % (pipeline.rob.count.get(), len(pipeline.rob.entries)),
        "sched=%d/%d" % (
            sum(1 for e in pipeline.scheduler.entries if e.valid.get()),
            len(pipeline.scheduler.entries)),
        "lq=%d" % mem.lq_count.get(),
        "sq=%d" % mem.sq_count.get(),
        "mhr=%d" % sum(1 for m in mem.mhr if m.valid.get()),
    ]
    return " ".join(parts)


def rob_window(pipeline, limit=16):
    """Human-readable dump of the oldest ROB entries."""
    rob = pipeline.rob
    n = len(rob.entries)
    head = rob.head.get() % n
    count = min(rob.count.get(), limit)
    lines = []
    for offset in range(count):
        entry = rob.entries[(head + offset) % n]
        if not entry.valid.get():
            break
        word = pipeline.memory.fetch_word(unpack_pc(entry.pc.get()))
        lines.append("rob[%2d] %s pc=0x%x %-24s %s" % (
            (head + offset) % n,
            "done" if entry.done.get() else "....",
            unpack_pc(entry.pc.get()),
            disassemble(word, unpack_pc(entry.pc.get())),
            op_from_id(entry.op_id.get()).name,
        ))
    return "\n".join(lines) if lines else "(rob empty)"


@dataclass
class PipelineTracer:
    """Records per-cycle structure occupancy and retirement events.

    >>> tracer = PipelineTracer()
    >>> tracer.attach(pipeline)
    >>> pipeline.run(100)
    >>> print(tracer.occupancy_timeline())
    """

    sample_every: int = 1
    occupancy: List[dict] = field(default_factory=list)
    retirements: List[tuple] = field(default_factory=list)
    _pipeline: object = None
    _original_cycle: object = None

    def attach(self, pipeline):
        """Wrap ``pipeline.cycle`` to record a trace; call detach() when
        done (or let the tracer die with the pipeline)."""
        self._pipeline = pipeline
        self._original_cycle = pipeline.cycle

        def traced_cycle():
            self._original_cycle()
            if pipeline.cycle_count % self.sample_every == 0:
                self._sample(pipeline)
            for record in pipeline.retired_this_cycle:
                self.retirements.append((pipeline.cycle_count,) + record)

        pipeline.cycle = traced_cycle
        return self

    def detach(self):
        if self._pipeline is not None and self._original_cycle is not None:
            self._pipeline.cycle = self._original_cycle
        self._pipeline = None

    def _sample(self, pipeline):
        mem = pipeline.memunit
        self.occupancy.append({
            "cycle": pipeline.cycle_count,
            "rob": pipeline.rob.count.get(),
            "sched": sum(1 for e in pipeline.scheduler.entries
                         if e.valid.get()),
            "fetchq": pipeline.frontend.fq_count.get(),
            "lq": mem.lq_count.get(),
            "sq": mem.sq_count.get(),
        })

    def occupancy_timeline(self, structure="rob", width=60):
        """An ASCII sparkline of one structure's occupancy over time."""
        if not self.occupancy:
            return "(no samples)"
        values = [sample[structure] for sample in self.occupancy]
        peak = max(max(values), 1)
        glyphs = " .:-=+*#%@"
        step = max(1, len(values) // width)
        cells = []
        for index in range(0, len(values), step):
            window = values[index:index + step]
            level = sum(window) / len(window) / peak
            cells.append(glyphs[min(len(glyphs) - 1,
                                    int(level * (len(glyphs) - 1)))])
        return "%s occupancy (peak %d): [%s]" % (
            structure, peak, "".join(cells))

    def ipc(self):
        if not self.occupancy:
            return 0.0
        cycles = self.occupancy[-1]["cycle"] - self.occupancy[0]["cycle"]
        if cycles <= 0:
            return 0.0
        in_window = [r for r in self.retirements
                     if self.occupancy[0]["cycle"] < r[0]
                     <= self.occupancy[-1]["cycle"]]
        return len(in_window) / cycles


def retirement_log(pipeline, cycles, limit=50):
    """Run ``cycles`` and return formatted retirement records."""
    lines = []
    for _ in range(cycles):
        if pipeline.halted or len(lines) >= limit:
            break
        pipeline.cycle()
        for seq, pc, op_id, dest, value in pipeline.retired_this_cycle:
            word = pipeline.memory.fetch_word(pc)
            text = "c%05d  0x%04x  %-26s" % (
                pipeline.cycle_count, pc, disassemble(word, pc))
            if dest is not None:
                text += "  r%d=%d" % (dest, value if value is not None
                                      else 0)
            lines.append(text)
            if len(lines) >= limit:
                break
    return "\n".join(lines)
