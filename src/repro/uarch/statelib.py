"""State-element registry: the substrate of latch-accurate fault injection.

Every architected bit of pipeline state -- edge-triggered latches and
pipeline RAM cells alike -- is allocated from a :class:`StateSpace`.
Each element carries:

* a ``width`` in bits,
* a :class:`StorageKind` (``LATCH`` or ``RAM``) matching the paper's
  division of injection campaigns into latch+RAM and latch-only,
* a :class:`StateCategory` matching the paper's Table 1 functional
  taxonomy (``addr``, ``archrat``, ``data``, ``regfile``, ...),
* an ``injectable`` flag.  Ghost elements (``injectable=False``) carry
  simulator bookkeeping (sequence numbers) that exists for analysis only;
  they are excluded from injection, from the Table 1 inventory, and from
  the microarchitectural-state signature, and no pipeline *behaviour* may
  depend on them.

Values live in one flat list so snapshot/restore are single C-speed
operations, and the microarchitectural signature is maintained
*incrementally*: every element carries a per-(index, value) hash
contribution, XOR-rolled into a running total on each write
(Zobrist hashing), so :meth:`StateSpace.signature` is O(1) per cycle
instead of O(#elements).  The contributions use ``hash((index,
value))`` over plain ints, which CPython computes identically in every
process regardless of ``PYTHONHASHSEED`` (hash randomization covers
str/bytes only) -- signatures recorded by one worker are valid in all
of them and across runs.  The full recompute survives as the
``signature(full=True)`` debug path; ``verify_golden`` asserts the two
agree, and lint rule REP005 statically rejects writes that bypass the
signature-maintaining path.
"""

import bisect
import enum
from dataclasses import dataclass

from repro.errors import SimulationError


class StorageKind(enum.Enum):
    """Physical storage style of a state element (paper Section 2.2)."""

    LATCH = "latch"
    RAM = "ram"


class StateCategory(enum.Enum):
    """Functional category of a state element (paper Table 1).

    ``ECC`` and ``PARITY`` appear only when protection mechanisms are
    configured (paper Figure 9 adds them as injectable categories).
    ``GHOST`` marks analysis-only bookkeeping.
    """

    ADDR = "addr"
    ARCHFREELIST = "archfreelist"
    ARCHRAT = "archrat"
    CTRL = "ctrl"
    DATA = "data"
    INSN = "insn"
    PC = "pc"
    QCTRL = "qctrl"
    REGFILE = "regfile"
    REGPTR = "regptr"
    ROBPTR = "robptr"
    SPECFREELIST = "specfreelist"
    SPECRAT = "specrat"
    VALID = "valid"
    ECC = "ecc"
    PARITY = "parity"
    GHOST = "ghost"


# The categories reported in the paper's Table 1 (baseline machine),
# the protection add-ons of Figure 9, and the full reporting contract.
# ``repro.lint`` (REP004) checks statically -- and :meth:`StateSpace.field`
# checks at allocation time -- that every category a structure allocates
# belongs to ``REPORTED_CATEGORIES``, so the analysis layer can never
# silently drop a category from the Table 1 / Figure 5 aggregations.
TABLE1_CATEGORIES = (
    StateCategory.ADDR,
    StateCategory.ARCHFREELIST,
    StateCategory.ARCHRAT,
    StateCategory.CTRL,
    StateCategory.DATA,
    StateCategory.INSN,
    StateCategory.PC,
    StateCategory.QCTRL,
    StateCategory.REGFILE,
    StateCategory.REGPTR,
    StateCategory.ROBPTR,
    StateCategory.SPECFREELIST,
    StateCategory.SPECRAT,
    StateCategory.VALID,
)

# Injectable categories that exist only with protection configured.
PROTECTION_CATEGORIES = (
    StateCategory.ECC,
    StateCategory.PARITY,
)

# Everything the analysis layer aggregates; GHOST is analysis-only
# bookkeeping and is excluded from inventory/injection by construction.
REPORTED_CATEGORIES = (
    TABLE1_CATEGORIES + PROTECTION_CATEGORIES + (StateCategory.GHOST,)
)

_REPORTED_SET = frozenset(REPORTED_CATEGORIES)


@dataclass(frozen=True)
class ElementMeta:
    """Immutable description of one state element."""

    index: int
    name: str
    width: int
    category: StateCategory
    kind: StorageKind
    injectable: bool


class StateSnapshot(list):
    """A value snapshot that remembers the signature at capture time.

    Behaves exactly like the plain list it subclasses (element-wise
    compare, iteration, indexing), so every existing consumer of
    ``snapshot()`` is unaffected; ``restore()`` uses the carried ``sig``
    to reset the rolling signature in O(1) instead of recomputing over
    every element.  Plain lists are still accepted by ``restore`` (the
    signature is then recomputed), so pickled or hand-built snapshots
    keep working.
    """

    __slots__ = ("sig",)

    def __init__(self, values, sig=None):
        list.__init__(self, values)
        self.sig = sig

    def __reduce__(self):
        # list subclasses with __slots__ need explicit pickle support;
        # the golden cache serialises checkpoints containing snapshots.
        return (StateSnapshot, (list(self), self.sig))


class Field:
    """Handle to one state element's value.

    Reads and writes are width-masked, so a corrupted value can never
    exceed its hardware width -- the defensive-simulation ground rule.

    Writes also maintain the space's rolling signature: ``_sig`` is a
    shared one-element cell (cheaper to update than an attribute on the
    space) and ``_salt`` is the element's hash salt -- its index, or
    None for ghost elements, which are excluded from the signature.
    """

    __slots__ = ("_values", "index", "width", "_mask", "_sig", "_salt")

    def __init__(self, space, index, width, salt=None):
        self._values = space.values
        self._sig = space._sig
        self.index = index
        self.width = width
        self._mask = (1 << width) - 1
        self._salt = salt

    def get(self):
        return self._values[self.index]

    def set(self, value):
        value &= self._mask
        values = self._values
        index = self.index
        old = values[index]
        if old == value:
            return
        values[index] = value
        salt = self._salt
        if salt is not None:
            self._sig[0] ^= hash((salt, old)) ^ hash((salt, value))

    def flip(self, bit):
        """Invert one bit (the single-event-upset fault model)."""
        values = self._values
        index = self.index
        old = values[index]
        new = old ^ (1 << (bit % self.width))
        values[index] = new
        salt = self._salt
        if salt is not None:
            self._sig[0] ^= hash((salt, old)) ^ hash((salt, new))

    def __repr__(self):
        return "Field(#%d, %d bits, value=%d)" % (
            self.index, self.width, self.get())


class StateSpace:
    """Allocator and registry for all state elements of one pipeline."""

    def __init__(self):
        self.values = []
        self.elements = []
        self.handles = []  # Field handle per element, same order as values
        # Rolling XOR of hash((index, value)) over all non-ghost
        # elements, shared with every Field as a one-element cell.
        self._sig = [0]
        self._frozen = False
        self._signature_indices = None
        self._injection_tables = {}
        self._array_groups = None

    # -- Allocation -------------------------------------------------------

    def field(self, name, width, category, kind, injectable=True, reset=0):
        """Allocate one state element and return its :class:`Field`."""
        if self._frozen:
            raise SimulationError(
                "cannot allocate %r: state space is frozen" % name)
        if width <= 0:
            raise SimulationError("field %r must have positive width" % name)
        if category == StateCategory.GHOST:
            injectable = False
        if category not in _REPORTED_SET:
            raise SimulationError(
                "field %r allocates category %r which the analysis layer "
                "does not aggregate; add it to TABLE1_CATEGORIES or "
                "PROTECTION_CATEGORIES in statelib" % (name, category))
        index = len(self.values)
        value = reset & ((1 << width) - 1)
        self.values.append(value)
        self.elements.append(
            ElementMeta(index, name, width, category, kind, injectable))
        if category == StateCategory.GHOST:
            salt = None
        else:
            salt = index
            self._sig[0] ^= hash((salt, value))
        field = Field(self, index, width, salt)
        self.handles.append(field)
        return field

    def array(self, name, count, width, category, kind, injectable=True):
        """Allocate ``count`` homogeneous elements (a RAM array or latch bank)."""
        return [
            self.field("%s[%d]" % (name, i), width, category, kind, injectable)
            for i in range(count)
        ]

    def freeze(self):
        """Finish allocation; precompute signature and injection tables."""
        self._frozen = True
        self._signature_indices = tuple(
            meta.index for meta in self.elements
            if meta.category != StateCategory.GHOST
        )

    # -- Inventory ----------------------------------------------------------

    def total_bits(self, kind=None, category=None, injectable_only=True):
        """Total bits matching the filters (the Table 1 accounting)."""
        total = 0
        for meta in self.elements:
            if injectable_only and not meta.injectable:
                continue
            if kind is not None and meta.kind != kind:
                continue
            if category is not None and meta.category != category:
                continue
            total += meta.width
        return total

    def inventory(self):
        """Mapping category -> {latch_bits, ram_bits} over injectable state."""
        table = {}
        for meta in self.elements:
            if not meta.injectable:
                continue
            row = table.setdefault(
                meta.category, {StorageKind.LATCH: 0, StorageKind.RAM: 0})
            row[meta.kind] += meta.width
        return table

    # -- Fault injection -------------------------------------------------------

    def _table_for(self, kinds):
        """Injection table for a *frozenset* of kinds (cached by it)."""
        cached = self._injection_tables.get(kinds)
        if cached is not None:
            return cached
        indices = []
        cumulative = []
        total = 0
        for meta in self.elements:
            if meta.injectable and meta.kind in kinds:
                indices.append(meta.index)
                total += meta.width
                cumulative.append(total)
        table = (indices, cumulative, total)
        self._injection_tables[kinds] = table
        return table

    def eligible_bits(self, kinds):
        """Number of injectable bits across the given storage kinds."""
        if not isinstance(kinds, frozenset):
            kinds = frozenset(kinds)
        return self._table_for(kinds)[2]

    def choose_bit(self, rng, kinds):
        """Pick a (element_index, bit) uniformly over eligible bits.

        The returned bit offset is always below the element's width.
        Campaign code normalizes ``kinds`` to a frozenset once at the
        campaign boundary; the fallback conversion here keeps ad-hoc
        callers (tests, notebooks) working with any iterable.
        """
        if not isinstance(kinds, frozenset):
            kinds = frozenset(kinds)
        indices, cumulative, total = self._table_for(kinds)
        if total == 0:
            raise SimulationError("no injectable state for kinds %r" % (kinds,))
        offset = rng.randrange(total)
        position = bisect.bisect_right(cumulative, offset)
        element_index = indices[position]
        prior = cumulative[position - 1] if position else 0
        return element_index, offset - prior

    def flip_bit(self, element_index, bit):
        """Apply a single-bit upset to an element chosen by index."""
        meta = self.elements[element_index]
        values = self.values
        old = values[element_index]
        new = old ^ (1 << (bit % meta.width))
        values[element_index] = new
        if meta.category != StateCategory.GHOST:
            self._sig[0] ^= (hash((element_index, old))
                             ^ hash((element_index, new)))
        return meta

    def apply_fault(self, element_index, mask):
        """XOR a disturbance mask into one element (multi-bit upsets).

        The mask is clamped to the element's width, so a fault can never
        widen a value past its hardware width.  Maintains the rolling
        signature exactly like :meth:`flip_bit`; applying the same mask
        twice is the identity (XOR), which is what :meth:`undo_fault`
        relies on.
        """
        meta = self.elements[element_index]
        values = self.values
        old = values[element_index]
        new = old ^ (mask & ((1 << meta.width) - 1))
        if new == old:
            return meta
        values[element_index] = new
        if meta.category != StateCategory.GHOST:
            self._sig[0] ^= (hash((element_index, old))
                             ^ hash((element_index, new)))
        return meta

    def undo_fault(self, element_index, mask):
        """Revert a disturbance applied by :meth:`apply_fault`.

        XOR is self-inverse, so undo *is* re-apply -- the separate name
        records intent at call sites (and keeps apply/undo pairs legible
        in the property tests).
        """
        return self.apply_fault(element_index, mask)

    def force_bit(self, element_index, bit, value):
        """Force one bit of an element to ``value`` (stuck-at faults).

        Unlike :meth:`flip_bit` this is idempotent: re-asserting a
        stuck-at fault on an already-stuck bit is a no-op, including on
        the rolling signature.  Returns True when the write changed the
        element.
        """
        meta = self.elements[element_index]
        values = self.values
        old = values[element_index]
        pick = 1 << (bit % meta.width)
        new = (old | pick) if value else (old & ~pick)
        if new == old:
            return False
        values[element_index] = new
        if meta.category != StateCategory.GHOST:
            self._sig[0] ^= (hash((element_index, old))
                             ^ hash((element_index, new)))
        return True

    def array_members(self, element_index):
        """Indices of the array the element belongs to (itself if scalar).

        Arrays are recognised by the ``name[i]`` convention that
        :meth:`array` allocates; members are returned in allocation
        order.  Used by spatially-correlated (burst) fault models, so
        only injectable members are listed.  The grouping is cached
        lazily -- the registry is frozen before injection starts.
        """
        groups = getattr(self, "_array_groups", None)
        if groups is None:
            groups = {}
            by_base = {}
            for meta in self.elements:
                if not meta.injectable:
                    continue
                name = meta.name
                base = name[:name.rindex("[")] if name.endswith("]") \
                    and "[" in name else None
                if base is None:
                    groups[meta.index] = (meta.index,)
                else:
                    by_base.setdefault(base, []).append(meta.index)
            for members in by_base.values():
                members = tuple(members)
                for index in members:
                    groups[index] = members
            self._array_groups = groups
        return groups.get(element_index, (element_index,))

    # -- Snapshot / compare ------------------------------------------------------

    def snapshot(self):
        """Copy of all element values (ghosts included, for exact restore).

        Returns a :class:`StateSnapshot` carrying the current signature
        so a later ``restore`` resets the rolling hash in O(1).
        """
        return StateSnapshot(self.values, self._sig[0])

    def restore(self, snap):
        self.values[:] = snap
        sig = getattr(snap, "sig", None)
        if sig is None:
            sig = self.signature(full=True)
        self._sig[0] = sig

    def signature(self, full=False):
        """Hash of all non-ghost state (the microarchitectural-match check).

        The default path returns the incrementally-maintained rolling
        hash (O(1)); ``full=True`` recomputes it from the values list,
        the debug/verify path ``verify_golden`` checks against.
        """
        if not full:
            return self._sig[0]
        values = self.values
        sig = 0
        for meta in self.elements:
            if meta.category != StateCategory.GHOST:
                index = meta.index
                sig ^= hash((index, values[index]))
        return sig
