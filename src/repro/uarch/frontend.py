"""Pipeline front end: fetch (2 stages), fetch queue, decode.

Fetch is 8-wide and split-line from the (functional) L1 instruction
cache, steered by the hybrid direction predictor, BTB and RAS.  Fetched
words enter the 32-entry fetch queue; decode is 4-wide and produces the
control-word fields of :mod:`repro.uarch.uop` into the decode output
latch consumed by rename.

Injectable state: the fetch PC, the instruction-cache miss-handling
latches, the fetch-stage output latch, the fetch queue (instruction
words, PCs, prediction bits, valid bits, queue pointers) and the decode
output latch.  Predictor tables and cache arrays are functional
(excluded from injection per paper Section 3.1).
"""

from repro.isa.encoding import decode as isa_decode
from repro.uarch.statelib import StateCategory, StorageKind
from repro.uarch.uop import (
    DISP_BITS,
    decode_control_word,
    pack_pc,
    unpack_pc,
)
from repro.utils.bits import parity

_SEQ_BITS = 40


class BranchInfoQueue:
    """Per-in-flight-branch prediction state (a real structure in modern
    frontends): the predicted next PC plus -- as functional side state,
    since they only steer prediction -- the RAS-pointer and global-history
    snapshots used for misprediction recovery.

    Instructions carry a small BIQ index through the pipeline instead of
    a full 62-bit predicted target, matching the paper's Table 1 ``pc``
    bit budget.
    """

    # REP001 whitelist: the RAS/GHR recovery snapshots are functional
    # predictor side state (paper Section 3.1: predictor structures are
    # excluded from injection); saved/restored via save_side/load_side.
    _DERIVED = ("ras_snap", "ghr_snap")

    def __init__(self, space, config):
        self.capacity = max(8, config.fetchq_entries)
        self.pred_next = space.array(
            "biq.pred_next", self.capacity, 62, StateCategory.PC,
            StorageKind.RAM)
        bits = max(1, (self.capacity - 1).bit_length())
        self.index_bits = bits
        self.head = space.field(
            "biq.head", bits, StateCategory.QCTRL, StorageKind.LATCH)
        self.tail = space.field(
            "biq.tail", bits, StateCategory.QCTRL, StorageKind.LATCH)
        self.count = space.field(
            "biq.count", bits + 1, StateCategory.QCTRL, StorageKind.LATCH)
        # Functional recovery snapshots (predictor state, not injectable).
        self.ras_snap = [0] * self.capacity
        self.ghr_snap = [0] * self.capacity

    def full(self):
        return self.count.get() >= self.capacity

    def alloc(self, predicted_next_pc, ras_snapshot, ghr_snapshot):
        index = self.tail.get() % self.capacity
        self.pred_next[index].set(pack_pc(predicted_next_pc))
        self.ras_snap[index] = ras_snapshot
        self.ghr_snap[index] = ghr_snapshot
        self.tail.set((self.tail.get() + 1) % self.capacity)
        self.count.set(min(self.capacity, self.count.get() + 1))
        return index

    def predicted_next(self, index):
        return unpack_pc(self.pred_next[index % self.capacity].get())

    def snapshot_of(self, index):
        index %= self.capacity
        return self.ras_snap[index], self.ghr_snap[index]

    def free_head(self):
        """Pop the oldest entry (its branch retired)."""
        if self.count.get():
            self.head.set((self.head.get() + 1) % self.capacity)
            self.count.set(self.count.get() - 1)

    def rewind_to(self, index):
        """Recovery: drop entries younger than ``index`` (kept)."""
        head = self.head.get() % self.capacity
        keep = ((index - head) % self.capacity) + 1
        keep = min(keep, self.capacity)
        self.tail.set((head + keep) % self.capacity)
        self.count.set(keep)

    def rewind_before(self, index):
        """Recovery: drop ``index`` and everything younger than it."""
        head = self.head.get() % self.capacity
        keep = (index - head) % self.capacity
        self.tail.set((head + keep) % self.capacity)
        self.count.set(keep)

    def flush(self):
        self.head.set(0)
        self.tail.set(0)
        self.count.set(0)

    def save_side(self):
        return (list(self.ras_snap), list(self.ghr_snap))

    def load_side(self, saved):
        ras_snap, ghr_snap = saved
        self.ras_snap = list(ras_snap)
        self.ghr_snap = list(ghr_snap)


class _InsnSlot:
    """State-element bundle for one in-flight pre-decode instruction."""

    __slots__ = ("valid", "insn", "pc", "pred_taken", "biq_index", "seq",
                 "parity")

    def __init__(self, space, name, kind, with_parity, biq_bits):
        self.valid = space.field(
            name + ".valid", 1, StateCategory.VALID, kind)
        self.insn = space.field(
            name + ".insn", 32, StateCategory.INSN, kind)
        self.pc = space.field(name + ".pc", 62, StateCategory.PC, kind)
        self.pred_taken = space.field(
            name + ".pred_taken", 1, StateCategory.CTRL, kind)
        self.biq_index = space.field(
            name + ".biq", biq_bits, StateCategory.CTRL, kind)
        self.seq = space.field(
            name + ".seq", _SEQ_BITS, StateCategory.GHOST, kind)
        self.parity = None
        if with_parity:
            self.parity = space.field(
                name + ".parity", 1, StateCategory.PARITY, kind)

    def copy_from(self, other):
        self.valid.set(other.valid.get())
        self.insn.set(other.insn.get())
        self.pc.set(other.pc.get())
        self.pred_taken.set(other.pred_taken.get())
        self.biq_index.set(other.biq_index.get())
        self.seq.set(other.seq.get())
        if self.parity is not None and other.parity is not None:
            self.parity.set(other.parity.get())


class _DecodeSlot:
    """Decode output latch slot: the full post-decode control word."""

    __slots__ = ("valid", "op_id", "has_dest", "dest_arch", "use_a", "src_a",
                 "use_b", "src_b", "is_lit", "literal", "disp", "insn", "pc",
                 "pred_taken", "biq_index", "seq", "parity")

    def __init__(self, space, name, with_parity, biq_bits):
        kind = StorageKind.LATCH
        ctrl = StateCategory.CTRL
        insn_cat = StateCategory.INSN
        self.valid = space.field(name + ".valid", 1, StateCategory.VALID, kind)
        self.op_id = space.field(name + ".op_id", 8, ctrl, kind)
        self.has_dest = space.field(name + ".has_dest", 1, ctrl, kind)
        self.dest_arch = space.field(name + ".dest_arch", 5, ctrl, kind)
        self.use_a = space.field(name + ".use_a", 1, ctrl, kind)
        self.src_a = space.field(name + ".src_a", 5, ctrl, kind)
        self.use_b = space.field(name + ".use_b", 1, ctrl, kind)
        self.src_b = space.field(name + ".src_b", 5, ctrl, kind)
        self.is_lit = space.field(name + ".is_lit", 1, insn_cat, kind)
        self.literal = space.field(name + ".literal", 8, insn_cat, kind)
        self.disp = space.field(name + ".disp", DISP_BITS, insn_cat, kind)
        self.insn = space.field(name + ".insn", 32, insn_cat, kind)
        self.pc = space.field(name + ".pc", 62, StateCategory.PC, kind)
        self.pred_taken = space.field(name + ".pred_taken", 1, ctrl, kind)
        self.biq_index = space.field(
            name + ".biq", biq_bits, ctrl, kind)
        self.seq = space.field(
            name + ".seq", _SEQ_BITS, StateCategory.GHOST, kind)
        self.parity = None
        if with_parity:
            self.parity = space.field(
                name + ".parity", 1, StateCategory.PARITY, kind)


class Frontend:
    """Fetch stages, fetch queue and decode stage."""

    # REP001 whitelist: the return-address stack is a functional
    # predictor structure (excluded from injection per paper 3.1);
    # ``_predict`` pushes/pops it speculatively.
    _DERIVED = ("ras",)

    def __init__(self, space, config, icache, predictor, btb, ras):
        self.config = config
        self.icache = icache
        self.predictor = predictor
        self.btb = btb
        self.ras = ras
        with_parity = config.protection.insn_parity

        self.fetch_pc = space.field(
            "fetch.pc", 62, StateCategory.PC, StorageKind.LATCH)
        self.imiss_active = space.field(
            "fetch.imiss.active", 1, StateCategory.CTRL, StorageKind.LATCH)
        self.imiss_timer = space.field(
            "fetch.imiss.timer", 4, StateCategory.CTRL, StorageKind.LATCH)
        self.imiss_line = space.field(
            "fetch.imiss.line", 58, StateCategory.ADDR, StorageKind.LATCH)

        self.biq = BranchInfoQueue(space, config)
        biq_bits = self.biq.index_bits
        self.f2 = [
            _InsnSlot(space, "fetch.f2[%d]" % i, StorageKind.LATCH,
                      with_parity, biq_bits)
            for i in range(config.fetch_width)
        ]
        self.fetchq = [
            _InsnSlot(space, "fetchq[%d]" % i, StorageKind.RAM, with_parity,
                      biq_bits)
            for i in range(config.fetchq_entries)
        ]
        n = config.fetchq_entries
        ptr_bits = max(1, (n - 1).bit_length())
        self.fq_head = space.field(
            "fetchq.head", ptr_bits, StateCategory.QCTRL, StorageKind.LATCH)
        self.fq_tail = space.field(
            "fetchq.tail", ptr_bits, StateCategory.QCTRL, StorageKind.LATCH)
        self.fq_count = space.field(
            "fetchq.count", ptr_bits + 1, StateCategory.QCTRL,
            StorageKind.LATCH)

        self.decode_slots = [
            _DecodeSlot(space, "decode[%d]" % i, with_parity, biq_bits)
            for i in range(config.decode_width)
        ]

    # -- Reset / flush ------------------------------------------------------

    def reset(self, entry_pc):
        self.fetch_pc.set(pack_pc(entry_pc))
        self.flush()

    def flush(self):
        """Squash everything fetched but not yet renamed."""
        self.imiss_active.set(0)
        for slot in self.f2:
            slot.valid.set(0)
        self.fq_head.set(0)
        self.fq_tail.set(0)
        self.fq_count.set(0)
        for entry in self.fetchq:
            entry.valid.set(0)
        for slot in self.decode_slots:
            slot.valid.set(0)

    def redirect(self, target_pc):
        """Steer fetch to ``target_pc`` (recovery or flush restart)."""
        self.fetch_pc.set(pack_pc(target_pc))
        self.imiss_active.set(0)

    # -- Decode stage (fetchq -> decode latch) -------------------------------

    def decode_stage(self, pipeline):
        if any(slot.valid.get() for slot in self.decode_slots):
            return  # rename has not consumed the previous group
        count = self.fq_count.get()
        if count == 0:
            return
        n_entries = len(self.fetchq)
        take = min(self.config.decode_width, count)
        head = self.fq_head.get()
        taken = 0
        for i in range(take):
            entry = self.fetchq[(head + i) % n_entries]
            if not entry.valid.get():
                # Corrupted queue state: stop at the hole.
                break
            word = entry.insn.get()
            if entry.parity is not None and parity(word) != entry.parity.get():
                pipeline.request_parity_flush()
                break
            self._decode_into(self.decode_slots[i], entry, word)
            entry.valid.set(0)
            taken += 1
        if taken:
            self.fq_head.set((head + taken) % n_entries)
            self.fq_count.set(max(0, count - taken))

    def _decode_into(self, slot, entry, word):
        fields = decode_control_word(isa_decode(word))
        slot.valid.set(1)
        slot.op_id.set(fields["op_id"])
        slot.has_dest.set(fields["has_dest"])
        slot.dest_arch.set(fields["dest_arch"])
        slot.use_a.set(fields["use_a"])
        slot.src_a.set(fields["src_a"])
        slot.use_b.set(fields["use_b"])
        slot.src_b.set(fields["src_b"])
        slot.is_lit.set(fields["is_lit"])
        slot.literal.set(fields["literal"])
        slot.disp.set(fields["disp"])
        slot.insn.set(word)
        slot.pc.set(entry.pc.get())
        slot.pred_taken.set(entry.pred_taken.get())
        slot.biq_index.set(entry.biq_index.get())
        slot.seq.set(entry.seq.get())
        if slot.parity is not None:
            # The whole word still travels with the instruction here.
            slot.parity.set(parity(word))

    # -- Fetch stage 2 (F2 latch -> fetch queue) -------------------------------

    def fetch2_stage(self, pipeline):
        group = [slot for slot in self.f2 if slot.valid.get()]
        if not group:
            return
        n_entries = len(self.fetchq)
        if self.fq_count.get() + len(group) > n_entries:
            return  # back-pressure: hold the group in F2
        tail = self.fq_tail.get()
        for i, slot in enumerate(group):
            entry = self.fetchq[(tail + i) % n_entries]
            entry.copy_from(slot)
            if entry.parity is not None:
                entry.parity.set(parity(slot.insn.get()))
            slot.valid.set(0)
        self.fq_tail.set((tail + len(group)) % n_entries)
        self.fq_count.set(min(n_entries, self.fq_count.get() + len(group)))

    # -- Fetch stage 1 (icache access + prediction -> F2 latch) ----------------

    def fetch1_stage(self, pipeline):
        if self.imiss_active.get():
            timer = self.imiss_timer.get()
            if timer > 1:
                self.imiss_timer.set(timer - 1)
                return
            self.icache.fill(self.imiss_line.get() << 2)
            self.imiss_active.set(0)
            return
        if any(slot.valid.get() for slot in self.f2):
            return  # F2 not drained (fetch queue full)

        pc = unpack_pc(self.fetch_pc.get())
        if not self.icache.lookup(pc):
            pipeline.bump("icache_misses")
            self._start_imiss(pc)
            return

        line_bytes = self.icache.line_bytes
        first_line = self.icache.line_address(pc)
        crossed_line_ok = None  # lazily checked on first crossing
        next_pc = pc
        fetched = 0
        redirect = None
        while fetched < self.config.fetch_width:
            addr = pc + 4 * fetched
            line = self.icache.line_address(addr)
            if line != first_line:
                if crossed_line_ok is None:
                    crossed_line_ok = self.icache.lookup(addr)
                if not crossed_line_ok:
                    break  # stop at the boundary; next cycle handles it
                if line != first_line + line_bytes:
                    break  # at most two sequential lines per fetch
            word = pipeline.memory.fetch_word(addr)
            insn = isa_decode(word)
            biq_index = 0
            if insn.is_control:
                if self.biq.full():
                    break  # no branch-info entry: stall at this insn
                # Snapshot prediction state before this instruction's own
                # speculative effects, for misprediction recovery.
                ras_snap = self.ras.snapshot()
                ghr_snap = self.predictor.global_hist
                pred_taken, pred_target = self._predict(insn, addr)
                predicted_next = pred_target if pred_taken else addr + 4
                biq_index = self.biq.alloc(predicted_next, ras_snap,
                                           ghr_snap)
            else:
                pred_taken, pred_target = False, addr + 4
            slot = self.f2[fetched]
            seq = pipeline.next_seq(addr)
            slot.valid.set(1)
            slot.insn.set(word)
            slot.pc.set(pack_pc(addr))
            slot.pred_taken.set(1 if pred_taken else 0)
            slot.biq_index.set(biq_index)
            slot.seq.set(seq)
            if slot.parity is not None:
                slot.parity.set(parity(word))
            if pipeline.obs is not None:
                pipeline.obs.on_fetch(pipeline, seq=seq, pc=addr)
            fetched += 1
            if pred_taken:
                redirect = pred_target
                break
            if insn.is_halt:
                break  # stop fetching past a halt
        next_pc = redirect if redirect is not None else pc + 4 * fetched
        if fetched:
            self.fetch_pc.set(pack_pc(next_pc))
            pipeline.note_fetch_pages(pc, fetched)

    def _start_imiss(self, pc):
        self.imiss_active.set(1)
        self.imiss_timer.set(min(15, self.config.miss_latency))
        self.imiss_line.set(self.icache.line_address(pc) >> 2)

    def _predict(self, insn, pc):
        """Fetch-time prediction (predecode + predictor structures).

        Returns ``(taken, target)``.  Also performs the speculative RAS
        push/pop and global-history shift, recording recovery snapshots
        in the pipeline's side metadata.
        """
        fall_through = pc + 4
        if insn.is_uncond_branch:  # BR / BSR: direct, always taken
            if insn.op.name == "BSR":
                self.ras.push(fall_through)
            return True, insn.branch_target(pc)
        if insn.is_cond_branch:
            taken = self.predictor.predict(pc)
            self.predictor.speculate(taken)
            return taken, insn.branch_target(pc)
        if insn.is_jump:
            mnem = insn.op.name
            if mnem == "RET":
                return True, self.ras.pop()
            target = self.btb.lookup(pc)
            if mnem == "JSR":
                self.ras.push(fall_through)
            if target is None:
                return False, fall_through  # will resolve at execute
            return True, target
        return False, fall_through
