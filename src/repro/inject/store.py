"""Campaign-result persistence.

Fault-injection campaigns are expensive; their results should outlive
the process.  This module serialises campaign results (micro-
architectural and software-level) to a stable JSON schema and loads them
back, so analyses and figures can be regenerated without re-running
trials, and results from sharded/clustered runs can be merged.
"""

import hashlib
import json

from repro.arch.functional import SoftwareFaultKind
from repro.errors import SimulationError
from repro.inject.campaign import CampaignConfig, CampaignResult
from repro.inject.outcome import FailureMode, TrialOutcome, TrialResult
from repro.inject.software import (
    SoftwareCampaignConfig,
    SoftwareCampaignResult,
    SoftwareOutcome,
    SoftwareTrialResult,
)
from repro.uarch.config import ProtectionConfig
from repro.uarch.statelib import StateCategory, StorageKind

SCHEMA_VERSION = 1

# Version tag of the named-split RNG derivation scheme
# (root -> "workload/<name>" -> "sp/<n>" -> "trial/<n>").  Part of the
# campaign fingerprint: results derived under a different scheme are
# not mergeable/resumable even when the config matches.
RNG_SCHEME = "split-rng/v1"


# -- Microarchitectural campaigns ---------------------------------------------


def config_to_dict(config):
    """Serialise a :class:`CampaignConfig` to plain JSON types.

    The fault model is emitted only when non-default: every pre-faultlib
    campaign was implicitly single-bit, so omitting the default keeps
    their fingerprints -- and with them journal resume, merge, and
    golden-cache validity -- byte-identical.
    """
    data = {
        "workloads": list(config.workloads),
        "scale": config.scale,
        "kinds": config.kinds,
        "trials_per_start_point": config.trials_per_start_point,
        "start_points_per_workload": config.start_points_per_workload,
        "warmup_cycles": config.warmup_cycles,
        "spacing_cycles": config.spacing_cycles,
        "horizon": config.horizon,
        "margin": config.margin,
        "seed": config.seed,
        "locked_multiplier": config.locked_multiplier,
        "protection": {
            "timeout": config.protection.timeout,
            "regfile_ecc": config.protection.regfile_ecc,
            "regptr_ecc": config.protection.regptr_ecc,
            "insn_parity": config.protection.insn_parity,
        },
    }
    if config.fault_model != "single_bit":
        data["fault_model"] = config.fault_model
    return data


def config_from_dict(raw_config):
    """Inverse of :func:`config_to_dict`."""
    return CampaignConfig(
        fault_model=raw_config.get("fault_model", "single_bit"),
        workloads=tuple(raw_config["workloads"]),
        scale=raw_config["scale"],
        kinds=raw_config["kinds"],
        trials_per_start_point=raw_config["trials_per_start_point"],
        start_points_per_workload=raw_config["start_points_per_workload"],
        warmup_cycles=raw_config["warmup_cycles"],
        spacing_cycles=raw_config["spacing_cycles"],
        horizon=raw_config["horizon"],
        margin=raw_config["margin"],
        seed=raw_config["seed"],
        locked_multiplier=raw_config.get("locked_multiplier", 2),
        protection=ProtectionConfig(**raw_config["protection"]),
    )


def campaign_fingerprint(config):
    """Identity of a campaign's trial set: config + RNG scheme.

    Two runs with equal fingerprints produce byte-identical trials for
    any given ``(workload, start_point, trial_index)`` unit, so their
    partial results may be journaled, resumed, and merged
    interchangeably.  ``verify_golden``, ``provenance`` and ``profile``
    are deliberately excluded: they add fault-free self-checks or
    observation-only instrumentation and never change a trial, so runs
    with and without them stay resumable/mergeable with each other.
    """
    blob = json.dumps(
        {"config": config_to_dict(config), "rng": RNG_SCHEME},
        sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(blob.encode("utf-8")).hexdigest()


def trial_to_dict(trial):
    """Serialise one :class:`TrialResult` to plain JSON types.

    As with :func:`config_to_dict`, the fault model is emitted only
    when non-default, so legacy (all-single-bit) journal lines
    round-trip byte-identically through load + re-encode.
    """
    data = {
        "outcome": trial.outcome.value,
        "mode": trial.failure_mode.value
        if trial.failure_mode else None,
        "workload": trial.workload,
        "element": trial.element_name,
        "category": trial.category,
        "kind": trial.kind,
        "bit": trial.bit,
        "start_point": trial.start_point,
        "trial_index": trial.trial_index,
        "inject_cycle": trial.inject_cycle,
        "cycles_run": trial.cycles_run,
        "valid_inflight": trial.valid_inflight,
        "total_inflight": trial.total_inflight,
        "detail": trial.detail,
        "first_read_cycle": trial.first_read_cycle,
        "arch_corrupt_cycle": trial.arch_corrupt_cycle,
        "detect_latency": trial.detect_latency,
        "masking_cause": trial.masking_cause,
    }
    if trial.fault_model != "single_bit":
        data["fault_model"] = trial.fault_model
    return data


def trial_from_dict(raw):
    """Inverse of :func:`trial_to_dict`.

    Tolerant of older documents: legacy journals carry no ``bit`` (the
    harness used to hardcode 0), no propagation fields, and no
    ``fault_model`` (all pre-faultlib trials are single-bit) -- they
    load with ``bit=0``, the propagation fields None, and
    ``fault_model="single_bit"``.
    """
    return TrialResult(
        fault_model=raw.get("fault_model", "single_bit"),
        outcome=TrialOutcome(raw["outcome"]),
        failure_mode=FailureMode(raw["mode"]) if raw["mode"] else None,
        workload=raw["workload"],
        element_name=raw["element"],
        category=raw["category"],
        kind=raw["kind"],
        bit=raw.get("bit", 0),
        start_point=raw["start_point"],
        trial_index=raw.get("trial_index", -1),
        inject_cycle=raw["inject_cycle"],
        cycles_run=raw["cycles_run"],
        valid_inflight=raw["valid_inflight"],
        total_inflight=raw["total_inflight"],
        detail=raw.get("detail", ""),
        first_read_cycle=raw.get("first_read_cycle"),
        arch_corrupt_cycle=raw.get("arch_corrupt_cycle"),
        detect_latency=raw.get("detect_latency"),
        masking_cause=raw.get("masking_cause"),
    )


def inventory_to_dict(inventory):
    """Serialise a category inventory to plain JSON types."""
    return {
        category.value: {
            kind.value: bits for kind, bits in cell.items()
        }
        for category, cell in inventory.items()
    }


def inventory_from_dict(data):
    """Inverse of :func:`inventory_to_dict`."""
    return {
        StateCategory(category): {
            StorageKind(kind): bits for kind, bits in cell.items()
        }
        for category, cell in data.items()
    }


def campaign_to_dict(result):
    """Serialise a :class:`CampaignResult` to plain JSON types."""
    return {
        "schema": SCHEMA_VERSION,
        "kind": "uarch-campaign",
        "fingerprint": campaign_fingerprint(result.config),
        "config": config_to_dict(result.config),
        "eligible_bits": result.eligible_bits,
        "inventory": inventory_to_dict(result.inventory),
        "elapsed_seconds": result.elapsed_seconds,
        "trials": [trial_to_dict(trial) for trial in result.trials],
    }


def campaign_from_dict(data):
    """Inverse of :func:`campaign_to_dict`."""
    if data.get("kind") != "uarch-campaign":
        raise ValueError("not a uarch-campaign document")
    return CampaignResult(
        config=config_from_dict(data["config"]),
        trials=[trial_from_dict(raw) for raw in data["trials"]],
        eligible_bits=data["eligible_bits"],
        inventory=inventory_from_dict(data["inventory"]),
        elapsed_seconds=data["elapsed_seconds"],
    )


# -- Software campaigns ----------------------------------------------------------


def software_to_dict(result):
    """Serialise a software-campaign result to plain JSON types."""
    config = result.config
    return {
        "schema": SCHEMA_VERSION,
        "kind": "software-campaign",
        "config": {
            "workloads": list(config.workloads),
            "scale": config.scale,
            "models": [model.value for model in config.models],
            "trials_per_model_per_workload":
                config.trials_per_model_per_workload,
            "seed": config.seed,
        },
        "elapsed_seconds": result.elapsed_seconds,
        "trials": [
            {
                "outcome": trial.outcome.value,
                "model": trial.model.value,
                "workload": trial.workload,
                "inject_index": trial.inject_index,
                "control_diverged": trial.control_diverged,
                "instructions_run": trial.instructions_run,
            }
            for trial in result.trials
        ],
    }


def software_from_dict(data):
    """Inverse of :func:`software_to_dict`."""
    if data.get("kind") != "software-campaign":
        raise ValueError("not a software-campaign document")
    raw_config = data["config"]
    config = SoftwareCampaignConfig(
        workloads=tuple(raw_config["workloads"]),
        scale=raw_config["scale"],
        models=tuple(SoftwareFaultKind(m) for m in raw_config["models"]),
        trials_per_model_per_workload=
        raw_config["trials_per_model_per_workload"],
        seed=raw_config["seed"],
    )
    trials = [
        SoftwareTrialResult(
            outcome=SoftwareOutcome(raw["outcome"]),
            model=SoftwareFaultKind(raw["model"]),
            workload=raw["workload"],
            inject_index=raw["inject_index"],
            control_diverged=raw["control_diverged"],
            instructions_run=raw["instructions_run"],
        )
        for raw in data["trials"]
    ]
    return SoftwareCampaignResult(
        config=config, trials=trials,
        elapsed_seconds=data["elapsed_seconds"])


# -- File I/O -------------------------------------------------------------------------


def save_result(result, path):
    """Write a campaign result (either kind) to ``path`` as JSON."""
    if isinstance(result, CampaignResult):
        document = campaign_to_dict(result)
    elif isinstance(result, SoftwareCampaignResult):
        document = software_to_dict(result)
    else:
        raise TypeError("unsupported result type %r" % type(result))
    with open(path, "w") as handle:
        json.dump(document, handle, indent=1)


def load_result(path):
    """Load a result saved by :func:`save_result`."""
    with open(path) as handle:
        document = json.load(handle)
    if document.get("kind") == "uarch-campaign":
        return campaign_from_dict(document)
    if document.get("kind") == "software-campaign":
        return software_from_dict(document)
    raise ValueError("unrecognised result document in %s" % path)


def merge_campaigns(results):
    """Merge shard results of the *same* configuration (cluster runs)."""
    results = list(results)
    if not results:
        raise ValueError("nothing to merge")
    first = results[0]
    trials = []
    elapsed = 0.0
    for result in results:
        trials.extend(result.trials)
        elapsed = max(elapsed, result.elapsed_seconds)
    return CampaignResult(
        config=first.config,
        trials=trials,
        eligible_bits=first.eligible_bits,
        inventory=first.inventory,
        elapsed_seconds=elapsed,
    )


def merge_campaign_dicts(documents):
    """Merge partial uarch-campaign documents of one fingerprint.

    Takes serialised documents (the :func:`campaign_to_dict` shape) from
    several runs of the *same* campaign -- e.g. journaled partial results
    recovered from interrupted runs on different hosts -- deduplicates
    trials on their ``(workload, start_point, trial_index)`` unit key,
    and returns one merged document with the trials in serial
    (``Campaign.run()``) order.  Mixing documents with different
    ``schema`` versions or campaign fingerprints raises
    :class:`~repro.errors.SimulationError`: their trials are not drawn
    from the same experiment and must never be aggregated.
    """
    documents = list(documents)
    if not documents:
        raise SimulationError("merge_campaign_dicts: nothing to merge")
    first = documents[0]
    first_fingerprint = None
    merged = {}
    synthetic = 0  # unique keys for legacy trials without a trial_index
    elapsed = 0.0
    for position, document in enumerate(documents):
        if document.get("kind") != "uarch-campaign":
            raise SimulationError(
                "merge_campaign_dicts: document %d is %r, not a "
                "uarch-campaign" % (position, document.get("kind")))
        if document.get("schema") != first.get("schema"):
            raise SimulationError(
                "merge_campaign_dicts: schema mismatch (document 0 has "
                "schema %r, document %d has %r)"
                % (first.get("schema"), position, document.get("schema")))
        fingerprint = campaign_fingerprint(
            config_from_dict(document["config"]))
        if first_fingerprint is None:
            first_fingerprint = fingerprint
        elif fingerprint != first_fingerprint:
            raise SimulationError(
                "merge_campaign_dicts: campaign fingerprint mismatch "
                "(document 0 is %s, document %d is %s); refusing to "
                "aggregate trials from different experiments"
                % (first_fingerprint[:12], position, fingerprint[:12]))
        elapsed = max(elapsed, document.get("elapsed_seconds", 0.0))
        for raw in document["trials"]:
            index = raw.get("trial_index", -1)
            if index < 0:
                key = ("?", synthetic)
                synthetic += 1
            else:
                key = (raw["workload"], raw["start_point"], index)
            merged.setdefault(key, raw)

    config = config_from_dict(first["config"])
    workload_order = {name: i for i, name in enumerate(config.workloads)}
    trials = sorted(
        merged.values(),
        key=lambda raw: (workload_order.get(raw["workload"],
                                            len(workload_order)),
                         raw["start_point"],
                         raw.get("trial_index", -1)))
    return {
        "schema": first["schema"],
        "kind": "uarch-campaign",
        "fingerprint": first_fingerprint,
        "config": dict(first["config"]),
        "eligible_bits": first["eligible_bits"],
        "inventory": first["inventory"],
        "elapsed_seconds": elapsed,
        "trials": trials,
    }
