"""Campaign-result persistence.

Fault-injection campaigns are expensive; their results should outlive
the process.  This module serialises campaign results (micro-
architectural and software-level) to a stable JSON schema and loads them
back, so analyses and figures can be regenerated without re-running
trials, and results from sharded/clustered runs can be merged.
"""

import json

from repro.arch.functional import SoftwareFaultKind
from repro.inject.campaign import CampaignConfig, CampaignResult
from repro.inject.outcome import FailureMode, TrialOutcome, TrialResult
from repro.inject.software import (
    SoftwareCampaignConfig,
    SoftwareCampaignResult,
    SoftwareOutcome,
    SoftwareTrialResult,
)
from repro.uarch.config import ProtectionConfig
from repro.uarch.statelib import StateCategory, StorageKind

SCHEMA_VERSION = 1


# -- Microarchitectural campaigns ---------------------------------------------


def campaign_to_dict(result):
    """Serialise a :class:`CampaignResult` to plain JSON types."""
    config = result.config
    return {
        "schema": SCHEMA_VERSION,
        "kind": "uarch-campaign",
        "config": {
            "workloads": list(config.workloads),
            "scale": config.scale,
            "kinds": config.kinds,
            "trials_per_start_point": config.trials_per_start_point,
            "start_points_per_workload": config.start_points_per_workload,
            "warmup_cycles": config.warmup_cycles,
            "spacing_cycles": config.spacing_cycles,
            "horizon": config.horizon,
            "margin": config.margin,
            "seed": config.seed,
            "protection": {
                "timeout": config.protection.timeout,
                "regfile_ecc": config.protection.regfile_ecc,
                "regptr_ecc": config.protection.regptr_ecc,
                "insn_parity": config.protection.insn_parity,
            },
        },
        "eligible_bits": result.eligible_bits,
        "inventory": {
            category.value: {
                kind.value: bits for kind, bits in cell.items()
            }
            for category, cell in result.inventory.items()
        },
        "elapsed_seconds": result.elapsed_seconds,
        "trials": [
            {
                "outcome": trial.outcome.value,
                "mode": trial.failure_mode.value
                if trial.failure_mode else None,
                "workload": trial.workload,
                "element": trial.element_name,
                "category": trial.category,
                "kind": trial.kind,
                "start_point": trial.start_point,
                "inject_cycle": trial.inject_cycle,
                "cycles_run": trial.cycles_run,
                "valid_inflight": trial.valid_inflight,
                "total_inflight": trial.total_inflight,
                "detail": trial.detail,
            }
            for trial in result.trials
        ],
    }


def campaign_from_dict(data):
    """Inverse of :func:`campaign_to_dict`."""
    if data.get("kind") != "uarch-campaign":
        raise ValueError("not a uarch-campaign document")
    raw_config = data["config"]
    config = CampaignConfig(
        workloads=tuple(raw_config["workloads"]),
        scale=raw_config["scale"],
        kinds=raw_config["kinds"],
        trials_per_start_point=raw_config["trials_per_start_point"],
        start_points_per_workload=raw_config["start_points_per_workload"],
        warmup_cycles=raw_config["warmup_cycles"],
        spacing_cycles=raw_config["spacing_cycles"],
        horizon=raw_config["horizon"],
        margin=raw_config["margin"],
        seed=raw_config["seed"],
        protection=ProtectionConfig(**raw_config["protection"]),
    )
    trials = [
        TrialResult(
            outcome=TrialOutcome(raw["outcome"]),
            failure_mode=FailureMode(raw["mode"]) if raw["mode"] else None,
            workload=raw["workload"],
            element_name=raw["element"],
            category=raw["category"],
            kind=raw["kind"],
            bit=0,
            start_point=raw["start_point"],
            inject_cycle=raw["inject_cycle"],
            cycles_run=raw["cycles_run"],
            valid_inflight=raw["valid_inflight"],
            total_inflight=raw["total_inflight"],
            detail=raw.get("detail", ""),
        )
        for raw in data["trials"]
    ]
    inventory = {
        StateCategory(category): {
            StorageKind(kind): bits for kind, bits in cell.items()
        }
        for category, cell in data["inventory"].items()
    }
    return CampaignResult(
        config=config,
        trials=trials,
        eligible_bits=data["eligible_bits"],
        inventory=inventory,
        elapsed_seconds=data["elapsed_seconds"],
    )


# -- Software campaigns ----------------------------------------------------------


def software_to_dict(result):
    """Serialise a software-campaign result to plain JSON types."""
    config = result.config
    return {
        "schema": SCHEMA_VERSION,
        "kind": "software-campaign",
        "config": {
            "workloads": list(config.workloads),
            "scale": config.scale,
            "models": [model.value for model in config.models],
            "trials_per_model_per_workload":
                config.trials_per_model_per_workload,
            "seed": config.seed,
        },
        "elapsed_seconds": result.elapsed_seconds,
        "trials": [
            {
                "outcome": trial.outcome.value,
                "model": trial.model.value,
                "workload": trial.workload,
                "inject_index": trial.inject_index,
                "control_diverged": trial.control_diverged,
                "instructions_run": trial.instructions_run,
            }
            for trial in result.trials
        ],
    }


def software_from_dict(data):
    """Inverse of :func:`software_to_dict`."""
    if data.get("kind") != "software-campaign":
        raise ValueError("not a software-campaign document")
    raw_config = data["config"]
    config = SoftwareCampaignConfig(
        workloads=tuple(raw_config["workloads"]),
        scale=raw_config["scale"],
        models=tuple(SoftwareFaultKind(m) for m in raw_config["models"]),
        trials_per_model_per_workload=
        raw_config["trials_per_model_per_workload"],
        seed=raw_config["seed"],
    )
    trials = [
        SoftwareTrialResult(
            outcome=SoftwareOutcome(raw["outcome"]),
            model=SoftwareFaultKind(raw["model"]),
            workload=raw["workload"],
            inject_index=raw["inject_index"],
            control_diverged=raw["control_diverged"],
            instructions_run=raw["instructions_run"],
        )
        for raw in data["trials"]
    ]
    return SoftwareCampaignResult(
        config=config, trials=trials,
        elapsed_seconds=data["elapsed_seconds"])


# -- File I/O -------------------------------------------------------------------------


def save_result(result, path):
    """Write a campaign result (either kind) to ``path`` as JSON."""
    if isinstance(result, CampaignResult):
        document = campaign_to_dict(result)
    elif isinstance(result, SoftwareCampaignResult):
        document = software_to_dict(result)
    else:
        raise TypeError("unsupported result type %r" % type(result))
    with open(path, "w") as handle:
        json.dump(document, handle, indent=1)


def load_result(path):
    """Load a result saved by :func:`save_result`."""
    with open(path) as handle:
        document = json.load(handle)
    if document.get("kind") == "uarch-campaign":
        return campaign_from_dict(document)
    if document.get("kind") == "software-campaign":
        return software_from_dict(document)
    raise ValueError("unrecognised result document in %s" % path)


def merge_campaigns(results):
    """Merge shard results of the *same* configuration (cluster runs)."""
    results = list(results)
    if not results:
        raise ValueError("nothing to merge")
    first = results[0]
    trials = []
    elapsed = 0.0
    for result in results:
        trials.extend(result.trials)
        elapsed = max(elapsed, result.elapsed_seconds)
    return CampaignResult(
        config=first.config,
        trials=trials,
        eligible_bits=first.eligible_bits,
        inventory=first.inventory,
        elapsed_seconds=elapsed,
    )
