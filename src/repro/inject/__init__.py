"""Fault-injection framework (paper Sections 2-4).

One *trial* = restore a checkpoint (start point), flip one uniformly
chosen bit of eligible pipeline state, run for up to the horizon while
comparing against the golden execution, and classify the outcome:

* ``MICRO_MATCH``  -- complete microarchitectural state match (masked);
* ``SDC``          -- silent data corruption (failure modes ``ctrl``,
  ``dtlb``, ``itlb``, ``mem``, ``regfile``);
* ``TERMINATED``   -- premature termination (``except``, ``locked``);
* ``GRAY``         -- neither within the horizon (latent or timing-shifted).

A *campaign* (paper: 25,000-30,000 trials over 250-300 start points)
sweeps trials across start points and workloads; the ``software`` module
implements the Section-5 architectural-level injections.
"""

from repro.inject.campaign import Campaign, CampaignConfig, CampaignResult
from repro.inject.golden import GoldenTrace, record_golden
from repro.inject.outcome import FailureMode, TrialOutcome, TrialResult
from repro.inject.software import (
    SoftwareCampaign,
    SoftwareCampaignConfig,
    SoftwareOutcome,
)
from repro.inject.parallel import run_parallel
from repro.inject.store import load_result, save_result
from repro.inject.trial import run_trial

__all__ = [
    "Campaign",
    "CampaignConfig",
    "CampaignResult",
    "GoldenTrace",
    "record_golden",
    "FailureMode",
    "TrialOutcome",
    "TrialResult",
    "SoftwareCampaign",
    "SoftwareCampaignConfig",
    "SoftwareOutcome",
    "run_trial",
    "run_parallel",
    "save_result",
    "load_result",
]
