"""Golden-trace recording.

For each start point, the fault-free pipeline is run once for
``horizon + margin`` cycles recording everything trials compare against:

* the full microarchitectural state signature after every cycle (the
  μArch-Match criterion);
* the committed-register-file view hash per retirement count observed
  at a cycle boundary -- the timing-tolerant architectural check (the
  fault-free view is a pure function of the retirement count, recorded
  once per count and re-verified each cycle by the replay check);
* the retirement stream (pc, operation, destination, value);
* the store-drain stream (address, value, size);
* the set of sequence numbers that eventually retire (for the Figure 6
  valid-instruction occupancy metric);
* the instruction/data page sets of the complete fault-free execution
  (the paper's TLB preload), computed once per workload on the
  functional simulator.
"""

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Set

from repro.arch.functional import FunctionalSimulator
from repro.errors import CampaignError, SimulationError


@dataclass
class GoldenTrace:
    """Everything a trial compares against, for one start point."""

    start_cycle: int
    horizon: int
    margin: int
    sigs: List[int] = field(default_factory=list)
    view_by_k: Dict[int, int] = field(default_factory=dict)
    retired: List[tuple] = field(default_factory=list)
    drains: List[tuple] = field(default_factory=list)
    retired_seqs: Set[int] = field(default_factory=set)
    insn_pages: Set[int] = field(default_factory=set)
    data_pages: Set[int] = field(default_factory=set)
    final_snapshot: List[int] = field(default_factory=list)
    # Fault-free access-activity trace for the bit-plane batched engine
    # (:class:`repro.perf.batch.ActivityTrace`).  Attached lazily on
    # first batched use and persisted via the golden cache; traces
    # pickled before this field existed unpickle without the attribute,
    # so consumers read it with ``getattr(trace, "activity", None)``.
    activity: Optional[object] = None


def workload_page_sets(program, max_instructions=20_000_000):
    """The TLB-preload page sets: every page the fault-free run touches.

    Mirrors the paper's methodology of preloading both TLBs with all
    pages accessed by the workload in the absence of faults.
    """
    sim = FunctionalSimulator(program, track_pages=True)
    sim.run(max_instructions)
    return set(sim.insn_pages), set(sim.memory.touched_pages)


def record_golden(pipeline, checkpoint, horizon, margin, insn_pages,
                  data_pages, verify_replay=False):
    """Run the fault-free pipeline from ``checkpoint`` and record it.

    With ``verify_replay=True`` the fault-free window is run a second
    time and cross-checked against the recording
    (:func:`verify_golden_replay`): the whole outcome taxonomy assumes
    the golden run is bit-exactly reproducible, so any hidden
    nondeterminism (unregistered shadow state, unseeded randomness,
    iteration-order dependence) is caught here instead of surfacing as
    phantom μArch-Match failures deep inside a campaign.
    """
    pipeline.restore(checkpoint)
    pipeline.tlb_insn_pages = None
    pipeline.tlb_data_pages = None

    trace = GoldenTrace(
        start_cycle=pipeline.cycle_count,
        horizon=horizon,
        margin=margin,
        insn_pages=insn_pages,
        data_pages=data_pages,
    )
    space = pipeline.space
    k = 0
    last_view_k = 0
    trace.view_by_k[0] = hash(pipeline.committed_view())
    for _ in range(horizon + margin):
        pipeline.cycle()
        for record in pipeline.retired_this_cycle:
            trace.retired.append(record)
            trace.retired_seqs.add(record[0])
            k += 1
        trace.drains.extend(pipeline.drains_this_cycle)
        trace.sigs.append(space.signature())
        # The fault-free committed view is a pure function of the
        # retirement count, so it is hashed only when k advances (the
        # replay verification below re-checks it every cycle).
        if k != last_view_k:
            last_view_k = k
            trace.view_by_k[k] = hash(pipeline.committed_view())
        if pipeline.failure_event is not None:
            raise SimulationError(
                "golden run raised %r -- workload or model bug"
                % (pipeline.failure_event,))
        if pipeline.halted:
            raise CampaignError(
                "golden run halted inside the trace window; use a longer "
                "workload scale for injection campaigns")
    trace.final_snapshot = space.snapshot()
    if space.signature() != space.signature(full=True):
        raise SimulationError(
            "incremental state signature drifted from the full recompute "
            "over the golden window: some write bypassed the "
            "signature-maintaining Field path (see lint rule REP005)")
    if verify_replay:
        verify_golden_replay(pipeline, checkpoint, trace)
    return trace


def verify_golden_replay(pipeline, checkpoint, trace):
    """Re-run the golden window and assert it is bit-exactly identical.

    Raises :class:`SimulationError` naming the first divergent state
    element (and the first divergent cycle, when the per-cycle
    signatures differ) if the two fault-free runs do not match.
    """
    pipeline.restore(checkpoint)
    pipeline.tlb_insn_pages = None
    pipeline.tlb_data_pages = None

    space = pipeline.space
    first_bad_cycle = None
    k = 0
    window = trace.horizon + trace.margin
    for step in range(window):
        pipeline.cycle()
        k += len(pipeline.retired_this_cycle)
        signature = space.signature()
        # Cross-check the rolled signature against a full recompute
        # periodically (a full pass costs as much as a cycle, so every
        # cycle would double the replay) and always at the window end.
        if (step & 63 == 63 or step == window - 1) \
                and signature != space.signature(full=True):
            raise SimulationError(
                "incremental state signature drifted from the full "
                "recompute at cycle %d: some write bypassed the "
                "signature-maintaining Field path (see lint rule REP005)"
                % (trace.start_cycle + step + 1))
        recorded_view = trace.view_by_k.get(k)
        if recorded_view is not None \
                and hash(pipeline.committed_view()) != recorded_view:
            raise SimulationError(
                "committed register view changed between two fault-free "
                "cycles at the same retirement count (k=%d, cycle %d); "
                "the per-k view memoization is unsound for this model"
                % (k, trace.start_cycle + step + 1))
        if first_bad_cycle is None and signature != trace.sigs[step]:
            # Keep running to the end of the window: the final snapshot
            # is compared element-wise below, which names the culprit
            # instead of just pointing at a hash mismatch.
            first_bad_cycle = trace.start_cycle + step + 1
    replay_snapshot = space.snapshot()

    divergent = None
    for index, (recorded, replayed) in enumerate(
            zip(trace.final_snapshot, replay_snapshot)):
        if recorded != replayed:
            divergent = space.elements[index]
            break

    if divergent is not None:
        raise SimulationError(
            "golden run is not deterministic: element %r differs between "
            "two fault-free runs of the same window (recorded %d, replay "
            "%d%s); hidden shadow state or unseeded randomness in the "
            "model" % (
                divergent.name,
                trace.final_snapshot[divergent.index],
                replay_snapshot[divergent.index],
                "" if first_bad_cycle is None
                else ", first divergent cycle %d" % first_bad_cycle))
    if first_bad_cycle is not None:
        raise SimulationError(
            "golden run is not deterministic: state signature diverged at "
            "cycle %d but the runs reconverged by the end of the window; "
            "transient hidden state in the model" % first_bad_cycle)
