"""Golden-trace recording.

For each start point, the fault-free pipeline is run once for
``horizon + margin`` cycles recording everything trials compare against:

* the full microarchitectural state signature after every cycle (the
  μArch-Match criterion);
* the committed-register-file view hash at every (cycle-boundary,
  retirement-count) point -- the timing-tolerant architectural check;
* the retirement stream (pc, operation, destination, value);
* the store-drain stream (address, value, size);
* the set of sequence numbers that eventually retire (for the Figure 6
  valid-instruction occupancy metric);
* the instruction/data page sets of the complete fault-free execution
  (the paper's TLB preload), computed once per workload on the
  functional simulator.
"""

from dataclasses import dataclass, field
from typing import Dict, List, Set

from repro.arch.functional import FunctionalSimulator
from repro.errors import CampaignError, SimulationError


@dataclass
class GoldenTrace:
    """Everything a trial compares against, for one start point."""

    start_cycle: int
    horizon: int
    margin: int
    sigs: List[int] = field(default_factory=list)
    view_by_k: Dict[int, int] = field(default_factory=dict)
    retired: List[tuple] = field(default_factory=list)
    drains: List[tuple] = field(default_factory=list)
    retired_seqs: Set[int] = field(default_factory=set)
    insn_pages: Set[int] = field(default_factory=set)
    data_pages: Set[int] = field(default_factory=set)


def workload_page_sets(program, max_instructions=20_000_000):
    """The TLB-preload page sets: every page the fault-free run touches.

    Mirrors the paper's methodology of preloading both TLBs with all
    pages accessed by the workload in the absence of faults.
    """
    sim = FunctionalSimulator(program, track_pages=True)
    sim.run(max_instructions)
    return set(sim.insn_pages), set(sim.memory.touched_pages)


def record_golden(pipeline, checkpoint, horizon, margin, insn_pages,
                  data_pages):
    """Run the fault-free pipeline from ``checkpoint`` and record it."""
    pipeline.restore(checkpoint)
    pipeline.tlb_insn_pages = None
    pipeline.tlb_data_pages = None

    trace = GoldenTrace(
        start_cycle=pipeline.cycle_count,
        horizon=horizon,
        margin=margin,
        insn_pages=insn_pages,
        data_pages=data_pages,
    )
    space = pipeline.space
    k = 0
    trace.view_by_k[0] = hash(pipeline.committed_view())
    for _ in range(horizon + margin):
        pipeline.cycle()
        for record in pipeline.retired_this_cycle:
            trace.retired.append(record)
            trace.retired_seqs.add(record[0])
            k += 1
        trace.drains.extend(pipeline.drains_this_cycle)
        trace.sigs.append(space.signature())
        trace.view_by_k[k] = hash(pipeline.committed_view())
        if pipeline.failure_event is not None:
            raise SimulationError(
                "golden run raised %r -- workload or model bug"
                % (pipeline.failure_event,))
        if pipeline.halted:
            raise CampaignError(
                "golden run halted inside the trace window; use a longer "
                "workload scale for injection campaigns")
    return trace
