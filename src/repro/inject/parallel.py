"""Multiprocess campaign execution (compatibility wrapper).

Historically this module sharded a campaign at *workload* granularity:
one process per workload, parallelism capped at ``len(workloads)``, a
killed run losing every finished trial.  It is now a thin wrapper over
the trial-granular execution engine in :mod:`repro.runner`, which
schedules ``(workload, start_point, trial_index)`` units dynamically
across the pool -- a single-workload campaign with many start points
and trials now uses every worker.

Determinism is unchanged: each trial derives its RNG from the same
named-split scheme the serial runner uses, so ``run_parallel(config)``
returns exactly the trials of ``Campaign(config).run()`` in serial
order, for any worker count.
"""

import os

__all__ = ["run_parallel"]


def run_parallel(config, pipeline_config=None, workers=None,
                 batch_lanes=None):
    """Run a campaign on the trial-granular engine.

    ``workers`` defaults to ``min(cpu_count, total_trials)``.  Returns
    a :class:`~repro.inject.campaign.CampaignResult` whose trials are
    ordered exactly as the serial runner would produce them (workload
    order, then start point, then trial index).  ``batch_lanes`` packs
    that many trials per unit into the bit-plane batched engine
    (:mod:`repro.perf.batch`); it is an execution-strategy knob with
    byte-identical results, so it is not part of the campaign
    fingerprint.  For journaling, crash recovery, and telemetry, use
    :class:`repro.runner.CampaignRunner` directly.
    """
    from repro.runner.engine import CampaignRunner
    if workers is None:
        workers = min(os.cpu_count() or 1, config.total_trials)
    return CampaignRunner(config, pipeline_config, workers=workers,
                          batch_lanes=batch_lanes).run()
