"""Multiprocess campaign execution.

Pure-Python cycle simulation is the bottleneck of every experiment, but
campaigns parallelise perfectly: workloads (and start points within a
workload) share nothing except the configuration.  This module shards a
:class:`~repro.inject.campaign.CampaignConfig` across worker processes
and merges the (picklable) :class:`TrialResult` lists.

Determinism is preserved: each shard derives its RNG streams from the
same named-split scheme the serial runner uses, so
``run_parallel(config)`` returns exactly the trials of
``Campaign(config).run()``, merely reordered by shard, and the merge
re-sorts them into the serial order.
"""

import os
from concurrent.futures import ProcessPoolExecutor
from dataclasses import replace

from repro.inject.campaign import Campaign, CampaignResult


def _run_shard(args):
    """Worker entry point: run one single-workload campaign shard."""
    config, pipeline_config = args
    result = Campaign(config, pipeline_config).run()
    return result


def run_parallel(config, pipeline_config=None, workers=None):
    """Run a campaign with one process per workload shard.

    ``workers`` defaults to ``min(len(workloads), cpu_count)``.  Returns
    a merged :class:`CampaignResult` whose trials are ordered exactly as
    the serial runner would produce them (workload order, then start
    point, then trial index).
    """
    workloads = list(config.workloads)
    if workers is None:
        workers = min(len(workloads), os.cpu_count() or 1)
    if workers <= 1 or len(workloads) <= 1:
        return Campaign(config, pipeline_config).run()

    shards = [
        (replace(config, workloads=(workload,)), pipeline_config)
        for workload in workloads
    ]
    results = []
    with ProcessPoolExecutor(max_workers=workers) as pool:
        for shard_result in pool.map(_run_shard, shards):
            results.append(shard_result)

    merged_trials = []
    elapsed = 0.0
    for shard_result in results:
        merged_trials.extend(shard_result.trials)
        elapsed = max(elapsed, shard_result.elapsed_seconds)
    first = results[0]
    return CampaignResult(
        config=config,
        trials=merged_trials,
        eligible_bits=first.eligible_bits,
        inventory=first.inventory,
        elapsed_seconds=elapsed,
    )
