"""Single-trial execution and outcome classification (paper Section 2.2).

The trial restores the start-point checkpoint, flips one bit, installs
the TLB page sets, and monitors the pipeline for up to ``horizon``
cycles.  Classification, in precedence order each cycle:

1. a failure event raised at retirement (``itlb`` / ``dtlb`` /
   ``except``);
2. retirement-stream divergence: wrong PC committed -> ``ctrl``; right
   PC but wrong destination/value -> ``regfile``;
3. store-drain divergence -> ``mem``;
4. committed-register-view divergence at a matching retirement count ->
   ``regfile`` (this is what catches direct hits on committed state);
5. ``deadlock`` cycles without retirement -> ``locked`` (the observation
   threshold is twice the in-pipeline timeout threshold so that a
   successful timeout-flush recovery is *not* misclassified -- it lands
   in Gray Area instead, as in paper Figure 9);
6. full microarchitectural state match with the golden signature ->
   ``MICRO_MATCH`` (masked);
7. horizon exhausted -> ``GRAY``.

The classification loop itself is :func:`classify_window`, a reusable
predicate over *any* suffix of the trace window: :func:`run_trial`
calls it from cycle 0 with zeroed counters, and the bit-plane batched
engine (:mod:`repro.perf.batch`) calls it mid-window for a lane whose
state just departed the golden run, passing the counters the scalar
loop would have accumulated over the (provably golden-identical)
prefix.  Because the prefix counters are exact, the suffix returns the
byte-identical :class:`~repro.inject.outcome.TrialResult` the full
scalar loop would.
"""

from repro.arch.memory import page_of
from repro.inject.outcome import FailureMode, TrialOutcome, TrialResult

__all__ = ["run_trial", "classify_window", "compare_retired"]

_FAILURE_BY_EVENT = {
    "itlb": FailureMode.ITLB,
    "dtlb": FailureMode.DTLB,
    "except": FailureMode.EXCEPT,
}


def run_trial(pipeline, checkpoint, golden, rng, kinds, workload_name,
              start_point, horizon=None, locked_multiplier=2,
              trial_index=-1, obs=None, model=None):
    """Run one fault-injection trial; returns a :class:`TrialResult`.

    ``obs`` is an optional :class:`repro.obs.Observer`; it is attached
    to the pipeline for the duration of the trial (and always detached,
    even on an exception) and only *observes* -- the classification is
    byte-identical with or without it.  ``model`` is an optional parsed
    :class:`~repro.faultlib.FaultModel`; None (or the default model)
    runs the legacy single-bit path unchanged.
    """
    pipeline.restore(checkpoint)
    pipeline.tlb_insn_pages = golden.insn_pages
    pipeline.tlb_data_pages = golden.data_pages

    inflight = pipeline.inflight_seqs()
    valid_inflight = sum(1 for s in inflight if s in golden.retired_seqs)

    pipeline.obs = obs
    try:
        meta, bit, fault = pipeline.inject_fault(rng, kinds, model)
        return classify_window(
            pipeline, golden, meta, bit, workload_name, start_point,
            horizon=horizon, locked_multiplier=locked_multiplier,
            trial_index=trial_index, obs=obs,
            valid_inflight=valid_inflight, total_inflight=len(inflight),
            fault=fault)
    finally:
        pipeline.obs = None
        if obs is not None:
            obs.release()


def classify_window(pipeline, golden, meta, bit, workload_name,
                    start_point, horizon=None, locked_multiplier=2,
                    trial_index=-1, obs=None, valid_inflight=0,
                    total_inflight=0, first_cycle=0, retired_count=0,
                    drain_count=0, cycles_since_retire=0, view_k=None,
                    view_hash=None, fault=None):
    """Run the classification loop from ``first_cycle`` to the horizon.

    The pipeline must already hold the faulty state the window starts
    from (checkpoint restored, TLB pages installed, bit flipped).  The
    trailing keyword arguments are the loop counters as they stand at
    the *start* of ``first_cycle``; the scalar trial passes the
    defaults, the batched engine passes the golden run's exact prefix
    counts (retirements, store drains, the current no-retirement gap,
    and the memoized committed-view hash -- equal to the golden one
    while the fault has never been architecturally visible).

    ``fault`` is the sampled :class:`~repro.faultlib.FaultInstance` for
    non-default fault models (None otherwise).  Persistent faults
    (stuck-at, intermittent) are re-asserted at the top of each window
    cycle per the instance's schedule, and the microarchitectural-match
    check is suppressed while the fault can still re-assert: a state
    match with a live fault is not masking.
    """
    horizon = horizon or golden.horizon
    locked_threshold = locked_multiplier * pipeline.config.deadlock_cycles

    def result(outcome, mode, cycles, detail=""):
        trial = TrialResult(
            outcome=outcome,
            failure_mode=mode,
            workload=workload_name,
            element_name=meta.name,
            category=meta.category.value,
            kind=meta.kind.value,
            bit=bit,
            start_point=start_point,
            inject_cycle=golden.start_cycle,
            cycles_run=cycles,
            valid_inflight=valid_inflight,
            total_inflight=total_inflight,
            detail=detail,
            trial_index=trial_index,
            # Classification-derived propagation fields: an SDC is
            # detected the cycle corruption reaches architectural
            # state, so both are the detection cycle.  Computed with or
            # without an observer (deterministic either way).
            arch_corrupt_cycle=(cycles if outcome == TrialOutcome.SDC
                                else None),
            detect_latency=cycles if outcome.is_failure else None,
            fault_model=fault.model if fault is not None else "single_bit",
        )
        if obs is not None:
            obs.trial_end(pipeline, trial)
        return trial

    space = pipeline.space
    k = retired_count
    drain_index = drain_count
    n_golden_retired = len(golden.retired)
    n_golden_drains = len(golden.drains)
    overrun = False
    forcing = fault is not None and fault.force is not None

    for cycle in range(first_cycle, horizon):
        if forcing and fault.assert_at(cycle):
            space.force_bit(*fault.force)
        pipeline.cycle()

        # 1. Retirement-raised failures.
        if pipeline.failure_event is not None:
            kind, _details = pipeline.failure_event
            mode = _FAILURE_BY_EVENT.get(kind, FailureMode.EXCEPT)
            return result(mode.outcome, mode, cycle + 1, detail=kind)

        # 2. Retirement-stream compare.
        if pipeline.retired_this_cycle:
            cycles_since_retire = 0
            for record in pipeline.retired_this_cycle:
                if k >= n_golden_retired:
                    overrun = True
                    break
                mode = compare_retired(record, golden.retired[k],
                                       golden.insn_pages)
                if mode is not None:
                    return result(mode.outcome, mode, cycle + 1,
                                  detail="retired[%d]" % k)
                k += 1
            if overrun:
                break
        else:
            cycles_since_retire += 1

        # 3. Store-drain compare.
        for drain in pipeline.drains_this_cycle:
            if drain_index >= n_golden_drains:
                overrun = True
                break
            if drain != golden.drains[drain_index]:
                return result(TrialOutcome.SDC, FailureMode.MEM, cycle + 1,
                              detail="drain[%d]" % drain_index)
            drain_index += 1
        if overrun:
            break

        # A fault-free-looking HALT cannot occur mid-window (golden does
        # not halt); a committed HALT here means wrong control flow.
        if pipeline.halted:
            return result(TrialOutcome.SDC, FailureMode.CTRL, cycle + 1,
                          detail="early halt")

        # 4. Committed-register-file view at a shared retirement count.
        # Committed state only changes when an instruction retires, so
        # the view is re-hashed once per retirement count (including the
        # injection cycle itself, where view_k is still None) instead of
        # every cycle.
        golden_view = golden.view_by_k.get(k)
        if golden_view is not None:
            if k != view_k:
                view_k = k
                view_hash = hash(pipeline.committed_view())
            if view_hash != golden_view:
                return result(TrialOutcome.SDC, FailureMode.REGFILE,
                              cycle + 1, detail="view@k=%d" % k)

        # 5. Deadlock / livelock.
        if cycles_since_retire >= locked_threshold:
            return result(TrialOutcome.TERMINATED, FailureMode.LOCKED,
                          cycle + 1)

        # 6. Complete microarchitectural state match.  Suppressed while
        # a persistent fault can still re-assert -- the match would not
        # survive the next assertion, so it is not masking.
        if space.signature() == golden.sigs[cycle] \
                and not (forcing and fault.active_after(cycle)):
            return result(TrialOutcome.MICRO_MATCH, None, cycle + 1)

    # 7. Horizon exhausted without failure or match.
    return result(TrialOutcome.GRAY, None, horizon,
                  detail="overrun" if overrun else "")


def compare_retired(record, golden_record, insn_pages):
    """Classify a retired-instruction divergence, or None when equal.

    The ghost sequence number identifies *which* fetched instruction
    committed (analysis-only; no pipeline behaviour depends on it):

    * same instruction, wrong PC label -> the architectural program
      counter is corrupted (``ctrl`` -- control-flow state violated);
    * different instruction from an unmapped page -> the processor was
      genuinely redirected to an invalid page (``itlb``);
    * different instruction from a mapped page -> an incorrect (but
      valid) instruction was fetched and committed (``ctrl``).
    """
    seq, pc, op_id, dest, value = record
    gseq, gpc, gop, gdest, gvalue = golden_record
    if pc != gpc or op_id != gop:
        if seq != gseq and page_of(pc) not in insn_pages:
            return FailureMode.ITLB
        return FailureMode.CTRL
    if dest != gdest or value != gvalue:
        return FailureMode.REGFILE
    return None


# Backwards-compatible private alias (pre-batch-engine name).
_compare_retired = compare_retired
