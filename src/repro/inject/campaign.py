"""Campaign orchestration (paper Section 2.3).

A campaign sweeps fault-injection trials over a set of workloads and
start points.  Following the paper's methodology, the injection *time*
is fixed per start point (checkpoints taken at intervals after warm-up)
while the injected *bit* is selected uniformly over all eligible state;
each experiment aggregates trials across 250-300 start points at paper
scale, scaled down by default for laptop runtimes (see
:meth:`CampaignConfig.paper` / :meth:`CampaignConfig.test`).
"""

import time
from dataclasses import dataclass, field

from repro.errors import CampaignError
from repro.faultlib import parse_fault_model
from repro.inject.golden import record_golden, workload_page_sets
from repro.inject.trial import run_trial
from repro.uarch.config import PipelineConfig, ProtectionConfig
from repro.uarch.core import Pipeline
from repro.uarch.statelib import StorageKind
from repro.utils.rng import SplitRng
from repro.workloads import WORKLOAD_NAMES, get_workload

# Normalized (frozenset) kind populations: resolved once here at the
# campaign boundary so the per-trial injection path never re-normalizes.
_KINDS = {
    "latch": frozenset((StorageKind.LATCH,)),
    "latch+ram": frozenset((StorageKind.LATCH, StorageKind.RAM)),
}


@dataclass(frozen=True)
class CampaignConfig:
    """Parameters of one injection campaign.

    ``kinds`` selects the element population: ``"latch+ram"`` (the
    paper's l+r campaigns) or ``"latch"`` (latch-only).

    ``fault_model`` is a :mod:`repro.faultlib` spec string (e.g.
    ``"multi_bit:adjacent:2"``); it is normalized to canonical form at
    construction and folded into the campaign fingerprint -- except for
    the default ``"single_bit"``, which is omitted from serialized
    configs so existing fingerprints, journals, and golden caches stay
    byte-identical.

    ``verify_golden`` replays the first golden window of each workload
    and asserts the two fault-free runs are bit-exactly identical --
    the runtime counterpart of the ``repro.lint`` determinism rules.

    ``provenance`` and ``profile`` attach a :mod:`repro.obs` observer to
    every trial (masking-cause/latency provenance and per-stage
    wall-clock profiling).  Both are observation-only: like
    ``verify_golden`` they are excluded from the campaign fingerprint
    because they can never change a trial's bytes.
    """

    workloads: tuple = WORKLOAD_NAMES
    scale: str = "small"
    kinds: str = "latch+ram"
    trials_per_start_point: int = 25
    start_points_per_workload: int = 3
    warmup_cycles: int = 1200
    spacing_cycles: int = 400
    horizon: int = 1200
    margin: int = 400
    seed: int = 2004
    protection: ProtectionConfig = field(default_factory=ProtectionConfig)
    locked_multiplier: int = 2
    verify_golden: bool = True
    provenance: bool = False
    profile: bool = False
    fault_model: str = "single_bit"

    def __post_init__(self):
        if self.kinds not in _KINDS:
            raise CampaignError(
                "kinds must be 'latch' or 'latch+ram', got %r" % self.kinds)
        # Validate the spec here (misconfiguration should fail at
        # campaign construction, not mid-sweep) and store the canonical
        # rendering so equivalent spellings fingerprint identically.
        object.__setattr__(
            self, "fault_model", parse_fault_model(self.fault_model).spec)

    @classmethod
    def test(cls, **overrides):
        """A seconds-scale configuration for unit tests."""
        defaults = dict(
            workloads=("gzip",), scale="tiny", trials_per_start_point=6,
            start_points_per_workload=2, warmup_cycles=400,
            spacing_cycles=150, horizon=400, margin=150)
        defaults.update(overrides)
        return cls(**defaults)

    @classmethod
    def default(cls, **overrides):
        """The minutes-scale configuration the benchmarks report."""
        return cls(**overrides)

    @classmethod
    def paper(cls, **overrides):
        """The paper's published scale (25-30k trials, 10k-cycle horizon).

        Expect multi-day runtimes in pure Python; provided for
        completeness and for running subsets on large machines.
        """
        defaults = dict(
            scale="large", trials_per_start_point=100,
            start_points_per_workload=28, warmup_cycles=5000,
            spacing_cycles=2000, horizon=10_000, margin=2000)
        defaults.update(overrides)
        return cls(**defaults)

    @property
    def total_trials(self):
        return (len(self.workloads) * self.start_points_per_workload
                * self.trials_per_start_point)


@dataclass
class CampaignResult:
    """All trials of one campaign plus machine metadata."""

    config: CampaignConfig
    trials: list
    eligible_bits: int
    inventory: dict  # category -> {latch_bits, ram_bits}
    elapsed_seconds: float

    def outcome_counts(self):
        counts = {}
        for trial in self.trials:
            counts[trial.outcome] = counts.get(trial.outcome, 0) + 1
        return counts

    def failure_rate(self):
        failures = sum(1 for t in self.trials if t.outcome.is_failure)
        return failures / len(self.trials) if self.trials else 0.0

    def masked_rate(self):
        from repro.inject.outcome import TrialOutcome
        masked = sum(1 for t in self.trials
                     if t.outcome == TrialOutcome.MICRO_MATCH)
        return masked / len(self.trials) if self.trials else 0.0


class Campaign:
    """Runs injection trials per the configured sweep."""

    def __init__(self, config, pipeline_config=None):
        self.config = config
        self.pipeline_config = pipeline_config or PipelineConfig.paper(
            config.protection)
        self.observer = None  # the repro.obs observer of the last run()

    def run(self, progress=None):
        """Execute the campaign; returns a :class:`CampaignResult`.

        ``progress`` is an optional callable invoked as
        ``progress(done_trials, total_trials)``.
        """
        from repro.obs import observer_from_config

        config = self.config
        rng_root = SplitRng(config.seed)
        kinds = _KINDS[config.kinds]
        model = parse_fault_model(config.fault_model)
        observer = observer_from_config(config)
        self.observer = observer
        trials = []
        eligible_bits = None
        inventory = None
        # repro-lint: allow=REP002 (wall-clock is reporting metadata only;
        # it never feeds trial state or outcome classification)
        started = time.time()
        done = 0

        for workload_name in config.workloads:
            workload = get_workload(workload_name, scale=config.scale)
            insn_pages, data_pages = workload_page_sets(workload.program)
            pipeline = Pipeline(workload.program, self.pipeline_config)
            if eligible_bits is None:
                eligible_bits = pipeline.eligible_bits(kinds)
                inventory = pipeline.space.inventory()
            pipeline.run(config.warmup_cycles, stop_on_halt=True)
            wl_rng = rng_root.split("workload/%s" % workload_name)

            for start_point in range(config.start_points_per_workload):
                pipeline.run(config.spacing_cycles, stop_on_halt=True)
                if pipeline.halted:
                    raise CampaignError(
                        "workload %r finished before start point %d; use a "
                        "larger scale" % (workload_name, start_point))
                checkpoint = pipeline.checkpoint()
                golden = record_golden(
                    pipeline, checkpoint, config.horizon, config.margin,
                    insn_pages, data_pages,
                    verify_replay=config.verify_golden and start_point == 0)
                sp_rng = wl_rng.split("sp/%d" % start_point)
                for trial_index in range(config.trials_per_start_point):
                    trial_rng = sp_rng.split("trial/%d" % trial_index)
                    trials.append(run_trial(
                        pipeline, checkpoint, golden, trial_rng, kinds,
                        workload_name, start_point,
                        horizon=config.horizon,
                        locked_multiplier=config.locked_multiplier,
                        trial_index=trial_index, obs=observer,
                        model=model))
                    done += 1
                    if progress is not None:
                        progress(done, config.total_trials)
                pipeline.restore(checkpoint)
                pipeline.tlb_insn_pages = None
                pipeline.tlb_data_pages = None

        return CampaignResult(
            config=config,
            trials=trials,
            eligible_bits=eligible_bits or 0,
            inventory=inventory or {},
            # repro-lint: allow=REP002 (reporting metadata, see above)
            elapsed_seconds=time.time() - started,
        )
