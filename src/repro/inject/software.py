"""Software-level (architectural) fault injection -- paper Section 5.

Errors that escape the microarchitecture are modelled by corrupting one
dynamic instruction on the functional simulator (the SimpleScalar role)
with one of six fault models, then monitoring for one of four outcomes:

* ``EXCEPTION``  -- the program trapped (a "noisy" failure);
* ``STATE_OK``   -- the complete architectural state re-converged with
  the fault-free execution before the next system call (software masked
  the fault; once state matches, determinism guarantees the rest of the
  run is identical);
* ``OUTPUT_OK``  -- state never provably converged, but the user-visible
  output is identical (weaker than STATE_OK, per the paper);
* ``OUTPUT_BAD`` -- the program produced wrong output (or never
  terminated within the run cap).

Each trial additionally records whether control flow *temporarily*
diverged from the reference before masking -- the paper observes this
for 10-20% of the State-OK trials in the first five fault models.
"""

import enum
import time
from dataclasses import dataclass

from repro.arch.functional import (
    FunctionalSimulator,
    SoftwareFault,
    SoftwareFaultKind,
)
from repro.errors import CampaignError
from repro.utils.rng import SplitRng
from repro.workloads import WORKLOAD_NAMES, get_workload

ALL_FAULT_MODELS = (
    SoftwareFaultKind.RESULT_BIT32,
    SoftwareFaultKind.RESULT_BIT64,
    SoftwareFaultKind.RESULT_RANDOM,
    SoftwareFaultKind.INSN_BIT,
    SoftwareFaultKind.TO_NOP,
    SoftwareFaultKind.FLIP_BRANCH,
)


class SoftwareOutcome(enum.Enum):
    """The four outcomes of paper Figure 11."""

    EXCEPTION = "exception"
    STATE_OK = "state_ok"
    OUTPUT_OK = "output_ok"
    OUTPUT_BAD = "output_bad"


@dataclass
class SoftwareTrialResult:
    """One completed software-level trial."""
    outcome: SoftwareOutcome
    model: SoftwareFaultKind
    workload: str
    inject_index: int
    control_diverged: bool
    instructions_run: int


@dataclass(frozen=True)
class SoftwareCampaignConfig:
    """Parameters of a Section-5 software-level campaign."""

    workloads: tuple = WORKLOAD_NAMES
    scale: str = "tiny"
    models: tuple = ALL_FAULT_MODELS
    trials_per_model_per_workload: int = 12
    seed: int = 500
    max_instruction_factor: float = 2.0
    max_instruction_slack: int = 20_000

    @classmethod
    def test(cls, **overrides):
        defaults = dict(workloads=("gzip", "gcc"),
                        trials_per_model_per_workload=4)
        defaults.update(overrides)
        return cls(**defaults)

    @classmethod
    def default(cls, **overrides):
        return cls(**overrides)

    @classmethod
    def paper(cls, **overrides):
        """~10,000-15,000 trials per fault model (paper Section 5)."""
        defaults = dict(scale="large",
                        trials_per_model_per_workload=1200)
        defaults.update(overrides)
        return cls(**defaults)

    @property
    def total_trials(self):
        return (len(self.workloads) * len(self.models)
                * self.trials_per_model_per_workload)


@dataclass
class _GoldenRun:
    """Reference execution of one workload on the functional simulator."""

    pcs: list
    reg_write_indices: list
    branch_indices: list
    syscall_sigs: list  # state signature after each syscall
    output: str
    instret: int
    final_sig: int


@dataclass
class SoftwareCampaignResult:
    """All trials of one software-level campaign."""
    config: SoftwareCampaignConfig
    trials: list
    elapsed_seconds: float

    def outcome_counts(self, model=None):
        counts = {outcome: 0 for outcome in SoftwareOutcome}
        for trial in self.trials:
            if model is None or trial.model == model:
                counts[trial.outcome] += 1
        return counts

    def state_ok_divergence_rate(self, model=None):
        """Fraction of STATE_OK trials with transient control divergence."""
        state_ok = [t for t in self.trials
                    if t.outcome == SoftwareOutcome.STATE_OK
                    and (model is None or t.model == model)]
        if not state_ok:
            return 0.0
        return sum(1 for t in state_ok if t.control_diverged) / len(state_ok)


def _state_signature(sim):
    return hash((sim.state.reg_signature(), sim.state.pc,
                 sim.memory.content_signature()))


def record_software_golden(program, max_instructions=20_000_000):
    """Run the reference execution, recording the trial-compare surface."""
    sim = FunctionalSimulator(program)
    pcs = []
    reg_writes = []
    branches = []
    syscall_sigs = []
    while not sim.halted and sim.instret < max_instructions:
        index = sim.instret
        pcs.append(sim.state.pc)
        info = sim.step()
        if info.dest is not None:
            reg_writes.append(index)
        if info.insn.is_cond_branch:
            branches.append(index)
        if info.syscall:
            syscall_sigs.append(_state_signature(sim))
    if not sim.halted:
        raise CampaignError("golden software run did not terminate")
    return _GoldenRun(
        pcs=pcs,
        reg_write_indices=reg_writes,
        branch_indices=branches,
        syscall_sigs=syscall_sigs,
        output=sim.output_text(),
        instret=sim.instret,
        final_sig=_state_signature(sim),
    )


def _make_fault(model, rng):
    if model == SoftwareFaultKind.RESULT_BIT32:
        return SoftwareFault(model, bit=rng.randrange(32))
    if model == SoftwareFaultKind.RESULT_BIT64:
        return SoftwareFault(model, bit=rng.randrange(64))
    if model == SoftwareFaultKind.RESULT_RANDOM:
        return SoftwareFault(model, random_value=rng.getrandbits(64))
    if model == SoftwareFaultKind.INSN_BIT:
        return SoftwareFault(model, bit=rng.randrange(32))
    return SoftwareFault(model)


def _pick_index(model, golden, rng):
    """Choose the dynamic instruction the fault model applies to."""
    if model in (SoftwareFaultKind.RESULT_BIT32,
                 SoftwareFaultKind.RESULT_BIT64,
                 SoftwareFaultKind.RESULT_RANDOM):
        pool = golden.reg_write_indices
    elif model == SoftwareFaultKind.FLIP_BRANCH:
        pool = golden.branch_indices
    else:
        pool = None
    if pool:
        return rng.choice(pool)
    return rng.randrange(max(1, golden.instret))


def run_software_trial(program, golden, model, rng, workload_name,
                       max_instruction_factor=2.0,
                       max_instruction_slack=20_000):
    """One Section-5 trial: corrupt one dynamic instruction, classify."""
    inject_index = _pick_index(model, golden, rng)
    fault = _make_fault(model, rng)
    limit = int(golden.instret * max_instruction_factor) \
        + max_instruction_slack

    sim = FunctionalSimulator(program)
    diverged = False
    converged = False
    syscalls = 0
    output_prefix_ok = True
    n_pcs = len(golden.pcs)

    while not sim.halted and sim.instret < limit:
        index = sim.instret
        if index < n_pcs and sim.state.pc != golden.pcs[index]:
            diverged = True
        elif index >= n_pcs:
            diverged = True
        info = sim.step(fault if index == inject_index else None)
        if info.syscall:
            syscalls += 1
            if output_prefix_ok and not golden.output.startswith(
                    sim.output_text()):
                output_prefix_ok = False
            if (index > inject_index and output_prefix_ok
                    and syscalls <= len(golden.syscall_sigs)
                    and _state_signature(sim)
                    == golden.syscall_sigs[syscalls - 1]):
                # Full architectural state matches the reference at the
                # same syscall boundary: determinism guarantees the rest
                # of the execution is identical.
                converged = True
                break

    if sim.exception:
        outcome = SoftwareOutcome.EXCEPTION
    elif converged:
        outcome = SoftwareOutcome.STATE_OK
    elif sim.halted and sim.output_text() == golden.output:
        outcome = SoftwareOutcome.OUTPUT_OK
    else:
        outcome = SoftwareOutcome.OUTPUT_BAD

    return SoftwareTrialResult(
        outcome=outcome,
        model=model,
        workload=workload_name,
        inject_index=inject_index,
        control_diverged=diverged,
        instructions_run=sim.instret,
    )


class SoftwareCampaign:
    """Sweeps the six fault models over the workload set."""

    def __init__(self, config):
        self.config = config

    def run(self, progress=None):
        config = self.config
        rng_root = SplitRng(config.seed)
        trials = []
        # repro-lint: allow=REP002 (wall-clock is reporting metadata only;
        # it never feeds trial state or outcome classification)
        started = time.time()
        done = 0
        for workload_name in config.workloads:
            workload = get_workload(workload_name, scale=config.scale)
            golden = record_software_golden(workload.program)
            wl_rng = rng_root.split("workload/%s" % workload_name)
            for model in config.models:
                model_rng = wl_rng.split("model/%s" % model.value)
                for trial_index in range(
                        config.trials_per_model_per_workload):
                    trial_rng = model_rng.split("trial/%d" % trial_index)
                    trials.append(run_software_trial(
                        workload.program, golden, model, trial_rng,
                        workload_name,
                        config.max_instruction_factor,
                        config.max_instruction_slack))
                    done += 1
                    if progress is not None:
                        progress(done, config.total_trials)
        return SoftwareCampaignResult(
            config=config, trials=trials,
            # repro-lint: allow=REP002 (reporting metadata, see above)
            elapsed_seconds=time.time() - started)
