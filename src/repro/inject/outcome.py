"""Trial outcome taxonomy (paper Section 2.2 and Table 2)."""

import enum
from dataclasses import dataclass
from typing import Optional


class TrialOutcome(enum.Enum):
    """The four outcomes of a microarchitectural injection trial."""

    MICRO_MATCH = "uarch_match"  # complete microarchitectural state match
    TERMINATED = "terminated"  # premature termination of the workload
    SDC = "sdc"  # silent data corruption
    GRAY = "gray"  # neither, within the simulation limit

    @property
    def is_failure(self):
        return self in (TrialOutcome.TERMINATED, TrialOutcome.SDC)

    @property
    def is_benign(self):
        """Non-failures (the paper's Figure 6 'benign' rate)."""
        return not self.is_failure


class FailureMode(enum.Enum):
    """The seven failure modes of paper Table 2."""

    CTRL = "ctrl"  # control-flow violation: wrong insn committed
    DTLB = "dtlb"  # non-speculative access to an invalid page
    EXCEPT = "except"  # an exception was generated
    ITLB = "itlb"  # processor redirected to an invalid page
    LOCKED = "locked"  # deadlock or livelock detected
    MEM = "mem"  # memory inconsistent
    REGFILE = "regfile"  # register file inconsistent

    @property
    def outcome(self):
        """Which failure outcome this mode belongs to (paper Table 2)."""
        if self in (FailureMode.EXCEPT, FailureMode.LOCKED):
            return TrialOutcome.TERMINATED
        return TrialOutcome.SDC


@dataclass
class TrialResult:
    """One completed injection trial."""

    outcome: TrialOutcome
    failure_mode: Optional[FailureMode]
    workload: str
    element_name: str
    category: str  # state category (paper Table 1 row)
    kind: str  # "latch" or "ram"
    bit: int
    start_point: int
    inject_cycle: int  # absolute cycle of injection
    cycles_run: int  # cycles simulated after injection
    valid_inflight: int  # in-flight insns that eventually commit (Fig 6)
    total_inflight: int
    detail: str = ""
    trial_index: int = -1  # index within the start point (-1: legacy data)
    # Propagation fields (cycles are relative to injection; 0 = first
    # cycle after the flip).  ``detect_latency`` and
    # ``arch_corrupt_cycle`` are derived from the classification itself
    # and are always present for the relevant outcomes;
    # ``first_read_cycle`` and ``masking_cause`` require a provenance
    # observer (repro.obs) and stay None otherwise.
    first_read_cycle: Optional[int] = None  # corrupt value first read
    arch_corrupt_cycle: Optional[int] = None  # SDC: divergence detected
    detect_latency: Optional[int] = None  # any failure: cycles to detect
    masking_cause: Optional[str] = None  # obs.MASKING_CAUSES member
