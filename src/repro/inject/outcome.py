"""Trial outcome taxonomy (paper Section 2.2 and Table 2)."""

import enum
from dataclasses import dataclass
from typing import Optional


class TrialOutcome(enum.Enum):
    """The outcomes of a microarchitectural injection trial.

    The first four are the paper's taxonomy (Section 2.2).
    ``HARNESS_ERROR`` is ours: the *harness* could not compute the
    trial (a poison unit that repeatedly killed its workers was
    contained and journaled instead of aborting the campaign) -- it is
    neither a failure nor benign, and the paper's figures exclude it.
    """

    MICRO_MATCH = "uarch_match"  # complete microarchitectural state match
    TERMINATED = "terminated"  # premature termination of the workload
    SDC = "sdc"  # silent data corruption
    GRAY = "gray"  # neither, within the simulation limit
    HARNESS_ERROR = "harness_error"  # the harness failed, not the machine

    @property
    def is_failure(self):
        return self in (TrialOutcome.TERMINATED, TrialOutcome.SDC)

    @property
    def is_benign(self):
        """Non-failures of the *machine* (paper Figure 6 'benign').

        ``HARNESS_ERROR`` is neither: the trial never ran, so it says
        nothing about masking.
        """
        return self in (TrialOutcome.MICRO_MATCH, TrialOutcome.GRAY)


class FailureMode(enum.Enum):
    """The seven failure modes of paper Table 2."""

    CTRL = "ctrl"  # control-flow violation: wrong insn committed
    DTLB = "dtlb"  # non-speculative access to an invalid page
    EXCEPT = "except"  # an exception was generated
    ITLB = "itlb"  # processor redirected to an invalid page
    LOCKED = "locked"  # deadlock or livelock detected
    MEM = "mem"  # memory inconsistent
    REGFILE = "regfile"  # register file inconsistent

    @property
    def outcome(self):
        """Which failure outcome this mode belongs to (paper Table 2)."""
        if self in (FailureMode.EXCEPT, FailureMode.LOCKED):
            return TrialOutcome.TERMINATED
        return TrialOutcome.SDC


@dataclass
class TrialResult:
    """One completed injection trial."""

    outcome: TrialOutcome
    failure_mode: Optional[FailureMode]
    workload: str
    element_name: str
    category: str  # state category (paper Table 1 row)
    kind: str  # "latch" or "ram"
    bit: int
    start_point: int
    inject_cycle: int  # absolute cycle of injection
    cycles_run: int  # cycles simulated after injection
    valid_inflight: int  # in-flight insns that eventually commit (Fig 6)
    total_inflight: int
    detail: str = ""
    trial_index: int = -1  # index within the start point (-1: legacy data)
    # Propagation fields (cycles are relative to injection; 0 = first
    # cycle after the flip).  ``detect_latency`` and
    # ``arch_corrupt_cycle`` are derived from the classification itself
    # and are always present for the relevant outcomes;
    # ``first_read_cycle`` and ``masking_cause`` require a provenance
    # observer (repro.obs) and stay None otherwise.
    first_read_cycle: Optional[int] = None  # corrupt value first read
    arch_corrupt_cycle: Optional[int] = None  # SDC: divergence detected
    detect_latency: Optional[int] = None  # any failure: cycles to detect
    masking_cause: Optional[str] = None  # obs.MASKING_CAUSES member
    # Canonical spec of the fault model that produced this trial
    # (repro.faultlib).  Serialized only when non-default, so legacy
    # journals -- which are all single-bit -- load and re-encode
    # byte-identically.
    fault_model: str = "single_bit"

    @classmethod
    def harness_error(cls, workload, start_point, trial_index, detail):
        """A containment record for a trial the harness could not run.

        Injection metadata is placeholder (-1/0/"harness"): the fault
        was never injected, the pipeline never cycled.  ``detail``
        carries the cause (e.g. "killed 3 workers; quarantined").
        """
        return cls(
            outcome=TrialOutcome.HARNESS_ERROR,
            failure_mode=None,
            workload=workload,
            element_name="harness",
            category="harness",
            kind="none",
            bit=-1,
            start_point=start_point,
            trial_index=trial_index,
            inject_cycle=-1,
            cycles_run=0,
            valid_inflight=0,
            total_inflight=0,
            detail=detail,
        )
