"""repro.chaos: inject faults into the injector.

The campaign harness promises durability (every acknowledged trial
survives a crash), determinism (any schedule of workers produces the
same result) and robustness (dead workers, torn journals, corrupt
caches and signals are absorbed, not amplified).  This package *tests
those promises from the inside*: a seeded :class:`ChaosSchedule` fires
harness-level faults -- worker SIGKILLs and stalls, torn journal
tails, transient I/O errors, golden-cache bit flips, SIGTERM/SIGINT --
at deterministic points of a live campaign, and
:func:`run_chaos_campaign` drives the campaign through every simulated
crash until the merged journal matches an undisturbed run's exactly.

Chaos events are derived from the campaign seed through the same
named-split RNG scheme trials use, so a failing chaos run replays from
its seed alone.  Nothing here is ever imported by the harness: the
engine takes an opaque ``chaos`` object and the default ``None`` is
zero-overhead.
"""

from repro.chaos.drive import run_chaos_campaign
from repro.chaos.schedule import (
    FAULT_KINDS,
    ChaosCrash,
    ChaosEvent,
    ChaosSchedule,
)

__all__ = ["FAULT_KINDS", "ChaosCrash", "ChaosEvent", "ChaosSchedule",
           "run_chaos_campaign"]
