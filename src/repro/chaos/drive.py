"""Drive a campaign through chaos to completion.

:func:`run_chaos_campaign` plays the operator: it runs the campaign,
and every time chaos "crashes" it (a :class:`~repro.chaos.ChaosCrash`
torn-journal death) or drains it (a chaos-delivered SIGTERM/SIGINT
raising :class:`~repro.errors.CampaignDrained`) it simply resumes from
the campaign directory -- exactly the ``--resume`` loop a human would
run.  One :class:`~repro.chaos.ChaosSchedule` instance is shared
across every attempt, so each scheduled fault fires exactly once over
the campaign's whole (possibly interrupted) lifetime.

The acceptance property this enables: after the loop converges, the
merged journal's :func:`~repro.runner.journal.canonical_trial_bytes`
equal an undisturbed run's.
"""

from repro.chaos.schedule import ChaosCrash
from repro.errors import CampaignDrained, CampaignError
from repro.runner.engine import run_campaign

__all__ = ["run_chaos_campaign"]


def run_chaos_campaign(config, directory, chaos, max_restarts=25,
                       **options):
    """Run ``config`` under ``chaos``, resuming until it completes.

    Returns ``(result, restarts)``.  ``max_restarts`` bounds the
    crash-resume loop: chaos fires each event once, so a healthy
    harness always converges -- hitting the bound means recovery
    itself is broken, and the last crash is re-raised as evidence.
    """
    if directory is None:
        raise CampaignError(
            "chaos campaigns need a campaign directory: recovery is "
            "the thing under test, and resume requires a journal")
    restarts = 0
    while True:
        try:
            result = run_campaign(config, directory=directory,
                                  chaos=chaos, **options)
            return result, restarts
        except (ChaosCrash, CampaignDrained):
            restarts += 1
            if restarts > max_restarts:
                raise
