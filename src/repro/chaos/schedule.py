"""Seeded schedules of harness faults.

A :class:`ChaosSchedule` is a list of :class:`ChaosEvent` values, each
an ``(kind, at_done)`` pair: when the campaign's *completed-trial
count* -- which is monotonic across crashes and resumes, unlike wall
time or scheduling order -- reaches ``at_done``, the event fires.  The
engine calls :meth:`ChaosSchedule.on_trial` after every journaled
trial and :meth:`ChaosSchedule.journal_fault` before every journal
append; everything else (signals, ``os.kill``, cache corruption) the
schedule does itself.

Fault kinds (:data:`FAULT_KINDS`):

``kill``
    SIGKILL a busy pool worker (exercises requeue-and-respawn).
``stall``
    SIGSTOP a busy pool worker (exercises the ``trial_timeout``
    watchdog, including the SIGKILL escalation a stopped process
    needs).
``tear``
    Write *half* of the next journal line via a separate handle, then
    raise :class:`ChaosCrash` -- exactly the on-disk state a power cut
    mid-append leaves (exercises tail repair on resume).
``io``
    Raise transient ``EIO`` from the next journal appends (exercises
    bounded retry-with-backoff).
``cache``
    Flip one bit in the middle of a golden-cache entry on disk
    (exercises checksum detection, quarantine, regeneration).
``sigterm`` / ``sigint``
    Deliver the signal to the engine's own process (exercises the
    graceful drain and resumable exit).

Spec strings (the CLI's ``--chaos``) are comma-separated
``kind[:count][@at]`` tokens: ``kill:2,tear@5,io`` fires two seeded
worker kills, a torn tail right after trial 5, and one seeded burst of
transient I/O errors.  Unanchored events get their trigger points from
the campaign seed via the named-split scheme (``seed -> "chaos" ->
spec -> token``), so a chaos run replays from its seed alone.

An event whose precondition is not met yet -- no live worker to kill,
no cache entry to corrupt -- stays armed and retries on the next
trial; :attr:`ChaosSchedule.pending` reports what never fired.
"""

import errno
import os
import signal
from dataclasses import dataclass
from typing import Optional

from repro.errors import ConfigError
from repro.utils.rng import SplitRng

__all__ = ["FAULT_KINDS", "ChaosCrash", "ChaosEvent", "ChaosSchedule"]

FAULT_KINDS = ("kill", "stall", "tear", "io", "cache", "sigterm", "sigint")

# Transient appends poisoned per "io" event: strictly below the
# journal writer's retry budget, so retry always recovers and the
# fault is *transient* by construction.
_IO_ERRORS_PER_EVENT = 2


class ChaosCrash(RuntimeError):
    """Simulated abrupt harness death (a torn journal append).

    Deliberately *not* a :class:`~repro.errors.ReproError`: nothing in
    the harness may catch it, just as nothing catches a real SIGKILL.
    Only the chaos driver (:func:`repro.chaos.run_chaos_campaign`) --
    standing in for the operator restarting a crashed campaign --
    handles it.
    """


@dataclass
class ChaosEvent:
    """One scheduled harness fault."""

    kind: str
    at_done: int  # fires when the completed-trial count reaches this
    fired_at: Optional[int] = None  # done-count at which it fired
    detail: str = ""

    def render(self):
        if self.fired_at is None:
            return "%s@%d: never fired" % (self.kind, self.at_done)
        note = " (%s)" % self.detail if self.detail else ""
        return "%s@%d: fired at %d%s" % (self.kind, self.at_done,
                                         self.fired_at, note)


class ChaosSchedule:
    """A replayable schedule of harness faults for one campaign."""

    def __init__(self, events):
        self.events = sorted(events, key=lambda e: (e.at_done, e.kind))
        self._io_remaining = 0
        self._tear_event = None

    @classmethod
    def from_spec(cls, spec, config, total=None):
        """Parse a ``kind[:count][@at]`` comma-separated spec string.

        Unanchored events draw their trigger points from ``config``'s
        seed (uniform over the sweep of ``total`` trials, default
        ``config.total_trials``), so the same seed and spec always
        yield the same schedule.
        """
        if total is None:
            total = config.total_trials
        rng = SplitRng(config.seed).split("chaos").split(spec)
        events = []
        for position, token in enumerate(spec.split(",")):
            token = token.strip()
            if not token:
                continue
            body, at = token, None
            if "@" in body:
                body, _, at_text = body.partition("@")
                try:
                    at = int(at_text)
                except ValueError:
                    raise ConfigError(
                        "chaos token %r: %r is not a trial count"
                        % (token, at_text))
            count = 1
            if ":" in body:
                body, _, count_text = body.partition(":")
                try:
                    count = int(count_text)
                except ValueError:
                    raise ConfigError(
                        "chaos token %r: %r is not a count"
                        % (token, count_text))
            kind = body.strip()
            if kind not in FAULT_KINDS:
                raise ConfigError(
                    "unknown chaos fault %r (choose from %s)"
                    % (kind, ", ".join(FAULT_KINDS)))
            for index in range(count):
                if at is not None:
                    at_done = at
                else:
                    token_rng = rng.split(
                        "%d/%s/%d" % (position, kind, index))
                    at_done = 1 + token_rng.randrange(max(1, total))
                events.append(ChaosEvent(kind=kind, at_done=at_done))
        return cls(events)

    @property
    def pending(self):
        """Events that have not fired yet."""
        return [event for event in self.events if event.fired_at is None]

    def render(self):
        """One line per event: trigger point, firing point, detail."""
        return "\n".join(event.render() for event in self.events)

    # -- engine hooks ---------------------------------------------------

    def on_trial(self, done, runner):
        """Fire every due, unfired event (engine hook, post-journal).

        Events whose precondition is unmet (no live worker, no cache
        entry yet) stay armed and are retried on the next trial.  A
        ``tear`` fires as a :class:`ChaosCrash` from the *next* journal
        append, so it may propagate out of this call's caller.
        """
        for event in self.events:
            if event.fired_at is not None or event.at_done > done:
                continue
            if self._fire(event, runner):
                event.fired_at = done

    def journal_fault(self, writer, line):
        """The journal writer's pre-append hook (chaos side)."""
        if self._io_remaining > 0:
            self._io_remaining -= 1
            raise OSError(errno.EIO, "chaos: injected transient I/O error")
        event = self._tear_event
        if event is not None:
            self._tear_event = None
            encoded = line.encode("utf-8")
            torn = encoded[:max(1, len(encoded) // 2)]
            # A separate append handle leaves exactly the bytes a crash
            # mid-write would: half a line, no newline, fsynced.
            with open(writer.path, "ab") as handle:
                handle.write(torn)
                handle.flush()
                os.fsync(handle.fileno())
            event.detail = "tore journal tail (%d of %d bytes)" \
                % (len(torn), len(encoded))
            raise ChaosCrash(
                "chaos: simulated crash mid-append (torn journal tail)")

    # -- firing ---------------------------------------------------------

    def _fire(self, event, runner):
        """Attempt one event; returns False to keep it armed."""
        kind = event.kind
        if kind in ("kill", "stall"):
            return self._fire_worker_signal(event, runner)
        if kind == "tear":
            self._tear_event = event
            event.detail = "armed: next append tears mid-line"
            return True
        if kind == "io":
            self._io_remaining += _IO_ERRORS_PER_EVENT
            event.detail = "armed: next %d appends raise EIO" \
                % _IO_ERRORS_PER_EVENT
            return True
        if kind == "cache":
            return self._fire_cache_corruption(event, runner)
        if kind in ("sigterm", "sigint"):
            signum = signal.SIGTERM if kind == "sigterm" else signal.SIGINT
            event.detail = "%s delivered to the engine process" \
                % kind.upper()
            os.kill(os.getpid(), signum)
            return True
        return False

    def _fire_worker_signal(self, event, runner):
        pool = runner.pool
        if pool is None:
            return False  # inline run: no worker process to harm
        alive = [w for w in pool.workers if w.alive()]
        busy = [w for w in alive if w.busy]
        victims = busy or alive
        if not victims:
            return False
        victim = min(victims, key=lambda w: w.worker_id)
        signum = signal.SIGKILL if event.kind == "kill" else signal.SIGSTOP
        try:
            os.kill(victim.process.pid, signum)
        except OSError:
            return False  # raced with the worker's own exit; rearm
        event.detail = "worker %d sent %s" \
            % (victim.worker_id, signal.Signals(signum).name)
        return True

    def _fire_cache_corruption(self, event, runner):
        directory = runner._golden_dir()
        if directory is None or not os.path.isdir(directory):
            return False
        entries = sorted(name for name in os.listdir(directory)
                         if name.endswith(".pkl"))
        if not entries:
            return False
        path = os.path.join(directory, entries[0])
        try:
            with open(path, "rb") as handle:
                blob = bytearray(handle.read())
            if not blob:
                return False
            blob[len(blob) // 2] ^= 0x40
            with open(path, "wb") as handle:
                handle.write(blob)
        except OSError:
            return False
        event.detail = "flipped one bit of golden/%s" % entries[0]
        return True
