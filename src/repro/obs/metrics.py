"""OpenMetrics rendering of campaign telemetry snapshots.

Campaigns already drop ``metrics.json`` (the raw
:class:`~repro.runner.telemetry.TelemetrySnapshot` dict) in the
campaign directory; this module renders the same snapshot as an
OpenMetrics / Prometheus text exposition (``metrics.prom``) so a node
exporter's textfile collector -- or a plain ``curl`` + ``promtool`` --
can scrape a long campaign without bespoke parsing.  Both files are
rewritten atomically by :func:`repro.runner.journal.write_metrics`.

Monotonic samples (lease grants, steals, retries, ...) are exposed as
OpenMetrics *counters* named ``repro_*_total``; each keeps a
deprecated gauge alias under its pre-rename name for one release so
existing scrape configs keep working (see docs/OBSERVABILITY.md for
the rename table).  ``repro_build_info`` is the conventional
info-style constant-1 sample carrying schema versions and the repo
revision as labels.
"""

import os
import subprocess

__all__ = ["PROM_PREFIX", "render_openmetrics"]

PROM_PREFIX = "repro"

_REVISION = None


def _revision():
    """The repo's short git revision, cached; ``unknown`` off-tree."""
    global _REVISION
    if _REVISION is None:
        tree = os.path.dirname(os.path.dirname(os.path.dirname(
            os.path.dirname(os.path.abspath(__file__)))))
        try:
            _REVISION = subprocess.run(
                ["git", "-C", tree, "rev-parse", "--short", "HEAD"],
                capture_output=True, text=True, timeout=5.0,
                check=True).stdout.strip() or "unknown"
        except (OSError, subprocess.SubprocessError):
            _REVISION = "unknown"
    return _REVISION


def _schema_versions():
    """``(journal_schema, result_schema)``, imported lazily.

    :mod:`repro.runner.journal` imports this module for rendering, so
    the reverse import must happen at call time, not import time.
    """
    from repro.inject.store import SCHEMA_VERSION
    from repro.runner.journal import JOURNAL_SCHEMA
    return JOURNAL_SCHEMA, SCHEMA_VERSION


def _escape(value):
    """Escape a label value per the OpenMetrics text format."""
    return str(value).replace("\\", "\\\\").replace('"', '\\"') \
        .replace("\n", "\\n")


def _sample(name, value, labels=None):
    if labels:
        rendered = ",".join(
            '%s="%s"' % (key, _escape(labels[key])) for key in sorted(labels))
        return "%s{%s} %s" % (name, rendered, _format_value(value))
    return "%s %s" % (name, _format_value(value))


def _format_value(value):
    if isinstance(value, bool):
        return "1" if value else "0"
    if isinstance(value, int):
        return str(value)
    return repr(float(value))


def render_openmetrics(snapshot):
    """Render a telemetry snapshot dict as OpenMetrics text.

    ``snapshot`` is the :meth:`TelemetrySnapshot.to_dict` shape; absent
    keys are tolerated (older snapshots) and ``eta_seconds: None`` is
    simply not exported -- absence of the sample *is* the "no rate
    measurable yet" signal.
    """
    p = PROM_PREFIX
    lines = []

    def family(name, kind, value, help_text, labelled_samples=None):
        lines.append("# HELP %s %s" % (name, help_text))
        lines.append("# TYPE %s %s" % (name, kind))
        if labelled_samples is None:
            lines.append(_sample(name, value))
        else:
            lines.extend(labelled_samples)

    def gauge(name, value, help_text, labelled_samples=None):
        family(name, "gauge", value, help_text, labelled_samples)

    def counter(name, value, help_text):
        """A monotonic counter plus its deprecated gauge alias.

        ``name`` is the pre-rename sample name; the counter itself is
        ``<name>_total`` (Prometheus naming).  The alias disappears
        next release -- scrape the ``_total`` name.
        """
        family("%s_total" % name, "counter", value, help_text)
        family(name, "gauge", value,
               "DEPRECATED alias of %s_total; removed next release."
               % name)

    journal_schema, result_schema = _schema_versions()
    gauge("%s_build_info" % p, None,
          "Constant 1; schema versions and repo revision as labels.",
          labelled_samples=[_sample("%s_build_info" % p, 1, {
              "journal_schema": journal_schema,
              "result_schema": result_schema,
              "revision": _revision()})])
    gauge("%s_trials_total" % p, snapshot.get("total", 0),
          "Trials in the campaign sweep.")
    gauge("%s_trials_done" % p, snapshot.get("done", 0),
          "Trials completed (journaled earlier + fresh).")
    gauge("%s_trials_fresh" % p, snapshot.get("fresh", 0),
          "Trials completed by this run.")
    gauge("%s_trials_resumed" % p, snapshot.get("resumed", 0),
          "Trials skipped because a prior run journaled them.")
    counter("%s_trials_retried" % p, snapshot.get("retried", 0),
            "Trial units requeued after a worker death or stall.")
    counter("%s_harness_errors" % p, snapshot.get("harness_errors", 0),
            "Poison trial units contained as harness_error outcomes.")
    counter("%s_cache_quarantined" % p, snapshot.get("quarantined", 0),
            "Corrupt golden-cache entries quarantined and regenerated.")
    counter("%s_io_retries" % p, snapshot.get("io_retries", 0),
            "Transient journal/cache I/O errors absorbed by retry.")
    gauge("%s_elapsed_seconds" % p, snapshot.get("elapsed_seconds", 0.0),
          "Wall-clock seconds since this run started.")
    gauge("%s_trials_per_second" % p,
          snapshot.get("trials_per_second", 0.0),
          "Fresh-trial completion rate.")
    eta = snapshot.get("eta_seconds")
    if eta is not None:
        gauge("%s_eta_seconds" % p, eta,
              "Estimated seconds to campaign completion.")
    gauge("%s_workers_busy" % p, snapshot.get("workers_busy", 0),
          "Workers currently assigned a batch.")
    gauge("%s_workers_total" % p, snapshot.get("workers_total", 0),
          "Workers in the pool.")

    outcomes = snapshot.get("outcome_counts") or {}
    gauge("%s_outcome_trials" % p, None,
          "Completed trials by outcome classification.",
          labelled_samples=[
              _sample("%s_outcome_trials" % p, outcomes[name],
                      {"outcome": name})
              for name in sorted(outcomes)])

    latency = snapshot.get("worker_latency") or {}
    samples = []
    count_samples = []
    for worker in sorted(latency, key=str):
        stats = latency[worker]
        for quantile in ("0.5", "0.9", "0.99"):
            key = {"0.5": "p50", "0.9": "p90", "0.99": "p99"}[quantile]
            if stats.get(key) is not None:
                samples.append(_sample(
                    "%s_worker_trial_latency_seconds" % p, stats[key],
                    {"worker": worker, "quantile": quantile}))
        count_samples.append(_sample(
            "%s_worker_trials" % p, stats.get("count", 0),
            {"worker": worker}))
    if samples:
        gauge("%s_worker_trial_latency_seconds" % p, None,
              "Per-worker seconds between trial completions (quantiles "
              "over a sliding window).", labelled_samples=samples)
    if count_samples:
        gauge("%s_worker_trials" % p, None,
              "Trials counted per worker in the latency window.",
              labelled_samples=count_samples)

    fabric = snapshot.get("fabric")
    if fabric is not None:
        gauge("%s_fabric_workers_active" % p,
              fabric.get("workers_active", 0),
              "Fabric workers seen by the coordinator recently.")
        gauge("%s_fabric_leases_outstanding" % p,
              fabric.get("leases_outstanding", 0),
              "Trial-range leases currently held by workers.")
        counter("%s_fabric_leases_granted" % p,
                fabric.get("leases_granted", 0),
                "Trial-range leases granted since coordinator start.")
        counter("%s_fabric_steals" % p, fabric.get("steals", 0),
                "Expired leases re-queued for another worker.")
        counter("%s_fabric_duplicate_completions" % p,
                fabric.get("duplicate_completions", 0),
                "Completions for already-completed ranges (merged to "
                "nothing).")
        gauge("%s_fabric_campaigns_active" % p,
              fabric.get("campaigns_active", 0),
              "Registered campaigns not yet fully journaled.")
        gauge("%s_fabric_campaigns_done" % p,
              fabric.get("campaigns_done", 0),
              "Registered campaigns fully journaled.")
        depths = fabric.get("queue_depth") or {}
        gauge("%s_fabric_queue_depth" % p, None,
              "Campaigns queued per tenant.",
              labelled_samples=[
                  _sample("%s_fabric_queue_depth" % p, depths[tenant],
                          {"tenant": tenant})
                  for tenant in sorted(depths)])

    lines.append("# EOF")
    return "\n".join(lines) + "\n"
