"""Fault-propagation provenance: the story of one flipped bit.

The paper's masking analysis (Section 3) rests on *why* a flip was
benign: the corrupted element was never read, was overwritten before
use, or belonged to wrong-path state that a squash or recovery flush
discarded.  :class:`ProvenanceTracker` reconstructs that story for the
one element a trial corrupts:

* **armed at injection** -- remembers the element, the flipped bit, and
  the corrupted value;
* **read tracking** -- the flipped element's :class:`Field` handle has
  its ``__class__`` swapped to :class:`_WatchedField` (same ``__slots__``
  layout, so CPython allows the swap), whose ``get()`` notifies the
  tracker.  Every *other* field keeps the plain ``Field.get`` -- the
  cost of watching is paid by exactly one element, and only while a
  tracker is armed;
* **clear detection** -- at each cycle boundary the tracker polls the
  element's raw value; the first cycle it no longer holds the corrupted
  value, the clearing *mechanism* is attributed by correlating with the
  cycle's recovery events: a protection/timeout flush this cycle ->
  ``flushed``, a branch/ordering squash -> ``squashed``, otherwise an
  ordinary ``overwritten``.

Semantics are cycle-granular and deliberately pragmatic: a squash
clears an entry's valid bit without physically scrubbing its payload,
so corruption in a squashed-but-unscrubbed payload that nothing reads
again reports ``never-read`` -- which is exactly the paper's "idle or
mis-speculated state" masking bucket.

Reads are only counted *between* ``begin_cycle``/``end_cycle`` (i.e.
made by pipeline stages); the harness's own observation reads
(signatures, committed views, golden comparison) happen outside the
cycle and never pollute first-read attribution.

All cycle numbers recorded here are relative to injection: 0 is the
first cycle executed after the flip.
"""

from repro.uarch.statelib import Field

__all__ = ["MASKING_CAUSES", "ProvenanceTracker"]

# The masking-cause taxonomy (cf. paper Section 3.2's masking buckets).
MASKING_CAUSES = ("never-read", "overwritten", "squashed", "flushed")


class _WatchedField(Field):
    """A ``Field`` whose reads notify the armed tracker.

    Empty ``__slots__`` keeps the instance layout identical to
    ``Field``, which is what makes the ``__class__`` swap legal; the
    armed tracker is a class attribute because at most one element per
    process is ever watched at a time (trials are sequential within a
    worker).
    """

    __slots__ = ()

    watcher = None

    def get(self):
        watcher = _WatchedField.watcher
        if watcher is not None:
            watcher.note_read()
        return self._values[self.index]


class ProvenanceTracker:
    """Tracks one injected fault from flip to read/clear/architecture."""

    def __init__(self):
        self._field = None
        # repro-lint: allow=REP005 (read-only alias slot, armed in
        # arm(); the tracker never writes through it)
        self._values = None
        self._in_cycle = False
        self._cycle = 0
        self._read_this_cycle = False
        self.element_index = None
        self.element_name = None
        self.bit = None
        self.inject_cycle = None
        self.corrupt_value = None
        self.first_read_cycle = None
        self.cleared_cycle = None
        self.clear_mechanism = None

    @property
    def armed(self):
        return self.element_index is not None

    # -- Arming ------------------------------------------------------------

    def arm(self, pipeline, meta, bit):
        """Start tracking ``meta`` right after its bit was flipped."""
        self.disarm()
        space = pipeline.space
        self.element_index = meta.index
        self.element_name = meta.name
        self.bit = bit
        self.inject_cycle = pipeline.cycle_count
        self.corrupt_value = space.values[meta.index]
        self.first_read_cycle = None
        self.cleared_cycle = None
        self.clear_mechanism = None
        self._read_this_cycle = False
        self._in_cycle = False
        # repro-lint: allow=REP005 (read-only alias: the watcher only
        # compares values on get(); all writes stay on the Field path)
        self._values = space.values
        field = space.handles[meta.index]
        field.__class__ = _WatchedField
        self._field = field
        _WatchedField.watcher = self

    def disarm(self):
        """Stop watching; idempotent, always restores the Field class.

        Collected per-trial data (first read, clear cycle, mechanism)
        survives until the next :meth:`arm`, so callers may read it
        after disarming.
        """
        field = self._field
        if field is not None:
            field.__class__ = Field
            self._field = None
        if _WatchedField.watcher is self:
            _WatchedField.watcher = None
        self._in_cycle = False

    # -- Per-cycle protocol -------------------------------------------------

    def begin_cycle(self, pipeline):
        """Stage reads from here to ``end_cycle`` count as pipeline reads."""
        self._in_cycle = True
        self._cycle = pipeline.cycle_count

    def note_read(self):
        """Called by :class:`_WatchedField` on every read of the element."""
        if not self._in_cycle or self.cleared_cycle is not None:
            return
        if self.first_read_cycle is None \
                and self._values[self.element_index] == self.corrupt_value:
            self.first_read_cycle = self._cycle - self.inject_cycle
            self._read_this_cycle = True

    def end_cycle(self, pipeline, flushed, recovered):
        """Close the cycle; returns ``(newly_read, clear_mechanism)``.

        ``flushed``/``recovered`` say whether a full recovery flush or a
        branch/ordering squash happened *this* cycle -- the correlation
        that attributes the clearing mechanism.  ``clear_mechanism`` is
        non-None only on the cycle the corruption first disappeared.
        """
        self._in_cycle = False
        newly_read = self._read_this_cycle
        self._read_this_cycle = False
        mechanism = None
        if self.cleared_cycle is None and self.armed \
                and self._values[self.element_index] != self.corrupt_value:
            self.cleared_cycle = pipeline.cycle_count - 1 - self.inject_cycle
            if flushed:
                mechanism = "flushed"
            elif recovered:
                mechanism = "squashed"
            else:
                mechanism = "overwritten"
            self.clear_mechanism = mechanism
        return newly_read, mechanism

    # -- Trial summary -----------------------------------------------------

    def masking_cause(self):
        """Why a *benign* trial stayed benign, or None if unresolved.

        One of :data:`MASKING_CAUSES`: the clearing mechanism when the
        corruption disappeared, ``"never-read"`` when it lingered unread
        (idle or squashed-and-unscrubbed state), None when the corrupt
        value was read but neither cleared nor detected -- latent state
        the horizon did not resolve.
        """
        if not self.armed:
            return None
        if self.clear_mechanism is not None:
            return self.clear_mechanism
        if self.first_read_cycle is None:
            return "never-read"
        return None

    def summary(self):
        """Plain-dict view of the tracked trial (for reports/tests)."""
        return {
            "element": self.element_name,
            "bit": self.bit,
            "first_read_cycle": self.first_read_cycle,
            "cleared_cycle": self.cleared_cycle,
            "clear_mechanism": self.clear_mechanism,
            "masking_cause": self.masking_cause(),
        }
