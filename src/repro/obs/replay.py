"""Single-trial replay with full tracing (``repro-faults trace``).

A campaign identifies every trial by ``(workload, start_point,
trial_index)`` under a seed, and the named-split RNG scheme
(``workload/<name> -> sp/<n> -> trial/<n>``) makes each trial's
randomness independent of how many workloads, start points, or trials
the sweep contains.  That is what makes replay cheap: to re-run trial
``#i`` of start point ``n`` we build a *minimal* synthetic config
reaching exactly that far, attach an :class:`~repro.obs.Observer` with
an event tracer and provenance tracker, and run the one unit through
the same :class:`~repro.runner.pool.WorkerContext` the campaign used --
so the replayed trial is byte-identical to the campaign's, now with its
full propagation timeline captured.
"""

from repro.inject.campaign import CampaignConfig
from repro.obs import EventTracer, Observer, ProvenanceTracker, StageProfiler
from repro.runner.units import TrialUnit

__all__ = ["ReplayResult", "replay_config", "replay_trial"]


class ReplayResult:
    """One replayed trial plus everything observed along the way."""

    def __init__(self, trial, tracer, provenance, profiler):
        self.trial = trial
        self.tracer = tracer
        self.provenance = provenance
        self.profiler = profiler

    def render(self, limit=None, kinds=None):
        """The human-readable replay report (timeline + verdict)."""
        trial = self.trial
        lines = [
            "trial %s/sp%d/#%d  seed-split trial/%d" % (
                trial.workload, trial.start_point, trial.trial_index,
                trial.trial_index),
            "injected %s bit %d (%s %s) at cycle %d" % (
                trial.element_name, trial.bit, trial.category, trial.kind,
                trial.inject_cycle),
            "",
            self.tracer.render_timeline(limit=limit, kinds=kinds),
            "",
        ]
        verdict = "outcome %s" % trial.outcome.value
        if trial.failure_mode is not None:
            verdict += " (%s)" % trial.failure_mode.value
        verdict += " after %d cycles" % trial.cycles_run
        lines.append(verdict)
        summary = self.provenance.summary()
        if trial.outcome.is_failure:
            lines.append("detection latency: %s cycles after injection"
                         % trial.detect_latency)
        elif summary["masking_cause"] is not None:
            lines.append("masking cause: %s" % summary["masking_cause"])
        else:
            lines.append("masking cause: unresolved (corrupt value read "
                         "but never cleared within the horizon)")
        if summary["first_read_cycle"] is not None:
            lines.append("first pipeline read of the corrupt value: "
                         "c+%d" % summary["first_read_cycle"])
        if summary["cleared_cycle"] is not None:
            lines.append("corruption cleared: c+%d (%s)" % (
                summary["cleared_cycle"], summary["clear_mechanism"]))
        if self.profiler is not None:
            lines.append("")
            lines.append(self.profiler.render(
                title="Per-stage wall-clock profile (this trial's window)"))
        return "\n".join(lines)


def replay_config(workload, start_point, trial_index=0, **overrides):
    """The minimal campaign config that reaches one trial.

    Sweeps exactly ``start_point + 1`` start points of one workload;
    thanks to the named-split RNG scheme the addressed trial is
    byte-identical to the same coordinates inside any larger sweep with
    the same seed and per-trial parameters.  Golden re-verification is
    off by default (replay already re-derives the golden trace).
    """
    overrides.setdefault("verify_golden", False)
    return CampaignConfig(
        workloads=(workload,),
        start_points_per_workload=start_point + 1,
        trials_per_start_point=trial_index + 1,
        **overrides)


def replay_trial(workload, start_point, trial_index=0, profile=False,
                 capacity=4096, **overrides):
    """Replay one campaign trial with full observation.

    ``overrides`` are :class:`CampaignConfig` fields (``seed``,
    ``scale``, ``kinds``, ``horizon``, ``warmup_cycles``, ...); defaults
    match the default campaign, so a trial traced here matches the same
    coordinates of a default-config campaign.  Returns a
    :class:`ReplayResult`.
    """
    # Imported here: pool imports repro.obs, so importing it at module
    # scope from inside the obs package would be a cycle.
    from repro.runner.pool import WorkerContext

    config = replay_config(workload, start_point, trial_index, **overrides)
    tracer = EventTracer(capacity=capacity)
    provenance = ProvenanceTracker()
    profiler = StageProfiler() if profile else None
    observer = Observer(tracer=tracer, provenance=provenance,
                        profile=profiler)
    context = WorkerContext(config, observer=observer)
    trial = context.run_unit(TrialUnit(workload, start_point, trial_index))
    return ReplayResult(trial, tracer, provenance, profiler)
