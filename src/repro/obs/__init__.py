"""repro.obs: observability for the pipeline model and its campaigns.

Four strictly observation-only facilities (the REP002/REP003 contract:
with everything disabled the simulation is byte-identical, and nothing
recorded here ever feeds pipeline behaviour):

* :mod:`repro.obs.events` -- bounded ring-buffer tracing of typed
  pipeline events (fetch/rename/dispatch/issue/writeback/retire,
  flushes, recoveries, injections, failures);
* :mod:`repro.obs.provenance` -- fault-propagation provenance for the
  one element a trial corrupts (first read, clearing mechanism,
  masking cause);
* :mod:`repro.obs.profile` -- per-stage wall-clock accounting;
* :mod:`repro.obs.metrics` -- OpenMetrics export of campaign telemetry.

:class:`Observer` is the hub the pipeline talks to.  ``Pipeline.obs``
is None by default -- every hook site pays a single attribute check --
and an attached observer fans events out to whichever of the three
collectors it carries.  ``repro-faults trace <workload> --start-point N
--seed S`` (see :mod:`repro.obs.replay`) replays one campaign trial
with a full observer attached and prints the propagation timeline.
"""

from repro.obs.events import EVENT_FIELDS, EventTracer, TraceEvent
from repro.obs.metrics import PROM_PREFIX, render_openmetrics
from repro.obs.profile import StageProfiler, merge_profile, render_profile
from repro.obs.provenance import MASKING_CAUSES, ProvenanceTracker

__all__ = [
    "EVENT_FIELDS", "EventTracer", "TraceEvent",
    "MASKING_CAUSES", "ProvenanceTracker",
    "PROM_PREFIX", "render_openmetrics",
    "StageProfiler", "merge_profile", "render_profile",
    "Observer", "observer_from_config",
]


class Observer:
    """Fans pipeline hook calls out to tracer/provenance/profiler.

    The pipeline only ever sees this one object (``pipeline.obs``); the
    per-collector None checks live here so hook sites stay one-liners.
    ``profile`` is read directly by the observed cycle loop (stage
    timing brackets the whole stage call, which an event-style hook
    cannot do).
    """

    def __init__(self, tracer=None, provenance=None, profile=None):
        self.tracer = tracer
        self.provenance = provenance
        self.profile = profile
        self._flushed_this_cycle = False
        self._recovered_this_cycle = False

    # -- Cycle protocol (driven by Pipeline._cycle_observed) ---------------

    def begin_cycle(self, pipeline):
        self._flushed_this_cycle = False
        self._recovered_this_cycle = False
        if self.provenance is not None:
            self.provenance.begin_cycle(pipeline)

    def end_cycle(self, pipeline):
        provenance = self.provenance
        if provenance is not None and provenance.armed:
            newly_read, mechanism = provenance.end_cycle(
                pipeline, self._flushed_this_cycle,
                self._recovered_this_cycle)
            tracer = self.tracer
            if tracer is not None:
                cycle = pipeline.cycle_count - 1  # the cycle just closed
                if newly_read:
                    tracer.emit(cycle, "corrupt-read",
                                element=provenance.element_name)
                if mechanism is not None:
                    tracer.emit(cycle, "corrupt-clear",
                                element=provenance.element_name,
                                mechanism=mechanism)

    # -- Stage events ------------------------------------------------------

    def on_fetch(self, pipeline, seq, pc):
        if self.tracer is not None:
            self.tracer.emit(pipeline.cycle_count, "fetch", seq=seq, pc=pc)

    def on_rename(self, pipeline, seq, pc, pdst):
        if self.tracer is not None:
            self.tracer.emit(pipeline.cycle_count, "rename",
                             seq=seq, pc=pc, pdst=pdst)

    def on_dispatch(self, pipeline, seq, rob_index):
        if self.tracer is not None:
            self.tracer.emit(pipeline.cycle_count, "dispatch",
                             seq=seq, rob_index=rob_index)

    def on_issue(self, pipeline, seq, rob_index, op_id):
        if self.tracer is not None:
            self.tracer.emit(pipeline.cycle_count, "issue",
                             seq=seq, rob_index=rob_index, op_id=op_id)

    def on_writeback(self, pipeline, rob_index, pdst, value, exc):
        if self.tracer is not None:
            self.tracer.emit(pipeline.cycle_count, "writeback",
                             rob_index=rob_index, pdst=pdst, value=value,
                             exc=exc)

    def on_retire(self, pipeline, seq, pc, op_id, dest, value):
        if self.tracer is not None:
            self.tracer.emit(pipeline.cycle_count, "retire", seq=seq,
                             pc=pc, op_id=op_id, dest=dest, value=value)

    def on_drain(self, pipeline, address, value, size):
        if self.tracer is not None:
            self.tracer.emit(pipeline.cycle_count, "drain",
                             address=address, value=value, size=size)

    # -- Recovery / failure events ----------------------------------------

    def on_recovery(self, pipeline, kind, rob_index, refetch_pc):
        self._recovered_this_cycle = True
        if self.tracer is not None:
            self.tracer.emit(pipeline.cycle_count, "recovery", kind=kind,
                             rob_index=rob_index, refetch_pc=refetch_pc)

    def on_flush(self, pipeline, reason):
        self._flushed_this_cycle = True
        if self.tracer is not None:
            self.tracer.emit(pipeline.cycle_count, "flush", reason=reason)

    def on_failure(self, pipeline, kind):
        if self.tracer is not None:
            self.tracer.emit(pipeline.cycle_count, "failure", kind=kind)

    # -- Trial lifecycle ---------------------------------------------------

    def on_inject(self, pipeline, meta, bit):
        if self.provenance is not None:
            self.provenance.arm(pipeline, meta, bit)
        if self.tracer is not None:
            self.tracer.emit(pipeline.cycle_count, "inject",
                             element=meta.name, category=meta.category.value,
                             kind=meta.kind.value, bit=bit)

    def trial_end(self, pipeline, trial):
        """Close out one trial: annotate provenance fields, disarm.

        Only the provenance-*derived* fields are written here
        (``first_read_cycle``, ``masking_cause``); the always-computed
        fields (``detect_latency``, ``arch_corrupt_cycle``) are filled
        by ``run_trial`` itself so results stay byte-identical whether
        or not an observer is attached (modulo these two keys, which the
        invariance test strips).
        """
        provenance = self.provenance
        if provenance is not None and provenance.armed:
            trial.first_read_cycle = provenance.first_read_cycle
            if trial.outcome.is_benign:
                trial.masking_cause = provenance.masking_cause()
            provenance.disarm()
        if self.tracer is not None:
            self.tracer.emit(
                pipeline.cycle_count, "trial-end",
                outcome=trial.outcome.value,
                mode=trial.failure_mode.value if trial.failure_mode else None,
                cycles=trial.cycles_run)

    def release(self):
        """Safety net: always restore the watched Field class.

        Idempotent; ``run_trial`` calls it in a ``finally`` so an
        exception mid-trial can never leak a ``_WatchedField`` into the
        next trial.
        """
        if self.provenance is not None:
            self.provenance.disarm()


def observer_from_config(config):
    """The observer a campaign config asks for, or None when disabled.

    Duck-typed on optional ``provenance``/``profile`` attributes so it
    also accepts older configs (both default off).  Event tracing is
    *not* campaign-wide -- a per-trial ring buffer for thousands of
    trials is replay territory (``repro-faults trace``), not campaign
    telemetry.
    """
    provenance = bool(getattr(config, "provenance", False))
    profile = bool(getattr(config, "profile", False))
    if not provenance and not profile:
        return None
    return Observer(
        provenance=ProvenanceTracker() if provenance else None,
        profile=StageProfiler() if profile else None,
    )
