"""Per-stage wall-clock profiling (the perf baseline for later PRs).

:class:`StageProfiler` accumulates the wall-clock cost of each pipeline
stage when the observed cycle loop runs.  The clock is injectable for
tests; timings are observation-only and never feed a simulation path
(the REP002 contract), and per-worker deltas are mergeable so the
engine can aggregate a whole campaign's profile across processes.
"""

import time

from repro.utils.tables import format_table

__all__ = ["StageProfiler", "merge_profile", "render_profile"]


class StageProfiler:
    """Accumulates per-stage wall-clock totals and call counts."""

    def __init__(self, clock=None):
        # repro-lint: allow=REP002 (profiling reads the wall clock for
        # stage-cost reporting only; no simulation path consumes it)
        self.clock = clock if clock is not None else time.perf_counter
        self.totals = {}
        self.calls = {}

    def add(self, name, seconds):
        """Charge ``seconds`` of wall-clock to stage ``name``."""
        self.totals[name] = self.totals.get(name, 0.0) + seconds
        self.calls[name] = self.calls.get(name, 0) + 1

    def take(self):
        """Return ``(totals, calls)`` accumulated so far and reset.

        Workers call this at batch boundaries and ship the delta to the
        engine, which :func:`merge_profile`\\ s it into the campaign-wide
        accounting.
        """
        delta = (self.totals, self.calls)
        self.totals = {}
        self.calls = {}
        return delta

    def total_seconds(self):
        return sum(self.totals.values())

    def render(self, title="Per-stage wall-clock profile"):
        return render_profile(self.totals, self.calls, title=title)


def merge_profile(totals, calls, delta):
    """Fold one ``(totals, calls)`` delta into the given accumulators."""
    delta_totals, delta_calls = delta
    for name, seconds in delta_totals.items():
        totals[name] = totals.get(name, 0.0) + seconds
    for name, count in delta_calls.items():
        calls[name] = calls.get(name, 0) + count


def render_profile(totals, calls, title="Per-stage wall-clock profile"):
    """A sorted hot-path table: cost-heaviest stage first."""
    if not totals:
        return "%s\n(no stage timings recorded)" % title
    grand_total = sum(totals.values()) or 1.0
    headers = ["stage", "calls", "total_ms", "mean_us", "share%"]
    rows = []
    for name in sorted(totals, key=lambda n: -totals[n]):
        seconds = totals[name]
        count = calls.get(name, 0)
        rows.append([
            name,
            count,
            1e3 * seconds,
            1e6 * seconds / count if count else 0.0,
            100.0 * seconds / grand_total,
        ])
    total_calls = sum(calls.values())
    total_seconds = sum(totals.values())
    rows.append(["TOTAL", total_calls, 1e3 * total_seconds,
                 1e6 * total_seconds / total_calls if total_calls else 0.0,
                 100.0])
    return format_table(headers, rows, title=title)
