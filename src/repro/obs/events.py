"""Structured event tracing: a bounded ring buffer of pipeline events.

The tracer records *what the machine did* at stage granularity --
fetch, rename, dispatch, issue, writeback, retire, store drains,
flushes, recoveries, fault injections and failures -- as typed
:class:`TraceEvent` records in a bounded ring (old events fall off the
front, ``dropped`` counts them).  It is pure observation: nothing in
the simulator ever reads the ring back, and a pipeline with no tracer
attached pays one ``pipeline.obs is None`` attribute check per stage
(the REP002/REP003 contract; see ``tests/test_obs_invariance.py``).

Event kinds and their payload fields are listed in ``EVENT_FIELDS``;
``docs/OBSERVABILITY.md`` documents the schema.
"""

from collections import deque

__all__ = ["EVENT_FIELDS", "TraceEvent", "EventTracer"]

# kind -> payload fields, in display order.  The schema is advisory
# (events carry plain dicts) but the tracer and docs keep it current.
EVENT_FIELDS = {
    "fetch": ("seq", "pc"),
    "rename": ("seq", "pc", "pdst"),
    "dispatch": ("seq", "rob_index"),
    "issue": ("seq", "rob_index", "op_id"),
    "writeback": ("rob_index", "pdst", "value", "exc"),
    "retire": ("seq", "pc", "op_id", "dest", "value"),
    "drain": ("address", "value", "size"),
    "flush": ("reason",),
    "recovery": ("kind", "rob_index", "refetch_pc"),
    "inject": ("element", "category", "kind", "bit"),
    "failure": ("kind",),
    "corrupt-read": ("element",),
    "corrupt-clear": ("element", "mechanism"),
    "trial-end": ("outcome", "mode", "cycles"),
}


class TraceEvent:
    """One timestamped pipeline event (cycle, kind, payload dict)."""

    __slots__ = ("cycle", "kind", "data")

    def __init__(self, cycle, kind, data):
        self.cycle = cycle
        self.kind = kind
        self.data = data

    def to_dict(self):
        record = {"cycle": self.cycle, "kind": self.kind}
        record.update(self.data)
        return record

    def format(self, origin=0):
        """One timeline line, cycles shown relative to ``origin``."""
        parts = []
        data = self.data
        order = EVENT_FIELDS.get(self.kind, ())
        for name in order:
            if name in data:
                parts.append("%s=%s" % (name, _fmt(name, data[name])))
        for name in sorted(data):
            if name not in order:
                parts.append("%s=%s" % (name, _fmt(name, data[name])))
        return "c+%-5d %-13s %s" % (
            self.cycle - origin, self.kind, " ".join(parts))

    def __repr__(self):
        return "TraceEvent(%d, %r, %r)" % (self.cycle, self.kind, self.data)


def _fmt(name, value):
    if value is None:
        return "-"
    if name in ("pc", "address", "refetch_pc") and isinstance(value, int):
        return "0x%x" % value
    return str(value)


class EventTracer:
    """Bounded ring buffer of :class:`TraceEvent` records.

    ``capacity`` bounds memory for arbitrarily long observations; when
    the ring is full the oldest events are discarded and counted in
    ``dropped``.  ``counts`` keeps per-kind totals over the *whole*
    observation (including dropped events), so rates survive the ring
    bound.
    """

    def __init__(self, capacity=4096):
        self.capacity = capacity
        self.ring = deque(maxlen=capacity)
        self.dropped = 0
        self.counts = {}
        self.inject_cycle = None  # set when an "inject" event is seen

    def emit(self, cycle, kind, /, **data):
        """Append one event (drops the oldest when the ring is full).

        Positional-only parameters: a payload field may itself be
        called ``kind`` (e.g. the storage kind of an injection).
        """
        if len(self.ring) == self.capacity:
            self.dropped += 1
        self.ring.append(TraceEvent(cycle, kind, data))
        self.counts[kind] = self.counts.get(kind, 0) + 1
        if kind == "inject":
            self.inject_cycle = cycle

    def events(self, kind=None):
        """Buffered events, optionally filtered by kind (oldest first)."""
        if kind is None:
            return list(self.ring)
        return [event for event in self.ring if event.kind == kind]

    def clear(self):
        self.ring.clear()
        self.dropped = 0
        self.counts = {}
        self.inject_cycle = None

    def render_timeline(self, limit=None, kinds=None):
        """The buffered events as printable lines.

        Cycles are shown relative to the injection event when one was
        traced (``c+0`` is the injection cycle), otherwise relative to
        the first buffered event.
        """
        events = list(self.ring)
        if kinds is not None:
            events = [e for e in events if e.kind in kinds]
        if limit is not None and len(events) > limit:
            events = events[-limit:]
        if not events:
            return "(no events)"
        origin = self.inject_cycle
        if origin is None:
            origin = events[0].cycle
        lines = [event.format(origin) for event in events]
        if self.dropped:
            lines.insert(0, "(... %d earlier events dropped by the %d-event "
                            "ring ...)" % (self.dropped, self.capacity))
        return "\n".join(lines)
