"""Wire protocol of the campaign fabric: HTTP/JSON on asyncio streams.

The coordinator and its workers speak a deliberately small subset of
HTTP/1.1 -- ``POST <path>`` with a JSON body, answered by a JSON body,
one request per connection (``Connection: close``) -- implemented
directly on :func:`asyncio.start_server` stream pairs.  No
``http.server``, no third-party client: the whole protocol is the few
dozen lines in this module, so there are no new runtime dependencies
and nothing here can block the event loop.

Plain HTTP framing (rather than a bespoke length-prefix format) keeps
the coordinator debuggable with ``curl``::

    curl -s -X POST --data '{}' http://127.0.0.1:8100/status

Segment integrity: completions carry a CRC32 over the canonical JSON
of their trial entries (:func:`segment_checksum`), computed by the
worker and re-verified by the coordinator before any merge -- the
network-layer analogue of the journal's per-line checksums.
"""

import asyncio
import json
import zlib
from dataclasses import dataclass

from repro.errors import FabricError

__all__ = ["MAX_BODY_BYTES", "CALL_TIMEOUT_SECONDS", "Request",
           "read_request", "write_request", "read_response",
           "write_response", "call", "call_sync", "segment_checksum"]

# A segment of trials is a few hundred bytes per trial; this bounds a
# malformed (or hostile) Content-Length long before memory pressure.
MAX_BODY_BYTES = 64 * 1024 * 1024
MAX_HEADER_LINES = 64
CALL_TIMEOUT_SECONDS = 60.0

_STATUS_TEXT = {200: "OK", 400: "Bad Request", 404: "Not Found",
                500: "Internal Server Error"}


@dataclass(frozen=True)
class Request:
    """One parsed request: method, path, decoded JSON payload."""

    method: str
    path: str
    payload: dict


def _decode_payload(body, where):
    if not body:
        return {}
    try:
        payload = json.loads(body.decode("utf-8"))
    except (ValueError, UnicodeDecodeError) as error:
        raise FabricError("%s: undecodable JSON body (%s)" % (where, error))
    if not isinstance(payload, dict):
        raise FabricError("%s: body must be a JSON object, got %s"
                          % (where, type(payload).__name__))
    return payload


async def _read_headers(reader):
    """Header lines -> lowercased dict (first value wins)."""
    headers = {}
    for _ in range(MAX_HEADER_LINES):
        line = await reader.readline()
        if line in (b"\r\n", b"\n", b""):
            return headers
        name, separator, value = line.decode("latin-1").partition(":")
        if separator:
            headers.setdefault(name.strip().lower(), value.strip())
    raise FabricError("more than %d header lines" % MAX_HEADER_LINES)


async def _read_body(reader, headers, where):
    try:
        length = int(headers.get("content-length", "0"))
    except ValueError:
        raise FabricError("%s: malformed Content-Length %r"
                          % (where, headers.get("content-length")))
    if length < 0 or length > MAX_BODY_BYTES:
        raise FabricError("%s: body of %d bytes exceeds the %d-byte limit"
                          % (where, length, MAX_BODY_BYTES))
    if length == 0:
        return b""
    try:
        return await reader.readexactly(length)
    except asyncio.IncompleteReadError as error:
        raise FabricError("%s: peer closed mid-body (%d of %d bytes)"
                          % (where, len(error.partial), length))


async def read_request(reader):
    """Parse one request; returns a :class:`Request`, or None at EOF."""
    line = await reader.readline()
    if not line:
        return None
    try:
        method, path, _version = line.decode("ascii").split(None, 2)
    except (ValueError, UnicodeDecodeError):
        raise FabricError("malformed request line %r" % line[:80])
    headers = await _read_headers(reader)
    body = await _read_body(reader, headers, "request %s" % path)
    return Request(method=method.upper(), path=path,
                   payload=_decode_payload(body, "request %s" % path))


async def write_request(writer, method, path, payload):
    body = json.dumps(payload, sort_keys=True).encode("utf-8")
    head = ("%s %s HTTP/1.1\r\n"
            "Content-Type: application/json\r\n"
            "Content-Length: %d\r\n"
            "Connection: close\r\n\r\n" % (method, path, len(body)))
    writer.write(head.encode("ascii") + body)
    await writer.drain()


async def read_response(reader):
    """Parse one response; returns ``(status_code, payload)``."""
    line = await reader.readline()
    if not line:
        raise FabricError("peer closed before sending a response")
    parts = line.decode("ascii", "replace").split(None, 2)
    if len(parts) < 2 or not parts[1].isdigit():
        raise FabricError("malformed status line %r" % line[:80])
    status = int(parts[1])
    headers = await _read_headers(reader)
    body = await _read_body(reader, headers, "response")
    return status, _decode_payload(body, "response")


async def write_response(writer, status, payload):
    body = json.dumps(payload, sort_keys=True).encode("utf-8")
    head = ("HTTP/1.1 %d %s\r\n"
            "Content-Type: application/json\r\n"
            "Content-Length: %d\r\n"
            "Connection: close\r\n\r\n"
            % (status, _STATUS_TEXT.get(status, "Status"), len(body)))
    writer.write(head.encode("ascii") + body)
    await writer.drain()


async def call(host, port, path, payload, timeout=CALL_TIMEOUT_SECONDS):
    """One client round-trip: connect, POST ``payload``, return the reply.

    A non-200 reply raises :class:`~repro.errors.FabricError` carrying
    the server's ``error`` text; transport failures raise the
    underlying ``OSError`` (callers treat those as retryable).
    """

    async def _once():
        reader, writer = await asyncio.open_connection(host, port)
        try:
            await write_request(writer, "POST", path, payload)
            status, reply = await read_response(reader)
        finally:
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionError, OSError):
                pass  # the reply (if any) is already in hand
        if status != 200:
            raise FabricError(
                "%s:%d%s replied %d: %s"
                % (host, port, path, status,
                   reply.get("error", "(no error text)")))
        return reply

    return await asyncio.wait_for(_once(), timeout)


def call_sync(host, port, path, payload, timeout=CALL_TIMEOUT_SECONDS):
    """Blocking :func:`call` for synchronous callers (the CLI)."""
    return asyncio.run(call(host, port, path, payload, timeout=timeout))


def segment_checksum(entries):
    """CRC32 (8 hex digits) over the canonical JSON of segment entries.

    ``entries`` is the completion payload's trial list --
    ``[[unit_key, trial_dict], ...]`` -- serialised exactly as the
    journal serialises records (sorted keys, compact separators), so
    worker and coordinator agree on the bytes being summed.
    """
    body = json.dumps(entries, sort_keys=True,
                      separators=(",", ":")).encode("utf-8")
    return "%08x" % (zlib.crc32(body) & 0xFFFFFFFF)
