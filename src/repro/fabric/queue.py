"""Multi-tenant campaign queue: who gets the next idle worker.

The coordinator serves many campaigns from many tenants at once; this
queue decides which campaign an idle worker's lease request draws
from.  Policy, in priority order:

* **Quota.**  A tenant never holds more than ``quota`` leases at once
  (counted live from the lease tables, so steals and late completions
  can never corrupt the bookkeeping the way an increment/decrement
  counter could).
* **Round-robin across tenants.**  A rotation cursor advances past
  each tenant that is granted work, so a tenant with one small
  campaign is not starved by a tenant with a huge one.
* **FIFO within a tenant.**  A tenant's own campaigns drain in
  submission order: the oldest campaign with pending ranges wins.

The queue stores only ordering state -- campaign ids grouped per
tenant -- and asks the caller for everything volatile (pending ranges,
outstanding leases) through callables, keeping it trivially testable.
"""

from collections import OrderedDict

__all__ = ["DEFAULT_QUOTA", "FabricQueue"]

# Leases a single tenant may hold concurrently unless the coordinator
# is started with a different --tenant-quota.
DEFAULT_QUOTA = 4


class FabricQueue:
    """Fair scheduler over (tenant, campaign) pairs."""

    def __init__(self, quota=DEFAULT_QUOTA):
        self.quota = max(1, quota)
        # tenant -> [campaign_id, ...] in submission order.  OrderedDict
        # keyed by tenant gives the rotation a stable tenant order.
        self._tenants = OrderedDict()
        self._cursor = 0  # rotation offset into the tenant list

    def submit(self, tenant, campaign_id):
        """Enqueue a campaign at the tail of its tenant's FIFO."""
        self._tenants.setdefault(tenant, []).append(campaign_id)

    def discard(self, campaign_id):
        """Drop a finished campaign from its tenant's FIFO."""
        for tenant, campaigns in list(self._tenants.items()):
            if campaign_id in campaigns:
                campaigns.remove(campaign_id)
                if not campaigns:
                    del self._tenants[tenant]
                return

    def pick(self, has_pending, outstanding):
        """The campaign the next lease should come from, or None.

        ``has_pending(campaign_id)`` reports whether a campaign still
        has ranges waiting; ``outstanding(tenant)`` counts the leases
        a tenant currently holds across all its campaigns.  Tenants at
        quota are skipped this round -- their turn comes back once a
        lease completes or expires.
        """
        tenants = list(self._tenants)
        if not tenants:
            return None
        for step in range(len(tenants)):
            tenant = tenants[(self._cursor + step) % len(tenants)]
            if outstanding(tenant) >= self.quota:
                continue
            for campaign_id in self._tenants[tenant]:
                if has_pending(campaign_id):
                    # Advance past the winner so the next pick starts
                    # at the following tenant (round-robin).
                    self._cursor = (self._cursor + step + 1) % len(tenants)
                    return campaign_id
        return None

    def depths(self):
        """tenant -> campaigns still queued (for telemetry)."""
        return {tenant: len(campaigns)
                for tenant, campaigns in self._tenants.items()}

    def tenant_of(self, campaign_id):
        for tenant, campaigns in self._tenants.items():
            if campaign_id in campaigns:
                return tenant
        return None

    def campaigns_of(self, tenant):
        return list(self._tenants.get(tenant, ()))
