"""Seeded network chaos for the fabric (PR 5's model, at the wire).

The runner's chaos layer (:mod:`repro.chaos`) injects harness faults
-- killed workers, torn journals -- keyed to the completed-trial
count.  This module extends the same idea to the coordinator/worker
wire: faults are keyed to a worker's *granted-lease count* (monotonic
per worker, like the trial count is per campaign), drawn from the
campaign-style named-split RNG, so a chaotic fabric run replays from
``(seed, spec)`` alone.

Fault kinds (:data:`NET_FAULT_KINDS`):

``drop``
    The worker discards a granted lease without executing it or
    heartbeating -- a lost grant reply or a worker crash right after
    the grant.  Recovery: the coordinator's expiry sweep re-queues the
    range and the next lease request steals it.
``dup``
    The worker sends the completion for a finished range twice -- a
    retried POST whose first copy did arrive.  Recovery: the second
    completion is acknowledged ``duplicate`` and merges to nothing.
``partition``
    The worker executes the range but suppresses heartbeats and sits
    out the lease TTL before sending its completion -- a network
    partition that heals after the coordinator has given up.  Recovery:
    the range is re-leased (a steal); whichever completion lands first
    wins and the other is a ``duplicate``/``late`` no-op.

Spec strings reuse the runner grammar: comma-separated
``kind[:count][@at]`` tokens where ``at`` anchors to the worker's nth
granted lease (1-based); unanchored events draw their trigger from the
seed, uniform over ``horizon`` leases.
"""

from dataclasses import dataclass
from typing import Optional

from repro.errors import ConfigError
from repro.utils.rng import SplitRng

__all__ = ["NET_FAULT_KINDS", "NetChaosEvent", "NetChaosSchedule"]

NET_FAULT_KINDS = ("drop", "dup", "partition")


@dataclass
class NetChaosEvent:
    """One scheduled wire fault."""

    kind: str
    at_lease: int  # fires on the worker's nth granted lease (1-based)
    fired_at: Optional[int] = None

    def render(self):
        if self.fired_at is None:
            return "%s@%d: never fired" % (self.kind, self.at_lease)
        return "%s@%d: fired at lease %d" % (self.kind, self.at_lease,
                                             self.fired_at)


class NetChaosSchedule:
    """A replayable schedule of wire faults for one worker."""

    def __init__(self, events):
        self.events = sorted(events, key=lambda e: (e.at_lease, e.kind))

    @classmethod
    def from_spec(cls, spec, seed, horizon=8):
        """Parse ``kind[:count][@at]`` tokens into a seeded schedule.

        ``horizon`` bounds the unanchored trigger draw -- a worker
        typically holds few leases, so the default keeps seeded events
        likely to fire in a short run (events past the last lease
        simply never fire, and :attr:`pending` reports them).
        """
        rng = SplitRng(seed).split("fabric-chaos").split(spec)
        events = []
        for position, token in enumerate(spec.split(",")):
            token = token.strip()
            if not token:
                continue
            body, at = token, None
            if "@" in body:
                body, _, at_text = body.partition("@")
                try:
                    at = int(at_text)
                except ValueError:
                    raise ConfigError(
                        "fabric chaos token %r: %r is not a lease number"
                        % (token, at_text))
            count = 1
            if ":" in body:
                body, _, count_text = body.partition(":")
                try:
                    count = int(count_text)
                except ValueError:
                    raise ConfigError(
                        "fabric chaos token %r: %r is not a count"
                        % (token, count_text))
            kind = body.strip()
            if kind not in NET_FAULT_KINDS:
                raise ConfigError(
                    "unknown fabric chaos fault %r (choose from %s)"
                    % (kind, ", ".join(NET_FAULT_KINDS)))
            for index in range(count):
                if at is not None:
                    at_lease = at
                else:
                    token_rng = rng.split(
                        "%d/%s/%d" % (position, kind, index))
                    at_lease = 1 + token_rng.randrange(max(1, horizon))
                events.append(NetChaosEvent(kind=kind, at_lease=at_lease))
        return cls(events)

    @property
    def pending(self):
        """Events that have not fired yet."""
        return [event for event in self.events if event.fired_at is None]

    def render(self):
        """One line per event: trigger point and firing point."""
        return "\n".join(event.render() for event in self.events)

    def fire(self, kind, lease_number):
        """Consume one due, unfired ``kind`` event; True if one fired.

        The worker asks once per granted lease, in fault-kind priority
        order; at most one event of each kind fires per lease.
        """
        for event in self.events:
            if event.kind == kind and event.fired_at is None \
                    and event.at_lease <= lease_number:
                event.fired_at = lease_number
                return True
        return False
