"""The campaign coordinator: injection-as-a-service.

One asyncio process owns the authoritative state of every registered
campaign: the lease tables (:mod:`repro.fabric.leases`), the
multi-tenant queue (:mod:`repro.fabric.queue`), and -- critically --
the *journal*.  Workers never write journals; they return completed
trial segments over the wire and the coordinator merges them through
:func:`repro.inject.store.merge_campaign_dicts` (fingerprint + schema
validation, unit-keyed dedup) plus the wire checksum, then appends the
surviving trials to the same schema-2 journal the serial runner
writes.  A fabric campaign's journal is therefore canonically
byte-identical to a serial run's: same header shape, same trial dicts,
same per-line CRCs.

Concurrency model: one event loop, one :class:`asyncio.Lock` over all
campaign state (the state is small; trial execution happens on
workers).  Blocking file I/O -- journal opens and appends, metrics
rewrites, resume reads -- runs in the default executor so request
handling never stalls the loop (the REP007 contract).

Endpoints (POST + JSON; see :mod:`repro.fabric.protocol`):

=============  =====================================================
``/submit``    register a campaign (idempotent per fingerprint)
``/lease``     grant the next trial range to a worker
``/heartbeat`` extend a lease; False means "abandon that range"
``/complete``  return a finished segment for merge + journal append
``/status``    telemetry snapshot (also written to metrics.json/.prom)
``/shutdown``  stop serving after the reply is written
=============  =====================================================
"""

import asyncio
import functools
import os
import time

from repro.errors import FabricError, ReproError
from repro.fabric.leases import LeaseTable
from repro.fabric.protocol import (
    read_request,
    segment_checksum,
    write_response,
)
from repro.fabric.queue import DEFAULT_QUOTA, FabricQueue
from repro.inject.store import (
    SCHEMA_VERSION,
    campaign_fingerprint,
    config_from_dict,
    config_to_dict,
    inventory_from_dict,
    merge_campaign_dicts,
)
from repro.runner.journal import (
    JournalWriter,
    journal_path,
    read_journal,
    write_metrics,
)
from repro.runner.units import TrialUnit, enumerate_units

__all__ = ["DEFAULT_TTL_SECONDS", "DEFAULT_SHARD_SIZE", "Coordinator",
           "render_status", "serve"]

# Lease time-to-live between heartbeats.  Generous relative to a
# shard's runtime: expiry is for dead/partitioned workers, not pacing.
DEFAULT_TTL_SECONDS = 30.0
# Trials per lease.  Small shards bound the work lost to a steal and
# keep many workers busy on small campaigns; the per-lease overhead is
# one HTTP round-trip, which trial execution dwarfs.
DEFAULT_SHARD_SIZE = 4

# A worker counts as active while its last request (lease, heartbeat,
# completion) is at most this many TTLs old.
_WORKER_ACTIVE_TTLS = 2.0


class _Campaign:
    """Coordinator-side state of one registered campaign."""

    def __init__(self, campaign_id, tenant, config, directory, units,
                 leases):
        self.campaign_id = campaign_id
        self.tenant = tenant
        self.config = config
        self.fingerprint = campaign_id
        self.directory = directory
        self.units = units
        self.index_of = {unit: index for index, unit in enumerate(units)}
        self.leases = leases
        self.writer = None  # opened lazily on the first merged segment
        self.journaled = set()  # TrialUnits durably appended (or resumed)
        self.doc = None  # accumulated merged uarch-campaign document
        self.eligible_bits = None  # fixed by the first segment (or resume)
        self.inventory_dict = None

    @property
    def done(self):
        return self.leases.done and len(self.journaled) >= len(self.units)


class Coordinator:
    """Serves leases to workers and owns every campaign journal."""

    def __init__(self, directory, host="127.0.0.1", port=0,
                 ttl=DEFAULT_TTL_SECONDS, shard_size=DEFAULT_SHARD_SIZE,
                 quota=DEFAULT_QUOTA, clock=None):
        self.directory = directory
        self.host = host
        self.port = port  # 0 = ephemeral; .port is rebound on start()
        self.ttl = float(ttl)
        self.shard_size = int(shard_size)
        self._campaigns = {}  # fingerprint -> _Campaign
        self._queue = FabricQueue(quota)
        self._lock = asyncio.Lock()
        self._workers = {}  # worker name -> clock of last request
        self._server = None
        self._stopping = asyncio.Event()
        # repro-lint: allow=REP002 (lease deadlines pace harness
        # recovery only; no simulation path reads this clock)
        self._clock = clock if clock is not None else time.monotonic

    # -- lifecycle ------------------------------------------------------

    async def start(self):
        """Bind the listening socket; returns the bound port."""
        self._server = await asyncio.start_server(
            self._handle, self.host, self.port)
        self.port = self._server.sockets[0].getsockname()[1]
        return self.port

    async def stop(self):
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
            self._server = None
        async with self._lock:
            for state in self._campaigns.values():
                if state.writer is not None:
                    await self._blocking(state.writer.close)
                    state.writer = None

    async def wait_stopped(self):
        """Block until a ``/shutdown`` request arrives."""
        await self._stopping.wait()

    async def _blocking(self, fn, *args):
        loop = asyncio.get_running_loop()
        return await loop.run_in_executor(None, functools.partial(fn, *args))

    # -- connection handling --------------------------------------------

    async def _handle(self, reader, writer):
        try:
            request = await read_request(reader)
            if request is None:
                return
            try:
                reply = await self._dispatch(request)
                status = 200
            except FabricError as error:
                reply, status = {"error": str(error)}, 400
            except ReproError as error:
                reply, status = {"error": "%s: %s"
                                 % (type(error).__name__, error)}, 500
            await write_response(writer, status, reply)
        except (ConnectionError, FabricError, asyncio.IncompleteReadError):
            pass  # a malformed or torn request kills only its connection
        finally:
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionError, OSError):
                pass

    async def _dispatch(self, request):
        routes = {
            "/submit": self._submit,
            "/lease": self._lease,
            "/heartbeat": self._heartbeat,
            "/complete": self._complete,
            "/status": self._status,
            "/shutdown": self._shutdown,
        }
        handler = routes.get(request.path)
        if handler is None or request.method != "POST":
            raise FabricError("no route %s %s"
                              % (request.method, request.path))
        return await handler(request.payload)

    # -- routes ---------------------------------------------------------

    async def _submit(self, payload):
        """Register (or idempotently re-register) a campaign."""
        tenant = str(payload.get("tenant") or "default")
        if "config" not in payload:
            raise FabricError("/submit: missing config")
        try:
            config = config_from_dict(payload["config"])
        except (KeyError, TypeError, ValueError) as error:
            raise FabricError("/submit: bad config (%s)" % error)
        shard_size = int(payload.get("shard_size") or self.shard_size)
        fingerprint = campaign_fingerprint(config)
        async with self._lock:
            state = self._campaigns.get(fingerprint)
            if state is None:
                state = await self._register(tenant, config, fingerprint,
                                             shard_size)
            return {
                "campaign": state.campaign_id,
                "fingerprint": state.fingerprint,
                "tenant": state.tenant,
                "total_units": len(state.units),
                "ranges": state.leases.range_count,
                "resumed_units": len(state.journaled),
                "done": state.done,
                "directory": state.directory,
            }

    async def _register(self, tenant, config, fingerprint, shard_size):
        directory = os.path.join(self.directory, fingerprint[:12])
        units = enumerate_units(config)
        resumed = await self._blocking(
            _resumed_trials, directory, fingerprint)
        done_indices = [index for index, unit in enumerate(units)
                        if unit in resumed]
        leases = LeaseTable(fingerprint, len(units), shard_size,
                            done_indices=done_indices)
        state = _Campaign(fingerprint, tenant, config, directory, units,
                          leases)
        state.journaled = set(resumed)
        self._campaigns[fingerprint] = state
        if not state.done:
            self._queue.submit(tenant, fingerprint)
        await self._write_metrics()
        return state

    async def _lease(self, payload):
        """Grant the next range per queue policy, or report idleness."""
        worker = str(payload.get("worker") or "anonymous")
        async with self._lock:
            now = self._clock()
            self._workers[worker] = now
            self._sweep(now)
            fingerprint = self._queue.pick(
                lambda cid: self._campaigns[cid].leases.pending > 0,
                self._tenant_outstanding)
            if fingerprint is None:
                active = sum(1 for state in self._campaigns.values()
                             if not state.done)
                return {"lease": None, "campaigns_active": active}
            state = self._campaigns[fingerprint]
            lease = state.leases.grant(worker, now, self.ttl)
            return {
                "lease": {
                    "lease_id": lease.lease_id,
                    "campaign": state.campaign_id,
                    "lo": lease.lo,
                    "hi": lease.hi,
                    "generation": lease.generation,
                },
                "config": config_to_dict(state.config),
                "fingerprint": state.fingerprint,
                "ttl": self.ttl,
            }

    async def _heartbeat(self, payload):
        """Extend a live lease; ``ok: False`` tells the worker to stop."""
        async with self._lock:
            now = self._clock()
            worker = payload.get("worker")
            if worker:
                self._workers[str(worker)] = now
            self._sweep(now)
            state = self._campaigns.get(payload.get("campaign"))
            if state is None:
                return {"ok": False}
            ok = state.leases.heartbeat(
                str(payload.get("lease_id") or ""), now, self.ttl)
            return {"ok": ok}

    async def _complete(self, payload):
        """Validate, merge and journal one returned segment."""
        async with self._lock:
            now = self._clock()
            worker = payload.get("worker")
            if worker:
                self._workers[str(worker)] = now
            state = self._campaigns.get(payload.get("campaign"))
            if state is None:
                raise FabricError("/complete: unknown campaign %r"
                                  % payload.get("campaign"))
            lease_id = str(payload.get("lease_id") or "")
            entries = payload.get("entries")
            if not isinstance(entries, list):
                raise FabricError("/complete: entries must be a list")
            if payload.get("checksum") != segment_checksum(entries):
                raise FabricError(
                    "/complete: segment checksum mismatch for lease %s "
                    "(corrupt in flight); lease left to expire and be "
                    "re-run" % lease_id)
            if payload.get("fingerprint") != state.fingerprint:
                raise FabricError(
                    "/complete: fingerprint %r does not match campaign %s"
                    % (payload.get("fingerprint"), state.fingerprint[:12]))
            lease = state.leases.lookup(lease_id)
            if lease is None:
                raise FabricError("/complete: unknown lease %r" % lease_id)
            self._validate_entries(state, lease, entries)
            disposition = state.leases.complete(lease_id)
            appended = 0
            if disposition in ("ok", "late"):
                appended = await self._merge_segment(state, payload, entries)
            if state.done:
                self._queue.discard(state.campaign_id)
                if state.writer is not None:
                    await self._blocking(state.writer.close)
                    state.writer = None
            await self._write_metrics()
            return {"disposition": disposition, "appended": appended,
                    "done": state.done}

    async def _status(self, _payload):
        async with self._lock:
            self._sweep(self._clock())
            snapshot = self._snapshot()
            await self._write_metrics(snapshot)
            return snapshot

    async def _shutdown(self, _payload):
        self._stopping.set()
        return {"stopping": True}

    # -- merge path -----------------------------------------------------

    def _validate_entries(self, state, lease, entries):
        """Every entry must be a unit of the leased range, exactly once."""
        seen = set()
        for entry in entries:
            if not (isinstance(entry, (list, tuple)) and len(entry) == 2):
                raise FabricError("/complete: malformed entry %r" % (entry,))
            try:
                unit = TrialUnit.from_key(entry[0])
            except (TypeError, ValueError) as error:
                raise FabricError("/complete: bad unit key %r (%s)"
                                  % (entry[0], error))
            index = state.index_of.get(unit)
            if index is None or not lease.lo <= index < lease.hi:
                raise FabricError(
                    "/complete: unit %r is outside leased range [%d, %d)"
                    % (entry[0], lease.lo, lease.hi))
            if unit in seen:
                raise FabricError("/complete: unit %r repeated in segment"
                                  % (entry[0],))
            seen.add(unit)
        expected = lease.hi - lease.lo
        if len(seen) != expected:
            raise FabricError(
                "/complete: segment has %d of the %d units of range "
                "[%d, %d)" % (len(seen), expected, lease.lo, lease.hi))

    async def _merge_segment(self, state, payload, entries):
        """Merge a validated segment; returns trials newly journaled."""
        eligible_bits = payload.get("eligible_bits")
        inventory_dict = payload.get("inventory")
        if not isinstance(eligible_bits, int) \
                or not isinstance(inventory_dict, dict):
            raise FabricError(
                "/complete: segment carries no machine inventory")
        if state.eligible_bits is None:
            state.eligible_bits = eligible_bits
            state.inventory_dict = inventory_dict
        elif state.eligible_bits != eligible_bits:
            raise FabricError(
                "/complete: eligible_bits %d disagrees with the "
                "campaign's %d -- worker is running different code or "
                "config" % (eligible_bits, state.eligible_bits))
        segment_doc = {
            "schema": SCHEMA_VERSION,
            "kind": "uarch-campaign",
            "fingerprint": state.fingerprint,
            "config": config_to_dict(state.config),
            "eligible_bits": state.eligible_bits,
            "inventory": state.inventory_dict,
            "elapsed_seconds": 0.0,
            "trials": [trial for _key, trial in entries],
        }
        # merge_campaign_dicts re-derives and cross-checks the
        # fingerprint from each document's config and dedups on unit
        # keys -- the same validation the offline `repro-faults merge`
        # subcommand applies to journal shards.
        state.doc = segment_doc if state.doc is None \
            else merge_campaign_dicts([state.doc, segment_doc])
        if state.writer is None:
            state.writer = await self._blocking(
                _open_writer, state.directory, state.config,
                state.eligible_bits, state.inventory_dict)
        fresh = [(TrialUnit.from_key(key), trial)
                 for key, trial in entries
                 if TrialUnit.from_key(key) not in state.journaled]
        if fresh:
            await self._blocking(_append_segment, state.writer, fresh)
            state.journaled.update(unit for unit, _trial in fresh)
        return len(fresh)

    # -- shared machinery -----------------------------------------------

    def _sweep(self, now):
        """Expire overdue leases everywhere (the work-stealing engine)."""
        for state in self._campaigns.values():
            state.leases.expire(now)

    def _tenant_outstanding(self, tenant):
        return sum(state.leases.outstanding
                   for state in self._campaigns.values()
                   if state.tenant == tenant)

    async def _write_metrics(self, snapshot=None):
        if snapshot is None:
            snapshot = self._snapshot()
        await self._blocking(_write_metrics_dir, self.directory, snapshot)

    def _snapshot(self):
        """The coordinator's telemetry snapshot (metrics.json shape)."""
        now = self._clock()
        horizon = self.ttl * _WORKER_ACTIVE_TTLS
        states = list(self._campaigns.values())
        fabric = {
            "workers_active": sum(
                1 for seen in self._workers.values()
                if now - seen <= horizon),
            "leases_outstanding": sum(
                state.leases.outstanding for state in states),
            "leases_granted": sum(state.leases.grants for state in states),
            "steals": sum(state.leases.steals for state in states),
            "duplicate_completions": sum(
                state.leases.duplicates for state in states),
            "campaigns_active": sum(
                1 for state in states if not state.done),
            "campaigns_done": sum(1 for state in states if state.done),
            "queue_depth": self._queue.depths(),
        }
        campaigns = {
            state.campaign_id[:12]: {
                "tenant": state.tenant,
                "total_units": len(state.units),
                "journaled": len(state.journaled),
                "pending_ranges": state.leases.pending,
                "outstanding": state.leases.outstanding,
                "completed_ranges": state.leases.completed_ranges,
                "done": state.done,
            }
            for state in states
        }
        return {
            "total": sum(len(state.units) for state in states),
            "done": sum(len(state.journaled) for state in states),
            "fabric": fabric,
            "campaigns": campaigns,
        }


# -- blocking helpers (always dispatched to the executor) ----------------


def _resumed_trials(directory, fingerprint):
    """Units an existing campaign journal already covers."""
    path = journal_path(directory)
    if not os.path.exists(path):
        return set()
    contents = read_journal(path)
    if contents.header is not None \
            and contents.header.get("fingerprint") != fingerprint:
        raise FabricError(
            "campaign directory %s holds a journal of fingerprint %s, "
            "not %s; refusing to mix experiments"
            % (directory, str(contents.header.get("fingerprint"))[:12],
               fingerprint[:12]))
    return set(contents.trials)


def _open_writer(directory, config, eligible_bits, inventory_dict):
    return JournalWriter.open(
        directory, config, eligible_bits,
        inventory_from_dict(inventory_dict))


def _append_segment(writer, pairs):
    for unit, trial in pairs:
        writer.append_raw(unit, trial)


def _write_metrics_dir(directory, snapshot):
    os.makedirs(directory, exist_ok=True)
    write_metrics(directory, snapshot)


# -- CLI surface ---------------------------------------------------------


def render_status(snapshot):
    """The coordinator's one-line status (the ``serve`` heartbeat)."""
    fabric = snapshot.get("fabric") or {}
    depths = fabric.get("queue_depth") or {}
    queue_text = " ".join(
        "%s=%d" % (tenant, depths[tenant]) for tenant in sorted(depths)) \
        or "empty"
    return ("fabric: %d workers | %d/%d trials | leases %d out / %d "
            "granted | %d steals | %d dups | campaigns %d active %d done "
            "| queue %s"
            % (fabric.get("workers_active", 0), snapshot.get("done", 0),
               snapshot.get("total", 0),
               fabric.get("leases_outstanding", 0),
               fabric.get("leases_granted", 0), fabric.get("steals", 0),
               fabric.get("duplicate_completions", 0),
               fabric.get("campaigns_active", 0),
               fabric.get("campaigns_done", 0), queue_text))


async def _serve(coordinator, status_interval, echo):
    await coordinator.start()
    if echo is not None:
        echo("coordinator listening on %s:%d (campaigns under %s)"
             % (coordinator.host, coordinator.port, coordinator.directory))
    try:
        while not coordinator._stopping.is_set():
            try:
                await asyncio.wait_for(coordinator.wait_stopped(),
                                       timeout=status_interval)
            except asyncio.TimeoutError:
                pass
            if echo is not None:
                async with coordinator._lock:
                    coordinator._sweep(coordinator._clock())
                    snapshot = coordinator._snapshot()
                    await coordinator._write_metrics(snapshot)
                echo(render_status(snapshot))
    finally:
        await coordinator.stop()


def serve(directory, host="127.0.0.1", port=8100, ttl=DEFAULT_TTL_SECONDS,
          shard_size=DEFAULT_SHARD_SIZE, quota=DEFAULT_QUOTA,
          status_interval=10.0, echo=print):
    """Blocking entry point: run a coordinator until ``/shutdown``."""
    coordinator = Coordinator(directory, host=host, port=port, ttl=ttl,
                              shard_size=shard_size, quota=quota)
    asyncio.run(_serve(coordinator, status_interval, echo))
    return coordinator
