"""Fabric worker: executes leased trial ranges with the runner machinery.

A worker is a loop around four wire calls -- lease, heartbeat,
complete, repeat -- wrapped over the *existing* execution machinery:
:class:`repro.runner.pool.WorkerContext` inline (``processes=1``, the
default) or a :class:`repro.runner.pool.WorkerPool` of local processes
(``processes>1``).  Either way each trial's bytes are produced by
exactly the code the serial runner uses, from RNG streams named only
by ``(seed, workload, start_point, trial_index)`` -- which is why any
assignment of ranges to workers, including chaotic reassignment after
steals, converges to the serial run's journal.

Trial execution is CPU-bound synchronous code, so it runs in the
default executor while the event loop keeps the heartbeat task
breathing (the REP007 contract: nothing blocking inside ``async
def``).  Completions are spooled through
:func:`repro.runner.journal.write_segment` before transmission, so a
worker crash after computing a range loses at most the unsent wire
message, never silently corrupts one.

Network chaos (:mod:`repro.fabric.chaos`) hooks three points of the
loop: a granted lease may be *dropped* on the floor, a completion may
be *duplicated*, and a *partitioned* worker suppresses heartbeats and
sits out the lease TTL before completing late.  All are seeded and
replayable; the fabric smoke test drives all three and still demands a
byte-identical journal.
"""

import asyncio
import os
import random
from collections import deque

from repro.errors import CampaignError, FabricError
from repro.fabric.protocol import call, segment_checksum
from repro.inject.campaign import _KINDS
from repro.inject.store import (
    campaign_fingerprint,
    config_from_dict,
    inventory_to_dict,
    trial_to_dict,
)
from repro.runner.journal import segment_header, write_segment
from repro.runner.pool import WorkerContext, WorkerPool
from repro.runner.units import auto_batch_size, batch_units, enumerate_units
from repro.uarch.config import PipelineConfig
from repro.uarch.core import Pipeline
from repro.workloads import get_workload

__all__ = ["FabricWorker"]

# Transport failures tolerated per wire call before the worker gives
# up on the coordinator.  Backoff doubles from ``retry_base`` up to
# ``_RETRY_CAP`` seconds, and every sleep is scaled by a jitter in
# [0.5, 1.5) drawn from a per-worker seeded stream, so a fleet whose
# coordinator blips never thunders back in lockstep.
_MAX_TRANSPORT_FAILURES = 10
_RETRY_CAP = 5.0
# Consecutive empty lease polls before an --exit-when-idle worker stops.
_IDLE_POLLS_BEFORE_EXIT = 3
# A partitioned worker sits out this many TTLs before completing late
# -- comfortably past expiry, so the steal path provably engages.
_PARTITION_TTLS = 1.6


class FabricWorker:
    """One lease-pulling worker process (inline or pool-backed)."""

    def __init__(self, host, port, name=None, processes=1, chaos=None,
                 poll_interval=None, max_leases=None, exit_when_idle=False,
                 spool_dir=None, echo=None, retry_base=0.1,
                 retry_attempts=_MAX_TRANSPORT_FAILURES):
        self.host = host
        self.port = port
        self.name = name or "worker-%d" % os.getpid()
        self.processes = max(1, processes)
        self.chaos = chaos
        self.poll_interval = poll_interval
        self.max_leases = max_leases
        self.exit_when_idle = exit_when_idle
        self.spool_dir = spool_dir
        self.echo = echo
        self.retry_base = retry_base
        self.retry_attempts = max(1, retry_attempts)
        # Jitter only -- never trial bytes -- so a fixed per-worker
        # seed keeps runs replayable without coupling to wall clock.
        self._backoff_rng = random.Random("backoff/%s" % self.name)
        self._contexts = {}  # fingerprint -> WorkerContext (inline path)
        self._pools = {}  # fingerprint -> WorkerPool (processes > 1)
        # fingerprint -> (eligible_bits, inventory, inventory dict)
        self._machine = {}
        self.stats = {"leases": 0, "trials": 0, "dropped": 0,
                      "duplicates_sent": 0, "partitions": 0, "steals_lost": 0}

    # -- main loop ------------------------------------------------------

    async def run(self):
        """Pull and execute leases until idle/limits; returns stats."""
        idle_polls = 0
        lease_number = 0
        try:
            while True:
                if self.max_leases is not None \
                        and self.stats["leases"] >= self.max_leases:
                    break
                reply = await self._call_retry("/lease",
                                               {"worker": self.name})
                lease = reply.get("lease")
                if lease is None:
                    # Only count as idle when no campaign is live at all:
                    # an active campaign with nothing leasable right now
                    # may still re-queue a stolen range this worker must
                    # stay around to pick up.
                    if reply.get("campaigns_active", 0) == 0:
                        idle_polls += 1
                        if self.exit_when_idle \
                                and idle_polls >= _IDLE_POLLS_BEFORE_EXIT:
                            break
                    else:
                        idle_polls = 0
                    await asyncio.sleep(self._pace())
                    continue
                idle_polls = 0
                lease_number += 1
                self.stats["leases"] += 1
                await self._serve_lease(reply, lease_number)
        finally:
            for pool in self._pools.values():
                pool.shutdown()
            self._pools.clear()
        return dict(self.stats)

    def _pace(self):
        if self.poll_interval is not None:
            return self.poll_interval
        return 0.5

    async def _call_retry(self, path, payload, attempts=None):
        """One wire call with bounded, jittered exponential backoff.

        Transport failures (socket errors, timeouts) are retried up to
        ``attempts`` times (default ``retry_attempts``), then surfaced
        as a :class:`~repro.errors.FabricError`.  Coordinator-level
        :class:`~repro.errors.FabricError` replies are *not* retried:
        those are answers (bad checksum, unknown lease), not outages,
        and retrying them can only duplicate work.
        """
        attempts = self.retry_attempts if attempts is None else attempts
        delay = self.retry_base
        for attempt in range(1, attempts + 1):
            try:
                return await call(self.host, self.port, path, payload)
            except (OSError, asyncio.TimeoutError) as error:
                if attempt >= attempts:
                    raise FabricError(
                        "worker %s: %s to coordinator %s:%d failed "
                        "after %d attempts: %s"
                        % (self.name, path, self.host, self.port,
                           attempt, error))
                await asyncio.sleep(
                    delay * (0.5 + self._backoff_rng.random()))
                delay = min(delay * 2.0, _RETRY_CAP)

    def _say(self, text):
        if self.echo is not None:
            self.echo("[%s] %s" % (self.name, text))

    # -- one lease ------------------------------------------------------

    async def _serve_lease(self, reply, lease_number):
        lease = reply["lease"]
        ttl = float(reply.get("ttl") or 30.0)
        chaos = self.chaos
        if chaos is not None and chaos.fire("drop", lease_number):
            # Simulated lost grant: no heartbeat, no work.  The
            # coordinator's expiry sweep re-leases the range.
            self.stats["dropped"] += 1
            self._say("chaos: dropped lease %s" % lease["lease_id"])
            return
        partitioned = chaos is not None \
            and chaos.fire("partition", lease_number)
        if partitioned:
            self.stats["partitions"] += 1
            self._say("chaos: partitioned during lease %s"
                      % lease["lease_id"])
        config = config_from_dict(reply["config"])
        fingerprint = reply.get("fingerprint") \
            or campaign_fingerprint(config)
        heartbeats = None
        if not partitioned:
            heartbeats = asyncio.ensure_future(
                self._heartbeat_loop(lease, ttl))
        try:
            entries = await self._execute(config, fingerprint,
                                          lease["lo"], lease["hi"])
        finally:
            if heartbeats is not None:
                heartbeats.cancel()
                try:
                    await heartbeats
                except asyncio.CancelledError:
                    pass
        if partitioned:
            # Heal the partition only after the lease is provably dead.
            await asyncio.sleep(ttl * _PARTITION_TTLS)
        disposition = await self._complete(lease, fingerprint, entries)
        if disposition in ("late", "duplicate"):
            self.stats["steals_lost"] += 1
        self.stats["trials"] += len(entries)
        self._say("lease %s -> %s (%d trials)"
                  % (lease["lease_id"], disposition, len(entries)))
        if chaos is not None and chaos.fire("dup", lease_number):
            # Simulated retried POST whose first copy did arrive.
            self.stats["duplicates_sent"] += 1
            second = await self._complete(lease, fingerprint, entries)
            self._say("chaos: duplicate completion of %s -> %s"
                      % (lease["lease_id"], second))

    async def _heartbeat_loop(self, lease, ttl):
        interval = max(0.05, ttl / 3.0)
        while True:
            await asyncio.sleep(interval)
            try:
                # A couple of quick in-beat retries; a beat that still
                # fails is skipped, not fatal -- the lease may survive
                # to the next one.
                reply = await self._call_retry(
                    "/heartbeat",
                    {"worker": self.name,
                     "campaign": lease["campaign"],
                     "lease_id": lease["lease_id"]},
                    attempts=3)
            except FabricError:
                continue  # transient; the lease may still be alive
            if not reply.get("ok"):
                # Superseded or completed elsewhere: keep computing --
                # at-least-once means our result is still mergeable
                # (it will land as "late" or "duplicate").
                return

    async def _complete(self, lease, fingerprint, entries):
        # A computed range is the expensive thing the worker holds;
        # retry-backoff here means one flaky POST no longer throws
        # away minutes of trial execution (the coordinator dedupes a
        # double delivery as "duplicate", so at-least-once is safe).
        reply = await self._call_retry(
            "/complete",
            {"worker": self.name,
             "campaign": lease["campaign"],
             "lease_id": lease["lease_id"],
             "fingerprint": fingerprint,
             "entries": entries,
             "checksum": segment_checksum(entries),
             "eligible_bits": self._machine[fingerprint][0],
             "inventory": self._machine[fingerprint][2]})
        return reply.get("disposition")

    # -- execution (runs in the default executor) -----------------------

    async def _execute(self, config, fingerprint, lo, hi):
        loop = asyncio.get_running_loop()
        return await loop.run_in_executor(
            None, self._execute_sync, config, fingerprint, lo, hi)

    def _execute_sync(self, config, fingerprint, lo, hi):
        units = enumerate_units(config)[lo:hi]
        if fingerprint not in self._machine:
            self._machine[fingerprint] = _machine_info(config)
        if self.processes == 1:
            context = self._contexts.get(fingerprint)
            if context is None:
                context = WorkerContext(config)
                self._contexts[fingerprint] = context
            pairs = [(unit, trial_to_dict(context.run_unit(unit)))
                     for unit in units]
        else:
            pairs = self._execute_pool(config, fingerprint, units)
        entries = [[unit.key(), trial] for unit, trial in pairs]
        self._spool(config, fingerprint, lo, hi, pairs)
        return entries

    def _execute_pool(self, config, fingerprint, units):
        """Run ``units`` on this worker's local process pool."""
        pool = self._pools.get(fingerprint)
        if pool is None:
            pool = WorkerPool(config, PipelineConfig.paper(config.protection),
                              self.processes)
            self._pools[fingerprint] = pool
        batches = deque()
        next_id = 0
        for batch in batch_units(units,
                                 auto_batch_size(len(units),
                                                 self.processes)):
            batches.append((next_id, batch))
            next_id += 1
        remaining = {}  # batch_id -> units not yet reported
        results = {}
        while len(results) < len(units):
            for worker in pool.idle_workers():
                if not batches:
                    break
                batch_id, batch = batches.popleft()
                remaining.setdefault(batch_id, set(batch.units()))
                pool.assign(worker, batch_id, batch, 0.0)
            message = pool.next_message(timeout=0.2)
            if message is None:
                for worker in list(pool.workers):
                    if worker.busy and not worker.alive():
                        # Requeue the dead worker's unreported units as
                        # fresh batches; precise requeue mirrors the
                        # engine's recovery.
                        lost = sorted(remaining.get(worker.batch_id, ()))
                        for batch in batch_units(
                                lost, auto_batch_size(max(1, len(lost)),
                                                      self.processes)):
                            batches.append((next_id, batch))
                            next_id += 1
                        pool.replace(worker)
                continue
            kind, worker_id, batch_id, payload = message
            if kind == "trial":
                unit, trial = payload
                results[unit] = trial_to_dict(trial)
                if batch_id in remaining:
                    remaining[batch_id].discard(unit)
            elif kind == "done":
                worker = pool.by_id(worker_id)
                if worker is not None:
                    worker.batch_id = None
            elif kind == "error":
                raise CampaignError(
                    "fabric worker %s pool: %s" % (self.name, payload))
        return [(unit, results[unit]) for unit in units]

    def _spool(self, config, fingerprint, lo, hi, pairs):
        """Durably spool the finished segment before transmitting it."""
        if self.spool_dir is None:
            return
        os.makedirs(self.spool_dir, exist_ok=True)
        eligible_bits, inventory, _inventory_dict = self._machine[fingerprint]
        header = segment_header(config, eligible_bits, inventory)
        path = os.path.join(
            self.spool_dir,
            "%s-%d-%d.jsonl" % (fingerprint[:12], lo, hi))
        write_segment(path, header, pairs)


def _machine_info(config):
    """eligible-bit count + Table 1 inventory, as the engine derives them."""
    workload = get_workload(config.workloads[0], scale=config.scale)
    pipeline = Pipeline(workload.program,
                        PipelineConfig.paper(config.protection))
    inventory = pipeline.space.inventory()
    return (pipeline.eligible_bits(_KINDS[config.kinds]), inventory,
            inventory_to_dict(inventory))
