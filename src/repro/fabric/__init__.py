"""Distributed campaign fabric: injection-as-a-service.

The paper's statistical power comes from campaign volume -- tens of
thousands of one-bit-flip trials per workload -- and the serial runner
tops out at one host.  This package shards a fingerprinted campaign
into trial-range *leases* served by an asyncio coordinator
(:mod:`repro.fabric.coordinator`) to any number of pull-based workers
(:mod:`repro.fabric.worker`) over a tiny stdlib HTTP/JSON protocol
(:mod:`repro.fabric.protocol`), with heartbeat expiry and work
stealing (:mod:`repro.fabric.leases`), multi-tenant fair queueing
(:mod:`repro.fabric.queue`), and seeded network chaos
(:mod:`repro.fabric.chaos`).

The invariant everything defends: a fabric campaign's journal is
canonically byte-identical to the serial run of the same fingerprint,
no matter how ranges were leased, stolen, duplicated or partitioned.
See ``docs/FABRIC.md``.
"""

from repro.fabric.chaos import NET_FAULT_KINDS, NetChaosSchedule
from repro.fabric.coordinator import (
    DEFAULT_SHARD_SIZE,
    DEFAULT_TTL_SECONDS,
    Coordinator,
    render_status,
    serve,
)
from repro.fabric.leases import Lease, LeaseTable
from repro.fabric.protocol import call, call_sync, segment_checksum
from repro.fabric.queue import DEFAULT_QUOTA, FabricQueue
from repro.fabric.worker import FabricWorker

__all__ = ["NET_FAULT_KINDS", "NetChaosSchedule", "DEFAULT_SHARD_SIZE",
           "DEFAULT_TTL_SECONDS", "Coordinator", "render_status", "serve",
           "Lease", "LeaseTable", "call", "call_sync", "segment_checksum",
           "DEFAULT_QUOTA", "FabricQueue", "FabricWorker"]
