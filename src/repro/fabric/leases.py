"""Trial-range leases: the coordinator's unit of distributed work.

A campaign is sharded into contiguous *ranges* over the serial unit
order (:func:`repro.runner.units.enumerate_units`); each range is
leased to exactly one worker at a time with a heartbeat-extended
deadline.  Per range, the state machine is::

    pending --grant--> leased --complete--> completed
       ^                  |
       +----- expiry -----+   (work steal: re-queued at the FRONT,
                               re-leased with generation + 1)

Semantics the fabric's correctness rests on:

* **At-least-once.**  An expired lease is re-leased -- the straggler
  may still be computing, so one range can execute more than once.
  That is safe because trials are deterministic per unit (the campaign
  fingerprint contract): any completion of a range is byte-identical.
* **First-completion-wins idempotency.**  The first valid completion
  of a range -- whether from the current leaseholder or a stale
  generation arriving late -- marks it completed; every later
  completion is acknowledged as a ``duplicate`` and merges to nothing.
  The coordinator therefore never writes a journal line twice.

The table is deliberately clock-free: callers pass ``now`` (the
coordinator injects a monotonic clock), which keeps the state machine
synchronously unit-testable.
"""

from collections import deque
from dataclasses import dataclass

__all__ = ["Lease", "LeaseTable"]


@dataclass
class Lease:
    """One live (or historical) grant of a trial range to a worker."""

    lease_id: str
    campaign_id: str
    lo: int  # serial unit range [lo, hi)
    hi: int
    worker: str
    deadline: float
    generation: int  # grants of this range so far (1-based)


class LeaseTable:
    """One campaign's ranges through the pending/leased/completed machine."""

    def __init__(self, campaign_id, total, shard_size, done_indices=()):
        self.campaign_id = campaign_id
        self.total = total
        self.shard_size = max(1, shard_size)
        self._pending = deque()
        self._leased = {}  # (lo, hi) -> current Lease
        self._by_id = {}  # lease_id -> Lease (kept after expiry: late
        # completions still name their lease)
        self._generations = {}  # (lo, hi) -> grants so far
        self._completed = set()
        self.steals = 0  # expired leases re-queued for another worker
        self.duplicates = 0  # completions for already-completed ranges
        self.grants = 0
        done = set(done_indices)
        self.range_count = 0
        for lo in range(0, total, self.shard_size):
            hi = min(total, lo + self.shard_size)
            self.range_count += 1
            if done.issuperset(range(lo, hi)):
                # A resumed journal already covers this range entirely;
                # partially covered ranges are re-executed whole (the
                # merge path drops the duplicate units).
                self._completed.add((lo, hi))
            else:
                self._pending.append((lo, hi))

    # -- grant / heartbeat / expiry -------------------------------------

    def grant(self, worker, now, ttl):
        """Lease the next pending range to ``worker``; None when empty."""
        if not self._pending:
            return None
        lo, hi = self._pending.popleft()
        generation = self._generations.get((lo, hi), 0) + 1
        self._generations[(lo, hi)] = generation
        lease = Lease(
            lease_id="%s:%d-%d#g%d" % (self.campaign_id[:12], lo, hi,
                                       generation),
            campaign_id=self.campaign_id, lo=lo, hi=hi, worker=worker,
            deadline=now + ttl, generation=generation)
        self._leased[(lo, hi)] = lease
        self._by_id[lease.lease_id] = lease
        self.grants += 1
        return lease

    def heartbeat(self, lease_id, now, ttl):
        """Extend a lease that is still the range's current holder.

        Returns False for an unknown, superseded, or already-completed
        lease -- the worker should abandon that range (a newer grant
        owns it, or its result is no longer needed).
        """
        lease = self._by_id.get(lease_id)
        if lease is None \
                or self._leased.get((lease.lo, lease.hi)) is not lease:
            return False
        lease.deadline = now + ttl
        return True

    def expire(self, now):
        """Re-queue every expired lease (work stealing); returns them.

        Expired ranges go to the *front* of the pending queue: a
        straggler's range is the campaign's critical path, so the next
        idle worker steals it before starting fresh work.
        """
        stolen = []
        for key, lease in sorted(self._leased.items()):
            if lease.deadline <= now:
                del self._leased[key]
                self._pending.appendleft(key)
                self.steals += 1
                stolen.append(lease)
        return stolen

    # -- completion -----------------------------------------------------

    def lookup(self, lease_id):
        """The lease a completion names, or None (never forgotten)."""
        return self._by_id.get(lease_id)

    def complete(self, lease_id):
        """Record a completion; returns its disposition.

        ``"ok"``        first completion, by the current leaseholder;
        ``"late"``      first completion, but the lease had already
                        expired (and was possibly re-leased) -- the
                        result still wins, the re-lease is cancelled;
        ``"duplicate"`` the range was already completed -- idempotent
                        acknowledgement, nothing to merge;
        ``"unknown"``   the lease id was never granted here.
        """
        lease = self._by_id.get(lease_id)
        if lease is None:
            return "unknown"
        key = (lease.lo, lease.hi)
        if key in self._completed:
            self.duplicates += 1
            return "duplicate"
        self._completed.add(key)
        current = self._leased.pop(key, None)
        try:
            # A stolen copy still queued must never be handed out now.
            self._pending.remove(key)
        except ValueError:
            pass
        return "ok" if current is lease else "late"

    # -- observation ----------------------------------------------------

    @property
    def outstanding(self):
        """Ranges currently leased out."""
        return len(self._leased)

    @property
    def pending(self):
        """Ranges waiting for a worker."""
        return len(self._pending)

    @property
    def completed_ranges(self):
        return len(self._completed)

    @property
    def done(self):
        """Every range completed."""
        return len(self._completed) == self.range_count
