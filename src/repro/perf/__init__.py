"""Performance subsystem: golden-window memoization and benchmarks.

``repro.perf.goldencache`` shares recorded golden windows (and their
start-point checkpoints) across pool workers and resumed runs through
the campaign directory; ``repro.perf.bench`` is the fixed micro/smoke
suite behind ``repro-faults bench`` that tracks the simulator's
throughput over time in ``BENCH_<rev>.json`` files.
"""

from repro.perf.goldencache import GoldenCache

__all__ = ["GoldenCache"]
