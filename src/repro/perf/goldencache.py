"""On-disk memoization of golden windows across workers and runs.

Recording a golden trace costs a full fault-free simulation of
``warmup + spacing`` cycles plus the ``horizon + margin`` window --
with a process pool, every worker used to pay it again for every
``(workload, start_point)`` it touched.  The cache stores each start
point's *checkpoint and golden trace* once, under
``<campaign-dir>/golden/``, so any worker (or a resumed run) loads the
pickle instead of re-simulating.

Safety comes from the key, not the file name: every entry embeds

* the campaign fingerprint (config + RNG scheme -- the same identity
  that guards journal resume), which covers workload, scale, warmup,
  spacing, horizon, margin, and protection;
* a digest of the pipeline config's ``repr`` (a custom
  ``PipelineConfig`` changes the machine without changing the campaign
  config);
* a format version.

A mismatched or unreadable entry is simply ignored and re-recorded --
the cache can never change what a trial computes, only how often the
deterministic preparation is repeated.  Writes go through a temp file
plus ``os.replace`` so concurrent workers racing on the same entry
each land a complete file and nobody ever reads a torn one.

Signatures inside cached traces are portable because the incremental
scheme hashes plain ints, which CPython hashes identically in every
process (``PYTHONHASHSEED`` randomizes str/bytes only).
"""

import hashlib
import os
import pickle
import tempfile

from repro.inject.store import campaign_fingerprint

__all__ = ["GoldenCache"]

# Bump when the cached payload's shape changes incompatibly.
CACHE_FORMAT = 1


def _pipeline_config_digest(pipeline_config):
    text = repr(pipeline_config)
    return hashlib.sha256(text.encode("utf-8")).hexdigest()[:16]


class GoldenCache:
    """Shared store of ``(checkpoint, golden trace)`` per start point."""

    def __init__(self, directory, config, pipeline_config):
        self.directory = directory
        self._tag = (CACHE_FORMAT, campaign_fingerprint(config),
                     _pipeline_config_digest(pipeline_config))

    def _path(self, workload_name, start_point):
        return os.path.join(
            self.directory, "%s-sp%d.pkl" % (workload_name, start_point))

    def load(self, workload_name, start_point):
        """The cached ``(checkpoint, golden)`` pair, or None."""
        try:
            with open(self._path(workload_name, start_point), "rb") as fh:
                entry = pickle.load(fh)
        except (OSError, EOFError, pickle.UnpicklingError, AttributeError,
                ImportError, IndexError, KeyError, TypeError, ValueError):
            return None
        if not isinstance(entry, dict) or entry.get("tag") != self._tag:
            return None
        return entry["checkpoint"], entry["golden"]

    def store(self, workload_name, start_point, checkpoint, golden):
        """Persist one start point's preparation (best-effort, atomic)."""
        entry = {"tag": self._tag, "checkpoint": checkpoint,
                 "golden": golden}
        try:
            os.makedirs(self.directory, exist_ok=True)
            fd, tmp_path = tempfile.mkstemp(
                dir=self.directory, suffix=".tmp")
            try:
                with os.fdopen(fd, "wb") as fh:
                    pickle.dump(entry, fh,
                                protocol=pickle.HIGHEST_PROTOCOL)
                os.replace(tmp_path, self._path(workload_name, start_point))
            except BaseException:
                try:
                    os.unlink(tmp_path)
                except OSError:
                    pass
                raise
        except (OSError, pickle.PicklingError):
            # A full disk or unpicklable payload costs re-recording,
            # never correctness.
            pass
