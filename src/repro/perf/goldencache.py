"""On-disk memoization of golden windows across workers and runs.

Recording a golden trace costs a full fault-free simulation of
``warmup + spacing`` cycles plus the ``horizon + margin`` window --
with a process pool, every worker used to pay it again for every
``(workload, start_point)`` it touched.  The cache stores each start
point's *checkpoint and golden trace* once, under
``<campaign-dir>/golden/``, so any worker (or a resumed run) loads the
pickle instead of re-simulating.

Safety comes from the key, not the file name: every entry embeds

* the campaign fingerprint (config + RNG scheme -- the same identity
  that guards journal resume), which covers workload, scale, warmup,
  spacing, horizon, margin, and protection;
* a digest of the pipeline config's ``repr`` (a custom
  ``PipelineConfig`` changes the machine without changing the campaign
  config);
* a format version.

Integrity comes from an on-disk envelope: entries are written as
``RGCK`` magic + CRC32 + pickle payload, so a bit-rotted or truncated
entry is *detected* rather than unpickled into every pool worker
identically.  A corrupt entry is quarantined to
``<dir>/quarantine/`` (kept for forensics) and transparently
re-recorded; a mismatched-but-intact entry (another campaign's data)
is simply ignored.  Legacy entries written before the envelope -- a
plain pickle -- still load, so warm caches survive the upgrade.

A mismatched or unreadable entry can never change what a trial
computes, only how often the deterministic preparation is repeated.
Writes go through a temp file plus ``os.replace`` so concurrent
workers racing on the same entry each land a complete file and nobody
ever reads a torn one.

Signatures inside cached traces are portable because the incremental
scheme hashes plain ints, which CPython hashes identically in every
process (``PYTHONHASHSEED`` randomizes str/bytes only).

The bit-plane batched engine (:mod:`repro.perf.batch`) attaches its
fault-free *activity trace* to ``GoldenTrace.activity`` and re-stores
the entry through this cache, so the one-time recording is shared like
the golden window itself.  The cache format stays at version 1:
entries pickled before the field existed unpickle without it and the
batch engine records and re-stores it transparently on first use.
"""

import hashlib
import os
import pickle
import struct
import tempfile
import zlib

from repro.inject.store import campaign_fingerprint

__all__ = ["GoldenCache", "QUARANTINE_DIR"]

# Bump when the cached payload's shape changes incompatibly.  The
# checksum envelope is a *file framing* change, detected by magic, not
# a payload change -- legacy plain-pickle entries remain loadable.
CACHE_FORMAT = 1

# Envelope: magic + little-endian CRC32 of the payload + payload.
_MAGIC = b"RGCK"
_HEADER = struct.Struct("<4sI")

QUARANTINE_DIR = "quarantine"

_PICKLE_ERRORS = (EOFError, pickle.UnpicklingError, AttributeError,
                  ImportError, IndexError, KeyError, TypeError, ValueError)


def _pipeline_config_digest(pipeline_config):
    text = repr(pipeline_config)
    return hashlib.sha256(text.encode("utf-8")).hexdigest()[:16]


class GoldenCache:
    """Shared store of ``(checkpoint, golden trace)`` per start point.

    ``on_event`` is an optional callback ``(kind, detail)`` used to
    surface integrity incidents ("cache_quarantined") to the engine's
    telemetry; the cache itself never raises for them.
    """

    def __init__(self, directory, config, pipeline_config, on_event=None):
        self.directory = directory
        self.on_event = on_event
        self._tag = (CACHE_FORMAT, campaign_fingerprint(config),
                     _pipeline_config_digest(pipeline_config))

    def _path(self, workload_name, start_point):
        return os.path.join(
            self.directory, "%s-sp%d.pkl" % (workload_name, start_point))

    def load(self, workload_name, start_point):
        """The cached ``(checkpoint, golden)`` pair, or None."""
        path = self._path(workload_name, start_point)
        try:
            with open(path, "rb") as fh:
                blob = fh.read()
        except OSError:
            return None
        enveloped = blob.startswith(_MAGIC)
        if enveloped:
            if len(blob) < _HEADER.size:
                self._quarantine(path, "truncated envelope")
                return None
            _magic, expected = _HEADER.unpack_from(blob)
            payload = blob[_HEADER.size:]
            if zlib.crc32(payload) & 0xFFFFFFFF != expected:
                self._quarantine(path, "checksum mismatch")
                return None
        else:
            payload = blob  # legacy pre-envelope entry: plain pickle
        try:
            entry = pickle.loads(payload)
        except _PICKLE_ERRORS:
            if enveloped:
                # The checksum held but the payload does not unpickle:
                # the entry is damaged beyond its framing (or written
                # by an incompatible pickler) -- keep it for forensics.
                self._quarantine(path, "undecodable payload")
            return None
        if not isinstance(entry, dict) or entry.get("tag") != self._tag:
            return None  # another campaign's (or format's) valid entry
        return entry["checkpoint"], entry["golden"]

    def store(self, workload_name, start_point, checkpoint, golden):
        """Persist one start point's preparation (best-effort, atomic)."""
        entry = {"tag": self._tag, "checkpoint": checkpoint,
                 "golden": golden}
        try:
            payload = pickle.dumps(entry, protocol=pickle.HIGHEST_PROTOCOL)
        except pickle.PicklingError:
            return  # unpicklable payload costs re-recording, never correctness
        blob = _HEADER.pack(_MAGIC, zlib.crc32(payload) & 0xFFFFFFFF) \
            + payload
        try:
            os.makedirs(self.directory, exist_ok=True)
            fd, tmp_path = tempfile.mkstemp(
                dir=self.directory, suffix=".tmp")
            committed = False
            # finally-based cleanup (not `except BaseException`): a
            # KeyboardInterrupt/SystemExit mid-write still removes the
            # temp file on its way out and is never swallowed (REP006).
            try:
                with os.fdopen(fd, "wb") as fh:
                    fh.write(blob)
                os.replace(tmp_path, self._path(workload_name, start_point))
                committed = True
            finally:
                if not committed:
                    try:
                        os.unlink(tmp_path)
                    except OSError:
                        pass
        except OSError:
            # A full disk costs re-recording, never correctness.
            pass

    # ------------------------------------------------------------------

    def _quarantine(self, path, reason):
        """Move a corrupt entry aside so it is regenerated, not reread."""
        name = os.path.basename(path)
        quarantine = os.path.join(self.directory, QUARANTINE_DIR)
        try:
            os.makedirs(quarantine, exist_ok=True)
            os.replace(path, os.path.join(quarantine, name))
        except OSError:
            # Cannot move it aside: best effort is deleting it so the
            # poisoned bytes stop being loaded by every worker.
            try:
                os.unlink(path)
            except OSError:
                pass
        if self.on_event is not None:
            self.on_event("cache_quarantined", "%s: %s" % (name, reason))
