"""Bit-plane batched trial engine: N faulty lanes per cycle loop.

The paper's headline result -- most single-bit faults are masked -- is
also a performance theorem: a masked trial's pipeline behaves
*cycle-for-cycle identically* to the golden run, because its one
corrupted element is either never read before being overwritten, or
hashes to the same Zobrist signature once cleared.  Paying a full
Python cycle loop per such trial simulates nothing new.

This module therefore never simulates the common case at all.  For a
group of trials sharing a ``(workload, start_point)`` checkpoint it:

1. records (once, cached with the golden trace) an **activity trace**
   of the fault-free window: per cycle, the bit-plane of elements read
   and written on *first access*, the retirement/drain counts, and --
   at committed-view re-hash boundaries -- the plane of elements the
   view digest reads;
2. packs the group's fault plans into **lanes** (lane *i* = trial *i*;
   a lane mask is one Python big int, so set algebra over all lanes is
   a single C-speed bitwise op);
3. **walks** the activity trace instead of the pipeline: a lane stays
   provably golden-identical until the golden run first *reads* its
   corrupted element (or exposes it through the committed view), so
   the walk classifies masked/locked/gray lanes outright and "lanes
   out" only genuinely diverging trials;
4. replays the shared pipeline forward exactly once, handing each
   laned-out trial to the scalar classification loop
   (:func:`repro.inject.trial.classify_window`) *mid-window*, with the
   golden prefix counters it would have accumulated itself.

Correctness argument, per lane with fault in element ``e``:

* Until ``e`` is read, every other element equals golden, so the lane's
  pipeline would execute the same reads/writes/retirements as golden
  -- the activity trace *is* the lane's trace.
* The rolling signature differs from golden's by the constant XOR
  ``hash((e, v)) ^ hash((e, v ^ bit))`` until ``e`` is written; a
  golden-value write (first access = write) clears the fault exactly,
  making the signature match at that cycle's boundary (MICRO_MATCH) --
  unless the deadlock check fires first, in scalar check order.
* A zero XOR delta (hash collision) means the scalar loop would see a
  matching signature at the first boundary the earlier checks pass --
  the walk models that as an immediately-matching lane.
* First-access stamping resolves same-cycle read/write races with the
  right semantics: a write-before-read clears the fault before any
  consumer sees it (no lane-out), a read-before-write diverges (lane
  out); only the *first* access is recorded.
* The committed-view check only re-hashes when the retirement count
  changed (see ``classify_window``), so view exposure is recorded only
  at those boundaries; elsewhere the memoized hash -- equal to
  golden's while the fault is invisible -- is what the scalar compares.

Everything a lane does after leaving the batch goes through the same
scalar code path as ``run_trial``, so batched campaigns are
byte-identical to serial ones (a tier-1 test asserts it on journal
bytes); ``--batch`` is a scheduling knob, excluded from the campaign
fingerprint.

Provenance observation hooks single-lane pipeline internals, so
observed campaigns force the scalar path (see
``WorkerContext.run_batch``).
"""

from dataclasses import dataclass
from typing import List

from repro.errors import SimulationError
from repro.inject.outcome import FailureMode, TrialOutcome, TrialResult
from repro.inject.trial import classify_window
from repro.uarch.statelib import Field

__all__ = ["ActivityTrace", "BatchOutcome", "record_activity",
           "plan_lanes", "run_batch_group", "ACTIVITY_VERSION"]

ACTIVITY_VERSION = 1

# Golden mid-window checkpoint spacing (cycles).  Lane-outs resume the
# scalar model from the nearest recorded checkpoint at or before the
# divergence cycle, so the shared replay costs at most
# ``_CHECKPOINT_EVERY - 1`` cycles per distinct lane-out cycle instead
# of O(divergence cycle).  Divergences cluster near the injection
# cycle (the frontend re-reads most injectable state within a few
# cycles), so the spacing is deliberately coarse: checkpoints mostly
# insure against *late* first reads, and each one adds a full pipeline
# snapshot to the cached golden entry.
_CHECKPOINT_EVERY = 100

# Functions held to the bit-plane kernel contract by lint rule REP008:
# no per-lane Python loops, no full signature recomputes.  The rule
# reads this tuple from the module source, so kernel status is
# declared here, next to the code it governs.
_HOT_KERNELS = ("_walk_planes",)


@dataclass
class ActivityTrace:
    """Fault-free access activity over one start point's trial window.

    All planes are element-indexed big ints (bit ``i`` = element index
    ``i``), one per cycle:

    * ``reads`` / ``writes`` -- elements whose *first* access that
      cycle was a read / a write (an element appears in at most one of
      the two per cycle);
    * ``visible`` -- elements read by the committed-view digest at that
      cycle's boundary; zero on cycles where the scalar loop reuses
      its memoized view hash (no retirement since the last re-hash);
    * ``retires`` / ``drains`` -- per-cycle retirement and store-drain
      counts (drive the deadlock check and the prefix counters handed
      to laned-out trials).

    ``checkpoints`` maps cycle ``c`` (a multiple of
    ``_CHECKPOINT_EVERY``) to the full fault-free pipeline checkpoint
    at the *start* of cycle ``c``, letting lane-out replay jump close
    to any divergence cycle.

    Attached lazily to :class:`repro.inject.golden.GoldenTrace` (the
    ``activity`` field) and persisted through the golden cache; traces
    pickled before this field existed simply lack it.
    """

    version: int
    horizon: int
    reads: List[int]
    writes: List[int]
    visible: List[int]
    retires: List[int]
    drains: List[int]
    checkpoints: dict


@dataclass
class BatchOutcome:
    """Result of one batched group run.

    ``trials`` is ordered like the input ``trial_indices``.
    ``resolved`` counts lanes classified entirely from the activity
    walk; ``laned_out`` counts lanes that diverged and finished on the
    scalar path.
    """

    trials: List[TrialResult]
    resolved: int
    laned_out: int


class _ActivityRecorder:
    """Per-cycle first-access collector armed behind ``_TrackedField``."""

    __slots__ = ("stamp", "token", "reads", "writes", "probing",
                 "probe_plane")

    def __init__(self, n_elements):
        self.stamp = [-1] * n_elements
        self.token = -1
        self.reads = 0
        self.writes = 0
        self.probing = False
        self.probe_plane = 0

    def begin_cycle(self, token):
        self.token = token
        self.reads = 0
        self.writes = 0

    def begin_probe(self):
        self.probing = True
        self.probe_plane = 0

    def end_probe(self):
        self.probing = False
        return self.probe_plane

    def note_read(self, index):
        if self.probing:
            self.probe_plane |= 1 << index
            return
        if self.stamp[index] != self.token:
            self.stamp[index] = self.token
            self.reads |= 1 << index

    def note_write(self, index):
        if self.probing:
            raise SimulationError(
                "state write during a committed-view probe: the view "
                "digest must be read-only for batched classification "
                "to be exact")
        if self.stamp[index] != self.token:
            self.stamp[index] = self.token
            self.writes |= 1 << index


class _TrackedField(Field):
    """A ``Field`` whose accesses notify the armed activity recorder.

    Same empty-``__slots__`` ``__class__``-swap idiom as provenance's
    ``_WatchedField``: instance layout stays identical to ``Field``,
    and the armed recorder is a class attribute (one recording per
    process at a time).
    """

    __slots__ = ()

    recorder = None

    def get(self):
        _TrackedField.recorder.note_read(self.index)
        return self._values[self.index]

    def set(self, value):
        # Record before Field.set's old == value early return: a write
        # that is redundant in the golden run still clears the fault
        # in a lane whose element holds a corrupted value.
        _TrackedField.recorder.note_write(self.index)
        Field.set(self, value)


def record_activity(pipeline, checkpoint, golden, horizon):
    """Replay the fault-free window once, recording access activity.

    Costs one extra scalar window per ``(workload, start_point)``; the
    result is cached alongside the golden trace, so campaigns pay it
    once per start point ever (per golden-cache key).  The replay
    cross-checks the rolling signature and the committed-view hash
    against the golden trace every cycle, so a recording that drifts
    from golden (a nondeterminism bug) fails loudly instead of
    silently misclassifying batched lanes.
    """
    pipeline.restore(checkpoint)
    # Same TLB environment as record_golden: membership checks are
    # None-gated before any state access, so the access sequence is
    # identical either way.
    pipeline.tlb_insn_pages = None
    pipeline.tlb_data_pages = None

    space = pipeline.space
    recorder = _ActivityRecorder(len(space.elements))
    trace = ActivityTrace(version=ACTIVITY_VERSION, horizon=horizon,
                          reads=[], writes=[], visible=[], retires=[],
                          drains=[], checkpoints={})
    handles = space.handles
    _TrackedField.recorder = recorder
    for handle in handles:
        handle.__class__ = _TrackedField
    try:
        rehash_k = None
        k = 0
        for cycle in range(horizon):
            if cycle and cycle % _CHECKPOINT_EVERY == 0:
                trace.checkpoints[cycle] = pipeline.checkpoint()
            recorder.begin_cycle(cycle)
            pipeline.cycle()
            if pipeline.failure_event is not None or pipeline.halted:
                raise SimulationError(
                    "fault-free activity replay failed at cycle %d "
                    "(event=%r halted=%r)" % (
                        cycle, pipeline.failure_event, pipeline.halted))
            retired = len(pipeline.retired_this_cycle)
            k += retired
            trace.reads.append(recorder.reads)
            trace.writes.append(recorder.writes)
            trace.retires.append(retired)
            trace.drains.append(len(pipeline.drains_this_cycle))
            if space.signature() != golden.sigs[cycle]:
                raise SimulationError(
                    "activity replay signature diverged from the "
                    "golden trace at cycle %d" % cycle)
            golden_view = golden.view_by_k.get(k)
            if golden_view is not None and k != rehash_k:
                rehash_k = k
                recorder.begin_probe()
                view_hash = hash(pipeline.committed_view())
                trace.visible.append(recorder.end_probe())
                if view_hash != golden_view:
                    raise SimulationError(
                        "activity replay committed view diverged from "
                        "the golden trace at cycle %d (k=%d)" % (cycle, k))
            else:
                trace.visible.append(0)
    finally:
        _TrackedField.recorder = None
        for handle in handles:
            handle.__class__ = Field
    return trace


def plan_lanes(space, sp_rng, kinds, trial_indices, model=None):
    """Fault plan ``(trial_index, element_index, bit, mask, fault)`` per lane.

    Consumes the per-trial split RNGs exactly as the scalar path does
    (for the default model, one ``randrange`` through ``choose_bit``
    per trial; for a batchable :class:`~repro.faultlib.FaultModel`, the
    model's own ``sample``), so lane *i* disturbs the very bits trial
    ``trial_indices[i]`` would.  ``mask`` is the XOR disturbance within
    the element; ``fault`` is the sampled instance for non-default
    models (None for the default, whose walk needs no instance).
    """
    plans = []
    for trial_index in trial_indices:
        trial_rng = sp_rng.split("trial/%d" % trial_index)
        if model is None or model.is_default:
            element_index, bit = space.choose_bit(trial_rng, kinds)
            plans.append((trial_index, element_index, bit, 1 << bit, None))
        else:
            if not model.batchable:
                raise SimulationError(
                    "fault model %r is not batchable; run the scalar "
                    "path" % model.spec)
            fault = model.sample(space, trial_rng, kinds)
            # Batchable models disturb exactly one element with one
            # XOR mask and never re-assert.
            (element_index, mask), = fault.flips
            plans.append((trial_index, element_index, fault.bit, mask,
                          fault))
    return plans


def _normalize_plan(plan, space):
    """Accept legacy explicit ``(trial_index, element_index, bit)`` plans."""
    if len(plan) == 3:
        trial_index, element_index, bit = plan
        width = space.elements[element_index].width
        return (trial_index, element_index, bit, 1 << (bit % width), None)
    return plan


def _gather(plane, lanes_by_element):
    """OR of the lane masks of every element set in ``plane``."""
    mask = 0
    while plane:
        low = plane & -plane
        plane ^= low
        mask |= lanes_by_element[low.bit_length() - 1]
    return mask


def _walk_planes(alive, element_plane, lanes_by_element, deltazero,
                 reads, writes, visible, retires, locked_threshold,
                 horizon):
    """Classify lanes against the activity trace; the batched kernel.

    Per cycle, in the scalar loop's boundary-check order: a golden
    *read* of a lane's element diverges it (lane out, before any
    boundary check -- the read happened mid-cycle); a golden *write*
    clears it; a committed-view exposure of a still-dirty element
    diverges it; the deadlock gap terminates every remaining lane;
    cleared and zero-delta lanes signature-match.  Lanes surviving the
    horizon are Gray Area.

    Returns ``(laneouts, matched, locked, gray)``: the first three are
    ``(cycle, lane_mask)`` event lists, ``gray`` is the final survivor
    mask.  All lane work is big-int algebra -- nothing here iterates
    per lane (lint rule REP008 enforces that shape).
    """
    laneouts = []
    matched = []
    locked = []
    gap = 0
    cycle = 0
    while cycle < horizon and alive:
        reads_c = reads[cycle] & element_plane
        if reads_c:
            out = _gather(reads_c, lanes_by_element) & alive
            if out:
                laneouts.append((cycle, out))
                alive &= ~out
        cleared = 0
        writes_c = writes[cycle] & element_plane
        if writes_c:
            cleared = _gather(writes_c, lanes_by_element) & alive
        vis_c = visible[cycle] & element_plane
        if vis_c:
            out = _gather(vis_c, lanes_by_element) & alive & ~cleared
            if out:
                laneouts.append((cycle, out))
                alive &= ~out
        gap = 0 if retires[cycle] else gap + 1
        if gap >= locked_threshold:
            if alive:
                locked.append((cycle, alive))
                alive = 0
            break
        match = (cleared | deltazero) & alive
        if match:
            matched.append((cycle, match))
            alive &= ~match
        cycle += 1
    return laneouts, matched, locked, alive


def run_batch_group(pipeline, checkpoint, golden, sp_rng, kinds,
                    workload_name, start_point, trial_indices,
                    horizon=None, locked_multiplier=2, cache=None,
                    cache_key=None, plans=None, model=None):
    """Run one same-``(workload, start_point)`` trial group batched.

    ``cache``/``cache_key`` (a :class:`repro.perf.goldencache.GoldenCache`
    and its ``(workload_name, start_point)`` store arguments are the
    key) let a freshly recorded activity trace be persisted onto the
    cached golden entry.  ``plans`` overrides RNG-driven lane planning
    with explicit ``(trial_index, element_index, bit)`` (or mask-bearing
    5-tuple) plans -- used by equivalence tests and importance-sampling
    callers.  ``model`` is an optional *batchable*
    :class:`~repro.faultlib.FaultModel`: its single-element XOR masks
    ride the plane walk exactly like single bits (the walk is
    element-granular; a golden write still clears the whole mask, and
    the Zobrist delta of a mask is as constant as a bit's).  Unbatchable
    models (multi-element bursts, persistent stuck-at/intermittent)
    must take the scalar path -- ``WorkerContext.run_batch`` gates on
    ``model.batchable``.

    Returns a :class:`BatchOutcome` with trials in ``trial_indices``
    order, byte-identical to what ``run_trial`` would produce lane by
    lane.
    """
    horizon = horizon or golden.horizon
    activity = getattr(golden, "activity", None)
    if (activity is None or activity.version != ACTIVITY_VERSION
            or activity.horizon < horizon):
        activity = record_activity(pipeline, checkpoint, golden,
                                   golden.horizon)
        golden.activity = activity
        if cache is not None:
            cache.store(workload_name, start_point, checkpoint, golden)

    space = pipeline.space
    if plans is None:
        plans = plan_lanes(space, sp_rng, kinds, trial_indices, model)
    else:
        plans = [_normalize_plan(plan, space) for plan in plans]
    n_lanes = len(plans)

    values = checkpoint[0]  # element values at the injection point
    lanes_by_element = {}
    element_plane = 0
    deltazero = 0
    for lane in range(n_lanes):
        _trial_index, element_index, _bit, mask, _fault = plans[lane]
        old = values[element_index]
        new = old ^ mask
        if hash((element_index, old)) == hash((element_index, new)):
            deltazero |= 1 << lane
        lanes_by_element[element_index] = (
            lanes_by_element.get(element_index, 0) | (1 << lane))
        element_plane |= 1 << element_index

    locked_threshold = locked_multiplier * pipeline.config.deadlock_cycles
    laneouts, matched, locked, gray = _walk_planes(
        (1 << n_lanes) - 1, element_plane, lanes_by_element, deltazero,
        activity.reads, activity.writes, activity.visible,
        activity.retires, locked_threshold, horizon)

    # The in-flight census is a function of the checkpoint alone.
    pipeline.restore(checkpoint)
    pipeline.tlb_insn_pages = golden.insn_pages
    pipeline.tlb_data_pages = golden.data_pages
    inflight = pipeline.inflight_seqs()
    valid_inflight = sum(1 for s in inflight if s in golden.retired_seqs)
    total_inflight = len(inflight)

    trials = [None] * n_lanes

    def lane_result(lane, outcome, mode, cycles):
        trial_index, element_index, bit, _mask, fault = plans[lane]
        meta = space.elements[element_index]
        trials[lane] = TrialResult(
            outcome=outcome, failure_mode=mode, workload=workload_name,
            element_name=meta.name, category=meta.category.value,
            kind=meta.kind.value, bit=bit, start_point=start_point,
            inject_cycle=golden.start_cycle, cycles_run=cycles,
            valid_inflight=valid_inflight, total_inflight=total_inflight,
            detail="", trial_index=trial_index,
            arch_corrupt_cycle=(cycles if outcome == TrialOutcome.SDC
                                else None),
            detect_latency=cycles if outcome.is_failure else None,
            fault_model=fault.model if fault is not None else "single_bit")

    for cycle, mask in matched:
        while mask:
            low = mask & -mask
            mask ^= low
            lane_result(low.bit_length() - 1, TrialOutcome.MICRO_MATCH,
                        None, cycle + 1)
    for cycle, mask in locked:
        while mask:
            low = mask & -mask
            mask ^= low
            lane_result(low.bit_length() - 1, TrialOutcome.TERMINATED,
                        FailureMode.LOCKED, cycle + 1)
    mask = gray
    while mask:
        low = mask & -mask
        mask ^= low
        lane_result(low.bit_length() - 1, TrialOutcome.GRAY, None, horizon)

    laned_out = 0
    if laneouts:
        # Golden prefix counters per boundary: value at the *start* of
        # cycle c (retirements, drains, current no-retirement gap).
        prefix_k = [0]
        prefix_d = [0]
        gap_before = [0]
        k = d = gap = 0
        for cycle in range(horizon):
            k += activity.retires[cycle]
            d += activity.drains[cycle]
            gap = 0 if activity.retires[cycle] else gap + 1
            prefix_k.append(k)
            prefix_d.append(d)
            gap_before.append(gap)

        # One shared forward replay; at each lane-out cycle, checkpoint
        # the boundary, then flip/classify/restore per diverging lane.
        # The replay jumps via the activity trace's recorded golden
        # checkpoints, so reaching a divergence cycle costs at most
        # ``_CHECKPOINT_EVERY - 1`` simulated cycles.
        checkpoints = getattr(activity, "checkpoints", None) or {}
        laneouts.sort()
        cycles_done = 0
        for cycle, mask in laneouts:
            jump = cycle - cycle % _CHECKPOINT_EVERY
            if jump > cycles_done and jump in checkpoints:
                pipeline.restore(checkpoints[jump])
                cycles_done = jump
            while cycles_done < cycle:
                pipeline.cycle()
                cycles_done += 1
            boundary = pipeline.checkpoint()
            while mask:
                low = mask & -mask
                mask ^= low
                lane = low.bit_length() - 1
                laned_out += 1
                trial_index, element_index, bit, xor_mask, fault = \
                    plans[lane]
                meta = space.apply_fault(element_index, xor_mask)
                view_k = None if cycle == 0 else prefix_k[cycle]
                view_hash = (None if view_k is None
                             else golden.view_by_k.get(view_k))
                if view_hash is None:
                    # Unmemoized boundary: let the scalar loop re-hash
                    # (a clean-prefix lane re-hashes to golden anyway).
                    view_k = None
                trials[lane] = classify_window(
                    pipeline, golden, meta, bit, workload_name,
                    start_point, horizon=horizon,
                    locked_multiplier=locked_multiplier,
                    trial_index=trial_index,
                    valid_inflight=valid_inflight,
                    total_inflight=total_inflight,
                    first_cycle=cycle,
                    retired_count=prefix_k[cycle],
                    drain_count=prefix_d[cycle],
                    cycles_since_retire=gap_before[cycle],
                    view_k=view_k, view_hash=view_hash, fault=fault)
                pipeline.restore(boundary)

    return BatchOutcome(trials=trials, resolved=n_lanes - laned_out,
                        laned_out=laned_out)
