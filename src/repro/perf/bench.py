"""The fixed benchmark suite behind ``repro-faults bench``.

Every run measures the same deterministic suite (fixed workload, fixed
seeds, fixed cycle counts) so numbers are comparable across revisions:

* ``cycles_per_sec``       -- raw fault-free pipeline throughput;
* ``signature_us``         -- one ``StateSpace.signature()`` read (the
  incremental path trials take every cycle);
* ``signature_full_us``    -- one full recompute (the debug path);
* ``restore_us``           -- one copy-on-write trial restore (the path
  every trial takes against the live checkpoint);
* ``restore_full_us``      -- one full restore from a non-baseline
  snapshot (the slow path a start-point switch takes);
* ``trials_per_sec_cold``  -- the smoke campaign with an empty golden
  cache (records + verifies every window);
* ``trials_per_sec``      -- the same smoke campaign against a warm
  golden cache: the steady-state number a pool worker sees;
* ``trials_per_sec_batched`` -- the bit-plane batched engine
  (:mod:`repro.perf.batch`) on a steady-state worker: page sets
  precomputed the way the engine primes its pool workers, golden and
  activity caches warm, ``batch_lanes`` trials packed per group.  The
  scalar smoke metrics keep their historical fresh-context methodology
  for cross-revision comparability; the batched metric measures the
  regime the batched engine exists for.

Results land in ``BENCH_<rev>.json`` at the repository root (schema 2;
schema-1 files from older revisions still load).  A run reports drift
against both the most recent committed file and the per-metric
best-of-history across every committed file; with ``--check`` it fails
on a throughput regression beyond the threshold (``--threshold`` /
``REPRO_BENCH_TOLERANCE``, default 25%) relative to the *best* -- a
slow machine day cannot quietly ratchet the bar down.  Timing
obviously reads the wall clock; that never touches simulation state,
so the REP002 suppressions here are by design.

``REPRO_BENCH_SKIP`` (any non-empty value) makes the regression gate a
no-op -- the escape hatch for loaded or throttled machines.
"""

import argparse
import glob
import json
import os
import subprocess
import sys
import tempfile
import time
from datetime import datetime, timezone

from repro.inject.campaign import CampaignConfig
from repro.inject.golden import workload_page_sets
from repro.runner.pool import WorkerContext
from repro.runner.units import TrialUnit, batch_units, enumerate_units
from repro.uarch.core import Pipeline
from repro.workloads import get_workload

__all__ = ["run_bench", "compare_metrics", "load_previous", "load_best",
           "write_bench", "main", "THROUGHPUT_KEYS", "SCHEMA"]

SCHEMA = 2
# Schemas this loader understands; schema-1 files predate the batched
# metrics and simply lack those keys.
_READABLE_SCHEMAS = (1, 2)

# Higher-is-better metrics the regression gate checks.  The *_us
# latencies and cycles_per_sec are reported for trend-watching but not
# gated: the latencies are noisy at the microsecond scale, and the raw
# cycle rate moves whenever the per-write bookkeeping does (incremental
# signature maintenance trades cycle rate for trial throughput) -- the
# end-to-end trial throughput is the quantity campaigns actually feel.
THROUGHPUT_KEYS = ("trials_per_sec", "trials_per_sec_cold",
                   "trials_per_sec_batched")

_BENCH_WORKLOAD = "gzip"
_BENCH_CYCLES = 600
# Lanes per bit-plane group in the batched suite.  Wide enough that
# per-group fixed costs (the one shared forward replay serving every
# laned-out suffix, prepared-state restore) are amortised -- measured
# throughput keeps climbing to ~64 lanes and plateaus there, bounded
# by the per-lane scalar suffixes themselves.
_BATCH_LANES = 64


# repro-lint: allow=REP002 (benchmark timing: wall clock feeds reported
# metrics only, never simulation state or trial classification)
def _best_seconds(fn, reps):
    """The fastest of ``reps`` timed calls of ``fn`` (noise floor)."""
    best = None
    for _ in range(max(1, reps)):
        start = time.perf_counter()
        fn()
        elapsed = time.perf_counter() - start
        if best is None or elapsed < best:
            best = elapsed
    return best


# repro-lint: allow=REP002 (benchmark timing, as above)
def _timed_restore(pipeline, snapshot_of, reps, dirty_cycles=30,
                   rounds=8):
    """Best single-restore time, dirtying the pipeline between calls."""
    best = None
    for _ in range(max(1, reps) * rounds):
        for _ in range(dirty_cycles):
            pipeline.cycle()
        snapshot = snapshot_of()
        start = time.perf_counter()
        pipeline.restore(snapshot)
        elapsed = time.perf_counter() - start
        if best is None or elapsed < best:
            best = elapsed
    return best


def micro_metrics(reps=3):
    """Cycle/signature/restore micro-benchmarks on a warm pipeline."""
    workload = get_workload(_BENCH_WORKLOAD, scale="tiny")
    pipeline = Pipeline(workload.program)
    pipeline.run(200, stop_on_halt=True)
    space = pipeline.space

    def run_cycles():
        for _ in range(_BENCH_CYCLES):
            pipeline.cycle()

    cycle_seconds = _best_seconds(run_cycles, reps)

    def read_signature():
        for _ in range(2000):
            space.signature()

    signature_seconds = _best_seconds(read_signature, reps) / 2000

    def read_signature_full():
        for _ in range(20):
            space.signature(full=True)

    signature_full_seconds = _best_seconds(read_signature_full, reps) / 20

    # Fast path: restore the live checkpoint after a short burst of
    # dirtying work (the shape of every trial's reset).  Only the
    # restore call itself is inside the timed region.
    checkpoint = pipeline.checkpoint()
    restore_seconds = _timed_restore(
        pipeline, lambda: checkpoint, reps)

    # Slow path: alternate between two checkpoints so every restore
    # lands on a non-baseline snapshot.
    snap_a = pipeline.checkpoint()
    for _ in range(30):
        pipeline.cycle()
    snap_b = pipeline.checkpoint()
    snaps = [snap_a, snap_b]

    def next_slow_snapshot():
        snaps.reverse()
        return snaps[0]

    restore_full_seconds = _timed_restore(pipeline, next_slow_snapshot,
                                          reps)

    return {
        "cycles_per_sec": round(_BENCH_CYCLES / cycle_seconds, 1),
        "signature_us": round(signature_seconds * 1e6, 3),
        "signature_full_us": round(signature_full_seconds * 1e6, 1),
        "restore_us": round(restore_seconds * 1e6, 1),
        "restore_full_us": round(restore_full_seconds * 1e6, 1),
    }


def smoke_metrics(reps=3):
    """The smoke campaign, cold (recording) and warm (cache hits)."""
    config = CampaignConfig.test()
    units = [TrialUnit(_BENCH_WORKLOAD, start_point, trial)
             for start_point in range(config.start_points_per_workload)
             for trial in range(config.trials_per_start_point)]

    def run_all(golden_dir):
        context = WorkerContext(config, golden_dir=golden_dir)
        for unit in units:
            context.run_unit(unit)

    with tempfile.TemporaryDirectory(prefix="repro-bench-") as tmp:
        golden_dir = os.path.join(tmp, "golden")
        cold_seconds = _best_seconds(lambda: run_all(golden_dir), 1)
        warm_seconds = _best_seconds(lambda: run_all(golden_dir), reps)

    return {
        "smoke_trials": len(units),
        "trials_per_sec_cold": round(len(units) / cold_seconds, 2),
        "trials_per_sec": round(len(units) / warm_seconds, 2),
    }


def batched_metrics(reps=3):
    """Steady-state throughput of the bit-plane batched engine.

    The methodology deliberately differs from ``trials_per_sec``: the
    scalar smoke metric rebuilds a fresh :class:`WorkerContext` every
    repetition (its historical definition, kept so old BENCH files stay
    comparable), while this metric measures a *steady-state* worker --
    page sets precomputed the way the engine primes its pool, golden
    and activity caches warm after one untimed priming pass -- because
    lane amortisation is the whole point of the batched engine and only
    shows in that regime.
    """
    config = CampaignConfig.test(trials_per_start_point=_BATCH_LANES)
    units = enumerate_units(config)
    batches = batch_units(units, _BATCH_LANES)

    with tempfile.TemporaryDirectory(prefix="repro-bench-") as tmp:
        golden_dir = os.path.join(tmp, "golden")
        page_sets = {
            name: workload_page_sets(
                get_workload(name, scale=config.scale).program)
            for name in config.workloads}
        context = WorkerContext(config, page_sets=page_sets,
                                golden_dir=golden_dir,
                                batch_lanes=_BATCH_LANES)

        def run_all():
            for batch in batches:
                for _unit, _trial in context.run_batch(batch):
                    pass

        run_all()  # prime: record goldens + activity traces into cache
        context.take_batch_stats()
        batched_seconds = _best_seconds(run_all, reps)

    return {
        "batch_lanes": _BATCH_LANES,
        "trials_per_sec_batched": round(len(units) / batched_seconds, 2),
    }


def run_bench(reps=3):
    """The full metric dict of one benchmark run."""
    metrics = micro_metrics(reps=reps)
    metrics.update(smoke_metrics(reps=reps))
    metrics.update(batched_metrics(reps=reps))
    return metrics


# -- persistence and comparison -----------------------------------------------


def repo_root():
    """The checkout root (three levels above this package)."""
    here = os.path.dirname(os.path.abspath(__file__))
    return os.path.dirname(os.path.dirname(os.path.dirname(here)))


def revision(directory=None):
    """The short git revision of ``directory``, or ``"local"``."""
    try:
        out = subprocess.run(
            ["git", "rev-parse", "--short", "HEAD"],
            cwd=directory or repo_root(), capture_output=True, text=True,
            timeout=10)
    except (OSError, subprocess.SubprocessError):
        return "local"
    rev = out.stdout.strip()
    return rev if out.returncode == 0 and rev else "local"


def bench_files(directory):
    """All ``BENCH_*.json`` files in ``directory``, oldest first."""
    paths = glob.glob(os.path.join(directory, "BENCH_*.json"))
    entries = []
    for path in paths:
        try:
            with open(path, "r", encoding="utf-8") as handle:
                data = json.load(handle)
        except (OSError, ValueError):
            continue
        if isinstance(data, dict) and "metrics" in data \
                and data.get("schema", 1) in _READABLE_SCHEMAS:
            entries.append((data.get("created", ""), path, data))
    entries.sort()
    return [(path, data) for _, path, data in entries]


def load_previous(directory, exclude_rev=None):
    """The newest benchmark file, skipping ``exclude_rev``'s own."""
    found = None
    for path, data in bench_files(directory):
        if exclude_rev is not None and data.get("rev") == exclude_rev:
            continue
        found = (path, data)
    return found


def load_best(directory, exclude_rev=None):
    """Per-metric best across every committed ``BENCH_*.json``.

    Returns ``(best, sources)``: ``best`` maps each throughput key to
    the highest value any file recorded, ``sources`` maps it to the
    revision that set it.  ``(None, None)`` when no eligible file
    exists.  Gating against the best rather than the latest file keeps
    one slow-machine run from quietly ratcheting the bar down.
    """
    best = {}
    sources = {}
    for _path, data in bench_files(directory):
        if exclude_rev is not None and data.get("rev") == exclude_rev:
            continue
        metrics = data.get("metrics") or {}
        for key in THROUGHPUT_KEYS:
            value = metrics.get(key)
            if value and (key not in best or value > best[key]):
                best[key] = value
                sources[key] = data.get("rev", "?")
    if not best:
        return None, None
    return best, sources


def compare_metrics(previous, current, threshold):
    """Regression messages for throughput drops beyond ``threshold``."""
    regressions = []
    for key in THROUGHPUT_KEYS:
        old = previous.get(key)
        new = current.get(key)
        if not old or new is None:
            continue
        floor = old * (1.0 - threshold)
        if new < floor:
            regressions.append(
                "%s regressed %.1f%%: %.2f -> %.2f (floor %.2f at "
                "threshold %d%%)"
                % (key, 100.0 * (old - new) / old, old, new, floor,
                   round(threshold * 100)))
    return regressions


def write_bench(directory, rev, metrics):
    """Write ``BENCH_<rev>.json``; returns its path."""
    path = os.path.join(directory, "BENCH_%s.json" % rev)
    payload = {
        "schema": SCHEMA,
        "rev": rev,
        "created": datetime.now(timezone.utc).strftime(
            "%Y-%m-%dT%H:%M:%SZ"),
        "suite": {
            "workload": _BENCH_WORKLOAD,
            "cycles": _BENCH_CYCLES,
            "smoke": "CampaignConfig.test()",
            "batched": "CampaignConfig.test(trials_per_start_point=%d),"
                       " steady-state WorkerContext (page sets"
                       " precomputed, warm golden/activity caches),"
                       " best of reps" % _BATCH_LANES,
            "batch_lanes": _BATCH_LANES,
        },
        "metrics": metrics,
    }
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(payload, handle, indent=2, sort_keys=True)
        handle.write("\n")
    return path


def default_threshold():
    """The regression threshold (``REPRO_BENCH_TOLERANCE`` or 0.25)."""
    raw = os.environ.get("REPRO_BENCH_TOLERANCE")
    if raw:
        try:
            return float(raw)
        except ValueError:
            pass
    return 0.25


def main(argv=None):
    """``repro-faults bench`` entry point; returns an exit code."""
    parser = argparse.ArgumentParser(
        prog="repro-faults bench",
        description="fixed micro/smoke benchmark suite; writes "
                    "BENCH_<rev>.json and compares against the previous "
                    "revision's file")
    parser.add_argument("--reps", type=int, default=3,
                        help="timed repetitions per metric (best-of)")
    parser.add_argument("--check", action="store_true",
                        help="exit non-zero on a throughput regression")
    parser.add_argument("--threshold", type=float,
                        default=default_threshold(),
                        help="allowed fractional regression (default "
                             "0.25, or REPRO_BENCH_TOLERANCE)")
    parser.add_argument("--dir", default=None, metavar="PATH",
                        help="where BENCH_*.json files live (default: "
                             "the repository root)")
    parser.add_argument("--no-write", action="store_true",
                        help="measure and compare without writing a file")
    args = parser.parse_args(argv)

    directory = args.dir or repo_root()
    rev = revision(directory)
    print("benchmarking revision %s (reps=%d) ..." % (rev, args.reps))
    metrics = run_bench(reps=args.reps)
    for key in sorted(metrics):
        print("  %-22s %s" % (key, metrics[key]))

    previous = load_previous(directory, exclude_rev=rev)
    regressions = []
    if previous is None:
        print("no previous BENCH_*.json to compare against")
    else:
        prev_path, prev_data = previous
        print("drift vs previous %s (rev %s):"
              % (os.path.basename(prev_path), prev_data.get("rev")))
        for key in THROUGHPUT_KEYS + ("cycles_per_sec",):
            old = prev_data["metrics"].get(key)
            new = metrics.get(key)
            if old and new is not None:
                print("  %-22s %.2f -> %.2f (%+.1f%%)"
                      % (key, old, new, 100.0 * (new - old) / old))
    best, best_sources = load_best(directory, exclude_rev=rev)
    if best is not None:
        # The regression gate runs against the per-metric best of every
        # committed file, not just the newest one.
        print("drift vs best-of-history:")
        for key in THROUGHPUT_KEYS:
            old = best.get(key)
            new = metrics.get(key)
            if old and new is not None:
                print("  %-22s %.2f -> %.2f (%+.1f%%, best from rev %s)"
                      % (key, old, new, 100.0 * (new - old) / old,
                         best_sources.get(key, "?")))
        regressions = compare_metrics(best, metrics, args.threshold)
        for message in regressions:
            print("REGRESSION: %s" % message)

    if not args.no_write:
        path = write_bench(directory, rev, metrics)
        print("wrote %s" % os.path.relpath(path, os.getcwd()))

    if args.check and regressions:
        if os.environ.get("REPRO_BENCH_SKIP"):
            print("REPRO_BENCH_SKIP set: regression gate skipped")
            return 0
        return 3
    return 0


if __name__ == "__main__":
    sys.exit(main())
