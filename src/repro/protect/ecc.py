"""Hamming SEC / SECDED error-correcting codes.

The paper's register file ECC adds 8 check bits per 65-bit entry (we
protect the 64 data bits with Hamming(71,64) plus an overall parity bit:
single-error correction, double-error detection).  The register-pointer
ECC adds 4 check bits per 7-bit pointer (Hamming(11,7): single-error
correction).

The decoder is total: any (data, check) pair yields a defined result --
a corrupted check word can at worst cause a miscorrection, exactly as in
hardware.
"""

import enum


class CodeStatus(enum.Enum):
    """Outcome of an ECC check."""

    CLEAN = "clean"  # syndrome zero: no error observed
    CORRECTED = "corrected"  # single-bit error repaired
    DETECTED = "detected"  # uncorrectable error flagged (SECDED only)


class HammingCode:
    """A Hamming code over ``data_bits`` with optional SECDED parity."""

    def __init__(self, data_bits, extra_parity=False):
        self.data_bits = data_bits
        self.extra_parity = extra_parity
        # Number of Hamming check bits r: 2^r >= data + r + 1.
        r = 1
        while (1 << r) < data_bits + r + 1:
            r += 1
        self.hamming_bits = r
        self.check_bits = r + (1 if extra_parity else 0)
        # Codeword positions 1..n; powers of two hold check bits, the rest
        # hold data bits in order.
        self._data_positions = []
        position = 1
        while len(self._data_positions) < data_bits:
            if position & (position - 1):  # not a power of two
                self._data_positions.append(position)
            position += 1
        self._check_positions = [1 << i for i in range(r)]
        # Precompute, for each check bit, the mask of data-bit indices it
        # covers -- encode is then r popcount-and-reduce steps.
        self._coverage = []
        for check_pos in self._check_positions:
            mask = 0
            for bit_index, data_pos in enumerate(self._data_positions):
                if data_pos & check_pos:
                    mask |= 1 << bit_index
            self._coverage.append(mask)
        self._pos_to_bit = {
            pos: i for i, pos in enumerate(self._data_positions)}

    def encode(self, data):
        """Compute the check word for ``data``."""
        data &= (1 << self.data_bits) - 1
        check = 0
        for i, mask in enumerate(self._coverage):
            if bin(data & mask).count("1") & 1:
                check |= 1 << i
        if self.extra_parity:
            total = bin(data).count("1") + bin(check).count("1")
            if total & 1:
                check |= 1 << self.hamming_bits
        return check

    def correct(self, data, check):
        """Check/correct ``data`` against ``check``.

        Returns ``(corrected_data, status)``.  Total: never raises.
        """
        data &= (1 << self.data_bits) - 1
        check &= (1 << self.check_bits) - 1
        expected = self.encode(data)
        syndrome = 0
        for i in range(self.hamming_bits):
            if ((check ^ expected) >> i) & 1:
                syndrome |= self._check_positions[i]
        # SECDED discriminator: overall parity of the *received* codeword
        # (data + all check bits, including the parity bit itself).  Any
        # odd number of bit errors makes it odd; double errors keep it
        # even while producing a non-zero syndrome.
        received_parity = (bin(data).count("1") + bin(check).count("1")) & 1

        if syndrome == 0:
            if self.extra_parity and received_parity:
                # Error in the overall parity bit itself: data is fine.
                return data, CodeStatus.CORRECTED
            return data, CodeStatus.CLEAN

        if self.extra_parity and not received_parity:
            # Even number of errors: detectable but not correctable.
            return data, CodeStatus.DETECTED

        bit = self._pos_to_bit.get(syndrome)
        if bit is not None:
            return data ^ (1 << bit), CodeStatus.CORRECTED
        # Syndrome points at a check-bit position (error in the check
        # word) or at an invalid position: data itself is untouched.
        return data, CodeStatus.CORRECTED


# The two codes the paper's mechanisms use.
REGFILE_CODE = HammingCode(64, extra_parity=True)  # 8 check bits
REGPTR_CODE = HammingCode(7, extra_parity=False)  # 4 check bits
