"""Protection overhead accounting (paper Section 4.3).

The paper reports that its four mechanisms add 3061 bits of storage to a
~45K-bit pipeline (about 7%), roughly two-thirds of it RAM-type.  This
module derives the equivalent numbers for any configured pipeline from
its state-space inventory.
"""

from repro.uarch.statelib import StateCategory, StorageKind


def protection_overhead_report(pipeline):
    """Overhead summary for a (possibly protected) pipeline.

    Returns a dict with baseline bits, added ECC/parity bits split by
    storage kind, and the relative fault-rate surcharge the paper uses to
    normalise its 75%-reduction claim.
    """
    space = pipeline.space
    added = {StorageKind.LATCH: 0, StorageKind.RAM: 0}
    for category in (StateCategory.ECC, StateCategory.PARITY):
        for kind in (StorageKind.LATCH, StorageKind.RAM):
            added[kind] += space.total_bits(kind=kind, category=category)
    timeout_bits = _timeout_bits(pipeline)
    baseline = 0
    for kind in (StorageKind.LATCH, StorageKind.RAM):
        baseline += space.total_bits(kind=kind)
    added_total = added[StorageKind.LATCH] + added[StorageKind.RAM]
    baseline -= added_total  # inventory included the protection state
    return {
        "baseline_bits": baseline,
        "added_latch_bits": added[StorageKind.LATCH],
        "added_ram_bits": added[StorageKind.RAM],
        "added_total_bits": added_total,
        "timeout_counter_bits": timeout_bits,
        "ram_fraction_of_added": (
            added[StorageKind.RAM] / added_total if added_total else 0.0),
        "fault_rate_surcharge": (
            added_total / baseline if baseline else 0.0),
    }


def _timeout_bits(pipeline):
    """Bits of the timeout counter (reported inside the ctrl category)."""
    retire = getattr(pipeline, "retire_unit", None)
    counter = getattr(retire, "timeout_counter", None)
    return counter.width if counter is not None else 0
