"""Lightweight protection mechanisms (paper Section 4).

Four mechanisms, selected by :class:`repro.uarch.config.ProtectionConfig`
and woven into the pipeline model:

* **Timeout counter** -- detects 100 retirement-free cycles and forces a
  pipeline flush to clear deadlocks (``locked`` failures).
* **Register file ECC** -- SECDED over each physical register entry,
  generated one cycle after the write (the paper's deliberate
  vulnerability window), checked/corrected at register read.
* **Register pointer ECC** -- Hamming check bits accompanying every
  stored physical-register pointer (RATs, free lists, pipeline pointer
  fields), generated once and checked/repaired at strategic read points.
* **Instruction word parity** -- a parity bit accompanying each
  instruction word from fetch onward, updated as portions of the word
  are dropped, checked before the instruction can commit; a mismatch
  forces a recovery flush.

This package provides the codecs and the overhead accounting
(paper Section 4.3); the mechanism logic itself lives next to the
structures it protects in :mod:`repro.uarch`.
"""

from repro.protect.ecc import CodeStatus, HammingCode, REGFILE_CODE, REGPTR_CODE
from repro.protect.overhead import protection_overhead_report

__all__ = [
    "CodeStatus",
    "HammingCode",
    "REGFILE_CODE",
    "REGPTR_CODE",
    "protection_overhead_report",
]
