"""Plain-text figure rendering: stacked bars and scatter plots.

The paper's figures are stacked-bar charts (outcome mixes) and one
scatter plot (Figure 6).  These renderers draw the same shapes in ASCII
so benchmark output is visually comparable to the paper without any
plotting dependency.
"""

_BAR_GLYPHS = {
    "sdc": "#",
    "terminated": "X",
    "gray": ":",
    "uarch_match": ".",
    "exception": "#",
    "state_ok": ".",
    "output_ok": ":",
    "output_bad": "X",
}


def stacked_bar_chart(table, series_order, width=50, title=None,
                      glyphs=None):
    """Render ``label -> {series: count}`` as horizontal stacked bars.

    ``series_order`` fixes the stacking order (leftmost first).  Counts
    are normalised per row; each row shows its total n.
    """
    glyphs = glyphs or _BAR_GLYPHS
    lines = []
    if title:
        lines.append(title)
    legend = "  ".join("%s=%s" % (glyphs.get(str(s), "?"), s)
                       for s in series_order)
    lines.append("legend: " + legend)
    label_width = max((len(str(label)) for label in table), default=5)
    for label in sorted(table):
        counts = table[label]
        total = sum(counts.get(s, 0) for s in series_order)
        if total == 0:
            continue
        bar = []
        used = 0
        for series in series_order:
            share = counts.get(series, 0) / total
            cells = int(round(share * width))
            cells = min(cells, width - used)
            bar.append(glyphs.get(str(series), "?") * cells)
            used += cells
        bar.append(" " * (width - used))
        lines.append("%s |%s| n=%d"
                     % (str(label).ljust(label_width), "".join(bar), total))
    return "\n".join(lines)


def scatter_plot(points, width=60, height=16, title=None,
                 x_label="x", y_label="y"):
    """Render ``(x, y)`` points as an ASCII scatter plot.

    Multiple points in one cell render as ``*``; single points as ``o``.
    Axes are annotated with min/max values.
    """
    points = [(float(x), float(y)) for x, y in points]
    lines = []
    if title:
        lines.append(title)
    if not points:
        lines.append("(no data)")
        return "\n".join(lines)

    xs = [p[0] for p in points]
    ys = [p[1] for p in points]
    x_lo, x_hi = min(xs), max(xs)
    y_lo, y_hi = min(ys), max(ys)
    x_span = (x_hi - x_lo) or 1.0
    y_span = (y_hi - y_lo) or 1.0

    grid = [[" "] * width for _ in range(height)]
    for x, y in points:
        col = int((x - x_lo) / x_span * (width - 1))
        row = (height - 1) - int((y - y_lo) / y_span * (height - 1))
        grid[row][col] = "*" if grid[row][col] != " " else "o"

    top_label = "%.2f" % y_hi
    bottom_label = "%.2f" % y_lo
    margin = max(len(top_label), len(bottom_label), len(y_label) + 1)
    for index, row in enumerate(grid):
        if index == 0:
            prefix = top_label.rjust(margin)
        elif index == height - 1:
            prefix = bottom_label.rjust(margin)
        elif index == height // 2:
            prefix = y_label.rjust(margin)
        else:
            prefix = " " * margin
        lines.append(prefix + " |" + "".join(row))
    lines.append(" " * margin + " +" + "-" * width)
    lines.append(" " * margin + "  %-*s%s"
                 % (width - len("%.0f" % x_hi), "%.0f" % x_lo,
                    "%.0f" % x_hi))
    lines.append(" " * margin + "  (%s)" % x_label)
    return "\n".join(lines)


def outcome_bars(trials, key, title=None):
    """Stacked bars of trial outcomes grouped by ``key(trial)``."""
    from collections import Counter, defaultdict

    table = defaultdict(Counter)
    for trial in trials:
        table[key(trial)][trial.outcome.value] += 1
    order = ["sdc", "terminated", "gray", "uarch_match"]
    return stacked_bar_chart(dict(table), order, title=title)
