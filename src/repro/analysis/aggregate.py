"""Aggregation of trial lists into the paper's figure/table shapes."""

from collections import Counter, defaultdict

from repro.inject.outcome import TrialOutcome

# Canonical outcome order used by the figures (matches the paper's bar
# stacking: failures at the bottom, masked at the top).
OUTCOME_ORDER = (
    TrialOutcome.SDC,
    TrialOutcome.TERMINATED,
    TrialOutcome.GRAY,
    TrialOutcome.MICRO_MATCH,
)


def outcomes_by_workload(trials):
    """Figure 3 rows: workload -> Counter(outcome)."""
    table = defaultdict(Counter)
    for trial in trials:
        table[trial.workload][trial.outcome] += 1
    return dict(table)


def outcomes_by_category(trials):
    """Figure 4/5/9 rows: state category -> Counter(outcome)."""
    table = defaultdict(Counter)
    for trial in trials:
        table[trial.category][trial.outcome] += 1
    return dict(table)


def failure_modes_by_category(trials):
    """Figure 7 rows: state category -> Counter(failure mode)."""
    table = defaultdict(Counter)
    for trial in trials:
        if trial.failure_mode is not None:
            table[trial.category][trial.failure_mode] += 1
    return dict(table)


def failure_contributions(trials):
    """Figure 8/10 shares: category -> fraction of all failures."""
    failures = Counter(
        trial.category for trial in trials if trial.outcome.is_failure)
    total = sum(failures.values())
    if total == 0:
        return {}
    return {category: count / total for category, count in failures.items()}


def failure_mode_totals(trials):
    """Overall failure-mode mix (Table 2 / Section 4.1)."""
    return Counter(trial.failure_mode for trial in trials
                   if trial.failure_mode is not None)


def utilization_bins(trials, bin_width=8):
    """Figure 6 points: valid-instruction occupancy vs benign rate.

    Returns a list of ``(occupancy_bin_centre, benign_rate, n_trials)``
    plus the raw (occupancy, benign) pairs for the least-squares fit.
    """
    bins = defaultdict(lambda: [0, 0])  # centre -> [benign, total]
    raw = []
    for trial in trials:
        centre = (trial.valid_inflight // bin_width) * bin_width \
            + bin_width // 2
        cell = bins[centre]
        benign = 1 if trial.outcome.is_benign else 0
        cell[0] += benign
        cell[1] += 1
        raw.append((trial.valid_inflight, benign))
    points = [
        (centre, benign / total, total)
        for centre, (benign, total) in sorted(bins.items())
        if total > 0
    ]
    return points, raw


def masked_fraction(trials, include_gray=False):
    """Fraction masked (μArch Match, optionally + Gray Area)."""
    if not trials:
        return 0.0
    good = 0
    for trial in trials:
        if trial.outcome == TrialOutcome.MICRO_MATCH:
            good += 1
        elif include_gray and trial.outcome == TrialOutcome.GRAY:
            good += 1
    return good / len(trials)


def masking_causes(trials):
    """Why benign trials stayed benign: cause -> count.

    Uses the provenance fields :mod:`repro.obs` adds to benign trials
    (``--provenance`` campaigns); a benign trial whose corrupt value was
    read but never cleared within the horizon carries no cause and is
    counted as ``"unresolved"``.  Returns ``{}`` when no trial carries
    provenance (campaign ran without the observer), so callers can skip
    the table entirely.
    """
    benign = [t for t in trials if t.outcome.is_benign]
    if not any(t.masking_cause is not None for t in benign):
        return {}
    return dict(Counter(
        t.masking_cause if t.masking_cause is not None else "unresolved"
        for t in benign))


def latency_to_failure(trials, bin_width=50):
    """Detection-latency histogram: cycles from injection to detection.

    Bins ``detect_latency`` (present on every failing trial -- it is
    classification-derived, no observer needed) into ``bin_width``-cycle
    buckets; returns a sorted list of ``(bin_start, count)``.
    """
    histogram = Counter(
        (trial.detect_latency // bin_width) * bin_width
        for trial in trials if trial.detect_latency is not None)
    return sorted(histogram.items())


def failure_rate_per_bit(trials, eligible_bits):
    """Failure probability normalised per eligible bit (Section 4.4's
    fair comparison across machines with different state totals)."""
    if not trials or not eligible_bits:
        return 0.0
    failures = sum(1 for t in trials if t.outcome.is_failure)
    return failures / len(trials)
