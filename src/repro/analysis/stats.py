"""Statistical helpers: proportion confidence intervals, least squares.

The paper quotes binomial confidence intervals for its trial counts
(Section 2.3: <0.7% at 95% confidence for 25-30k trials; ~10% for the
~100-trial qctrl cell) and fits a least-mean-squares trendline for the
utilization/masking correlation (Figure 6).
"""

import math

_Z95 = 1.959963984540054  # two-sided 95% normal quantile


def proportion_ci(successes, trials, z=_Z95):
    """Wilson score interval for a binomial proportion.

    Returns ``(point, low, high)``.  Well-behaved at 0/1 proportions and
    small n, unlike the normal approximation.
    """
    if trials == 0:
        return 0.0, 0.0, 1.0
    p = successes / trials
    denom = 1 + z * z / trials
    centre = (p + z * z / (2 * trials)) / denom
    half = (z / denom) * math.sqrt(
        p * (1 - p) / trials + z * z / (4 * trials * trials))
    return p, max(0.0, centre - half), min(1.0, centre + half)


def confidence_interval(successes, trials, z=_Z95):
    """Half-width of the normal-approximation interval (paper's metric)."""
    if trials == 0:
        return 1.0
    p = successes / trials
    return z * math.sqrt(p * (1 - p) / trials)


def least_squares(points):
    """Least-mean-squares line fit: returns ``(slope, intercept, r)``.

    ``points`` is an iterable of (x, y).  ``r`` is the Pearson
    correlation coefficient (0.0 when degenerate).
    """
    points = list(points)
    n = len(points)
    if n < 2:
        return 0.0, points[0][1] if points else 0.0, 0.0
    sum_x = sum(x for x, _ in points)
    sum_y = sum(y for _, y in points)
    sum_xx = sum(x * x for x, _ in points)
    sum_yy = sum(y * y for _, y in points)
    sum_xy = sum(x * y for x, y in points)
    var_x = n * sum_xx - sum_x * sum_x
    var_y = n * sum_yy - sum_y * sum_y
    cov = n * sum_xy - sum_x * sum_y
    if var_x <= 0:
        return 0.0, sum_y / n, 0.0
    slope = cov / var_x
    intercept = (sum_y - slope * sum_x) / n
    if var_y <= 0:  # <= guards float rounding when all y are equal
        return slope, intercept, 0.0
    # sqrt each variance separately: the product can underflow to 0.0
    # for denormal-scale inputs even when both variances are positive.
    denominator = math.sqrt(var_x) * math.sqrt(var_y)
    if denominator == 0.0:
        return slope, intercept, 0.0
    r = cov / denominator
    return slope, intercept, max(-1.0, min(1.0, r))
