"""Occupancy-based vulnerability estimation (AVF proxy).

Paper Section 3.3 relates its masking measurements to Mukherjee et
al.'s Architectural Vulnerability Factor analysis [21]: a structure's
vulnerability tracks how much of it holds live state.  This module
computes the analytic side of that comparison -- per-structure average
occupancy over a fault-free execution window -- so campaigns can check
the correlation the paper reports (our Figure 6 benchmark measures the
same effect trial-by-trial).

The estimate is deliberately simple, as in the original ACE analysis:
``AVF_proxy(structure) = mean fraction of valid entries``.  Structures
holding architectural state (register file, RATs) are pinned near 1.0.
"""

from dataclasses import dataclass
from typing import Dict


# Structure name -> (element-name prefix used by injection results)
STRUCTURES = {
    "rob": "rob[",
    "scheduler": "sched[",
    "fetchq": "fetchq[",
    "loadq": "lq[",
    "storeq": "sq[",
    "biq": "biq.",
    "mhr": "mhr[",
}


@dataclass
class AvfEstimate:
    """Per-structure occupancy statistics over a sampled window."""

    occupancy: Dict[str, float]
    cycles: int

    def proxy(self, structure):
        return self.occupancy.get(structure, 0.0)


def sample_occupancy(pipeline):
    """Instantaneous valid-entry fraction of each major structure."""
    def frac(entries):
        if not entries:
            return 0.0
        return sum(1 for e in entries if e.valid.get()) / len(entries)

    mem = pipeline.memunit
    return {
        "rob": pipeline.rob.count.get() / len(pipeline.rob.entries),
        "scheduler": frac(pipeline.scheduler.entries),
        "fetchq": min(1.0, pipeline.frontend.fq_count.get()
                      / len(pipeline.frontend.fetchq)),
        "loadq": min(1.0, mem.lq_count.get() / len(mem.lq)),
        "storeq": min(1.0, mem.sq_count.get() / len(mem.sq)),
        "biq": min(1.0, pipeline.frontend.biq.count.get()
                   / pipeline.frontend.biq.capacity),
        "mhr": frac(mem.mhr),
    }


def estimate_avf(pipeline, cycles, sample_every=4):
    """Run the (fault-free) pipeline forward, averaging occupancy.

    Mutates the pipeline (advances it ``cycles`` cycles); callers wanting
    a clean machine should checkpoint/restore around the call.
    """
    totals = {name: 0.0 for name in STRUCTURES}
    samples = 0
    for cycle in range(cycles):
        pipeline.cycle()
        if pipeline.halted:
            break
        if cycle % sample_every == 0:
            for name, value in sample_occupancy(pipeline).items():
                totals[name] += value
            samples += 1
    if samples == 0:
        return AvfEstimate(occupancy={}, cycles=0)
    return AvfEstimate(
        occupancy={name: total / samples for name, total in totals.items()},
        cycles=cycles)


def measured_structure_rates(trials):
    """Measured failure rate of trials grouped by structure prefix."""
    rates = {}
    for name, prefix in STRUCTURES.items():
        matching = [t for t in trials if t.element_name.startswith(prefix)]
        if not matching:
            continue
        failures = sum(1 for t in matching if t.outcome.is_failure)
        rates[name] = (failures / len(matching), len(matching))
    return rates
