"""Statistics and aggregation for campaign results."""

from repro.analysis.aggregate import (
    failure_contributions,
    failure_modes_by_category,
    latency_to_failure,
    masking_causes,
    outcomes_by_category,
    outcomes_by_workload,
    utilization_bins,
)
from repro.analysis.avf import estimate_avf, measured_structure_rates
from repro.analysis.figures import outcome_bars, scatter_plot
from repro.analysis.stats import (
    confidence_interval,
    least_squares,
    proportion_ci,
)

__all__ = [
    "failure_contributions",
    "failure_modes_by_category",
    "latency_to_failure",
    "masking_causes",
    "outcomes_by_category",
    "outcomes_by_workload",
    "utilization_bins",
    "confidence_interval",
    "least_squares",
    "proportion_ci",
    "estimate_avf",
    "measured_structure_rates",
    "outcome_bars",
    "scatter_plot",
]
