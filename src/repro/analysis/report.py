"""Rendering of campaign results as paper-style ASCII tables."""

from repro.analysis.aggregate import (
    OUTCOME_ORDER,
    failure_contributions,
    failure_modes_by_category,
    latency_to_failure,
    masking_causes,
    outcomes_by_category,
    outcomes_by_workload,
)
from repro.analysis.stats import confidence_interval
from repro.inject.outcome import FailureMode
from repro.utils.tables import format_table

_OUTCOME_LABEL = {
    "sdc": "SDC",
    "terminated": "Term",
    "gray": "Gray",
    "uarch_match": "uArchMatch",
}


def render_outcomes(table, title, key_header):
    """Render a mapping key -> Counter(outcome) as stacked percentages."""
    headers = [key_header, "n"] + [
        _OUTCOME_LABEL[o.value] + "%" for o in OUTCOME_ORDER] + ["ci95"]
    rows = []
    for key in sorted(table):
        counts = table[key]
        total = sum(counts.values())
        row = [key, total]
        for outcome in OUTCOME_ORDER:
            row.append(100.0 * counts.get(outcome, 0) / total if total else 0)
        failures = sum(counts.get(o, 0) for o in OUTCOME_ORDER[:2])
        row.append(100.0 * confidence_interval(failures, total))
        rows.append(row)
    aggregate = _aggregate_row(table)
    if aggregate:
        rows.append(aggregate)
    return format_table(headers, rows, title=title)


def _aggregate_row(table):
    total = 0
    counts = {}
    for cell in table.values():
        for outcome, count in cell.items():
            counts[outcome] = counts.get(outcome, 0) + count
            total += count
    if not total:
        return None
    row = ["AGGREGATE", total]
    for outcome in OUTCOME_ORDER:
        row.append(100.0 * counts.get(outcome, 0) / total)
    failures = sum(counts.get(o, 0) for o in OUTCOME_ORDER[:2])
    row.append(100.0 * confidence_interval(failures, total))
    return row


def render_workload_outcomes(trials, title):
    """Figure 3-style table: outcome mix per benchmark."""
    return render_outcomes(outcomes_by_workload(trials), title, "benchmark")


def render_category_outcomes(trials, title):
    """Figure 4/5/9-style table: outcome mix per state category."""
    return render_outcomes(outcomes_by_category(trials), title, "category")


def render_failure_modes(trials, title):
    """Figure 7-style table: failure-mode counts per category."""
    table = failure_modes_by_category(trials)
    modes = list(FailureMode)
    headers = ["category", "failures"] + [m.value for m in modes]
    rows = []
    for category in sorted(table):
        counts = table[category]
        total = sum(counts.values())
        rows.append([category, total]
                    + [counts.get(m, 0) for m in modes])
    totals = ["TOTAL", sum(sum(c.values()) for c in table.values())]
    for mode in modes:
        totals.append(sum(c.get(mode, 0) for c in table.values()))
    rows.append(totals)
    return format_table(headers, rows, title=title)


def render_contributions(trials, title):
    """Figure 8/10-style table: each category's share of failures."""
    shares = failure_contributions(trials)
    headers = ["category", "share_of_failures%"]
    rows = [[category, 100.0 * share]
            for category, share in sorted(
                shares.items(), key=lambda item: -item[1])]
    return format_table(headers, rows, title=title)


def render_masking_causes(trials, title):
    """Masking-cause mix of benign trials (provenance campaigns).

    Returns None when no trial carries provenance data (the campaign
    ran without ``--provenance``), so callers can omit the section.
    """
    causes = masking_causes(trials)
    if not causes:
        return None
    total = sum(causes.values())
    headers = ["cause", "trials", "share%"]
    rows = [[cause, count, 100.0 * count / total]
            for cause, count in sorted(causes.items(),
                                       key=lambda item: -item[1])]
    rows.append(["TOTAL", total, 100.0])
    return format_table(headers, rows, title=title)


def render_latency_histogram(trials, title, bin_width=50):
    """Latency-to-failure histogram (cycles injection -> detection)."""
    histogram = latency_to_failure(trials, bin_width=bin_width)
    if not histogram:
        return None
    total = sum(count for _start, count in histogram)
    headers = ["latency_cycles", "failures", "share%"]
    rows = [["%d-%d" % (start, start + bin_width - 1), count,
             100.0 * count / total]
            for start, count in histogram]
    rows.append(["TOTAL", total, 100.0])
    return format_table(headers, rows, title=title)


def render_inventory(inventory, title):
    """Render a Table 1-style state inventory."""
    from repro.uarch.statelib import StorageKind

    headers = ["category", "latch_bits", "ram_bits"]
    rows = []
    total_latch = total_ram = 0
    for category in sorted(inventory, key=lambda c: c.value):
        cell = inventory[category]
        latch = cell.get(StorageKind.LATCH, 0)
        ram = cell.get(StorageKind.RAM, 0)
        total_latch += latch
        total_ram += ram
        rows.append([category.value, latch, ram])
    rows.append(["TOTAL", total_latch, total_ram])
    return format_table(headers, rows, title=title)
