"""Queryable cross-campaign results store (``repro.store``).

The paper's deliverables are aggregate views -- per-structure outcome
breakdowns, masking-cause tables, latency-to-failure distributions --
and a characterization study keeps asking them across *campaigns*:
protection on vs off, fault model A vs B, workload set X vs Y.  This
package aggregates any number of campaign journals into one SQLite
database (stdlib :mod:`sqlite3`, no new dependencies) keyed by campaign
fingerprint, with an incremental tailer that picks up appended journal
lines from live campaigns, so cross-campaign comparisons are one
``repro-faults query`` command instead of an ad-hoc script.

* :mod:`repro.store.db` -- the :class:`ResultsStore` itself: schema,
  tolerant ingestion (schema-1 journals and pre-``bit`` trials load
  with defaults, like the journal reader), and aggregate queries.
* :mod:`repro.store.query` -- paper-style table rendering over the
  store, shared by ``repro-faults query`` and the dashboard.
"""

from repro.store.db import IngestReport, ResultsStore
from repro.store.query import (
    comparison_table,
    render_campaign_list,
    render_store_fault_models,
    render_store_latency,
    render_store_masking,
    render_store_outcomes,
)

__all__ = [
    "IngestReport",
    "ResultsStore",
    "comparison_table",
    "render_campaign_list",
    "render_store_fault_models",
    "render_store_latency",
    "render_store_masking",
    "render_store_outcomes",
]
