"""The SQLite results store: schema, tolerant ingestion, aggregates.

One :class:`ResultsStore` database aggregates trials from any number of
campaign directories (serial runs, fabric coordinator journals, spooled
segments) keyed by campaign fingerprint.  Ingestion is *incremental*:
per source file the store remembers the byte offset of the last line it
consumed, so re-ingesting a live campaign's journal reads only the
appended lines (:func:`repro.runner.journal.tail_journal`) -- the
dashboard calls this on every refresh tick.

Tolerance matches the journal loader's: schema-1 journals (no per-line
CRC) ingest with their lines counted as legacy, and pre-``bit``
TrialResult dicts load with the same defaults
:func:`repro.inject.store.trial_from_dict` applies (``bit=0``,
propagation fields ``NULL``) instead of erroring.

Everything is stdlib ``sqlite3``; the connection is opened with
``check_same_thread=False`` so the dashboard can run ingestion inside
``run_in_executor`` worker threads, but the store itself does no
locking -- callers serialise access (the dashboard's refresh loop is
sequential by construction).
"""

import json
import os
import sqlite3
import time
from dataclasses import dataclass

from repro.errors import SimulationError
from repro.runner.journal import journal_path, metrics_path, tail_journal
from repro.runner.units import TrialUnit

__all__ = ["IngestReport", "ResultsStore"]

_FAILURES = ("sdc", "terminated")
_BENIGN = ("uarch_match", "gray")

_SCHEMA = """
CREATE TABLE IF NOT EXISTS campaigns (
    id INTEGER PRIMARY KEY,
    fingerprint TEXT UNIQUE NOT NULL,
    label TEXT NOT NULL,
    journal_schema INTEGER,
    result_schema INTEGER,
    config TEXT NOT NULL,
    workloads TEXT NOT NULL,
    kinds TEXT,
    scale TEXT,
    seed INTEGER,
    protection TEXT,
    eligible_bits INTEGER,
    inventory TEXT,
    created_at REAL NOT NULL
);
CREATE TABLE IF NOT EXISTS sources (
    campaign_id INTEGER NOT NULL REFERENCES campaigns(id),
    path TEXT NOT NULL,
    offset INTEGER NOT NULL DEFAULT 0,
    legacy_lines INTEGER NOT NULL DEFAULT 0,
    updated_at REAL NOT NULL,
    PRIMARY KEY (path)
);
CREATE TABLE IF NOT EXISTS trials (
    campaign_id INTEGER NOT NULL REFERENCES campaigns(id),
    workload TEXT NOT NULL,
    start_point INTEGER NOT NULL,
    trial_index INTEGER NOT NULL,
    outcome TEXT NOT NULL,
    mode TEXT,
    element TEXT,
    category TEXT,
    kind TEXT,
    bit INTEGER NOT NULL DEFAULT 0,
    inject_cycle INTEGER,
    cycles_run INTEGER,
    valid_inflight INTEGER,
    total_inflight INTEGER,
    first_read_cycle INTEGER,
    arch_corrupt_cycle INTEGER,
    detect_latency INTEGER,
    masking_cause TEXT,
    fault_model TEXT NOT NULL DEFAULT 'single_bit',
    PRIMARY KEY (campaign_id, workload, start_point, trial_index)
);
CREATE INDEX IF NOT EXISTS idx_trials_category
    ON trials (campaign_id, category);
CREATE TABLE IF NOT EXISTS snapshots (
    campaign_id INTEGER PRIMARY KEY REFERENCES campaigns(id),
    captured_at REAL NOT NULL,
    snapshot TEXT NOT NULL
);
"""


@dataclass
class IngestReport:
    """What one :meth:`ResultsStore.ingest` call actually did."""

    path: str
    fingerprint: str = ""
    new_trials: int = 0
    total_trials: int = 0
    legacy_lines: int = 0
    reset: bool = False
    snapshot: bool = False

    def render(self):
        extras = []
        if self.legacy_lines:
            extras.append("%d schema-1 line(s)" % self.legacy_lines)
        if self.reset:
            extras.append("journal shrank; re-read from byte 0")
        if self.snapshot:
            extras.append("telemetry snapshot")
        suffix = " [%s]" % "; ".join(extras) if extras else ""
        return "%s: +%d trial(s) (%d total) of %s%s" % (
            self.path, self.new_trials, self.total_trials,
            self.fingerprint[:12] or "?", suffix)


def _protection_summary(config_dict):
    """``none`` / ``full`` / the comma-joined enabled mechanisms."""
    protection = config_dict.get("protection") or {}
    enabled = sorted(name for name, on in protection.items() if on)
    if not enabled:
        return "none"
    if len(enabled) == len(protection):
        return "full"
    return ",".join(enabled)


class ResultsStore:
    """SQLite-backed, fingerprint-keyed store of campaign trials."""

    def __init__(self, path=":memory:"):
        self.path = path
        if path != ":memory:":
            parent = os.path.dirname(os.path.abspath(path))
            os.makedirs(parent, exist_ok=True)
        # check_same_thread=False: the dashboard ingests from executor
        # threads; access is serialised by its sequential refresh loop.
        self._db = sqlite3.connect(path, check_same_thread=False)
        self._db.executescript(_SCHEMA)
        self._migrate()
        self._db.commit()

    def _migrate(self):
        """Bring a pre-existing database up to the current schema.

        ``CREATE TABLE IF NOT EXISTS`` never alters a table that is
        already there, so columns added after a database was created
        must be grafted on here.  Additive only: every new column has a
        default that matches what the old rows meant (all pre-faultlib
        trials are single-bit).
        """
        columns = {row[1] for row in
                   self._db.execute("PRAGMA table_info(trials)")}
        if "fault_model" not in columns:
            self._db.execute(
                "ALTER TABLE trials ADD COLUMN fault_model TEXT NOT NULL "
                "DEFAULT 'single_bit'")

    def close(self):
        self._db.close()

    def __enter__(self):
        return self

    def __exit__(self, *_exc):
        self.close()

    # -- ingestion ------------------------------------------------------

    def ingest(self, source, label=None):
        """Ingest a campaign directory or a journal/segment file.

        A directory contributes its ``journal.jsonl`` plus (when
        present) its latest ``metrics.json`` telemetry snapshot.
        Returns an :class:`IngestReport`; re-ingesting is incremental
        and idempotent.
        """
        if os.path.isdir(source):
            return self.ingest_dir(source, label=label)
        return self.ingest_journal(source, label=label)

    def ingest_dir(self, directory, label=None):
        report = self.ingest_journal(
            journal_path(directory),
            label=label or os.path.basename(os.path.normpath(directory)))
        metrics = metrics_path(directory)
        if report.fingerprint and os.path.exists(metrics):
            try:
                with open(metrics, "r", encoding="utf-8") as handle:
                    snapshot = json.load(handle)
            except (OSError, ValueError):
                snapshot = None  # mid-rewrite or damaged; next tick wins
            if isinstance(snapshot, dict):
                self.record_snapshot(report.fingerprint, snapshot)
                report.snapshot = True
        return report

    def ingest_journal(self, path, label=None):
        """Incrementally ingest one journal (or segment) file."""
        path = os.path.abspath(path)
        row = self._db.execute(
            "SELECT campaign_id, offset, legacy_lines FROM sources "
            "WHERE path = ?", (path,)).fetchone()
        campaign_id, offset, old_legacy = row if row else (None, 0, 0)
        tail = tail_journal(path, offset)
        report = IngestReport(path=path, reset=tail.reset,
                              legacy_lines=tail.legacy_lines)
        if tail.reset:
            old_legacy = 0
        before = None
        for record in tail.records:
            kind = record.get("type")
            if kind == "header":
                campaign_id = self._upsert_campaign(record, label, path)
            elif kind == "trial":
                if campaign_id is None:
                    raise SimulationError(
                        "journal %s has trial lines before any header; "
                        "not a campaign journal" % path)
                if before is None:
                    before = self._trial_count(campaign_id)
                self._insert_trial(campaign_id, record)
        if campaign_id is None:
            # Nothing consumed yet (empty file or a torn first line).
            return report
        self._db.execute(
            "INSERT INTO sources (campaign_id, path, offset, legacy_lines,"
            " updated_at) VALUES (?, ?, ?, ?, ?) "
            "ON CONFLICT(path) DO UPDATE SET campaign_id = excluded."
            "campaign_id, offset = excluded.offset, legacy_lines = "
            "excluded.legacy_lines, updated_at = excluded.updated_at",
            (campaign_id, path, tail.offset,
             # repro-lint: allow=REP002 (ingestion bookkeeping metadata;
             # no simulation path involved)
             old_legacy + tail.legacy_lines, time.time()))
        self._db.commit()
        report.fingerprint = self._db.execute(
            "SELECT fingerprint FROM campaigns WHERE id = ?",
            (campaign_id,)).fetchone()[0]
        report.total_trials = self._trial_count(campaign_id)
        # A count delta, not an insert count: a reset re-read REPLACEs
        # rows it already holds, which must not read as new trials.
        report.new_trials = report.total_trials - (
            before if before is not None else report.total_trials)
        return report

    def _trial_count(self, campaign_id):
        return self._db.execute(
            "SELECT COUNT(*) FROM trials WHERE campaign_id = ?",
            (campaign_id,)).fetchone()[0]

    def _upsert_campaign(self, header, label, path):
        fingerprint = header.get("fingerprint")
        if not fingerprint:
            raise SimulationError(
                "journal %s has a header without a campaign fingerprint"
                % path)
        config = header.get("config") or {}
        row = self._db.execute(
            "SELECT id FROM campaigns WHERE fingerprint = ?",
            (fingerprint,)).fetchone()
        if row is not None:
            if label:
                self._db.execute(
                    "UPDATE campaigns SET label = ? WHERE id = ?",
                    (label, row[0]))
            return row[0]
        cursor = self._db.execute(
            "INSERT INTO campaigns (fingerprint, label, journal_schema, "
            "result_schema, config, workloads, kinds, scale, seed, "
            "protection, eligible_bits, inventory, created_at) "
            "VALUES (?, ?, ?, ?, ?, ?, ?, ?, ?, ?, ?, ?, ?)",
            (fingerprint,
             label or fingerprint[:12],
             header.get("schema", 1),
             header.get("result_schema", 1),
             json.dumps(config, sort_keys=True),
             " ".join(config.get("workloads") or ()),
             config.get("kinds"),
             config.get("scale"),
             config.get("seed"),
             _protection_summary(config),
             header.get("eligible_bits"),
             json.dumps(header.get("inventory") or {}, sort_keys=True),
             # repro-lint: allow=REP002 (ingestion bookkeeping metadata;
             # no simulation path involved)
             time.time()))
        return cursor.lastrowid

    def _insert_trial(self, campaign_id, record):
        """Insert (or replace) one journal trial record.

        Field access mirrors :func:`repro.inject.store.trial_from_dict`
        tolerance: legacy trials without ``bit`` (or any propagation
        field) take the same defaults rather than erroring.
        """
        unit = TrialUnit.from_key(record["unit"])
        trial = record.get("trial") or {}
        self._db.execute(
            "INSERT OR REPLACE INTO trials (campaign_id, workload, "
            "start_point, trial_index, outcome, mode, element, category, "
            "kind, bit, inject_cycle, cycles_run, valid_inflight, "
            "total_inflight, first_read_cycle, arch_corrupt_cycle, "
            "detect_latency, masking_cause, fault_model) "
            "VALUES (?, ?, ?, ?, ?, ?, ?, ?, ?, ?, ?, ?, ?, ?, ?, ?, ?, "
            "?, ?)",
            (campaign_id, unit.workload, unit.start_point,
             unit.trial_index,
             trial.get("outcome", "harness_error"),
             trial.get("mode"),
             trial.get("element"),
             trial.get("category"),
             trial.get("kind"),
             trial.get("bit", 0),
             trial.get("inject_cycle"),
             trial.get("cycles_run"),
             trial.get("valid_inflight"),
             trial.get("total_inflight"),
             trial.get("first_read_cycle"),
             trial.get("arch_corrupt_cycle"),
             trial.get("detect_latency"),
             trial.get("masking_cause"),
             trial.get("fault_model", "single_bit")))

    def record_snapshot(self, fingerprint, snapshot):
        """Store the latest telemetry snapshot of a campaign."""
        row = self._db.execute(
            "SELECT id FROM campaigns WHERE fingerprint = ?",
            (fingerprint,)).fetchone()
        if row is None:
            return
        self._db.execute(
            "INSERT OR REPLACE INTO snapshots (campaign_id, captured_at, "
            "snapshot) VALUES (?, ?, ?)",
            # repro-lint: allow=REP002 (snapshot capture timestamp is
            # observability metadata; no simulation path involved)
            (row[0], time.time(), json.dumps(snapshot, sort_keys=True)))
        self._db.commit()

    # -- lookups --------------------------------------------------------

    def campaigns(self):
        """All known campaigns, ingestion order, as plain dicts."""
        rows = self._db.execute(
            "SELECT c.id, c.fingerprint, c.label, c.journal_schema, "
            "c.result_schema, c.workloads, c.kinds, c.scale, c.seed, "
            "c.protection, c.eligible_bits, "
            "(SELECT COUNT(*) FROM trials t WHERE t.campaign_id = c.id) "
            "FROM campaigns c ORDER BY c.id").fetchall()
        keys = ("id", "fingerprint", "label", "journal_schema",
                "result_schema", "workloads", "kinds", "scale", "seed",
                "protection", "eligible_bits", "trials")
        return [dict(zip(keys, row)) for row in rows]

    def resolve(self, prefix):
        """The campaign dict whose fingerprint starts with ``prefix``."""
        matches = [campaign for campaign in self.campaigns()
                   if campaign["fingerprint"].startswith(prefix)
                   or campaign["label"] == prefix]
        if not matches:
            raise SimulationError(
                "no ingested campaign matches %r" % prefix)
        if len(matches) > 1:
            raise SimulationError(
                "%r is ambiguous: matches %s" % (prefix, ", ".join(
                    campaign["fingerprint"][:12] for campaign in matches)))
        return matches[0]

    def snapshot(self, fingerprint):
        """The stored telemetry snapshot of a campaign, or None."""
        row = self._db.execute(
            "SELECT s.snapshot FROM snapshots s JOIN campaigns c "
            "ON c.id = s.campaign_id WHERE c.fingerprint = ?",
            (fingerprint,)).fetchone()
        return json.loads(row[0]) if row else None

    # -- aggregates -----------------------------------------------------

    _BY = {"category": "category", "workload": "workload",
           "element": "element", "fault_model": "fault_model"}

    def outcome_table(self, by="category", fingerprints=None):
        """``fingerprint -> {key -> {outcome -> count}}``.

        ``by`` picks the grouping axis (``category`` -- the paper's
        per-structure breakdown -- ``workload``, or ``element``).
        """
        column = self._column(by)
        sql = ("SELECT c.fingerprint, t.%s, t.outcome, COUNT(*) "
               "FROM trials t JOIN campaigns c ON c.id = t.campaign_id "
               "%s GROUP BY c.fingerprint, t.%s, t.outcome"
               % (column, self._where(fingerprints), column))
        table = {}
        for fingerprint, key, outcome, count in self._db.execute(
                sql, fingerprints or ()):
            table.setdefault(fingerprint, {}) \
                .setdefault(key or "?", {})[outcome] = count
        return table

    def masking_table(self, fingerprints=None):
        """``fingerprint -> {cause -> count}`` over benign trials.

        Matches :func:`repro.analysis.aggregate.masking_causes`: a
        campaign none of whose benign trials carries a cause (no
        ``--provenance``) contributes nothing; a provenance campaign's
        benign trials without a cause count as ``unresolved``.
        """
        sql = ("SELECT c.fingerprint, t.masking_cause, COUNT(*) "
               "FROM trials t JOIN campaigns c ON c.id = t.campaign_id "
               "%s AND t.outcome IN (%s) "
               "GROUP BY c.fingerprint, t.masking_cause"
               % (self._where(fingerprints),
                  ",".join("?" * len(_BENIGN))))
        raw = {}
        for fingerprint, cause, count in self._db.execute(
                sql, tuple(fingerprints or ()) + _BENIGN):
            raw.setdefault(fingerprint, {})[cause] = count
        table = {}
        for fingerprint, causes in raw.items():
            if set(causes) == {None}:
                continue  # campaign ran without provenance
            table[fingerprint] = {
                cause if cause is not None else "unresolved": count
                for cause, count in causes.items()}
        return table

    def latency_table(self, fingerprints=None, bin_width=50):
        """``fingerprint -> sorted [(bin_start, count), ...]``."""
        sql = ("SELECT c.fingerprint, (t.detect_latency / %d) * %d, "
               "COUNT(*) FROM trials t JOIN campaigns c "
               "ON c.id = t.campaign_id %s AND t.detect_latency IS NOT "
               "NULL GROUP BY 1, 2 ORDER BY 1, 2"
               % (bin_width, bin_width, self._where(fingerprints)))
        table = {}
        for fingerprint, bin_start, count in self._db.execute(
                sql, fingerprints or ()):
            table.setdefault(fingerprint, []).append((bin_start, count))
        return table

    def vulnerability(self, by="element", fingerprints=None):
        """Failure-rate rows for the heatmap: the per-field view.

        Returns ``[(key, workload, trials, failures), ...]`` ordered by
        key then workload, aggregated across ``fingerprints`` (all
        campaigns when None).
        """
        column = self._column(by)
        sql = ("SELECT t.%s, t.workload, COUNT(*), "
               "SUM(CASE WHEN t.outcome IN (%s) THEN 1 ELSE 0 END) "
               "FROM trials t JOIN campaigns c ON c.id = t.campaign_id "
               "%s GROUP BY t.%s, t.workload ORDER BY 1, 2"
               % (column, ",".join("?" * len(_FAILURES)),
                  self._where(fingerprints), column))
        return [(key or "?", workload, trials, failures or 0)
                for key, workload, trials, failures in self._db.execute(
                    sql, tuple(_FAILURES) + tuple(fingerprints or ()))]

    def fault_model_table(self, by="category", fingerprints=None):
        """``fault_model -> {key -> {outcome -> count}}``.

        The cross-model aggregate behind ``repro-faults query --by
        fault_model``: trials of the selected campaigns pooled by fault
        model, then grouped by ``by`` (``category`` for the paper's
        per-structure reading).  Models are compared across campaigns
        because one campaign runs exactly one model -- mixing models in
        one fingerprint is impossible by construction.
        """
        column = self._column(by)
        sql = ("SELECT t.fault_model, t.%s, t.outcome, COUNT(*) "
               "FROM trials t JOIN campaigns c ON c.id = t.campaign_id "
               "%s GROUP BY t.fault_model, t.%s, t.outcome"
               % (column, self._where(fingerprints), column))
        table = {}
        for model, key, outcome, count in self._db.execute(
                sql, fingerprints or ()):
            table.setdefault(model, {}) \
                .setdefault(key or "?", {})[outcome] = count
        return table

    def _column(self, by):
        if by not in self._BY:
            raise SimulationError(
                "unknown grouping %r (want one of %s)"
                % (by, ", ".join(sorted(self._BY))))
        return self._BY[by]

    @staticmethod
    def _where(fingerprints):
        if not fingerprints:
            return "WHERE 1=1"
        return ("WHERE c.fingerprint IN (%s)"
                % ",".join("?" * len(fingerprints)))
