"""Paper-style tables over the results store (``repro-faults query``).

The point of the store is that cross-campaign comparisons -- protection
on vs off, fault model A vs B -- are *one command*.  This module turns
:class:`~repro.store.db.ResultsStore` aggregates into the same ASCII
tables the campaign CLI prints (via :mod:`repro.analysis.report`), plus
a side-by-side comparison table that only exists across campaigns.
"""

from repro.analysis.report import render_outcomes
from repro.inject.outcome import TrialOutcome
from repro.utils.tables import format_table

__all__ = ["comparison_table", "render_campaign_list",
           "render_store_fault_models", "render_store_latency",
           "render_store_masking", "render_store_outcomes"]

_FAILURES = (TrialOutcome.SDC, TrialOutcome.TERMINATED)


def _labels(store, fingerprints):
    by_fingerprint = {campaign["fingerprint"]: campaign["label"]
                      for campaign in store.campaigns()}
    return {fingerprint: "%s (%s)" % (by_fingerprint.get(
        fingerprint, "?"), fingerprint[:12])
        for fingerprint in fingerprints}


def _to_counters(cells):
    """``{key: {outcome str: n}}`` -> ``{key: {TrialOutcome: n}}``."""
    table = {}
    for key, counts in cells.items():
        table[key] = {}
        for outcome, count in counts.items():
            try:
                table[key][TrialOutcome(outcome)] = count
            except ValueError:
                pass  # an outcome value from a future schema
    return table


def render_campaign_list(store):
    """The ingested-campaign inventory table."""
    headers = ["fingerprint", "label", "trials", "workloads", "kinds",
               "scale", "seed", "protection", "eligible_bits"]
    rows = [[campaign["fingerprint"][:12], campaign["label"],
             campaign["trials"], campaign["workloads"],
             campaign["kinds"] or "?", campaign["scale"] or "?",
             campaign["seed"] if campaign["seed"] is not None else "?",
             campaign["protection"] or "?",
             campaign["eligible_bits"] or 0]
            for campaign in store.campaigns()]
    return format_table(headers, rows, title="Ingested campaigns")


def render_store_outcomes(store, by="category", fingerprints=None):
    """Per-campaign outcome tables plus the cross-campaign comparison.

    Returns one string: for each selected campaign a Figure 4/5-style
    per-``by`` outcome table, then (for two or more campaigns) the
    comparison table.  ``fingerprints`` of None selects every ingested
    campaign.
    """
    table = store.outcome_table(by=by, fingerprints=fingerprints)
    order = fingerprints or [campaign["fingerprint"]
                             for campaign in store.campaigns()]
    order = [fingerprint for fingerprint in order if fingerprint in table]
    labels = _labels(store, order)
    sections = []
    for fingerprint in order:
        sections.append(render_outcomes(
            _to_counters(table[fingerprint]),
            "Outcomes by %s -- %s" % (by, labels[fingerprint]), by))
    if len(order) >= 2:
        sections.append(comparison_table(
            {fingerprint: table[fingerprint] for fingerprint in order},
            labels, by))
    return "\n\n".join(sections)


def comparison_table(tables, labels, by="category", title=None):
    """Side-by-side failure rates: one row per key, columns per campaign.

    ``tables`` maps fingerprint to ``{key: {outcome: count}}`` (the
    :meth:`ResultsStore.outcome_table` shape).  With exactly two
    campaigns a ``delta_pp`` column reports the failure-rate change in
    percentage points (second minus first) -- the paper's protection
    on/off reading at a glance.
    """
    order = list(tables)
    keys = sorted({key for cells in tables.values() for key in cells})
    headers = [by]
    for fingerprint in order:
        short = labels.get(fingerprint, fingerprint[:12])
        headers += ["%s n" % short, "%s fail%%" % short]
    if len(order) == 2:
        headers.append("delta_pp")
    rows = []
    for key in keys:
        row = [key]
        rates = []
        for fingerprint in order:
            counts = tables[fingerprint].get(key, {})
            total = sum(counts.values())
            failures = sum(counts.get(outcome.value, 0)
                           for outcome in _FAILURES)
            rate = 100.0 * failures / total if total else 0.0
            rates.append(rate if total else None)
            row += [total, rate]
        if len(order) == 2:
            row.append(rates[1] - rates[0]
                       if None not in rates else "n/a")
        rows.append(row)
    return format_table(
        headers, rows,
        title=title or "Failure-rate comparison by %s" % by)


def render_store_fault_models(store, by="category", fingerprints=None):
    """Side-by-side failure rates per fault model, one row per ``by`` key.

    The DSN question this answers in one command: how does the 2-bit
    adjacent failure rate per structure compare with single-bit?  Each
    fault model found in the selected campaigns becomes a column pair
    (trials, fail%); with exactly two models the ``delta_pp`` column
    reads off the protection-coverage gap directly.
    """
    table = store.fault_model_table(by=by, fingerprints=fingerprints)
    if not table:
        return "No trials in store."
    labels = {model: model for model in table}
    return comparison_table(
        table, labels, by,
        title="Failure-rate comparison by %s x fault model" % by)


def render_store_masking(store, fingerprints=None):
    """Masking-cause tables per campaign; None when no provenance."""
    table = store.masking_table(fingerprints=fingerprints)
    if not table:
        return None
    labels = _labels(store, list(table))
    sections = []
    for fingerprint in sorted(table, key=lambda f: labels[f]):
        causes = table[fingerprint]
        total = sum(causes.values())
        rows = [[cause, count, 100.0 * count / total]
                for cause, count in sorted(causes.items(),
                                           key=lambda item: -item[1])]
        rows.append(["TOTAL", total, 100.0])
        sections.append(format_table(
            ["cause", "trials", "share%"], rows,
            title="Masking causes -- %s" % labels[fingerprint]))
    return "\n\n".join(sections)


def render_store_latency(store, fingerprints=None, bin_width=50):
    """Latency-to-failure histograms per campaign; None when empty."""
    table = store.latency_table(fingerprints=fingerprints,
                                bin_width=bin_width)
    if not table:
        return None
    labels = _labels(store, list(table))
    sections = []
    for fingerprint in sorted(table, key=lambda f: labels[f]):
        histogram = table[fingerprint]
        total = sum(count for _start, count in histogram)
        rows = [["%d-%d" % (start, start + bin_width - 1), count,
                 100.0 * count / total] for start, count in histogram]
        rows.append(["TOTAL", total, 100.0])
        sections.append(format_table(
            ["latency_cycles", "failures", "share%"], rows,
            title="Latency to failure detection -- %s"
                  % labels[fingerprint]))
    return "\n\n".join(sections)
