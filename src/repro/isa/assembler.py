"""Two-pass assembler for the Alpha-inspired ISA subset.

Workloads are written as assembly text (see ``repro.workloads.kernels``).
Supported syntax::

    ; comment (semicolon only; '#' introduces literals)
    .org 0x1000                       ; set location counter
    .quad 123                         ; emit a 64-bit datum
    .long 123                         ; emit a 32-bit datum
    .space 64                         ; reserve zeroed bytes
    .align 8                          ; align location counter
    label:
        lda   r1, 100(r31)
        ldah  r2, 1(r31)
        addq  r1, r2, r3              ; register form
        addq  r1, #5, r3              ; 8-bit literal form
        ldq   r4, 8(r1)
        stq   r4, 16(sp)
        beq   r1, label
        br    label                   ; ra defaults to r31
        bsr   ra, func
        jsr   ra, (r4)
        ret   (ra)
        halt / putc / putq / nop
        mov   r1, r2                  ; pseudo: bis r1, r31, r2
        clr   r1                      ; pseudo: bis r31, r31, r1
        li    r1, 123456              ; pseudo: ldah+lda expansion

Register aliases follow the Alpha calling convention (v0, t0-t11, s0-s6,
a0-a5, ra, gp, sp, zero).
"""

import re
from dataclasses import dataclass, field

from repro.errors import AssemblerError
from repro.isa.encoding import encode
from repro.isa.instruction import Instruction
from repro.isa.opcodes import (
    BRANCH_OPCODES,
    MEMORY_OPCODES,
    OPERATE_FUNCS,
    REG_RA,
    REG_ZERO,
    Op,
)
from repro.utils.bits import MASK64, sext

_REG_ALIASES = {
    "zero": 31,
    "sp": 30,
    "gp": 29,
    "at": 28,
    "ra": 26,
    "v0": 0,
}
_REG_ALIASES.update({"t%d" % i: 1 + i for i in range(8)})  # t0-t7 -> r1-r8
_REG_ALIASES.update({"s%d" % i: 9 + i for i in range(7)})  # s0-s6 -> r9-r15
_REG_ALIASES.update({"a%d" % i: 16 + i for i in range(6)})  # a0-a5 -> r16-r21
_REG_ALIASES.update({"t%d" % (8 + i): 22 + i for i in range(4)})  # t8-t11

_OPERATE_OPS = {
    op.name.lower(): op for funcs in OPERATE_FUNCS.values() for op in funcs.values()
}
_MEMORY_OPS = {op.name.lower(): op for op in MEMORY_OPCODES.values()}
_BRANCH_OPS = {op.name.lower(): op for op in BRANCH_OPCODES.values()}
_PAL_OPS = {
    "halt": Op.HALT,
    "putc": Op.PUTC,
    "putq": Op.PUTQ,
    "palnop": Op.PAL_NOP,
}


@dataclass
class Program:
    """An assembled program image.

    ``image`` maps quadword-aligned byte addresses to 64-bit values;
    ``entry`` is the first executable address; ``labels`` maps label names
    to addresses (used by tests and by the workload kernels to locate
    their data regions).
    """

    entry: int
    image: dict = field(default_factory=dict)
    labels: dict = field(default_factory=dict)
    source: str = ""

    def word_at(self, address):
        """Fetch the 32-bit instruction word at ``address``."""
        quad = self.image.get(address & ~7 & MASK64, 0)
        if address & 4:
            return (quad >> 32) & 0xFFFFFFFF
        return quad & 0xFFFFFFFF


def assemble(source, base=0x1000):
    """Assemble ``source`` text into a :class:`Program`.

    ``base`` is the default origin when the source has no leading
    ``.org``.  Raises :class:`AssemblerError` with a line number on any
    syntax or range problem.
    """
    statements = _parse(source, base)
    labels = _layout(statements)
    program = Program(entry=_entry_point(statements), labels=labels, source=source)
    for stmt in statements:
        stmt.emit(program, labels)
    return program


# ---------------------------------------------------------------------------
# Parsing
# ---------------------------------------------------------------------------


class _Statement:
    """One placed item: an instruction, a datum, or reserved space."""

    def __init__(self, line_no):
        self.line_no = line_no
        self.address = None

    size = 0
    align = 1
    is_code = False

    def emit(self, program, labels):
        raise NotImplementedError


class _Insn(_Statement):
    size = 4
    align = 4
    is_code = True

    def __init__(self, line_no, mnemonic, operands):
        super().__init__(line_no)
        self.mnemonic = mnemonic
        self.operands = operands

    def emit(self, program, labels):
        insn = _build_instruction(self, labels)
        word = encode(insn)
        _write_word(program, self.address, word)


class _LoadImm(_Statement):
    """``li rX, value`` pseudo-op: a fixed ldah+lda pair (8 bytes)."""

    size = 8
    align = 4
    is_code = True

    def __init__(self, line_no, reg_text, value_expr):
        super().__init__(line_no)
        self.reg_text = reg_text
        self.value_expr = value_expr

    def emit(self, program, labels):
        reg = _parse_reg(self.reg_text, self.line_no)
        value = _resolve_value(self.value_expr, labels, self.line_no)
        value = sext(value & 0xFFFFFFFF, 32)
        low = sext(value & 0xFFFF, 16)
        high = (value - low) >> 16
        if not -(1 << 15) <= high <= (1 << 15) - 1:
            # Exactly the values a real ldah+lda pair can form:
            # [-0x80000000, 0x7fff7fff].  Larger constants belong in a
            # .quad constant pool loaded with ldq.
            raise AssemblerError(
                "li value %s not representable by ldah+lda "
                "(range -0x80000000..0x7fff7fff); use a .quad constant"
                % self.value_expr, self.line_no
            )
        ldah = Instruction(op=Op.LDAH, ra=reg, rb=REG_ZERO, disp=high)
        lda = Instruction(op=Op.LDA, ra=reg, rb=reg, disp=low)
        _write_word(program, self.address, encode(ldah))
        _write_word(program, self.address + 4, encode(lda))


class _Datum(_Statement):
    def __init__(self, line_no, value_expr, size):
        super().__init__(line_no)
        self.value_expr = value_expr
        self.size = size
        self.align = size

    def emit(self, program, labels):
        value = _resolve_value(self.value_expr, labels, self.line_no)
        if self.size == 8:
            program.image[self.address] = value & MASK64
        else:
            quad_addr = self.address & ~7
            quad = program.image.get(quad_addr, 0)
            if self.address & 4:
                quad = (quad & 0xFFFFFFFF) | ((value & 0xFFFFFFFF) << 32)
            else:
                quad = (quad & ~0xFFFFFFFF & MASK64) | (value & 0xFFFFFFFF)
            program.image[quad_addr] = quad


class _Space(_Statement):
    align = 8

    def __init__(self, line_no, nbytes):
        super().__init__(line_no)
        self.size = nbytes

    def emit(self, program, labels):
        for offset in range(0, self.size, 8):
            program.image.setdefault((self.address + offset) & ~7, 0)


class _Org(_Statement):
    def __init__(self, line_no, address):
        super().__init__(line_no)
        self.org_address = address

    def emit(self, program, labels):
        pass


class _Align(_Statement):
    def __init__(self, line_no, boundary):
        super().__init__(line_no)
        self.boundary = boundary

    def emit(self, program, labels):
        pass


class _Label(_Statement):
    def __init__(self, line_no, name):
        super().__init__(line_no)
        self.name = name

    def emit(self, program, labels):
        pass


_LABEL_RE = re.compile(r"^([A-Za-z_.$][\w.$]*):")


def _parse(source, base):
    statements = [_Org(0, base)]
    for line_no, raw_line in enumerate(source.splitlines(), start=1):
        line = raw_line.split(";")[0].strip()
        while line:
            match = _LABEL_RE.match(line)
            if match:
                statements.append(_Label(line_no, match.group(1)))
                line = line[match.end():].strip()
                continue
            statements.append(_parse_statement(line, line_no))
            line = ""
    return statements


def _parse_statement(line, line_no):
    parts = line.split(None, 1)
    head = parts[0].lower()
    rest = parts[1] if len(parts) > 1 else ""
    if head == ".org":
        return _Org(line_no, _parse_int(rest, line_no))
    if head == ".quad":
        return _Datum(line_no, rest.strip(), 8)
    if head == ".long":
        return _Datum(line_no, rest.strip(), 4)
    if head == ".space":
        return _Space(line_no, _parse_int(rest, line_no))
    if head == ".align":
        return _Align(line_no, _parse_int(rest, line_no))
    if head.startswith("."):
        raise AssemblerError("unknown directive %r" % head, line_no)
    operands = [field.strip() for field in rest.split(",")] if rest else []
    if head == "li":
        if len(operands) != 2:
            raise AssemblerError("li expects 2 operands", line_no)
        return _LoadImm(line_no, operands[0], operands[1])
    return _Insn(line_no, head, operands)


def _parse_int(text, line_no):
    try:
        return int(text.strip(), 0)
    except ValueError:
        raise AssemblerError("bad integer %r" % text, line_no)


# ---------------------------------------------------------------------------
# Layout (pass 1)
# ---------------------------------------------------------------------------


def _layout(statements):
    labels = {}
    location = 0
    for stmt in statements:
        if isinstance(stmt, _Org):
            location = stmt.org_address
        elif isinstance(stmt, _Align):
            boundary = max(1, stmt.boundary)
            location = (location + boundary - 1) // boundary * boundary
        elif isinstance(stmt, _Label):
            if stmt.name in labels:
                raise AssemblerError(
                    "duplicate label %r" % stmt.name, stmt.line_no
                )
            labels[stmt.name] = location
            stmt.address = location
        else:
            align = stmt.align
            location = (location + align - 1) // align * align
            stmt.address = location
            location += stmt.size
    return labels


def _entry_point(statements):
    for stmt in statements:
        if stmt.is_code and stmt.address is not None:
            return stmt.address
    raise AssemblerError("program contains no instructions")


# ---------------------------------------------------------------------------
# Instruction construction (pass 2)
# ---------------------------------------------------------------------------

_MEM_OPERAND_RE = re.compile(r"^(?:(.+?))?\(\s*([^)]+)\s*\)$")


def _build_instruction(stmt, labels):
    mnemonic, operands, line_no = stmt.mnemonic, stmt.operands, stmt.line_no

    if mnemonic in _PAL_OPS:
        _expect_operands(operands, 0, mnemonic, line_no)
        return Instruction(op=_PAL_OPS[mnemonic])

    if mnemonic == "nop":
        _expect_operands(operands, 0, mnemonic, line_no)
        return Instruction(op=Op.BIS, ra=31, rb=31, rc=31)

    if mnemonic == "mov":
        _expect_operands(operands, 2, mnemonic, line_no)
        src = _parse_reg(operands[0], line_no)
        dst = _parse_reg(operands[1], line_no)
        return Instruction(op=Op.BIS, ra=src, rb=src, rc=dst)

    if mnemonic == "clr":
        _expect_operands(operands, 1, mnemonic, line_no)
        dst = _parse_reg(operands[0], line_no)
        return Instruction(op=Op.BIS, ra=31, rb=31, rc=dst)

    if mnemonic in _OPERATE_OPS:
        _expect_operands(operands, 3, mnemonic, line_no)
        ra = _parse_reg(operands[0], line_no)
        rc = _parse_reg(operands[2], line_no)
        op = _OPERATE_OPS[mnemonic]
        literal = _try_parse_literal(operands[1])
        if literal is not None:
            if not 0 <= literal <= 255:
                raise AssemblerError(
                    "literal %d out of range 0..255" % literal, line_no
                )
            return Instruction(
                op=op, ra=ra, rc=rc, is_literal=True, literal=literal
            )
        rb = _parse_reg(operands[1], line_no)
        return Instruction(op=op, ra=ra, rb=rb, rc=rc)

    if mnemonic in _MEMORY_OPS:
        _expect_operands(operands, 2, mnemonic, line_no)
        ra = _parse_reg(operands[0], line_no)
        disp, rb = _parse_mem_operand(operands[1], labels, line_no)
        return Instruction(op=_MEMORY_OPS[mnemonic], ra=ra, rb=rb, disp=disp)

    if mnemonic in _BRANCH_OPS:
        op = _BRANCH_OPS[mnemonic]
        if op in (Op.BR, Op.BSR) and len(operands) == 1:
            ra = REG_ZERO if op == Op.BR else REG_RA
            target = operands[0]
        else:
            _expect_operands(operands, 2, mnemonic, line_no)
            ra = _parse_reg(operands[0], line_no)
            target = operands[1]
        disp = _branch_disp(target, stmt.address, labels, line_no)
        return Instruction(op=op, ra=ra, disp=disp)

    if mnemonic in ("jmp", "jsr", "ret"):
        op = {"jmp": Op.JMP, "jsr": Op.JSR, "ret": Op.RET}[mnemonic]
        if mnemonic == "ret" and len(operands) == 1:
            ra, base_text = REG_ZERO, operands[0]
        elif mnemonic == "ret" and not operands:
            ra, base_text = REG_ZERO, "(ra)"
        else:
            _expect_operands(operands, 2, mnemonic, line_no)
            ra, base_text = _parse_reg(operands[0], line_no), operands[1]
        rb = _parse_jump_base(base_text, line_no)
        return Instruction(op=op, ra=ra, rb=rb)

    raise AssemblerError("unknown mnemonic %r" % mnemonic, line_no)


def _expect_operands(operands, count, mnemonic, line_no):
    if len(operands) != count:
        raise AssemblerError(
            "%s expects %d operands, got %d" % (mnemonic, count, len(operands)),
            line_no,
        )


def _parse_reg(text, line_no):
    name = text.strip().lower()
    if name in _REG_ALIASES:
        return _REG_ALIASES[name]
    if name.startswith("r") and name[1:].isdigit():
        number = int(name[1:])
        if 0 <= number < 32:
            return number
    raise AssemblerError("bad register %r" % text, line_no)


def _try_parse_literal(text):
    text = text.strip()
    if text.startswith("#"):
        text = text[1:]
    try:
        return int(text, 0)
    except ValueError:
        return None


def _parse_mem_operand(text, labels, line_no):
    text = text.strip()
    match = _MEM_OPERAND_RE.match(text)
    if match:
        disp_text = (match.group(1) or "0").strip()
        base = _parse_reg(match.group(2), line_no)
    else:
        disp_text, base = text, REG_ZERO
    disp = _resolve_value(disp_text, labels, line_no)
    disp = sext(disp, 16) if -(1 << 15) <= disp < (1 << 16) else disp
    if not -(1 << 15) <= disp <= (1 << 15) - 1:
        raise AssemblerError("displacement %d out of range" % disp, line_no)
    return disp, base


def _parse_jump_base(text, line_no):
    text = text.strip()
    if text.startswith("(") and text.endswith(")"):
        text = text[1:-1]
    return _parse_reg(text, line_no)


def _branch_disp(target, pc, labels, line_no):
    value = _resolve_value(target.strip(), labels, line_no)
    delta = value - (pc + 4)
    if delta % 4:
        raise AssemblerError("branch target %r not word aligned" % target, line_no)
    disp = delta // 4
    if not -(1 << 20) <= disp <= (1 << 20) - 1:
        raise AssemblerError("branch target %r out of range" % target, line_no)
    return disp


def _resolve_value(text, labels, line_no):
    text = text.strip()
    if text in labels:
        return labels[text]
    try:
        return int(text, 0)
    except ValueError:
        raise AssemblerError("unresolved symbol %r" % text, line_no)


def _write_word(program, address, word):
    quad_addr = address & ~7
    quad = program.image.get(quad_addr, 0)
    if address & 4:
        quad = (quad & 0xFFFFFFFF) | ((word & 0xFFFFFFFF) << 32)
    else:
        quad = (quad & ~0xFFFFFFFF & MASK64) | (word & 0xFFFFFFFF)
    program.image[quad_addr] = quad
