"""Alpha-inspired 64-bit integer ISA subset.

The paper's processor executes a subset of the Alpha ISA (no floating
point, no synchronizing memory operations).  This package defines an
Alpha-inspired fixed-width 32-bit encoding with the same four instruction
formats (PAL, memory, branch, operate), 32 x 64-bit integer registers with
``r31 == 0``, a two-pass assembler, and pure-functional operation
semantics shared by the functional and pipeline simulators.
"""

from repro.isa.assembler import Program, assemble
from repro.isa.disassembler import disassemble
from repro.isa.encoding import decode, encode
from repro.isa.instruction import Instruction
from repro.isa.opcodes import (
    NUM_REGS,
    REG_RA,
    REG_SP,
    REG_ZERO,
    FuClass,
    Op,
    PalFunc,
)

__all__ = [
    "Program",
    "assemble",
    "disassemble",
    "decode",
    "encode",
    "Instruction",
    "NUM_REGS",
    "REG_RA",
    "REG_SP",
    "REG_ZERO",
    "FuClass",
    "Op",
    "PalFunc",
]
