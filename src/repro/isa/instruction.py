"""The decoded-instruction value type shared by both simulators."""

from dataclasses import dataclass

from repro.isa.opcodes import (
    COND_BRANCH_OPS,
    CONTROL_OPS,
    LOAD_OPS,
    MEM_OPS,
    OUTPUT_OPS,
    PAL_OPS,
    REG_ZERO,
    STORE_OPS,
    UNCOND_BRANCH_OPS,
    JUMP_OPS,
    Op,
    fu_class,
    op_mnemonic,
)

# Register the PAL output convention reads (Alpha a0-style argument reg).
PAL_ARG_REG = 16


@dataclass(frozen=True)
class Instruction:
    """A decoded instruction.

    ``ra``/``rb``/``rc`` follow the Alpha field conventions; unused fields
    are ``REG_ZERO``.  ``literal`` is the 8-bit operate-format literal and
    is only meaningful when ``is_literal`` is set.  ``disp`` is the
    sign-extended displacement (bytes for memory format, instruction words
    for branch format).  ``raw`` is the 32-bit encoding this instruction
    was decoded from (or encodes to).
    """

    op: Op
    ra: int = REG_ZERO
    rb: int = REG_ZERO
    rc: int = REG_ZERO
    is_literal: bool = False
    literal: int = 0
    disp: int = 0
    raw: int = 0

    # -- Classification ----------------------------------------------------

    @property
    def is_load(self):
        return self.op in LOAD_OPS

    @property
    def is_store(self):
        return self.op in STORE_OPS

    @property
    def is_mem(self):
        return self.op in MEM_OPS

    @property
    def is_cond_branch(self):
        return self.op in COND_BRANCH_OPS

    @property
    def is_uncond_branch(self):
        return self.op in UNCOND_BRANCH_OPS

    @property
    def is_jump(self):
        return self.op in JUMP_OPS

    @property
    def is_control(self):
        return self.op in CONTROL_OPS

    @property
    def is_pal(self):
        return self.op in PAL_OPS

    @property
    def is_output(self):
        return self.op in OUTPUT_OPS

    @property
    def is_halt(self):
        return self.op == Op.HALT

    @property
    def is_invalid(self):
        return self.op == Op.INVALID

    @property
    def fu(self):
        return fu_class(self.op)

    # -- Register usage ----------------------------------------------------

    @property
    def dest(self):
        """Architectural destination register, or ``None``.

        Writes to r31 are architectural no-ops and report no destination.
        """
        op = self.op
        if op in (Op.LDA, Op.LDAH) or op in LOAD_OPS:
            reg = self.ra
        elif op in UNCOND_BRANCH_OPS or op in JUMP_OPS:
            reg = self.ra  # link register (pc + 4)
        elif op in STORE_OPS or op in COND_BRANCH_OPS or op in PAL_OPS:
            return None
        elif op == Op.INVALID:
            return None
        else:  # operate format
            reg = self.rc
        if reg == REG_ZERO:
            return None
        return reg

    @property
    def srcs(self):
        """Architectural source registers (r31 reads are omitted)."""
        op = self.op
        regs = []
        if op in (Op.LDA, Op.LDAH) or op in LOAD_OPS:
            regs = [self.rb]
        elif op in STORE_OPS:
            regs = [self.ra, self.rb]
        elif op in COND_BRANCH_OPS:
            regs = [self.ra]
        elif op in JUMP_OPS:
            regs = [self.rb]
        elif op in UNCOND_BRANCH_OPS:
            regs = []
        elif op in OUTPUT_OPS:
            regs = [PAL_ARG_REG]
        elif op in PAL_OPS or op == Op.INVALID:
            regs = []
        else:  # operate format
            regs = [self.ra] if self.is_literal else [self.ra, self.rb]
        return [r for r in regs if r != REG_ZERO]

    # -- Rendering ----------------------------------------------------------

    @property
    def mnemonic(self):
        return op_mnemonic(self.op)

    def branch_target(self, pc):
        """Target of a PC-relative control transfer located at ``pc``."""
        return (pc + 4 + 4 * self.disp) & ((1 << 64) - 1)
