"""Pure-functional operation semantics.

Both the functional (architectural) simulator and the pipeline model's
execution units evaluate operations through this module, guaranteeing the
two layers agree instruction-for-instruction -- the property the
co-simulation integration tests check.

All evaluation functions are *total*: any ``Op`` (including one produced
by a bit-flipped control word) yields a defined result or a defined
exception code, never a Python error.
"""

import enum

from repro.isa.opcodes import Op
from repro.utils.bits import MASK32, MASK64, sext, to_signed


class Exc(enum.IntEnum):
    """Architectural exception causes (paper's ``except`` failure mode)."""

    NONE = 0
    INVALID_INSN = 1  # undecodable instruction word reached execution
    DIV_ZERO = 2  # integer divide/remainder by zero
    UNALIGNED = 3  # misaligned memory access


def operate(op, a, b):
    """Evaluate a (non-memory, non-control) operation.

    ``a`` and ``b`` are unsigned 64-bit operand values (``b`` is the
    zero-extended literal for literal-form instructions).  Returns
    ``(result, exc)`` with ``result`` an unsigned 64-bit value.
    """
    handler = _OPERATE_TABLE.get(op)
    if handler is None:
        return 0, Exc.INVALID_INSN
    return handler(a, b)


def cond_taken(op, a):
    """Direction of a conditional branch given its ``ra`` operand value.

    Unconditional transfers report taken; non-control ops report
    not-taken (a corrupted control word claiming branch-ness resolves to
    a defined direction).
    """
    sa = to_signed(a)
    if op == Op.BEQ:
        return a == 0
    if op == Op.BNE:
        return a != 0
    if op == Op.BLT:
        return sa < 0
    if op == Op.BGE:
        return sa >= 0
    if op == Op.BLE:
        return sa <= 0
    if op == Op.BGT:
        return sa > 0
    if op == Op.BLBC:
        return (a & 1) == 0
    if op == Op.BLBS:
        return (a & 1) == 1
    if op in (Op.BR, Op.BSR, Op.JMP, Op.JSR, Op.RET):
        return True
    return False


def effective_address(base, disp):
    """Memory-format effective address: base register + displacement."""
    return (base + disp) & MASK64


def check_alignment(address, size):
    """Return ``Exc.UNALIGNED`` when ``address`` is not ``size``-aligned."""
    if address % size:
        return Exc.UNALIGNED
    return Exc.NONE


# ---------------------------------------------------------------------------
# Operate-format evaluation table
# ---------------------------------------------------------------------------


def _ok(value):
    return value & MASK64, Exc.NONE


def _addq(a, b):
    return _ok(a + b)


def _subq(a, b):
    return _ok(a - b)


def _addl(a, b):
    return _ok(sext((a + b) & MASK32, 32))


def _subl(a, b):
    return _ok(sext((a - b) & MASK32, 32))


def _cmpeq(a, b):
    return _ok(1 if a == b else 0)


def _cmplt(a, b):
    return _ok(1 if to_signed(a) < to_signed(b) else 0)


def _cmple(a, b):
    return _ok(1 if to_signed(a) <= to_signed(b) else 0)


def _cmpult(a, b):
    return _ok(1 if a < b else 0)


def _cmpule(a, b):
    return _ok(1 if a <= b else 0)


def _and(a, b):
    return _ok(a & b)


def _bic(a, b):
    return _ok(a & ~b)


def _bis(a, b):
    return _ok(a | b)


def _ornot(a, b):
    return _ok(a | (~b & MASK64))


def _xor(a, b):
    return _ok(a ^ b)


def _eqv(a, b):
    return _ok(a ^ (~b & MASK64))


def _sll(a, b):
    return _ok(a << (b & 63))


def _srl(a, b):
    return _ok(a >> (b & 63))


def _sra(a, b):
    return _ok(to_signed(a) >> (b & 63))


def _mull(a, b):
    return _ok(sext((a * b) & MASK32, 32))


def _mulq(a, b):
    return _ok(a * b)


def _umulh(a, b):
    return _ok((a * b) >> 64)


def _divq(a, b):
    if b == 0:
        return 0, Exc.DIV_ZERO
    sa, sb = to_signed(a), to_signed(b)
    quotient = abs(sa) // abs(sb)
    if (sa < 0) != (sb < 0):
        quotient = -quotient
    return _ok(quotient)


def _remq(a, b):
    if b == 0:
        return 0, Exc.DIV_ZERO
    sa, sb = to_signed(a), to_signed(b)
    remainder = abs(sa) % abs(sb)
    if sa < 0:
        remainder = -remainder
    return _ok(remainder)


_OPERATE_TABLE = {
    Op.ADDQ: _addq,
    Op.SUBQ: _subq,
    Op.ADDL: _addl,
    Op.SUBL: _subl,
    Op.CMPEQ: _cmpeq,
    Op.CMPLT: _cmplt,
    Op.CMPLE: _cmple,
    Op.CMPULT: _cmpult,
    Op.CMPULE: _cmpule,
    Op.AND: _and,
    Op.BIC: _bic,
    Op.BIS: _bis,
    Op.ORNOT: _ornot,
    Op.XOR: _xor,
    Op.EQV: _eqv,
    Op.SLL: _sll,
    Op.SRL: _srl,
    Op.SRA: _sra,
    Op.MULL: _mull,
    Op.MULQ: _mulq,
    Op.UMULH: _umulh,
    Op.DIVQ: _divq,
    Op.REMQ: _remq,
}
