"""Opcode and function-code tables for the Alpha-inspired ISA subset.

Four encoding formats, mirroring the Alpha architecture:

* ``PAL``      -- opcode 0x00; 26-bit PALcode function (HALT and the
                  output pseudo-syscalls used as the software-visible
                  communication boundary in Section 5 of the paper).
* ``MEMORY``   -- opcode, ra, rb, 16-bit signed displacement
                  (loads, stores, LDA/LDAH, and JMP-class transfers).
* ``BRANCH``   -- opcode, ra, 21-bit signed word displacement.
* ``OPERATE``  -- opcode, ra, rb-or-literal, 7-bit function code, rc.

Opcode numbers follow the Alpha manual where the subset overlaps it
(LDA=0x08, LDQ=0x29, BEQ=0x39, INTA=0x10, ...), so real-Alpha intuition
transfers; unimplemented opcodes decode to an invalid-instruction marker
that raises an exception at retirement (one of the paper's ``except``
failure modes).
"""

import enum

NUM_REGS = 32
REG_ZERO = 31  # r31 always reads as zero, writes are discarded
REG_RA = 26  # conventional return-address register
REG_GP = 29
REG_SP = 30


class Format(enum.Enum):
    """Instruction encoding format."""

    PAL = "pal"
    MEMORY = "memory"
    BRANCH = "branch"
    OPERATE = "operate"
    JUMP = "jump"  # memory format, disp[15:14] = hint


class FuClass(enum.IntEnum):
    """Function-unit class an operation executes on (paper Figure 2)."""

    SIMPLE = 0  # 2 simple ALUs, 1-cycle
    COMPLEX = 1  # 1 complex ALU, 2-5 cycles
    BRANCH = 2  # 1 branch ALU
    AGEN = 3  # 2 address-generation units (memory ops)
    NONE = 4  # PAL / no execution needed


class Op(enum.IntEnum):
    """Canonical operation identifiers (post-decode).

    The 8-bit value of each member is the ``op_id`` stored in pipeline
    control words, so a bit flip in a latched control word re-decodes to a
    *different but well-defined* operation -- exactly the "incorrect (but
    valid) instruction" behaviour behind the paper's ``ctrl`` failures.
    """

    INVALID = 0
    # PAL
    HALT = 1
    PUTC = 2
    PUTQ = 3
    PAL_NOP = 4
    # Loads / stores / address literals
    LDA = 8
    LDAH = 9
    LDL = 10
    LDQ = 11
    STL = 12
    STQ = 13
    # Integer arithmetic (simple)
    ADDQ = 16
    SUBQ = 17
    ADDL = 18
    SUBL = 19
    CMPEQ = 20
    CMPLT = 21
    CMPLE = 22
    CMPULT = 23
    CMPULE = 24
    # Logical (simple)
    AND = 32
    BIC = 33
    BIS = 34
    ORNOT = 35
    XOR = 36
    EQV = 37
    # Shifts (simple)
    SLL = 40
    SRL = 41
    SRA = 42
    # Multiply / divide (complex ALU)
    MULL = 48
    MULQ = 49
    UMULH = 50
    DIVQ = 51
    REMQ = 52
    # Control transfers
    BR = 64
    BSR = 65
    BEQ = 66
    BNE = 67
    BLT = 68
    BGE = 69
    BLE = 70
    BGT = 71
    BLBC = 72
    BLBS = 73
    JMP = 80
    JSR = 81
    RET = 82


# ---------------------------------------------------------------------------
# Primary opcode table: opcode -> (format, mnemonic-or-resolver)
# ---------------------------------------------------------------------------

OPC_PAL = 0x00
OPC_LDA = 0x08
OPC_LDAH = 0x09
OPC_INTA = 0x10
OPC_INTL = 0x11
OPC_INTS = 0x12
OPC_INTM = 0x13
OPC_JUMP = 0x1A
OPC_LDL = 0x28
OPC_LDQ = 0x29
OPC_STL = 0x2C
OPC_STQ = 0x2D
OPC_BR = 0x30
OPC_BSR = 0x34
OPC_BLBC = 0x38
OPC_BEQ = 0x39
OPC_BLT = 0x3A
OPC_BLE = 0x3B
OPC_BLBS = 0x3C
OPC_BNE = 0x3D
OPC_BGE = 0x3E
OPC_BGT = 0x3F

MEMORY_OPCODES = {
    OPC_LDA: Op.LDA,
    OPC_LDAH: Op.LDAH,
    OPC_LDL: Op.LDL,
    OPC_LDQ: Op.LDQ,
    OPC_STL: Op.STL,
    OPC_STQ: Op.STQ,
}

BRANCH_OPCODES = {
    OPC_BR: Op.BR,
    OPC_BSR: Op.BSR,
    OPC_BLBC: Op.BLBC,
    OPC_BEQ: Op.BEQ,
    OPC_BLT: Op.BLT,
    OPC_BLE: Op.BLE,
    OPC_BLBS: Op.BLBS,
    OPC_BNE: Op.BNE,
    OPC_BGE: Op.BGE,
    OPC_BGT: Op.BGT,
}

# Operate-format function codes per primary opcode (Alpha numbering where
# the subset overlaps the real ISA).
OPERATE_FUNCS = {
    OPC_INTA: {
        0x00: Op.ADDL,
        0x09: Op.SUBL,
        0x20: Op.ADDQ,
        0x29: Op.SUBQ,
        0x2D: Op.CMPEQ,
        0x4D: Op.CMPLT,
        0x6D: Op.CMPLE,
        0x1D: Op.CMPULT,
        0x3D: Op.CMPULE,
    },
    OPC_INTL: {
        0x00: Op.AND,
        0x08: Op.BIC,
        0x20: Op.BIS,
        0x28: Op.ORNOT,
        0x40: Op.XOR,
        0x48: Op.EQV,
    },
    OPC_INTS: {
        0x39: Op.SLL,
        0x34: Op.SRL,
        0x3C: Op.SRA,
    },
    OPC_INTM: {
        0x00: Op.MULL,
        0x20: Op.MULQ,
        0x30: Op.UMULH,
        0x40: Op.DIVQ,
        0x48: Op.REMQ,
    },
}

JUMP_HINTS = {
    0: Op.JMP,
    1: Op.JSR,
    2: Op.RET,
    3: Op.JMP,  # coroutine hint treated as plain JMP
}


class PalFunc(enum.IntEnum):
    """PALcode function codes (the model's syscall surface)."""

    HALT = 0x00
    NOP = 0x01
    PUTC = 0x02  # emit chr(r16 & 0xff) to the output stream
    PUTQ = 0x03  # emit decimal rendering of r16 plus newline


PAL_FUNCS = {
    PalFunc.HALT: Op.HALT,
    PalFunc.NOP: Op.PAL_NOP,
    PalFunc.PUTC: Op.PUTC,
    PalFunc.PUTQ: Op.PUTQ,
}

# ---------------------------------------------------------------------------
# Per-operation static properties
# ---------------------------------------------------------------------------

LOAD_OPS = frozenset({Op.LDL, Op.LDQ})
STORE_OPS = frozenset({Op.STL, Op.STQ})
MEM_OPS = LOAD_OPS | STORE_OPS
COND_BRANCH_OPS = frozenset(
    {Op.BEQ, Op.BNE, Op.BLT, Op.BGE, Op.BLE, Op.BGT, Op.BLBC, Op.BLBS}
)
UNCOND_BRANCH_OPS = frozenset({Op.BR, Op.BSR})
JUMP_OPS = frozenset({Op.JMP, Op.JSR, Op.RET})
CONTROL_OPS = COND_BRANCH_OPS | UNCOND_BRANCH_OPS | JUMP_OPS
CALL_OPS = frozenset({Op.BSR, Op.JSR})
RETURN_OPS = frozenset({Op.RET})
PAL_OPS = frozenset({Op.HALT, Op.PUTC, Op.PUTQ, Op.PAL_NOP})
COMPLEX_OPS = frozenset({Op.MULL, Op.MULQ, Op.UMULH, Op.DIVQ, Op.REMQ})
OUTPUT_OPS = frozenset({Op.PUTC, Op.PUTQ})

# Complex-ALU latencies (paper: "1 complex ALU (2-5 cycles)").
COMPLEX_LATENCY = {
    Op.MULL: 2,
    Op.MULQ: 3,
    Op.UMULH: 3,
    Op.DIVQ: 5,
    Op.REMQ: 5,
}


def fu_class(op):
    """Return the function-unit class an operation executes on."""
    if op in COMPLEX_OPS:
        return FuClass.COMPLEX
    if op in CONTROL_OPS:
        return FuClass.BRANCH
    if op in MEM_OPS:
        return FuClass.AGEN
    if op in PAL_OPS:
        return FuClass.NONE
    return FuClass.SIMPLE


def op_mnemonic(op):
    """Lower-case assembly mnemonic for an operation."""
    special = {
        Op.HALT: "halt",
        Op.PUTC: "putc",
        Op.PUTQ: "putq",
        Op.PAL_NOP: "palnop",
        Op.INVALID: ".invalid",
    }
    if op in special:
        return special[op]
    return Op(op).name.lower()
