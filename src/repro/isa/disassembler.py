"""Instruction-word disassembly for traces, debugging and reports."""

from repro.isa.encoding import decode
from repro.isa.instruction import Instruction
from repro.isa.opcodes import Op


def disassemble(word_or_insn, pc=None):
    """Render an instruction word (or decoded ``Instruction``) as text.

    When ``pc`` is given, PC-relative branch targets are rendered as
    absolute hex addresses.
    """
    if isinstance(word_or_insn, Instruction):
        insn = word_or_insn
    else:
        insn = decode(word_or_insn)

    op = insn.op
    if op == Op.INVALID:
        return ".invalid 0x%08x" % insn.raw
    if insn.is_pal:
        return insn.mnemonic
    if insn.is_mem:
        return "%-6s r%d, %d(r%d)" % (insn.mnemonic, insn.ra, insn.disp, insn.rb)
    if insn.is_jump:
        return "%-6s r%d, (r%d)" % (insn.mnemonic, insn.ra, insn.rb)
    if insn.is_control:  # PC-relative branch
        if pc is not None:
            target = "0x%x" % insn.branch_target(pc)
        else:
            target = ".%+d" % (4 * insn.disp)
        return "%-6s r%d, %s" % (insn.mnemonic, insn.ra, target)
    if insn.is_literal:
        return "%-6s r%d, #%d, r%d" % (
            insn.mnemonic,
            insn.ra,
            insn.literal,
            insn.rc,
        )
    return "%-6s r%d, r%d, r%d" % (insn.mnemonic, insn.ra, insn.rb, insn.rc)
