"""Binary encode/decode for the four instruction formats.

``decode`` is *total*: any 32-bit pattern decodes to some ``Instruction``
(unknown opcodes or function codes yield ``Op.INVALID``), because the
fault-injection campaigns flip bits of latched instruction words and the
pipeline must then fetch, decode and attempt to execute the result --
never crash the simulator.
"""

import functools

from repro.errors import EncodingError
from repro.isa.instruction import Instruction
from repro.isa.opcodes import (
    BRANCH_OPCODES,
    JUMP_HINTS,
    MEMORY_OPCODES,
    OPC_JUMP,
    OPC_PAL,
    OPERATE_FUNCS,
    PAL_FUNCS,
    Op,
)
from repro.utils.bits import extract, sext

_MEM_OPC_BY_OP = {op: opc for opc, op in MEMORY_OPCODES.items()}
_BR_OPC_BY_OP = {op: opc for opc, op in BRANCH_OPCODES.items()}
_OPER_CODES_BY_OP = {
    op: (opc, func)
    for opc, funcs in OPERATE_FUNCS.items()
    for func, op in funcs.items()
}
_PAL_FUNC_BY_OP = {op: int(func) for func, op in PAL_FUNCS.items()}
_JUMP_HINT_BY_OP = {Op.JMP: 0, Op.JSR: 1, Op.RET: 2}

NOP_WORD = None  # filled in below


@functools.lru_cache(maxsize=65536)
def decode(word):
    """Decode a 32-bit instruction word into an ``Instruction``.

    Total function; results are cached since pipelines re-decode hot loops
    every cycle.
    """
    word &= 0xFFFFFFFF
    opcode = extract(word, 26, 6)
    ra = extract(word, 21, 5)
    rb = extract(word, 16, 5)

    if opcode == OPC_PAL:
        func = extract(word, 0, 26)
        op = PAL_FUNCS.get(func, Op.INVALID)
        return Instruction(op=op, raw=word)

    if opcode in MEMORY_OPCODES:
        disp = sext(word, 16)
        return Instruction(
            op=MEMORY_OPCODES[opcode], ra=ra, rb=rb, disp=disp, raw=word
        )

    if opcode == OPC_JUMP:
        hint = extract(word, 14, 2)
        return Instruction(op=JUMP_HINTS[hint], ra=ra, rb=rb, raw=word)

    if opcode in BRANCH_OPCODES:
        disp = sext(word, 21)
        return Instruction(op=BRANCH_OPCODES[opcode], ra=ra, disp=disp, raw=word)

    if opcode in OPERATE_FUNCS:
        func = extract(word, 5, 7)
        op = OPERATE_FUNCS[opcode].get(func, Op.INVALID)
        if op == Op.INVALID:
            return Instruction(op=Op.INVALID, raw=word)
        rc = extract(word, 0, 5)
        if extract(word, 12, 1):
            literal = extract(word, 13, 8)
            return Instruction(
                op=op, ra=ra, rc=rc, is_literal=True, literal=literal, raw=word
            )
        return Instruction(op=op, ra=ra, rb=rb, rc=rc, raw=word)

    return Instruction(op=Op.INVALID, raw=word)


def encode(insn):
    """Encode an ``Instruction`` into its 32-bit word.

    Raises :class:`EncodingError` when a field is out of range (assembler
    errors), never for any decodable operation.
    """
    op = insn.op
    if op in _PAL_FUNC_BY_OP:
        return (OPC_PAL << 26) | _PAL_FUNC_BY_OP[op]

    if op in _MEM_OPC_BY_OP:
        opc = _MEM_OPC_BY_OP[op]
        _check_range(insn.disp, -(1 << 15), (1 << 15) - 1, "displacement")
        return (
            (opc << 26)
            | (insn.ra << 21)
            | (insn.rb << 16)
            | (insn.disp & 0xFFFF)
        )

    if op in _JUMP_HINT_BY_OP:
        hint = _JUMP_HINT_BY_OP[op]
        return (OPC_JUMP << 26) | (insn.ra << 21) | (insn.rb << 16) | (hint << 14)

    if op in _BR_OPC_BY_OP:
        opc = _BR_OPC_BY_OP[op]
        _check_range(insn.disp, -(1 << 20), (1 << 20) - 1, "branch displacement")
        return (opc << 26) | (insn.ra << 21) | (insn.disp & 0x1FFFFF)

    if op in _OPER_CODES_BY_OP:
        opc, func = _OPER_CODES_BY_OP[op]
        word = (opc << 26) | (insn.ra << 21) | (func << 5) | insn.rc
        if insn.is_literal:
            _check_range(insn.literal, 0, 255, "literal")
            word |= (insn.literal << 13) | (1 << 12)
        else:
            word |= insn.rb << 16
        return word

    raise EncodingError("cannot encode operation %r" % (op,))


def _check_range(value, lo, hi, what):
    if not lo <= value <= hi:
        raise EncodingError("%s %d out of range [%d, %d]" % (what, value, lo, hi))


# A canonical NOP: BIS r31, r31, r31.
NOP_WORD = encode(Instruction(op=Op.BIS, ra=31, rb=31, rc=31))
