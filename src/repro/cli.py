"""Command-line interface: ``repro-faults`` / ``python -m repro``.

Subcommands:

* ``inventory``  -- print the machine's Table 1 state inventory.
* ``run``        -- run a workload on the pipeline, report IPC/output.
* ``campaign``   -- run a microarchitectural injection campaign and
  print Figure 3/4-style outcome tables.
* ``software``   -- run a Section-5 software-level campaign (Figure 11).
* ``overhead``   -- print the protection-mechanism storage overheads.
* ``lint``       -- static analysis of the model itself (injectability,
  determinism, ghost isolation; see docs/LINTING.md).
* ``bench``      -- fixed micro/smoke benchmark suite tracking simulator
  throughput across revisions (see docs/PERFORMANCE.md).
* ``serve`` / ``worker`` / ``submit`` -- the distributed campaign
  fabric: run a coordinator, attach pull-based workers, submit
  fingerprinted campaigns (see docs/FABRIC.md).
* ``merge``      -- merge campaign journals/segments of one fingerprint
  into a single result document.
* ``dash``       -- live web dashboard over campaign directories and/or
  a fabric coordinator (see docs/OBSERVABILITY.md).
* ``query``      -- ingest campaign journals into the SQLite results
  store and print paper-style cross-campaign comparison tables.
"""

import argparse
import sys

from repro.analysis.report import (
    render_category_outcomes,
    render_contributions,
    render_failure_modes,
    render_inventory,
    render_latency_histogram,
    render_masking_causes,
    render_workload_outcomes,
)
from repro.inject.campaign import CampaignConfig
from repro.inject.software import SoftwareCampaign, SoftwareCampaignConfig
from repro.protect import protection_overhead_report
from repro.uarch.config import PipelineConfig, ProtectionConfig
from repro.uarch.core import Pipeline
from repro.workloads import WORKLOAD_NAMES, get_workload


def main(argv=None):
    """CLI entry point; returns a process exit code."""
    if argv is None:
        argv = sys.argv[1:]
    if argv and argv[0] == "lint":
        # Forwarded verbatim: argparse's REMAINDER cannot pass through
        # leading option tokens (e.g. ``lint --list-rules``).
        from repro.lint.cli import main as lint_main
        return lint_main(argv[1:])
    if argv and argv[0] == "bench":
        # Same verbatim forward (e.g. ``bench --check``).
        from repro.perf.bench import main as bench_main
        return bench_main(argv[1:])
    parser = build_parser()
    args = parser.parse_args(argv)
    if args.command is None:
        parser.print_help()
        return 1
    return args.handler(args)


def build_parser():
    """Construct the argparse command tree."""
    parser = argparse.ArgumentParser(
        prog="repro-faults",
        description="Transient-fault characterisation of a high-performance "
                    "pipeline (Wang et al., DSN 2004 reproduction)")
    sub = parser.add_subparsers(dest="command")

    p = sub.add_parser("inventory", help="print the Table 1 state inventory")
    p.add_argument("--protected", action="store_true",
                   help="include the Section-4 protection mechanisms")
    p.set_defaults(handler=cmd_inventory)

    p = sub.add_parser("run", help="run one workload on the pipeline")
    p.add_argument("workload", choices=WORKLOAD_NAMES)
    p.add_argument("--scale", default="tiny",
                   choices=("tiny", "small", "large"))
    p.add_argument("--max-cycles", type=int, default=2_000_000)
    p.set_defaults(handler=cmd_run)

    p = sub.add_parser("campaign", help="microarchitectural injection "
                                        "campaign (Figures 3-8)")
    p.add_argument("--workloads", nargs="*", default=list(WORKLOAD_NAMES))
    p.add_argument("--kinds", default="latch+ram",
                   choices=("latch", "latch+ram"))
    p.add_argument("--fault-model", default="single_bit", metavar="SPEC",
                   help="fault-model spec (repro.faultlib): single_bit, "
                        "multi_bit:adjacent:K, burst:array:p=P, "
                        "stuck_at:V[:lifetime=N], intermittent:P,D "
                        "(default: single_bit, the paper's model)")
    p.add_argument("--trials", type=int, default=25,
                   help="trials per start point")
    p.add_argument("--start-points", type=int, default=3)
    p.add_argument("--horizon", type=int, default=1200)
    p.add_argument("--scale", default="small",
                   choices=("tiny", "small", "large"))
    p.add_argument("--seed", type=int, default=2004)
    p.add_argument("--protected", action="store_true",
                   help="enable all four protection mechanisms")
    p.add_argument("--paper-scale", action="store_true",
                   help="the paper's 25-30k trial scale (very slow)")
    p.add_argument("--parallel", type=int, default=1, metavar="N",
                   help="schedule trial units across N worker processes")
    p.add_argument("--dir", metavar="PATH", dest="campaign_dir",
                   help="campaign directory: journal every finished trial "
                        "(crash-resumable) and write metrics.json there")
    p.add_argument("--resume", metavar="PATH",
                   help="resume a journaled campaign directory, skipping "
                        "already-completed trials")
    p.add_argument("--batch-size", type=int, default=None, metavar="N",
                   help="trials per scheduling quantum (default: auto)")
    p.add_argument("--batch", type=int, default=1, metavar="N",
                   help="bit-plane lanes per batched trial group "
                        "(execution strategy only: results and journals "
                        "are byte-identical for any N, and N is not part "
                        "of the campaign fingerprint; see "
                        "docs/PERFORMANCE.md)")
    p.add_argument("--trial-timeout", type=float, default=None, metavar="S",
                   help="kill and retry a worker stuck on one trial for "
                        "more than S seconds")
    p.add_argument("--chaos", metavar="SPEC",
                   help="harness chaos testing: fire seeded harness "
                        "faults (kill, stall, tear, io, cache, sigterm, "
                        "sigint as 'kind[:count][@at]' tokens) during the "
                        "campaign and auto-resume through each crash; "
                        "requires --dir (see docs/RUNNER.md)")
    p.add_argument("--repair", action="store_true",
                   help="repair a corrupt journal in --dir/--resume: "
                        "truncate at the last checksummed-valid line "
                        "(asks for confirmation; dropped trials are "
                        "recomputed on resume)")
    p.add_argument("--yes", action="store_true",
                   help="skip the --repair confirmation prompt")
    p.add_argument("--save", metavar="PATH",
                   help="write the trial results to a JSON file")
    p.add_argument("--provenance", action="store_true",
                   help="track fault propagation per trial (masking "
                        "causes, first-read latency; observation-only)")
    p.add_argument("--profile", action="store_true",
                   help="per-stage wall-clock profiling; prints a "
                        "campaign-wide hot-path report")
    p.set_defaults(handler=cmd_campaign)

    p = sub.add_parser("software", help="software-level campaign "
                                        "(Figure 11)")
    p.add_argument("--workloads", nargs="*", default=list(WORKLOAD_NAMES))
    p.add_argument("--trials", type=int, default=12,
                   help="trials per fault model per workload")
    p.add_argument("--seed", type=int, default=500)
    p.add_argument("--save", metavar="PATH",
                   help="write the trial results to a JSON file")
    p.set_defaults(handler=cmd_software)

    p = sub.add_parser("overhead", help="protection storage overheads "
                                        "(Section 4.3)")
    p.set_defaults(handler=cmd_overhead)

    p = sub.add_parser(
        "trace",
        help="replay one campaign trial with full event tracing "
             "(--start-point), or run a workload with occupancy tracing")
    p.add_argument("workload", choices=WORKLOAD_NAMES)
    p.add_argument("--cycles", type=int, default=2000)
    p.add_argument("--log", type=int, default=20,
                   help="retirement-log lines to print")
    p.add_argument("--start-point", type=int, default=None, metavar="N",
                   help="replay the campaign trial injected at start "
                        "point N (switches to trial-replay mode)")
    p.add_argument("--trial-index", type=int, default=0, metavar="I",
                   help="which trial of the start point to replay")
    p.add_argument("--seed", type=int, default=2004,
                   help="campaign seed the trial belongs to")
    p.add_argument("--scale", default="small",
                   choices=("tiny", "small", "large"))
    p.add_argument("--kinds", default="latch+ram",
                   choices=("latch", "latch+ram"))
    p.add_argument("--fault-model", default="single_bit", metavar="SPEC",
                   help="fault-model spec of the campaign being "
                        "replayed (repro.faultlib); default single_bit")
    p.add_argument("--horizon", type=int, default=1200)
    p.add_argument("--warmup", type=int, default=1200, metavar="CYCLES")
    p.add_argument("--spacing", type=int, default=400, metavar="CYCLES")
    p.add_argument("--margin", type=int, default=400, metavar="CYCLES")
    p.add_argument("--protected", action="store_true",
                   help="replay against the protected machine")
    p.add_argument("--limit", type=int, default=80, metavar="N",
                   help="timeline events to print (most recent N)")
    p.add_argument("--events", nargs="*", default=None, metavar="KIND",
                   help="only show these event kinds (e.g. retire flush)")
    p.add_argument("--profile", action="store_true",
                   help="also print the per-stage wall-clock profile")
    p.set_defaults(handler=cmd_trace)

    p = sub.add_parser("avf", help="occupancy-based AVF proxy per "
                                   "structure (cf. Section 3.3)")
    p.add_argument("--workloads", nargs="*", default=["gzip", "mcf"])
    p.add_argument("--cycles", type=int, default=2000)
    p.set_defaults(handler=cmd_avf)

    p = sub.add_parser("serve", help="run a fabric coordinator serving "
                                     "campaign leases to workers")
    p.add_argument("--dir", metavar="PATH", dest="fabric_dir", required=True,
                   help="base directory: each campaign's journal and "
                        "metrics live in <dir>/<fingerprint12>/")
    p.add_argument("--host", default="127.0.0.1")
    p.add_argument("--port", type=int, default=8100)
    p.add_argument("--ttl", type=float, default=None, metavar="S",
                   help="lease time-to-live between heartbeats "
                        "(default 30s)")
    p.add_argument("--shard-size", type=int, default=None, metavar="N",
                   help="trials per lease (default 4)")
    p.add_argument("--tenant-quota", type=int, default=None, metavar="N",
                   help="max concurrent leases per tenant (default 4)")
    p.add_argument("--status-interval", type=float, default=10.0,
                   metavar="S", help="seconds between status lines")
    p.set_defaults(handler=cmd_serve)

    p = sub.add_parser("worker", help="attach a fabric worker to a "
                                      "coordinator and execute leases")
    p.add_argument("--connect", metavar="HOST:PORT", required=True)
    p.add_argument("--name", default=None,
                   help="worker name in leases and telemetry "
                        "(default worker-<pid>)")
    p.add_argument("--processes", type=int, default=1, metavar="N",
                   help="local processes per leased range (1 = inline)")
    p.add_argument("--max-leases", type=int, default=None, metavar="N",
                   help="exit after serving N leases")
    p.add_argument("--exit-when-idle", action="store_true",
                   help="exit once the coordinator has no work to lease")
    p.add_argument("--spool-dir", metavar="PATH", default=None,
                   help="durably spool each completed segment here "
                        "before transmitting it")
    p.add_argument("--chaos", metavar="SPEC", default=None,
                   help="seeded network chaos: drop, dup, partition as "
                        "'kind[:count][@at]' tokens keyed to this "
                        "worker's nth lease (see docs/FABRIC.md)")
    p.add_argument("--chaos-seed", type=int, default=2004,
                   help="seed for unanchored --chaos trigger points")
    p.set_defaults(handler=cmd_worker)

    p = sub.add_parser("submit", help="submit a campaign to a fabric "
                                      "coordinator")
    p.add_argument("--connect", metavar="HOST:PORT", required=True)
    p.add_argument("--tenant", default="default")
    p.add_argument("--shard-size", type=int, default=None, metavar="N",
                   help="trials per lease for this campaign")
    p.add_argument("--watch", action="store_true",
                   help="poll the coordinator until the campaign is done")
    p.add_argument("--workloads", nargs="*", default=list(WORKLOAD_NAMES))
    p.add_argument("--kinds", default="latch+ram",
                   choices=("latch", "latch+ram"))
    p.add_argument("--fault-model", default="single_bit", metavar="SPEC",
                   help="fault-model spec (repro.faultlib); "
                        "default single_bit")
    p.add_argument("--trials", type=int, default=25,
                   help="trials per start point")
    p.add_argument("--start-points", type=int, default=3)
    p.add_argument("--horizon", type=int, default=1200)
    p.add_argument("--scale", default="small",
                   choices=("tiny", "small", "large"))
    p.add_argument("--seed", type=int, default=2004)
    p.add_argument("--protected", action="store_true",
                   help="enable all four protection mechanisms")
    p.add_argument("--paper-scale", action="store_true",
                   help="the paper's 25-30k trial scale (very slow)")
    p.set_defaults(handler=cmd_submit)

    p = sub.add_parser("merge", help="merge campaign journals/segments of "
                                     "one fingerprint into one result")
    p.add_argument("inputs", nargs="+", metavar="DIR_OR_JOURNAL",
                   help="campaign directories (their journal.jsonl) "
                        "and/or journal/segment files")
    p.add_argument("--save", metavar="PATH",
                   help="write the merged uarch-campaign JSON here")
    p.set_defaults(handler=cmd_merge)

    p = sub.add_parser("dash", help="live web dashboard over campaign "
                                    "dirs and/or a fabric coordinator")
    p.add_argument("dirs", nargs="*", metavar="DIR",
                   help="campaign directories to tail (a fabric base "
                        "directory works too: each child with a journal "
                        "is tailed)")
    p.add_argument("--connect", metavar="HOST:PORT", default=None,
                   help="also poll this fabric coordinator's /status")
    p.add_argument("--host", default="127.0.0.1")
    p.add_argument("--port", type=int, default=8111)
    p.add_argument("--interval", type=float, default=2.0, metavar="S",
                   help="seconds between refresh ticks (default 2)")
    p.add_argument("--db", metavar="PATH", default=":memory:",
                   help="persist the ingested results store here "
                        "(default: in-memory, discarded on exit)")
    p.set_defaults(handler=cmd_dash)

    p = sub.add_parser("query", help="cross-campaign tables from the "
                                     "results store")
    p.add_argument("--db", metavar="PATH", default=":memory:",
                   help="results-store database (default: in-memory -- "
                        "then --ingest is how data gets in)")
    p.add_argument("--ingest", action="append", default=[],
                   metavar="DIR_OR_JOURNAL",
                   help="ingest this campaign directory (or journal/"
                        "segment file) before querying; repeatable")
    p.add_argument("--by", default="category",
                   choices=("category", "workload", "element",
                            "fault_model"),
                   help="grouping axis of the outcome tables "
                        "(default: category, the paper's per-structure "
                        "breakdown; fault_model also prints the "
                        "per-structure fault-model comparison)")
    p.add_argument("--campaigns", nargs="*", default=None,
                   metavar="PREFIX",
                   help="restrict to these campaigns (fingerprint "
                        "prefix or label); default: all ingested")
    p.add_argument("--list", action="store_true",
                   help="only print the ingested-campaign inventory")
    p.add_argument("--masking", action="store_true",
                   help="also print per-campaign masking-cause tables")
    p.add_argument("--latency", action="store_true",
                   help="also print latency-to-failure histograms")
    p.set_defaults(handler=cmd_query)

    p = sub.add_parser("lint", add_help=False,
                       help="static analysis: injectability, determinism, "
                            "ghost isolation (REP001-REP007)")
    p.add_argument("lint_args", nargs=argparse.REMAINDER,
                   help="arguments forwarded to repro.lint "
                        "(see 'repro-faults lint --help')")
    p.set_defaults(handler=cmd_lint)

    p = sub.add_parser("bench", add_help=False,
                       help="fixed micro/smoke benchmark suite; writes "
                            "BENCH_<rev>.json (see docs/PERFORMANCE.md)")
    p.add_argument("bench_args", nargs=argparse.REMAINDER,
                   help="arguments forwarded to repro.perf.bench "
                        "(see 'repro-faults bench --help')")
    p.set_defaults(handler=cmd_bench)
    return parser


def cmd_inventory(args):
    """Print the Table 1 state inventory."""
    protection = ProtectionConfig.full() if args.protected \
        else ProtectionConfig.none()
    workload = get_workload("gzip", scale="tiny")
    pipeline = Pipeline(workload.program, PipelineConfig.paper(protection))
    print(render_inventory(pipeline.space.inventory(),
                           "State inventory (cf. paper Table 1)"))
    print("total injectable bits:", pipeline.eligible_bits())
    return 0


def cmd_run(args):
    """Run one workload on the pipeline and report IPC."""
    workload = get_workload(args.workload, scale=args.scale)
    pipeline = Pipeline(workload.program)
    pipeline.run(args.max_cycles)
    ipc = pipeline.total_retired / max(1, pipeline.cycle_count)
    print("workload : %s (%s)" % (workload.name, workload.profile))
    print("cycles   : %d" % pipeline.cycle_count)
    print("retired  : %d  (IPC %.2f)" % (pipeline.total_retired, ipc))
    print("halted   : %s" % pipeline.halted)
    print("output   : %r" % pipeline.output_text()[:200])
    return 0


def cmd_campaign(args):
    """Run a microarchitectural campaign; print tables."""
    protection = ProtectionConfig.full() if args.protected \
        else ProtectionConfig.none()
    from repro.errors import CampaignDrained, ReproError
    try:
        if args.paper_scale:
            config = CampaignConfig.paper(
                workloads=tuple(args.workloads), kinds=args.kinds,
                seed=args.seed, protection=protection,
                provenance=args.provenance, profile=args.profile,
                fault_model=args.fault_model)
        else:
            config = CampaignConfig(
                workloads=tuple(args.workloads), kinds=args.kinds,
                trials_per_start_point=args.trials,
                start_points_per_workload=args.start_points,
                horizon=args.horizon, scale=args.scale, seed=args.seed,
                protection=protection, provenance=args.provenance,
                profile=args.profile, fault_model=args.fault_model)
    except ReproError as error:
        sys.stderr.write("error: %s\n" % error)
        return 2
    from repro.runner import CampaignRunner
    directory = args.resume or args.campaign_dir
    if args.repair:
        return _cmd_repair_journal(directory, assume_yes=args.yes)
    if args.chaos and not directory:
        sys.stderr.write(
            "error: --chaos requires --dir (recovery is the thing under "
            "test, and resume requires a journal)\n")
        return 2
    renderer = _ProgressRenderer()
    runner = None
    try:
        if args.chaos:
            result = _run_chaos(args, config, directory, renderer)
        else:
            runner = CampaignRunner(
                config, workers=args.parallel, directory=directory,
                batch_size=args.batch_size, batch_lanes=args.batch,
                trial_timeout=args.trial_timeout,
                progress=renderer, require_journal=bool(args.resume))
            result = runner.run()
    except CampaignDrained as drained:
        renderer.finish()
        sys.stderr.write("%s\n" % drained)
        import signal as signal_module
        return 128 + int(getattr(signal_module.Signals,
                                 drained.signal_name, 15))
    except KeyboardInterrupt:
        renderer.finish()  # complete the live line before the verdict
        if directory:
            sys.stderr.write(
                "interrupted; finished trials are journaled -- rerun with "
                "--resume %s to continue\n" % directory)
        else:
            sys.stderr.write(
                "interrupted (no --dir given: progress was not journaled)\n")
        return 130
    except ReproError as error:
        renderer.finish()
        sys.stderr.write("error: %s\n" % error)
        return 2
    renderer.finish()
    if args.save:
        from repro.inject.store import save_result
        save_result(result, args.save)
        print("results written to %s" % args.save)
    print(render_workload_outcomes(
        result.trials, "Outcomes by benchmark (cf. Figure 3)"))
    print()
    print(render_category_outcomes(
        result.trials, "Outcomes by state category (cf. Figures 4/5/9)"))
    print()
    print(render_failure_modes(
        result.trials, "Failure modes (cf. Figure 7)"))
    print()
    print(render_contributions(
        result.trials, "Failure contributions (cf. Figures 8/10)"))
    print()
    masking = render_masking_causes(
        result.trials, "Masking causes of benign trials (provenance)")
    if masking is not None:
        print(masking)
        print()
    latency = render_latency_histogram(
        result.trials, "Latency to failure detection (cycles)")
    if latency is not None:
        print(latency)
        print()
    profile = runner.profile_report() if runner is not None else None
    if profile is not None:
        print(profile)
        print()
    print("eligible bits: %d   elapsed: %.1fs"
          % (result.eligible_bits, result.elapsed_seconds))
    return 0


def _run_chaos(args, config, directory, renderer):
    """Run a campaign under ``--chaos``, printing the fault log."""
    from repro.chaos import ChaosSchedule, run_chaos_campaign
    chaos = ChaosSchedule.from_spec(args.chaos, config)
    result, restarts = run_chaos_campaign(
        config, directory, chaos, workers=args.parallel,
        batch_size=args.batch_size, batch_lanes=args.batch,
        trial_timeout=args.trial_timeout, progress=renderer)
    renderer.finish()
    sys.stderr.write("chaos: %d fault(s) scheduled, %d restart(s)\n%s\n"
                     % (len(chaos.events), restarts, chaos.render()))
    return result


def _cmd_repair_journal(directory, assume_yes=False):
    """``campaign --repair``: truncate a journal at the last valid line."""
    from repro.runner.journal import journal_path, repair_journal
    if not directory:
        sys.stderr.write("error: --repair requires --dir or --resume\n")
        return 2
    path = journal_path(directory)
    try:
        kept, dropped, offset = repair_journal(path, dry_run=True)
    except OSError as error:
        sys.stderr.write("error: cannot read %s: %s\n" % (path, error))
        return 2
    if not dropped:
        print("%s: every line passes its checksum; nothing to repair"
              % path)
        return 0
    print("%s: %d valid line(s), then %d invalid line(s)"
          % (path, kept, dropped))
    print("repair truncates the file to %d bytes; the dropped trials "
          "are recomputed on the next --resume run" % offset)
    if not assume_yes:
        answer = input("truncate? [y/N] ").strip().lower()
        if answer not in ("y", "yes"):
            print("journal left untouched")
            return 1
    repair_journal(path)
    print("truncated %s at byte %d (%d line(s) dropped)"
          % (path, offset, dropped))
    return 0


def cmd_software(args):
    """Run a Section-5 software campaign (Figure 11)."""
    config = SoftwareCampaignConfig(
        workloads=tuple(args.workloads),
        trials_per_model_per_workload=args.trials, seed=args.seed)
    result = SoftwareCampaign(config).run(progress=_progress)
    sys.stderr.write("\n")
    if args.save:
        from repro.inject.store import save_result
        save_result(result, args.save)
        print("results written to %s" % args.save)
    from repro.inject.software import ALL_FAULT_MODELS, SoftwareOutcome
    from repro.utils.tables import format_table
    headers = ["fault model", "n"] + [o.value for o in SoftwareOutcome] \
        + ["stateok_diverged%"]
    rows = []
    for model in ALL_FAULT_MODELS:
        counts = result.outcome_counts(model)
        total = sum(counts.values())
        row = [model.value, total]
        row += [100.0 * counts[o] / total if total else 0.0
                for o in SoftwareOutcome]
        row.append(100.0 * result.state_ok_divergence_rate(model))
        rows.append(row)
    print(format_table(headers, rows,
                       title="Software fault models (cf. Figure 11), %"))
    return 0


def cmd_overhead(args):
    """Print protection storage overheads (Section 4.3)."""
    workload = get_workload("gzip", scale="tiny")
    pipeline = Pipeline(workload.program,
                        PipelineConfig.paper(ProtectionConfig.full()))
    report = protection_overhead_report(pipeline)
    for key, value in report.items():
        if isinstance(value, float):
            print("%-26s %.3f" % (key, value))
        else:
            print("%-26s %d" % (key, value))
    return 0


def cmd_trace(args):
    """Trace: replay one campaign trial, or occupancy timelines."""
    if args.start_point is not None:
        return _cmd_trace_trial(args)
    from repro.uarch.trace import (
        PipelineTracer,
        retirement_log,
        rob_window,
        structure_snapshot,
    )

    workload = get_workload(args.workload, scale="small")
    pipeline = Pipeline(workload.program)
    tracer = PipelineTracer(sample_every=2).attach(pipeline)
    pipeline.run(args.cycles)
    tracer.detach()
    print(structure_snapshot(pipeline))
    for structure in ("rob", "sched", "fetchq", "lq", "sq"):
        print(tracer.occupancy_timeline(structure))
    print("window IPC: %.2f" % tracer.ipc())
    print()
    print("oldest in-flight instructions:")
    print(rob_window(pipeline, limit=8))
    print()
    print("next retirements:")
    print(retirement_log(pipeline, 200, limit=args.log))
    return 0


def _cmd_trace_trial(args):
    """Replay one campaign trial and print its propagation timeline."""
    from repro.errors import ReproError
    from repro.obs.replay import replay_trial

    protection = ProtectionConfig.full() if args.protected \
        else ProtectionConfig.none()
    try:
        result = replay_trial(
            args.workload, args.start_point,
            trial_index=args.trial_index, profile=args.profile,
            seed=args.seed, scale=args.scale, kinds=args.kinds,
            horizon=args.horizon, warmup_cycles=args.warmup,
            spacing_cycles=args.spacing, margin=args.margin,
            protection=protection, fault_model=args.fault_model)
    except ReproError as error:
        sys.stderr.write("error: %s\n" % error)
        return 2
    kinds = tuple(args.events) if args.events else None
    print(result.render(limit=args.limit, kinds=kinds))
    return 0


def cmd_avf(args):
    """Print per-structure occupancy (AVF proxy, Section 3.3)."""
    from repro.analysis.avf import estimate_avf
    from repro.utils.tables import format_table

    rows = []
    for name in args.workloads:
        workload = get_workload(name, scale="small")
        pipeline = Pipeline(workload.program)
        pipeline.run(1000)
        estimate = estimate_avf(pipeline, args.cycles)
        for structure, value in sorted(estimate.occupancy.items()):
            rows.append([name, structure, value])
    print(format_table(["workload", "structure", "occupancy proxy"], rows,
                       title="AVF occupancy proxy (cf. paper Section 3.3)"))
    return 0


def _parse_connect(text):
    """``HOST:PORT`` -> ``(host, port)``; exits with code 2 on nonsense."""
    host, separator, port_text = text.rpartition(":")
    if not separator or not port_text.isdigit():
        sys.stderr.write("error: --connect wants HOST:PORT, got %r\n"
                         % text)
        raise SystemExit(2)
    return host or "127.0.0.1", int(port_text)


def _submit_config(args):
    """The :class:`CampaignConfig` described by ``submit`` flags."""
    protection = ProtectionConfig.full() if args.protected \
        else ProtectionConfig.none()
    if args.paper_scale:
        return CampaignConfig.paper(
            workloads=tuple(args.workloads), kinds=args.kinds,
            seed=args.seed, protection=protection,
            fault_model=args.fault_model)
    return CampaignConfig(
        workloads=tuple(args.workloads), kinds=args.kinds,
        trials_per_start_point=args.trials,
        start_points_per_workload=args.start_points,
        horizon=args.horizon, scale=args.scale, seed=args.seed,
        protection=protection, fault_model=args.fault_model)


def cmd_serve(args):
    """Run a fabric coordinator until ``/shutdown`` (or Ctrl-C)."""
    import repro.fabric as fabric
    try:
        fabric.serve(
            args.fabric_dir, host=args.host, port=args.port,
            ttl=args.ttl if args.ttl is not None
            else fabric.DEFAULT_TTL_SECONDS,
            shard_size=args.shard_size if args.shard_size is not None
            else fabric.DEFAULT_SHARD_SIZE,
            quota=args.tenant_quota if args.tenant_quota is not None
            else fabric.DEFAULT_QUOTA,
            status_interval=args.status_interval)
    except KeyboardInterrupt:
        sys.stderr.write("coordinator stopped; campaign journals under "
                         "%s are resumable\n" % args.fabric_dir)
        return 130
    except OSError as error:
        sys.stderr.write("error: cannot serve on %s:%d: %s\n"
                         % (args.host, args.port, error))
        return 2
    return 0


def cmd_worker(args):
    """Attach one fabric worker to a coordinator."""
    import asyncio

    from repro.errors import ReproError
    from repro.fabric import FabricWorker, NetChaosSchedule
    host, port = _parse_connect(args.connect)
    chaos = None
    if args.chaos:
        try:
            chaos = NetChaosSchedule.from_spec(args.chaos, args.chaos_seed)
        except ReproError as error:
            sys.stderr.write("error: %s\n" % error)
            return 2
    worker = FabricWorker(
        host, port, name=args.name, processes=args.processes,
        chaos=chaos, max_leases=args.max_leases,
        exit_when_idle=args.exit_when_idle, spool_dir=args.spool_dir,
        echo=lambda text: sys.stderr.write(text + "\n"))
    try:
        stats = asyncio.run(worker.run())
    except KeyboardInterrupt:
        sys.stderr.write("worker stopped; unfinished leases expire and "
                         "are re-run elsewhere\n")
        return 130
    except ReproError as error:
        sys.stderr.write("error: %s\n" % error)
        return 2
    print("worker %s: %d lease(s), %d trial(s)"
          % (worker.name, stats["leases"], stats["trials"]))
    if chaos is not None:
        sys.stderr.write("chaos:\n%s\n" % chaos.render())
    return 0


def cmd_submit(args):
    """Submit (and optionally watch) a campaign on a coordinator."""
    import time

    from repro.errors import ReproError
    from repro.fabric import call_sync, render_status
    from repro.inject.store import config_to_dict
    host, port = _parse_connect(args.connect)
    config = _submit_config(args)
    payload = {"tenant": args.tenant, "config": config_to_dict(config)}
    if args.shard_size is not None:
        payload["shard_size"] = args.shard_size
    try:
        reply = call_sync(host, port, "/submit", payload)
    except (OSError, ReproError) as error:
        sys.stderr.write("error: submit to %s:%d failed: %s\n"
                         % (host, port, error))
        return 2
    print("campaign %s (%d trials in %d range(s)) -> tenant %s, "
          "journal %s%s"
          % (reply["fingerprint"][:12], reply["total_units"],
             reply["ranges"], reply["tenant"], reply["directory"],
             " [already complete]" if reply["done"] else ""))
    if not args.watch or reply["done"]:
        return 0
    short = reply["fingerprint"][:12]
    while True:
        # repro-lint: allow=REP002 (poll pacing for a human watcher;
        # no simulation path involved)
        time.sleep(2.0)
        try:
            status = call_sync(host, port, "/status", {})
        except (OSError, ReproError) as error:
            sys.stderr.write("error: status poll failed: %s\n" % error)
            return 2
        sys.stderr.write(render_status(status) + "\n")
        campaign = (status.get("campaigns") or {}).get(short)
        if campaign is not None and campaign.get("done"):
            print("campaign %s complete" % short)
            return 0


def cmd_merge(args):
    """Merge campaign journals/segments of one fingerprint."""
    import json
    import os

    from repro.errors import ReproError
    from repro.inject.store import campaign_from_dict, merge_campaign_dicts
    from repro.runner.journal import campaign_dict_from_journal, journal_path
    documents = []
    try:
        for given in args.inputs:
            path = journal_path(given) if os.path.isdir(given) else given
            documents.append(campaign_dict_from_journal(path))
        merged = merge_campaign_dicts(documents)
    except (OSError, ReproError) as error:
        sys.stderr.write("error: %s\n" % error)
        return 2
    if args.save:
        with open(args.save, "w") as handle:
            json.dump(merged, handle, indent=1)
        print("merged result written to %s" % args.save)
    result = campaign_from_dict(merged)
    print("merged %d input(s): %d unique trial(s) of fingerprint %s"
          % (len(documents), len(result.trials),
             merged["fingerprint"][:12]))
    print()
    print(render_workload_outcomes(
        result.trials, "Outcomes by benchmark (merged)"))
    return 0


def cmd_dash(args):
    """Serve the live dashboard (``repro-faults dash``)."""
    from repro.dash import run_dash
    connect = _parse_connect(args.connect) if args.connect else None
    if not args.dirs and connect is None:
        sys.stderr.write("error: nothing to watch -- give campaign DIRs "
                         "to tail and/or --connect HOST:PORT\n")
        return 2
    try:
        run_dash(directories=args.dirs, connect=connect, host=args.host,
                 port=args.port, interval=args.interval, db_path=args.db)
    except OSError as error:
        sys.stderr.write("error: cannot serve on %s:%d: %s\n"
                         % (args.host, args.port, error))
        return 2
    return 0


def cmd_query(args):
    """Ingest into the results store and print comparison tables."""
    import sqlite3

    from repro.errors import ReproError
    from repro.store import (
        ResultsStore,
        render_campaign_list,
        render_store_fault_models,
        render_store_latency,
        render_store_masking,
        render_store_outcomes,
    )
    try:
        store = ResultsStore(args.db)
    except (OSError, sqlite3.Error) as error:
        sys.stderr.write("error: cannot open %s: %s\n" % (args.db, error))
        return 2
    with store:
        try:
            for source in args.ingest:
                sys.stderr.write(store.ingest(source).render() + "\n")
            if not store.campaigns():
                sys.stderr.write(
                    "error: the store is empty -- ingest campaign "
                    "directories with --ingest\n")
                return 2
            fingerprints = None
            if args.campaigns:
                fingerprints = [store.resolve(prefix)["fingerprint"]
                                for prefix in args.campaigns]
            print(render_campaign_list(store))
            if args.list:
                return 0
            print()
            print(render_store_outcomes(store, by=args.by,
                                        fingerprints=fingerprints))
            if args.by == "fault_model":
                # The headline cross-model view: failure rate per
                # structure (category), one column per fault model.
                print()
                print(render_store_fault_models(
                    store, fingerprints=fingerprints))
            if args.masking:
                masking = render_store_masking(store,
                                               fingerprints=fingerprints)
                print()
                print(masking if masking is not None else
                      "(no masking data: no selected campaign ran with "
                      "--provenance)")
            if args.latency:
                latency = render_store_latency(store,
                                               fingerprints=fingerprints)
                print()
                print(latency if latency is not None else
                      "(no latency data: no detected failures in the "
                      "selected campaigns)")
        except (OSError, ReproError) as error:
            sys.stderr.write("error: %s\n" % error)
            return 2
    return 0


def cmd_lint(args):
    """Run the repro.lint static-analysis pass over the tree."""
    from repro.lint.cli import main as lint_main
    return lint_main(args.lint_args)


def cmd_bench(args):
    """Run the fixed benchmark suite (repro.perf.bench)."""
    from repro.perf.bench import main as bench_main
    return bench_main(args.bench_args)


class _ProgressRenderer:
    """Live one-line campaign telemetry on stderr.

    Receives :class:`~repro.runner.telemetry.TelemetrySnapshot` values
    from the engine (percent, trials/sec, ETA, outcome mix) and redraws
    a single ``\\r`` status line.  :meth:`finish` terminates the line
    with a newline and flushes -- called on success *and* on SIGINT so
    an interrupt never leaves a partial line swallowing the verdict.
    """

    def __init__(self, stream=None):
        self._stream = stream if stream is not None else sys.stderr
        self._dirty = False

    def __call__(self, snapshot):
        self._stream.write("\r" + snapshot.render() + "  ")
        self._stream.flush()
        self._dirty = True

    def finish(self):
        if self._dirty:
            self._stream.write("\n")
            self._stream.flush()
            self._dirty = False


def _progress(done, total):
    if done % 20 == 0 or done == total:
        sys.stderr.write("\r%d/%d trials" % (done, total))
        sys.stderr.flush()


if __name__ == "__main__":
    sys.exit(main())
