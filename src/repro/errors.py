"""Exception hierarchy for the repro package.

Simulator-internal faults (a corrupted bit propagating through the pipeline
model) must never raise Python exceptions -- defensive masking is built into
the model itself.  The exceptions here cover *user* errors: malformed
assembly, invalid configuration, and misuse of the public API.
"""


class ReproError(Exception):
    """Base class for all errors raised by the repro package."""


class AssemblerError(ReproError):
    """Raised when assembly source cannot be assembled.

    Carries the offending line number when available.
    """

    def __init__(self, message, line=None):
        if line is not None:
            message = "line %d: %s" % (line, message)
        super().__init__(message)
        self.line = line


class EncodingError(ReproError):
    """Raised when an instruction cannot be encoded into 32 bits."""


class ConfigError(ReproError):
    """Raised when a simulator or campaign configuration is invalid."""


class SimulationError(ReproError):
    """Raised on misuse of a simulator API (not by injected faults)."""


class CampaignError(ReproError):
    """Raised when a fault-injection campaign is misconfigured."""


class FabricError(ReproError):
    """Raised on fabric protocol violations or rejected coordinator calls.

    Covers malformed requests, unknown campaigns/leases, checksum
    mismatches on returned segments, and non-200 replies surfaced to a
    client.  Transport-level failures (a dead coordinator) raise the
    underlying ``OSError`` instead -- they are retryable, a
    ``FabricError`` generally is not.
    """


class CampaignDrained(CampaignError):
    """Raised after a graceful SIGTERM/SIGINT drain stopped a campaign.

    The engine stopped dispatching, let in-flight trials finish (or
    time out), fsynced the journal and exited -- the campaign directory
    is resumable.  ``signal_name`` names the signal that requested the
    drain.
    """

    def __init__(self, signal_name, directory=None):
        self.signal_name = signal_name
        self.directory = directory
        where = " (resume with --resume %s)" % directory if directory \
            else " (no --dir given: unfinished trials were not journaled)"
        super().__init__(
            "campaign drained after %s%s" % (signal_name, where))
