"""Sparse quadword-granular memory with page tracking.

Memory is a dict from 8-byte-aligned addresses to 64-bit values; absent
addresses read as zero.  Page tracking records which 4KB virtual pages a
fault-free execution touches -- the paper preloads its TLBs with exactly
those pages, so during injected trials an access outside the recorded set
is an itlb/dtlb failure.
"""

from repro.utils.bits import MASK32, MASK64, sext

PAGE_SIZE = 4096
_PAGE_SHIFT = 12


def page_of(address):
    """4KB page number of a byte address."""
    return (address & MASK64) >> _PAGE_SHIFT


# Undo-journal marker for "address was absent before the first store".
_ABSENT = object()


class Memory:
    """Sparse 64-bit memory image.

    With copy-on-write tracking armed (:meth:`cow_begin`), every store
    journals the address's prior contents on first touch, so
    :meth:`cow_restore` rolls the image back to the baseline in
    O(stores since baseline) instead of the pipeline re-copying the
    whole dict per trial.  Tracking is opt-in (``_undo`` stays None for
    functional-simulator memories) and loads never pay for it.
    """

    __slots__ = ("quads", "touched_pages", "track_pages", "_undo")

    def __init__(self, image=None, track_pages=False):
        self.quads = dict(image) if image else {}
        self.track_pages = track_pages
        self.touched_pages = set()
        self._undo = None

    def copy(self, track_pages=False):
        """An independent copy (page tracking state is not copied)."""
        return Memory(self.quads, track_pages=track_pages)

    # -- Copy-on-write baseline ---------------------------------------------

    def cow_begin(self):
        """Start journaling stores against the current contents."""
        if self._undo is None:
            self._undo = {}
        else:
            self._undo.clear()

    def cow_restore(self):
        """Roll the image back to the :meth:`cow_begin` baseline."""
        quads = self.quads
        for address, value in self._undo.items():
            if value is _ABSENT:
                quads.pop(address, None)
            else:
                quads[address] = value
        self._undo.clear()

    # -- Quadword (8-byte) access -------------------------------------------

    def load_quad(self, address):
        address &= MASK64 & ~7
        if self.track_pages:
            self.touched_pages.add(address >> _PAGE_SHIFT)
        return self.quads.get(address, 0)

    def store_quad(self, address, value):
        address &= MASK64 & ~7
        if self.track_pages:
            self.touched_pages.add(address >> _PAGE_SHIFT)
        undo = self._undo
        if undo is not None and address not in undo:
            undo[address] = self.quads.get(address, _ABSENT)
        self.quads[address] = value & MASK64

    # -- Longword (4-byte) access ---------------------------------------------

    def load_long(self, address):
        """Load a 32-bit value, sign-extended to 64 bits (Alpha LDL)."""
        quad = self.load_quad(address)
        if address & 4:
            quad >>= 32
        return sext(quad & MASK32, 32) & MASK64

    def store_long(self, address, value):
        quad_addr = address & MASK64 & ~7
        quad = self.load_quad(quad_addr)
        if address & 4:
            quad = (quad & 0xFFFFFFFF) | ((value & MASK32) << 32)
        else:
            quad = (quad & ~0xFFFFFFFF & MASK64) | (value & MASK32)
        self.store_quad(quad_addr, quad)

    # -- Instruction fetch ------------------------------------------------------

    def fetch_word(self, address):
        """Fetch the 32-bit instruction word at (4-byte aligned) ``address``."""
        quad = self.load_quad(address)
        if address & 4:
            return (quad >> 32) & 0xFFFFFFFF
        return quad & 0xFFFFFFFF

    # -- Comparison support ----------------------------------------------------

    def content_signature(self):
        """An order-independent hash of non-zero memory contents."""
        total = 0
        for address, value in self.quads.items():
            if value:
                total ^= hash((address, value))
        return total

    def differs_from(self, other):
        """True when any address holds different (non-zero) contents."""
        for address, value in self.quads.items():
            if value != other.quads.get(address, 0):
                return True
        for address, value in other.quads.items():
            if value and address not in self.quads:
                return True
        return False
