"""Program-visible architectural state: registers, PC, memory."""

from repro.isa.opcodes import NUM_REGS, REG_ZERO
from repro.utils.bits import MASK64


class ArchState:
    """Architectural state: 32 x 64-bit registers, PC, and a memory image.

    This is the state the paper verifies against the golden model --
    "program-visible state such as memory, registers, and program
    counter" (Section 2.2).
    """

    __slots__ = ("regs", "pc", "memory")

    def __init__(self, memory, pc=0):
        self.regs = [0] * NUM_REGS
        self.pc = pc & MASK64
        self.memory = memory

    def read_reg(self, index):
        index &= 31
        if index == REG_ZERO:
            return 0
        return self.regs[index]

    def write_reg(self, index, value):
        index &= 31
        if index != REG_ZERO:
            self.regs[index] = value & MASK64

    def reg_signature(self):
        """Hashable snapshot of the register file (r31 normalised to 0)."""
        return tuple(self.regs[:REG_ZERO]) + (0,)

    def signature(self):
        """Hash of the complete architectural state (regs, pc, memory)."""
        return hash(
            (self.reg_signature(), self.pc, self.memory.content_signature())
        )

    def copy(self):
        clone = ArchState(self.memory.copy(), pc=self.pc)
        clone.regs = list(self.regs)
        return clone
