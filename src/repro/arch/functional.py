"""Instruction-at-a-time functional simulator.

This fills the role of SimpleScalar's functional simulator in the paper
(Section 5): it provides golden architectural executions and the
substrate into which the six software-level fault models are injected.

The simulator is deliberately forgiving of *injected* weirdness -- an
instruction corrupted into an invalid encoding raises an architectural
exception (halting the run with ``exception`` set), mirroring how real
hardware traps, and never raises a Python error.
"""

import enum
from dataclasses import dataclass
from typing import Optional

from repro.arch.memory import Memory, page_of
from repro.arch.state import ArchState
from repro.isa.encoding import decode
from repro.isa.instruction import PAL_ARG_REG, Instruction
from repro.isa.opcodes import Op, REG_ZERO
from repro.isa.semantics import (
    Exc,
    check_alignment,
    cond_taken,
    effective_address,
    operate,
)
from repro.utils.bits import MASK64, to_signed


class SoftwareFaultKind(enum.Enum):
    """The six software-level fault models of paper Section 5 / Figure 11."""

    RESULT_BIT32 = "reg-bit-flip-32"  # (1) flip one of the low 32 result bits
    RESULT_BIT64 = "reg-bit-flip-64"  # (2) flip one of all 64 result bits
    RESULT_RANDOM = "reg-random-64"  # (3) replace result with 64 random bits
    INSN_BIT = "insn-bit-flip"  # (4) flip one bit of the instruction word
    TO_NOP = "insn-to-nop"  # (5) replace the instruction with a NOP
    FLIP_BRANCH = "branch-flip"  # (6) force a conditional branch the other way


@dataclass
class SoftwareFault:
    """A fault directive applied to exactly one dynamic instruction."""

    kind: SoftwareFaultKind
    bit: int = 0  # for the bit-flip models
    random_value: int = 0  # for RESULT_RANDOM


@dataclass
class StepInfo:
    """What one :meth:`FunctionalSimulator.step` did."""

    pc: int
    insn: Instruction
    exception: Exc = Exc.NONE
    halted: bool = False
    syscall: bool = False  # an output PAL call (external communication)
    branch_taken: Optional[bool] = None
    dest: Optional[int] = None
    result: Optional[int] = None
    mem_write: Optional[tuple] = None  # (address, value, size)


class FunctionalSimulator:
    """Executes a :class:`~repro.isa.assembler.Program` architecturally."""

    def __init__(self, program, track_pages=False):
        self.program = program
        memory = Memory(program.image, track_pages=track_pages)
        self.state = ArchState(memory, pc=program.entry)
        self.output = []
        self.halted = False
        self.exception = Exc.NONE
        self.instret = 0  # retired dynamic instruction count
        # Pages executed from; with track_pages also records data pages
        # via the Memory object.
        self.insn_pages = set()
        self.track_pages = track_pages

    # -- Convenience views -----------------------------------------------------

    @property
    def memory(self):
        return self.state.memory

    def output_text(self):
        return "".join(self.output)

    # -- Execution ---------------------------------------------------------------

    def run(self, max_instructions):
        """Run until HALT, an exception, or ``max_instructions`` retire.

        Returns the number of instructions executed in this call.
        """
        executed = 0
        while not self.halted and executed < max_instructions:
            self.step()
            executed += 1
        return executed

    def step(self, fault=None):
        """Execute one instruction, optionally applying a software fault.

        Returns a :class:`StepInfo` record.  After HALT or an exception the
        simulator is ``halted`` and further steps are no-ops.
        """
        if self.halted:
            return StepInfo(pc=self.state.pc, insn=Instruction(op=Op.HALT),
                            halted=True)

        state = self.state
        pc = state.pc
        if self.track_pages:
            self.insn_pages.add(page_of(pc))

        word = state.memory.fetch_word(pc)
        if fault is not None and fault.kind == SoftwareFaultKind.INSN_BIT:
            word ^= 1 << (fault.bit & 31)
        insn = decode(word)
        if fault is not None and fault.kind == SoftwareFaultKind.TO_NOP:
            insn = Instruction(op=Op.BIS, ra=REG_ZERO, rb=REG_ZERO, rc=REG_ZERO)

        info = self._execute(pc, insn, fault)
        self.instret += 1
        return info

    # -- Internals ----------------------------------------------------------------

    def _execute(self, pc, insn, fault):
        state = self.state
        op = insn.op
        info = StepInfo(pc=pc, insn=insn)
        next_pc = (pc + 4) & MASK64

        if op == Op.INVALID:
            return self._raise(info, Exc.INVALID_INSN)

        if insn.is_pal:
            if op == Op.HALT:
                self.halted = True
                info.halted = True
                return info
            if op == Op.PUTC:
                self.output.append(chr(state.read_reg(PAL_ARG_REG) & 0xFF))
                info.syscall = True
            elif op == Op.PUTQ:
                self.output.append(
                    "%d\n" % to_signed(state.read_reg(PAL_ARG_REG))
                )
                info.syscall = True
            state.pc = next_pc
            return info

        if insn.is_mem:
            return self._execute_mem(info, insn, next_pc, fault)

        if insn.is_control:
            return self._execute_control(info, insn, pc, next_pc, fault)

        if op in (Op.LDA, Op.LDAH):
            base = state.read_reg(insn.rb)
            scale = 65536 if op == Op.LDAH else 1
            result = (base + insn.disp * scale) & MASK64
            return self._writeback(info, insn.ra, result, next_pc, fault)

        # Operate format.
        a = state.read_reg(insn.ra)
        b = insn.literal if insn.is_literal else state.read_reg(insn.rb)
        result, exc = operate(op, a, b)
        if exc != Exc.NONE:
            return self._raise(info, exc)
        return self._writeback(info, insn.rc, result, next_pc, fault)

    def _execute_mem(self, info, insn, next_pc, fault):
        state = self.state
        size = 4 if insn.op in (Op.LDL, Op.STL) else 8
        address = effective_address(state.read_reg(insn.rb), insn.disp)
        exc = check_alignment(address, size)
        if exc != Exc.NONE:
            return self._raise(info, exc)

        if insn.is_load:
            if size == 4:
                value = state.memory.load_long(address)
            else:
                value = state.memory.load_quad(address)
            return self._writeback(info, insn.ra, value, next_pc, fault)

        value = state.read_reg(insn.ra)
        if size == 4:
            state.memory.store_long(address, value)
        else:
            state.memory.store_quad(address, value)
        info.mem_write = (address, value & MASK64, size)
        state.pc = next_pc
        return info

    def _execute_control(self, info, insn, pc, next_pc, fault):
        state = self.state
        op = insn.op

        if insn.is_jump:
            target = state.read_reg(insn.rb) & ~3 & MASK64
            if insn.ra != REG_ZERO:
                self._apply_result(info, insn.ra, next_pc, fault)
            state.pc = target
            info.branch_taken = True
            return info

        taken = cond_taken(op, state.read_reg(insn.ra))
        if (
            fault is not None
            and fault.kind == SoftwareFaultKind.FLIP_BRANCH
            and insn.is_cond_branch
        ):
            taken = not taken
        if op in (Op.BR, Op.BSR) and insn.ra != REG_ZERO:
            self._apply_result(info, insn.ra, next_pc, fault)
        state.pc = insn.branch_target(pc) if taken else next_pc
        info.branch_taken = taken
        return info

    def _writeback(self, info, dest, result, next_pc, fault):
        self._apply_result(info, dest, result, fault)
        self.state.pc = next_pc
        return info

    def _apply_result(self, info, dest, result, fault):
        """Write a register result, applying result-corrupting fault models."""
        if fault is not None and dest != REG_ZERO:
            kind = fault.kind
            if kind == SoftwareFaultKind.RESULT_BIT32:
                result ^= 1 << (fault.bit & 31)
            elif kind == SoftwareFaultKind.RESULT_BIT64:
                result ^= 1 << (fault.bit & 63)
            elif kind == SoftwareFaultKind.RESULT_RANDOM:
                result = fault.random_value & MASK64
        self.state.write_reg(dest, result)
        info.dest = dest if dest != REG_ZERO else None
        info.result = result & MASK64 if dest != REG_ZERO else None

    def _raise(self, info, exc):
        info.exception = exc
        self.exception = exc
        self.halted = True
        info.halted = True
        return info
