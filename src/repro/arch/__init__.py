"""Architectural layer: sparse memory, register state, functional simulator.

The functional simulator plays the role SimpleScalar's ``sim-fast`` plays
in the paper: the golden architectural reference for the pipeline model,
and the substrate for the Section-5 software-level fault injections.
"""

from repro.arch.functional import FunctionalSimulator, SoftwareFault, StepInfo
from repro.arch.memory import PAGE_SIZE, Memory
from repro.arch.state import ArchState

__all__ = [
    "FunctionalSimulator",
    "SoftwareFault",
    "StepInfo",
    "Memory",
    "PAGE_SIZE",
    "ArchState",
]
