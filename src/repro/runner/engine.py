"""The campaign execution engine.

:class:`CampaignRunner` decomposes a campaign into trial-granular work
units, executes them -- inline for one worker, across a process pool
otherwise -- and reassembles the exact serial-order
:class:`~repro.inject.campaign.CampaignResult`.  Three properties are
layered on top of the plain serial loop:

* **Determinism** -- every trial's RNG comes from the same named-split
  scheme the serial :class:`~repro.inject.campaign.Campaign` uses, so
  for a fixed config the engine's result equals ``Campaign(config)
  .run()`` trial-for-trial, for any worker count, with or without an
  interrupt and resume in the middle.
* **Durability** -- with a campaign ``directory``, every completed
  trial is appended (flushed + fsynced) to an append-only journal
  before it is counted; after a crash or SIGINT a rerun skips the
  journaled units and recomputes only the rest.
* **Robustness** -- a dead worker's unfinished units are requeued onto
  a replacement process (the pool stays alive), a worker stuck on one
  trial past ``trial_timeout`` seconds is killed and its units retried,
  and retries are bounded (a unit failing ``max_retries`` times aborts
  the campaign rather than silently dropping trials).

Observability is a progress callback receiving
:class:`~repro.runner.telemetry.TelemetrySnapshot` values plus a
``metrics.json`` snapshot in the campaign directory.
"""

import os
import time
from collections import deque

from repro.errors import CampaignError
from repro.inject.campaign import _KINDS, CampaignResult
from repro.inject.golden import workload_page_sets
from repro.inject.store import inventory_from_dict
from repro.obs import merge_profile, render_profile
from repro.runner.journal import JournalWriter, write_metrics
from repro.runner.pool import WorkerContext, WorkerPool
from repro.runner.resume import load_resume_state
from repro.runner.telemetry import Telemetry
from repro.runner.units import (
    TrialUnit,
    UnitBatch,
    auto_batch_size,
    batch_units,
    enumerate_units,
)
from repro.uarch.config import PipelineConfig
from repro.uarch.core import Pipeline
from repro.workloads import get_workload

__all__ = ["CampaignRunner", "run_campaign"]


def run_campaign(config, pipeline_config=None, workers=None, directory=None,
                 progress=None, **options):
    """Run ``config`` on the engine; returns a ``CampaignResult``."""
    return CampaignRunner(config, pipeline_config, workers=workers,
                          directory=directory, progress=progress,
                          **options).run()


def _take_batch(queue, worker):
    """Pop the next batch for ``worker``, preferring start-point affinity.

    A worker that has already paid for a ``(workload, start_point)``
    checkpoint and golden trace should keep consuming that group's
    batches; any queued batch is still eligible for any worker, so this
    only reduces redundant preparation, never stalls the pool.
    """
    if worker.group is not None:
        for position, (batch_id, batch) in enumerate(queue):
            if (batch.workload, batch.start_point) == worker.group:
                del queue[position]
                return batch_id, batch
    return queue.popleft()


class CampaignRunner:
    """Durable, trial-granular campaign execution."""

    def __init__(self, config, pipeline_config=None, workers=None,
                 directory=None, batch_size=None, trial_timeout=None,
                 max_retries=2, progress=None, metrics_every=16,
                 poll_interval=0.05, require_journal=False, clock=None):
        self.config = config
        self.pipeline_config = pipeline_config or PipelineConfig.paper(
            config.protection)
        if workers is None:
            workers = os.cpu_count() or 1
        self.workers = max(1, min(workers, config.total_trials))
        self.directory = directory
        self.batch_size = batch_size
        self.trial_timeout = trial_timeout
        self.max_retries = max_retries
        self.progress = progress
        self.metrics_every = metrics_every
        self.poll_interval = poll_interval
        self.require_journal = require_journal
        # The clock feeds stall detection and telemetry only -- never a
        # simulation path -- and is injectable for tests (REP002).
        self._clock = clock if clock is not None else time.monotonic
        self.pool = None  # the live WorkerPool while a pool run is active
        self.telemetry = None
        # Campaign-wide per-stage profile, merged across workers (only
        # populated when config.profile is on).
        self.profile_totals = {}
        self.profile_calls = {}

    # ------------------------------------------------------------------

    def run(self):
        """Execute (or finish) the campaign; returns a ``CampaignResult``."""
        config = self.config
        units = enumerate_units(config)
        resume = load_resume_state(self.directory, config,
                                   require_journal=self.require_journal)
        results = dict(resume.trials)
        # Drop journaled units outside the current sweep (can only
        # happen with a hand-edited journal; fingerprinting already
        # rejects a different config).
        results = {unit: trial for unit, trial in results.items()
                   if unit in set(units)}
        pending = [unit for unit in units if unit not in results]

        telemetry = Telemetry(total=len(units), resumed=len(results),
                              clock=self._clock)
        self.telemetry = telemetry
        self._fresh_since_metrics = 0

        if resume.header:
            eligible_bits = resume.eligible_bits
            inventory = inventory_from_dict(resume.inventory_dict)
        else:
            eligible_bits, inventory = self._machine_inventory()

        journal = None
        if self.directory is not None:
            journal = JournalWriter.open(self.directory, config,
                                         eligible_bits, inventory)
        try:
            if pending:
                if self.workers > 1:
                    self._run_pool(pending, results, telemetry, journal)
                else:
                    self._run_inline(pending, results, telemetry, journal)
        finally:
            if journal is not None:
                journal.close()
            if self.directory is not None:
                write_metrics(self.directory, telemetry.snapshot().to_dict())

        return CampaignResult(
            config=config,
            trials=[results[unit] for unit in units],
            eligible_bits=eligible_bits,
            inventory=inventory,
            elapsed_seconds=telemetry.elapsed(),
        )

    # ------------------------------------------------------------------

    def _machine_inventory(self):
        """The campaign's eligible-bit count and Table 1 inventory.

        Matches the serial runner, which reads both off the first
        workload's freshly constructed pipeline (the state space is a
        function of the pipeline config alone, so any workload works).
        """
        workload = get_workload(self.config.workloads[0],
                                scale=self.config.scale)
        pipeline = Pipeline(workload.program, self.pipeline_config)
        return (pipeline.eligible_bits(_KINDS[self.config.kinds]),
                pipeline.space.inventory())

    def profile_report(self):
        """The merged per-stage hot-path table, or None when not profiled."""
        if not self.profile_totals:
            return None
        return render_profile(
            self.profile_totals, self.profile_calls,
            title="Per-stage wall-clock profile (campaign-wide)")

    def _merge_profile(self, delta):
        if delta is not None:
            merge_profile(self.profile_totals, self.profile_calls, delta)

    def _record(self, unit, trial, results, telemetry, journal,
                worker_id=0):
        """Count one completed trial: journal first, then observe."""
        results[unit] = trial
        if journal is not None:
            journal.append_trial(unit, trial)
        telemetry.record_trial(trial, worker_id=worker_id)
        self._fresh_since_metrics += 1
        if self.directory is not None \
                and self._fresh_since_metrics >= self.metrics_every:
            self._fresh_since_metrics = 0
            write_metrics(self.directory, telemetry.snapshot().to_dict())
        if self.progress is not None:
            self.progress(telemetry.snapshot())

    def _shared_page_sets(self, pending):
        """TLB-preload page sets for every workload with pending units.

        Computed once in the parent (the serial runner's total cost) and
        shared with all workers instead of being re-derived per process;
        the sets come from a deterministic fault-free functional run, so
        sharing cannot change any trial.
        """
        names = sorted({unit.workload for unit in pending})
        page_sets = {}
        for name in names:
            workload = get_workload(name, scale=self.config.scale)
            page_sets[name] = workload_page_sets(workload.program)
        return page_sets

    def _golden_dir(self):
        """The shared golden-cache directory (campaign-directory runs)."""
        if self.directory is None:
            return None
        return os.path.join(self.directory, "golden")

    def _run_inline(self, pending, results, telemetry, journal):
        """Single-worker path: same context code, no processes."""
        context = WorkerContext(self.config, self.pipeline_config,
                                golden_dir=self._golden_dir())
        telemetry.set_workers(1, 1)
        try:
            for unit in pending:
                trial = context.run_unit(unit)
                self._record(unit, trial, results, telemetry, journal)
        finally:
            self._merge_profile(context.take_profile())

    # ------------------------------------------------------------------

    def _run_pool(self, pending, results, telemetry, journal):
        """Dynamic scheduling across the worker pool."""
        batch_size = self.batch_size or auto_batch_size(
            len(pending), self.workers)
        queue = deque()
        next_batch_id = 0
        for batch in batch_units(pending, batch_size):
            queue.append((next_batch_id, batch))
            next_batch_id += 1

        outstanding = set(pending)
        retries = {}
        assignments = {}  # worker_id -> [batch_id, batch, received indices]
        pool = WorkerPool(self.config, self.pipeline_config, self.workers,
                          page_sets=self._shared_page_sets(pending),
                          golden_dir=self._golden_dir())
        self.pool = pool
        try:
            while outstanding:
                now = self._clock()
                idle = pool.idle_workers()
                while idle and queue:
                    worker = idle.pop(0)
                    batch_id, batch = _take_batch(queue, worker)
                    assignments[worker.worker_id] = [batch_id, batch, set()]
                    pool.assign(worker, batch_id, batch, now)
                telemetry.set_workers(pool.busy_count(), len(pool.workers))

                message = pool.next_message(self.poll_interval)
                now = self._clock()
                if message is not None:
                    kind, worker_id, batch_id, payload = message
                    worker = pool.by_id(worker_id)
                    if kind == "trial":
                        unit, trial = payload
                        if worker is not None:
                            worker.last_progress = now
                        assignment = assignments.get(worker_id)
                        if assignment is not None \
                                and assignment[0] == batch_id:
                            assignment[2].add(unit.trial_index)
                        if unit in outstanding:
                            outstanding.discard(unit)
                            self._record(unit, trial, results, telemetry,
                                         journal, worker_id=worker_id)
                    elif kind == "done":
                        self._merge_profile(payload)
                        assignment = assignments.get(worker_id)
                        if assignment is not None \
                                and assignment[0] == batch_id:
                            assignments.pop(worker_id)
                            if worker is not None:
                                worker.batch_id = None
                    elif kind == "error":
                        raise CampaignError(
                            "campaign worker %d failed: %s"
                            % (worker_id, payload))

                next_batch_id = self._reap(
                    pool, now, queue, next_batch_id, assignments,
                    outstanding, retries, telemetry)

                if outstanding and not queue and not assignments \
                        and pool.next_message(self.poll_interval) is None:
                    raise CampaignError(
                        "engine inconsistency: %d units outstanding with "
                        "no queued or assigned work" % len(outstanding))
        finally:
            self.pool = None
            pool.shutdown()

    def _reap(self, pool, now, queue, next_batch_id, assignments,
              outstanding, retries, telemetry):
        """Requeue work held by dead or stalled workers; respawn them."""
        for worker in list(pool.workers):
            dead = not worker.alive()
            stalled = (not dead and self.trial_timeout is not None
                       and worker.busy and worker.last_progress is not None
                       and now - worker.last_progress > self.trial_timeout)
            if not dead and not stalled:
                continue
            assignment = assignments.pop(worker.worker_id, None)
            if assignment is not None:
                batch_id, batch, received = assignment
                remaining = tuple(
                    index for index in batch.trial_indices
                    if index not in received
                    and TrialUnit(batch.workload, batch.start_point,
                                  index) in outstanding)
                if remaining:
                    for index in remaining:
                        unit = TrialUnit(batch.workload, batch.start_point,
                                         index)
                        count = retries.get(unit, 0) + 1
                        if count > self.max_retries:
                            raise CampaignError(
                                "trial unit %s/sp%d/#%d failed %d times "
                                "(worker %s, last cause: %s); aborting "
                                "rather than dropping trials"
                                % (unit.workload, unit.start_point,
                                   unit.trial_index, count,
                                   worker.worker_id,
                                   "stall" if stalled else "worker death"))
                        retries[unit] = count
                    telemetry.record_retry(len(remaining))
                    queue.append((next_batch_id,
                                  UnitBatch(batch.workload,
                                            batch.start_point, remaining)))
                    next_batch_id += 1
            pool.replace(worker)
        return next_batch_id
