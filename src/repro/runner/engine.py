"""The campaign execution engine.

:class:`CampaignRunner` decomposes a campaign into trial-granular work
units, executes them -- inline for one worker, across a process pool
otherwise -- and reassembles the exact serial-order
:class:`~repro.inject.campaign.CampaignResult`.  Three properties are
layered on top of the plain serial loop:

* **Determinism** -- every trial's RNG comes from the same named-split
  scheme the serial :class:`~repro.inject.campaign.Campaign` uses, so
  for a fixed config the engine's result equals ``Campaign(config)
  .run()`` trial-for-trial, for any worker count, with or without an
  interrupt and resume in the middle.
* **Durability** -- with a campaign ``directory``, every completed
  trial is appended (flushed + fsynced) to an append-only journal
  before it is counted; after a crash or SIGINT a rerun skips the
  journaled units and recomputes only the rest.
* **Robustness** -- a dead worker's unfinished units are requeued onto
  a replacement process (the pool stays alive), a worker stuck on one
  trial past ``trial_timeout`` seconds is killed and its units retried,
  and retries are bounded.  A unit that *keeps* killing its workers is
  a poison unit: with ``contain_poison`` (the default) it is journaled
  as a ``harness_error`` outcome and the sweep continues; otherwise the
  campaign aborts rather than silently dropping trials.
* **Graceful drain** -- SIGTERM or SIGINT stops dispatching new work,
  lets in-flight trials finish (bounded by ``drain_timeout``), fsyncs
  the journal and raises :class:`~repro.errors.CampaignDrained`; the
  campaign directory resumes exactly where it left off.  A second
  signal skips the drain (classic KeyboardInterrupt).

Observability is a progress callback receiving
:class:`~repro.runner.telemetry.TelemetrySnapshot` values plus a
``metrics.json`` snapshot in the campaign directory.

Chaos: a :class:`~repro.chaos.ChaosSchedule` passed as ``chaos`` gets a
hook after every journaled trial plus the journal's write-fault hook,
letting the test harness inject worker kills, stalls, torn journal
tails, transient I/O errors, cache corruption and signals at seeded,
replayable points.  ``chaos=None`` (the default) is zero-overhead.
"""

import os
import signal as signal_module
import threading
import time
from collections import deque

from repro.errors import CampaignDrained, CampaignError
from repro.inject.campaign import _KINDS, CampaignResult
from repro.inject.golden import workload_page_sets
from repro.inject.outcome import TrialResult
from repro.inject.store import inventory_from_dict
from repro.obs import merge_profile, render_profile
from repro.runner.journal import JournalWriter, write_metrics
from repro.runner.pool import WorkerContext, WorkerPool
from repro.runner.resume import load_resume_state
from repro.runner.telemetry import Telemetry
from repro.runner.units import (
    TrialUnit,
    UnitBatch,
    auto_batch_size,
    batch_units,
    enumerate_units,
)
from repro.uarch.config import PipelineConfig
from repro.uarch.core import Pipeline
from repro.workloads import get_workload

__all__ = ["CampaignRunner", "run_campaign"]


def run_campaign(config, pipeline_config=None, workers=None, directory=None,
                 progress=None, **options):
    """Run ``config`` on the engine; returns a ``CampaignResult``."""
    return CampaignRunner(config, pipeline_config, workers=workers,
                          directory=directory, progress=progress,
                          **options).run()


def _take_batch(queue, worker):
    """Pop the next batch for ``worker``, preferring start-point affinity.

    A worker that has already paid for a ``(workload, start_point)``
    checkpoint and golden trace should keep consuming that group's
    batches; any queued batch is still eligible for any worker, so this
    only reduces redundant preparation, never stalls the pool.
    """
    if worker.group is not None:
        for position, (batch_id, batch) in enumerate(queue):
            if (batch.workload, batch.start_point) == worker.group:
                del queue[position]
                return batch_id, batch
    return queue.popleft()


class CampaignRunner:
    """Durable, trial-granular campaign execution."""

    def __init__(self, config, pipeline_config=None, workers=None,
                 directory=None, batch_size=None, trial_timeout=None,
                 max_retries=2, progress=None, metrics_every=16,
                 poll_interval=0.05, require_journal=False, clock=None,
                 chaos=None, contain_poison=True, drain_timeout=30.0,
                 install_signal_handlers=True, journal_sleep=None,
                 batch_lanes=None):
        self.config = config
        self.pipeline_config = pipeline_config or PipelineConfig.paper(
            config.protection)
        if workers is None:
            workers = os.cpu_count() or 1
        self.workers = max(1, min(workers, config.total_trials))
        self.directory = directory
        self.batch_size = batch_size
        # Bit-plane batching width (``--batch N``).  A scheduling knob
        # only: trial results and journal bytes are identical at any
        # width, so it is deliberately NOT part of CampaignConfig and
        # never reaches the campaign fingerprint.
        self.batch_lanes = max(1, batch_lanes or 1)
        self.trial_timeout = trial_timeout
        self.max_retries = max_retries
        self.progress = progress
        self.metrics_every = metrics_every
        self.poll_interval = poll_interval
        self.require_journal = require_journal
        # The clock feeds stall detection and telemetry only -- never a
        # simulation path -- and is injectable for tests (REP002).
        self._clock = clock if clock is not None else time.monotonic
        self.chaos = chaos
        self.contain_poison = contain_poison
        self.drain_timeout = drain_timeout
        self.install_signal_handlers = install_signal_handlers
        self.journal_sleep = journal_sleep
        self._drain = None  # signal name once a graceful drain is requested
        self.pool = None  # the live WorkerPool while a pool run is active
        self.telemetry = None
        # Campaign-wide per-stage profile, merged across workers (only
        # populated when config.profile is on).
        self.profile_totals = {}
        self.profile_calls = {}

    # ------------------------------------------------------------------

    def run(self):
        """Execute (or finish) the campaign; returns a ``CampaignResult``.

        Raises :class:`~repro.errors.CampaignDrained` when a SIGTERM or
        SIGINT drained the campaign before every unit completed; the
        journal holds everything finished so far and the directory is
        resumable.
        """
        self._drain = None
        config = self.config
        units = enumerate_units(config)
        resume = load_resume_state(self.directory, config,
                                   require_journal=self.require_journal)
        results = dict(resume.trials)
        # Drop journaled units outside the current sweep (can only
        # happen with a hand-edited journal; fingerprinting already
        # rejects a different config).
        results = {unit: trial for unit, trial in results.items()
                   if unit in set(units)}
        pending = [unit for unit in units if unit not in results]

        telemetry = Telemetry(total=len(units), resumed=len(results),
                              clock=self._clock)
        self.telemetry = telemetry
        self._fresh_since_metrics = 0

        if resume.header:
            eligible_bits = resume.eligible_bits
            inventory = inventory_from_dict(resume.inventory_dict)
        else:
            eligible_bits, inventory = self._machine_inventory()

        journal = None
        if self.directory is not None:
            journal = JournalWriter.open(
                self.directory, config, eligible_bits, inventory,
                fault_hook=(self.chaos.journal_fault
                            if self.chaos is not None else None),
                on_retry=telemetry.record_io_retry,
                sleep=self.journal_sleep)
        previous_handlers = self._install_signal_handlers()
        try:
            if pending:
                if self.workers > 1:
                    self._run_pool(pending, results, telemetry, journal)
                else:
                    self._run_inline(pending, results, telemetry, journal)
        finally:
            self._restore_signal_handlers(previous_handlers)
            if journal is not None:
                journal.close()
            if self.directory is not None:
                write_metrics(self.directory, telemetry.snapshot().to_dict())

        if self._drain is not None and len(results) < len(units):
            raise CampaignDrained(self._drain, self.directory)

        return CampaignResult(
            config=config,
            trials=[results[unit] for unit in units],
            eligible_bits=eligible_bits,
            inventory=inventory,
            elapsed_seconds=telemetry.elapsed(),
        )

    # ------------------------------------------------------------------

    def _install_signal_handlers(self):
        """Install the graceful-drain SIGTERM/SIGINT handlers.

        Returns the previous handlers for restoration, or None when
        installation is disabled or impossible (signal handlers can
        only be set from the main thread).  The first signal requests a
        drain; a second one raises KeyboardInterrupt (the classic
        hard-stop escape hatch).
        """
        if not self.install_signal_handlers:
            return None
        if threading.current_thread() is not threading.main_thread():
            return None

        def handler(signum, frame):
            if self._drain is not None:
                raise KeyboardInterrupt
            self._drain = signal_module.Signals(signum).name

        previous = {}
        for signum in (signal_module.SIGTERM, signal_module.SIGINT):
            previous[signum] = signal_module.signal(signum, handler)
        return previous

    def _restore_signal_handlers(self, previous):
        if previous:
            for signum, old in previous.items():
                signal_module.signal(signum, old)

    def _on_cache_event(self, kind, detail):
        """Integrity incidents surfaced by the inline golden cache."""
        if kind == "cache_quarantined" and self.telemetry is not None:
            self.telemetry.record_quarantine()

    def _machine_inventory(self):
        """The campaign's eligible-bit count and Table 1 inventory.

        Matches the serial runner, which reads both off the first
        workload's freshly constructed pipeline (the state space is a
        function of the pipeline config alone, so any workload works).
        """
        workload = get_workload(self.config.workloads[0],
                                scale=self.config.scale)
        pipeline = Pipeline(workload.program, self.pipeline_config)
        return (pipeline.eligible_bits(_KINDS[self.config.kinds]),
                pipeline.space.inventory())

    def profile_report(self):
        """The merged per-stage hot-path table, or None when not profiled."""
        if not self.profile_totals:
            return None
        return render_profile(
            self.profile_totals, self.profile_calls,
            title="Per-stage wall-clock profile (campaign-wide)")

    def _merge_profile(self, delta):
        if delta is not None:
            merge_profile(self.profile_totals, self.profile_calls, delta)

    def _record(self, unit, trial, results, telemetry, journal,
                worker_id=0):
        """Count one completed trial: journal first, then observe."""
        results[unit] = trial
        if journal is not None:
            journal.append_trial(unit, trial)
        telemetry.record_trial(trial, worker_id=worker_id)
        self._fresh_since_metrics += 1
        if self.directory is not None \
                and self._fresh_since_metrics >= self.metrics_every:
            self._fresh_since_metrics = 0
            write_metrics(self.directory, telemetry.snapshot().to_dict())
        if self.progress is not None:
            self.progress(telemetry.snapshot())
        if self.chaos is not None:
            # After the trial is safely journaled: chaos fires on the
            # done-trial-count axis, which is monotonic across resumes.
            self.chaos.on_trial(len(results), self)

    def _shared_page_sets(self, pending):
        """TLB-preload page sets for every workload with pending units.

        Computed once in the parent (the serial runner's total cost) and
        shared with all workers instead of being re-derived per process;
        the sets come from a deterministic fault-free functional run, so
        sharing cannot change any trial.
        """
        names = sorted({unit.workload for unit in pending})
        page_sets = {}
        for name in names:
            workload = get_workload(name, scale=self.config.scale)
            page_sets[name] = workload_page_sets(workload.program)
        return page_sets

    def _golden_dir(self):
        """The shared golden-cache directory (campaign-directory runs)."""
        if self.directory is None:
            return None
        return os.path.join(self.directory, "golden")

    def _run_inline(self, pending, results, telemetry, journal):
        """Single-worker path: same context code, no processes."""
        context = WorkerContext(self.config, self.pipeline_config,
                                golden_dir=self._golden_dir(),
                                on_event=self._on_cache_event,
                                batch_lanes=self.batch_lanes)
        telemetry.set_workers(1, 1)
        try:
            for batch in batch_units(pending, self.batch_lanes):
                if self._drain is not None:
                    break  # drain: the current batch was the in-flight one
                for unit, trial in context.run_batch(batch):
                    self._record(unit, trial, results, telemetry, journal)
                stats = context.take_batch_stats()
                if stats is not None:
                    telemetry.record_batch(*stats)
        finally:
            self._merge_profile(context.take_profile())

    # ------------------------------------------------------------------

    def _run_pool(self, pending, results, telemetry, journal):
        """Dynamic scheduling across the worker pool."""
        batch_size = self.batch_size or max(
            auto_batch_size(len(pending), self.workers), self.batch_lanes)
        queue = deque()
        next_batch_id = 0
        for batch in batch_units(pending, batch_size):
            queue.append((next_batch_id, batch))
            next_batch_id += 1

        outstanding = set(pending)
        retries = {}
        assignments = {}  # worker_id -> [batch_id, batch, received indices]
        pool = WorkerPool(self.config, self.pipeline_config, self.workers,
                          page_sets=self._shared_page_sets(pending),
                          golden_dir=self._golden_dir(),
                          batch_lanes=self.batch_lanes)
        self.pool = pool
        drain_deadline = None
        try:
            while outstanding:
                now = self._clock()
                if self._drain is None:
                    idle = pool.idle_workers()
                    while idle and queue:
                        worker = idle.pop(0)
                        batch_id, batch = _take_batch(queue, worker)
                        assignments[worker.worker_id] = \
                            [batch_id, batch, set()]
                        pool.assign(worker, batch_id, batch, now)
                elif drain_deadline is None:
                    drain_deadline = now + self.drain_timeout
                telemetry.set_workers(pool.busy_count(), len(pool.workers))

                if self._drain is not None and not assignments:
                    break  # drained: nothing in flight remains

                message = pool.next_message(self.poll_interval)
                now = self._clock()
                if message is not None:
                    kind, worker_id, batch_id, payload = message
                    worker = pool.by_id(worker_id)
                    if kind == "trial":
                        unit, trial = payload
                        if worker is not None:
                            worker.last_progress = now
                        assignment = assignments.get(worker_id)
                        if assignment is not None \
                                and assignment[0] == batch_id:
                            assignment[2].add(unit.trial_index)
                        if unit in outstanding:
                            outstanding.discard(unit)
                            self._record(unit, trial, results, telemetry,
                                         journal, worker_id=worker_id)
                    elif kind == "done":
                        self._merge_profile(payload)
                        assignment = assignments.get(worker_id)
                        if assignment is not None \
                                and assignment[0] == batch_id:
                            assignments.pop(worker_id)
                            if worker is not None:
                                worker.batch_id = None
                    elif kind == "event":
                        event_kind, detail = payload
                        if event_kind == "cache_quarantined":
                            telemetry.record_quarantine()
                        elif event_kind == "batch_stats":
                            telemetry.record_batch(*detail)
                    elif kind == "error":
                        raise CampaignError(
                            "campaign worker %d failed: %s"
                            % (worker_id, payload))

                if drain_deadline is not None and now > drain_deadline:
                    # In-flight batches did not finish inside the
                    # drain window: give up on them (they stay
                    # unjournaled, hence resumable) and stop.
                    for worker in list(pool.workers):
                        if worker.busy:
                            assignments.pop(worker.worker_id, None)
                            pool.retire(worker)
                    break

                next_batch_id = self._reap(
                    pool, now, queue, next_batch_id, assignments,
                    outstanding, retries, results, telemetry, journal)

                if outstanding and not queue and not assignments \
                        and self._drain is None \
                        and pool.next_message(self.poll_interval) is None:
                    raise CampaignError(
                        "engine inconsistency: %d units outstanding with "
                        "no queued or assigned work" % len(outstanding))
        finally:
            self.pool = None
            pool.shutdown()

    def _reap(self, pool, now, queue, next_batch_id, assignments,
              outstanding, retries, results, telemetry, journal):
        """Requeue work held by dead or stalled workers; respawn them.

        A unit that has already burned through ``max_retries`` workers
        is *poison*: with ``contain_poison`` it is journaled as a
        ``harness_error`` outcome (quarantined from the sweep's
        statistics, which exclude that outcome) instead of aborting the
        whole campaign.  During a drain, dead workers are simply
        retired -- their units stay unjournaled and resume later.
        """
        for worker in list(pool.workers):
            dead = not worker.alive()
            stalled = (not dead and self.trial_timeout is not None
                       and worker.busy and worker.last_progress is not None
                       and now - worker.last_progress > self.trial_timeout)
            if not dead and not stalled:
                continue
            cause = "stall" if stalled else "worker death"
            assignment = assignments.pop(worker.worker_id, None)
            if self._drain is not None:
                pool.retire(worker)
                continue
            if assignment is not None:
                batch_id, batch, received = assignment
                remaining = [
                    index for index in batch.trial_indices
                    if index not in received
                    and TrialUnit(batch.workload, batch.start_point,
                                  index) in outstanding]
                requeue = []
                for index in remaining:
                    unit = TrialUnit(batch.workload, batch.start_point,
                                     index)
                    count = retries.get(unit, 0) + 1
                    retries[unit] = count
                    if count <= self.max_retries:
                        requeue.append(index)
                        continue
                    if not self.contain_poison:
                        raise CampaignError(
                            "trial unit %s/sp%d/#%d failed %d times "
                            "(worker %s, last cause: %s); aborting "
                            "rather than dropping trials"
                            % (unit.workload, unit.start_point,
                               unit.trial_index, count,
                               worker.worker_id, cause))
                    # Poison containment: the unit repeatedly took its
                    # worker down; journal the fact and move on.
                    trial = TrialResult.harness_error(
                        unit.workload, unit.start_point, unit.trial_index,
                        "unit failed %d worker(s); last cause: %s; "
                        "contained as harness_error" % (count, cause))
                    outstanding.discard(unit)
                    self._record(unit, trial, results, telemetry, journal,
                                 worker_id=worker.worker_id)
                    telemetry.record_harness_error()
                if requeue:
                    telemetry.record_retry(len(requeue))
                    queue.append((next_batch_id,
                                  UnitBatch(batch.workload,
                                            batch.start_point,
                                            tuple(requeue))))
                    next_batch_id += 1
            pool.replace(worker)
        return next_batch_id
