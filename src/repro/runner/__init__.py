"""Campaign execution engine: durable, trial-granular, observable.

Where :class:`~repro.inject.campaign.Campaign` is the *reference*
serial implementation of a campaign, this package is its production
execution engine:

* :mod:`repro.runner.units` -- trial-granular work decomposition
  (parallelism scales with total trials, not workload count);
* :mod:`repro.runner.pool` -- worker contexts that share one golden
  trace per ``(workload, start_point)``, and a self-healing process
  pool;
* :mod:`repro.runner.journal` -- append-only crash-durable trial
  journal plus the ``metrics.json`` snapshot;
* :mod:`repro.runner.resume` -- fingerprint-checked recovery of
  journaled trials;
* :mod:`repro.runner.telemetry` -- trials/sec, ETA, outcome mix,
  worker utilization;
* :mod:`repro.runner.engine` -- the :class:`CampaignRunner`
  orchestrator tying the above together.

The engine's contract: for a fixed config, its ``CampaignResult``
carries exactly the trials of ``Campaign(config).run()`` -- for any
worker count, with or without a crash and resume in the middle.  See
``docs/RUNNER.md``.
"""

from repro.runner.engine import CampaignRunner, run_campaign
from repro.runner.journal import JournalWriter, read_journal
from repro.runner.resume import ResumeState, load_resume_state
from repro.runner.telemetry import Telemetry, TelemetrySnapshot
from repro.runner.units import TrialUnit, UnitBatch, enumerate_units

__all__ = [
    "CampaignRunner",
    "run_campaign",
    "JournalWriter",
    "read_journal",
    "ResumeState",
    "load_resume_state",
    "Telemetry",
    "TelemetrySnapshot",
    "TrialUnit",
    "UnitBatch",
    "enumerate_units",
]
