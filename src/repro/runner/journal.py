"""Append-only trial journal (crash durability).

One campaign directory holds::

    journal.jsonl   -- header line + one line per completed trial
    metrics.json    -- latest telemetry snapshot (advisory, rewritten)
    metrics.prom    -- the same snapshot as OpenMetrics text (scrapable
                       by a node exporter's textfile collector)

The journal is the source of truth for resume.  Line 1 is a header
carrying the campaign fingerprint (config hash + RNG scheme), the
journal schema version, and the machine inventory; every further line
is one completed trial keyed by its ``(workload, start_point,
trial_index)`` unit.  Each append is flushed and fsynced before the
engine counts the trial as durable, so after a crash at any instant the
journal contains every acknowledged trial plus at most one truncated
trailing line -- which :func:`read_journal` tolerates and
:meth:`JournalWriter.open` repairs before appending.

Timestamps in journal lines are reporting metadata only: nothing on a
simulation path ever reads them (the REP002 determinism contract).
"""

import json
import os
import time

from repro.errors import SimulationError
from repro.inject.store import (
    SCHEMA_VERSION,
    campaign_fingerprint,
    config_to_dict,
    inventory_to_dict,
    trial_to_dict,
)
from repro.obs import render_openmetrics
from repro.runner.units import TrialUnit

__all__ = ["JOURNAL_NAME", "METRICS_NAME", "PROM_NAME", "JOURNAL_SCHEMA",
           "JournalWriter", "read_journal", "journal_path", "metrics_path",
           "prom_path", "write_metrics"]

JOURNAL_NAME = "journal.jsonl"
METRICS_NAME = "metrics.json"
PROM_NAME = "metrics.prom"
JOURNAL_SCHEMA = 1


def journal_path(directory):
    return os.path.join(directory, JOURNAL_NAME)


def metrics_path(directory):
    return os.path.join(directory, METRICS_NAME)


def prom_path(directory):
    return os.path.join(directory, PROM_NAME)


class JournalWriter:
    """Appends durable trial records to a campaign journal."""

    def __init__(self, path, handle):
        self.path = path
        self._handle = handle

    @classmethod
    def open(cls, directory, config, eligible_bits, inventory):
        """Open (creating or resuming) the journal of ``directory``.

        A fresh journal gets a header line; an existing one first has
        any truncated trailing line (crash mid-write) trimmed so new
        appends start on a clean line boundary.
        """
        os.makedirs(directory, exist_ok=True)
        path = journal_path(directory)
        fresh = not os.path.exists(path) or os.path.getsize(path) == 0
        if not fresh:
            _repair_tail(path)
        handle = open(path, "a", encoding="utf-8")
        writer = cls(path, handle)
        if fresh:
            writer._append({
                "type": "header",
                "schema": JOURNAL_SCHEMA,
                "result_schema": SCHEMA_VERSION,
                "fingerprint": campaign_fingerprint(config),
                "config": config_to_dict(config),
                "eligible_bits": eligible_bits,
                "inventory": inventory_to_dict(inventory),
            })
        return writer

    def append_trial(self, unit, trial):
        """Durably record one completed trial."""
        self._append({
            "type": "trial",
            "unit": unit.key(),
            # repro-lint: allow=REP002 (wall-clock is journal metadata
            # for operators; no simulation path reads it back)
            "ts": time.time(),
            "trial": trial_to_dict(trial),
        })

    def _append(self, record):
        line = json.dumps(record, sort_keys=True, separators=(",", ":"))
        self._handle.write(line + "\n")
        self._handle.flush()
        os.fsync(self._handle.fileno())

    def close(self):
        if not self._handle.closed:
            self._handle.close()


def read_journal(path):
    """Parse a journal tolerantly.

    Returns ``(header, trials, truncated)`` where ``trials`` maps
    :class:`TrialUnit` to the raw trial dict (last record wins) and
    ``truncated`` reports whether a partial trailing line was dropped.
    Corruption anywhere *except* the trailing line is a hard
    :class:`SimulationError`: it means the file was edited or the
    filesystem lost acknowledged writes, and silently skipping records
    would fabricate a different campaign.
    """
    with open(path, encoding="utf-8") as handle:
        lines = handle.read().split("\n")
    if lines and lines[-1] == "":
        lines.pop()
    header = None
    trials = {}
    truncated = False
    for number, line in enumerate(lines, start=1):
        try:
            record = json.loads(line)
        except ValueError:
            if number == len(lines):
                truncated = True
                break
            raise SimulationError(
                "corrupt journal line %d in %s (only the final line may "
                "be truncated by a crash)" % (number, path))
        kind = record.get("type")
        if kind == "header":
            if header is None:
                header = record
        elif kind == "trial":
            trials[TrialUnit.from_key(record["unit"])] = record["trial"]
    return header, trials, truncated


def write_metrics(directory, snapshot_dict):
    """Atomically rewrite ``metrics.json`` and ``metrics.prom``.

    Both carry the latest telemetry snapshot -- JSON for tooling, the
    OpenMetrics text exposition for Prometheus-style scrapers.  Each is
    written to a temp file and renamed so a concurrent reader never sees
    a torn file.
    """
    path = metrics_path(directory)
    temp = path + ".tmp"
    with open(temp, "w", encoding="utf-8") as handle:
        json.dump(snapshot_dict, handle, indent=1, sort_keys=True)
    os.replace(temp, path)
    path = prom_path(directory)
    temp = path + ".tmp"
    with open(temp, "w", encoding="utf-8") as handle:
        handle.write(render_openmetrics(snapshot_dict))
    os.replace(temp, path)


def _repair_tail(path):
    """Truncate a partial trailing line left by a crash mid-append."""
    with open(path, "rb") as handle:
        data = handle.read()
    if not data or data.endswith(b"\n"):
        end = len(data)
        good = data
    else:
        end = data.rfind(b"\n") + 1
        good = data[:end]
    # Also drop a complete-but-undecodable final line (torn write that
    # happened to include the newline of a later buffered block).
    while good:
        last = good.rstrip(b"\n").rfind(b"\n") + 1
        tail = good[last:].strip()
        if not tail:
            break
        try:
            json.loads(tail.decode("utf-8"))
            break
        except (ValueError, UnicodeDecodeError):
            end = last
            good = good[:last]
    if end != len(data):
        with open(path, "r+b") as handle:
            handle.truncate(end)
